/**
 * @file
 * Irregular topologies (Section 6.3): a vertically partially connected
 * 3D mesh where only four corner columns own vertical links. Compares
 * three deadlock-free routers on it —
 *   - Elevator-First (deterministic baseline, VCs 2/2/1),
 *   - the EbDa two-partition scheme of Table 5 (VCs 1/2/1) driven in
 *     shortest-state mode (legal non-minimal detours via elevators),
 *   - Up/Down routing (topology-agnostic spanning-tree baseline) —
 * verifying each with the Dally oracle and simulating uniform traffic.
 *
 * Build & run:  ./examples/irregular_3d
 */

#include <iostream>

#include "cdg/relation_cdg.hh"
#include "core/catalog.hh"
#include "routing/ebda_routing.hh"
#include "routing/elevator.hh"
#include "routing/updown.hh"
#include "sim/simulator.hh"

namespace {

using namespace ebda;

void
evaluate(const topo::Network &net, const cdg::RoutingRelation &r)
{
    const auto verdict = cdg::checkDeadlockFree(r);
    const auto conn = cdg::checkConnectivity(r);
    std::cout << r.name() << ":\n  CDG "
              << (verdict.deadlockFree ? "acyclic (deadlock-free)"
                                       : "CYCLIC")
              << ", connectivity "
              << (conn.connected ? "complete" : "INCOMPLETE") << '\n';

    const sim::TrafficGenerator traffic(net,
                                        sim::TrafficPattern::Uniform);
    sim::SimConfig cfg;
    cfg.injectionRate = 0.06;
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 4000;
    cfg.drainCycles = 40000;
    cfg.seed = 9;
    const auto result = runSimulation(net, r, traffic, cfg);
    if (result.deadlocked) {
        std::cout << "  simulation: DEADLOCK\n";
    } else {
        std::cout << "  simulation: avg latency " << result.avgLatency
                  << " cycles, avg hops " << result.avgHops
                  << ", accepted " << result.acceptedRate
                  << " flits/node/cycle\n";
    }
}

} // namespace

int
main()
{
    const std::vector<std::pair<int, int>> elevators = {
        {0, 0}, {0, 3}, {3, 0}, {3, 3}};
    const auto net = topo::Network::partialMesh3d({4, 4, 3}, {2, 2, 1},
                                                  elevators);
    std::cout << "4x4x3 mesh, vertical links only at the four corner "
                 "columns\n\n";

    const routing::ElevatorFirstRouting elevator(net, elevators);
    evaluate(net, elevator);

    // The Table 5 scheme: PA = {X1+ Y1* Z1+} -> PB = {X1- Y2* Z1-}.
    // Shortest-state mode lets packets detour to a partition-compatible
    // elevator column.
    const routing::EbDaRouting ebda(
        net, core::schemePartial3d(), {},
        routing::EbDaRouting::Mode::ShortestState);
    evaluate(net, ebda);

    const routing::UpDownRouting updown(net);
    evaluate(net, updown);

    std::cout << "\nthe EbDa scheme needs one fewer X virtual channel "
                 "than Elevator-First (Table 5) and routes adaptively "
                 "in four of the eight regions\n";
    return 0;
}
