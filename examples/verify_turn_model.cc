/**
 * @file
 * Verify arbitrary turn models with the Dally oracle — the
 * "verification" half of the paper's title. Three demonstrations:
 *   1. West-First (a known-good model) passes with an acyclic CDG;
 *   2. the full eight-turn set fails, and the oracle prints a concrete
 *      witness cycle of physical channels;
 *   3. a subtle broken model (removing only same-orientation turns)
 *      also fails, showing why naive turn-removal needs verification.
 *
 * Build & run:  ./examples/verify_turn_model
 */

#include <iostream>

#include "cdg/turn_cdg.hh"
#include "core/enumerate.hh"
#include "core/turns.hh"
#include "topo/network.hh"

namespace {

using namespace ebda;
using core::ChannelClass;
using core::makeClass;
using core::Sign;

/** Build the class pair for a compass-style 2D turn name like "EN". */
std::pair<ChannelClass, ChannelClass>
turn(const char *name)
{
    auto cls = [](char c) {
        switch (c) {
          case 'E':
            return makeClass(0, Sign::Pos);
          case 'W':
            return makeClass(0, Sign::Neg);
          case 'N':
            return makeClass(1, Sign::Pos);
          default:
            return makeClass(1, Sign::Neg);
        }
    };
    return {cls(name[0]), cls(name[1])};
}

void
check(const std::string &label,
      const std::vector<const char *> &turn_names)
{
    const auto net = topo::Network::mesh({6, 6}, {1, 1});
    const auto classes = core::classes2d();

    std::vector<std::pair<ChannelClass, ChannelClass>> allowed;
    for (const char *n : turn_names)
        allowed.push_back(turn(n));
    const auto set = core::TurnSet::fromExplicit(classes, allowed);
    const cdg::ClassMap map(net, classes);
    const auto report = cdg::checkDeadlockFree(net, map, set);

    std::cout << label << " {";
    for (const char *n : turn_names)
        std::cout << ' ' << n;
    std::cout << " }: "
              << (report.deadlockFree ? "deadlock-free" : "CYCLIC")
              << '\n';
    if (!report.deadlockFree) {
        std::cout << "  witness cycle (" << report.witness.size()
                  << " channels):\n";
        for (const auto &ch : report.witness)
            std::cout << "    " << ch << '\n';
    }
}

} // namespace

int
main()
{
    // 1. West-First: all turns except NW and SW.
    check("West-First", {"WN", "WS", "EN", "ES", "NE", "SE"});

    // 2. All eight turns: the two abstract cycles close.
    check("all-turns", {"EN", "ES", "WN", "WS", "NE", "NW", "SE", "SW"});

    // 3. Removing NE and SW (one turn from each abstract cycle, but a
    //    poor choice): still deadlocks through the remaining corners —
    //    exactly the kind of combination the 16-candidate turn-model
    //    search has to weed out, and EbDa's construction never emits.
    check("broken-removal", {"EN", "ES", "WN", "WS", "NW", "SE"});
    return 0;
}
