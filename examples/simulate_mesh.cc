/**
 * @file
 * Run the wormhole simulator: EbDa maximally adaptive routing versus XY
 * dimension-order on an 8x8 mesh under transpose traffic — the workload
 * where adaptiveness pays. Prints latency, hop and throughput numbers
 * plus the deadlock-watchdog verdict for both routers at two loads.
 *
 * Build & run:  ./examples/simulate_mesh
 */

#include <iostream>

#include "core/catalog.hh"
#include "routing/baselines.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"

namespace {

using namespace ebda;

void
report(const std::string &label, const sim::SimResult &r)
{
    std::cout << "  " << label << ":\n";
    if (r.deadlocked) {
        std::cout << "    DEADLOCK detected by the progress watchdog\n";
        return;
    }
    std::cout << "    avg latency " << r.avgLatency << " cycles (p99 "
              << r.p99Latency << "), avg hops " << r.avgHops
              << "\n    accepted " << r.acceptedRate
              << " flits/node/cycle (offered " << r.offeredRate << ")"
              << (r.drained ? "" : "  [saturated: drain cap hit]") << '\n';
}

} // namespace

int
main()
{
    const auto net = topo::Network::mesh({8, 8}, {2, 2});

    // EbDa: the Figure 7(b) minimum-channel fully adaptive scheme.
    const routing::EbDaRouting adaptive(net, core::schemeFig7b());
    const auto xy = routing::DimensionOrderRouting::xy(net);

    const sim::TrafficGenerator traffic(net,
                                        sim::TrafficPattern::Transpose);

    for (const double load : {0.10, 0.30}) {
        std::cout << "transpose traffic, offered load " << load
                  << " flits/node/cycle:\n";
        sim::SimConfig cfg;
        cfg.injectionRate = load;
        cfg.warmupCycles = 1500;
        cfg.measureCycles = 5000;
        cfg.drainCycles = 30000;
        cfg.seed = 42;

        report("EbDa fully adaptive (6 channels)",
               runSimulation(net, adaptive, traffic, cfg));
        report("XY dimension-order",
               runSimulation(net, xy, traffic, cfg));
        std::cout << '\n';
    }
    std::cout << "expected: comparable at low load; XY saturates first "
                 "under transpose while EbDa keeps latency flat\n";
    return 0;
}
