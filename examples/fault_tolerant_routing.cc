/**
 * @file
 * Fault-tolerant routing with EbDa (the Theorem-2 note on U-turns and
 * rerouting): inject link failures into a mesh, rebuild the routing in
 * shortest-state mode, and watch packets detour — deadlock-free by
 * construction, verified again on the broken topology.
 *
 * Build & run:  ./examples/fault_tolerant_routing
 */

#include <iostream>

#include "cdg/relation_cdg.hh"
#include "core/catalog.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"

namespace {

using namespace ebda;

void
evaluate(const char *label, const topo::Network &net)
{
    const routing::EbDaRouting r(
        net, core::schemeFig7b(), {},
        routing::EbDaRouting::Mode::ShortestState);

    const auto verdict = cdg::checkDeadlockFree(r);
    const auto conn = cdg::checkConnectivity(r);

    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    sim::SimConfig cfg;
    cfg.injectionRate = 0.10;
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 4000;
    cfg.drainCycles = 40000;
    cfg.seed = 2;
    const auto result = runSimulation(net, r, gen, cfg);

    std::cout << label << ": links " << net.numLinks() << ", CDG "
              << (verdict.deadlockFree ? "acyclic" : "CYCLIC")
              << ", connectivity "
              << (conn.connected ? "complete" : "incomplete")
              << ", avg latency "
              << (result.deadlocked ? -1.0 : result.avgLatency)
              << " cycles, avg hops " << result.avgHops << '\n';
}

} // namespace

int
main()
{
    const auto healthy = topo::Network::mesh({8, 8}, {1, 2});
    std::cout << "8x8 mesh, Fig 7(b) fully adaptive scheme, "
                 "shortest-state routing\n\n";
    evaluate("healthy network        ", healthy);

    // Cut the two central vertical links (both directions): a classic
    // bisection-stress fault.
    const auto one_cut = healthy.withoutLinks(
        {{healthy.node({3, 3}), healthy.node({3, 4})},
         {healthy.node({3, 4}), healthy.node({3, 3})},
         {healthy.node({4, 3}), healthy.node({4, 4})},
         {healthy.node({4, 4}), healthy.node({4, 3})}});
    evaluate("2 central links failed ", one_cut);

    // Heavier damage: also sever part of a row.
    const auto heavy = one_cut.withoutLinks(
        {{one_cut.node({1, 5}), one_cut.node({2, 5})},
         {one_cut.node({2, 5}), one_cut.node({1, 5})},
         {one_cut.node({5, 1}), one_cut.node({6, 1})},
         {one_cut.node({6, 1}), one_cut.node({5, 1})}});
    evaluate("6 links failed         ", heavy);

    std::cout << "\npackets detour around every fault; the turn set "
                 "(hence deadlock freedom) never changes — only the "
                 "shortest-state tables do\n";
    return 0;
}
