/**
 * @file
 * Quickstart: design a deadlock-free routing algorithm with EbDa in
 * five steps —
 *   1. describe channel classes and group them into partitions,
 *   2. validate the scheme against Theorem 1 / Definition 6,
 *   3. extract the allowed turn set (Theorems 1-3),
 *   4. verify with the independent Dally oracle on a concrete mesh,
 *   5. measure the exact degree of adaptiveness.
 *
 * Build & run:  ./examples/quickstart
 */

#include <iostream>

#include "cdg/adaptivity.hh"
#include "cdg/turn_cdg.hh"
#include "core/partition.hh"
#include "core/turns.hh"
#include "topo/network.hh"

int
main()
{
    using namespace ebda;
    using core::makeClass;
    using core::Sign;

    // 1. A 2D network with one VC per direction. Group X+, X- and Y-
    //    into one partition (at most ONE complete pair: the X pair) and
    //    Y+ into a second; transitions flow partition 1 -> partition 2.
    core::PartitionScheme scheme;
    scheme.add(core::Partition({makeClass(0, Sign::Pos),   // X+
                                makeClass(0, Sign::Neg),   // X-
                                makeClass(1, Sign::Neg)})); // Y-
    scheme.add(core::Partition({makeClass(1, Sign::Pos)})); // Y+
    std::cout << "scheme: " << scheme.toString(false) << "\n\n";

    // 2. Theorem-1 validation.
    const auto validation = scheme.validate();
    if (!validation.ok) {
        std::cerr << "scheme rejected: " << validation.reason << '\n';
        return 1;
    }
    std::cout << "Theorem 1 + disjointness: OK\n";

    // 3. Turn extraction.
    const auto turns = core::TurnSet::extract(scheme);
    std::cout << "allowed turns (" << turns.size() << "):";
    for (const auto &t : turns.turns())
        std::cout << ' ' << t.compassName();
    std::cout << "\n(this is the North-Last turn model plus two safe "
                 "U-turns)\n\n";

    // 4. Independent verification: build the channel dependency graph
    //    on an 8x8 mesh and check Dally's criterion.
    const auto net = topo::Network::mesh({8, 8}, {1, 1});
    const auto verdict = cdg::checkDeadlockFree(net, scheme);
    std::cout << "Dally oracle on 8x8 mesh: "
              << (verdict.deadlockFree ? "deadlock-free" : "CYCLIC")
              << " (" << verdict.numDependencies
              << " channel dependencies)\n";

    // 5. Exact adaptiveness: fraction of minimal physical paths the
    //    turn set realises, averaged over all source/destination pairs.
    const auto adapt = cdg::measureAdaptiveness(net, scheme);
    std::cout << "adaptiveness: " << adapt.averageFraction
              << " (XY scores " << 0.337 << "-ish; 1.0 = fully adaptive)\n";

    // Bonus: what the theorems protect you from. Putting all four
    // classes into ONE partition would cover two complete pairs:
    core::PartitionScheme bad;
    bad.add(core::Partition({makeClass(0, Sign::Pos),
                             makeClass(0, Sign::Neg),
                             makeClass(1, Sign::Pos),
                             makeClass(1, Sign::Neg)}));
    std::cout << "\nall-in-one partition: "
              << bad.validate().reason << '\n';
    return 0;
}
