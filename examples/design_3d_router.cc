/**
 * @file
 * Design a maximally adaptive deadlock-free router for a 3D NoC with a
 * given VC budget, end to end:
 *   - arrange the per-dimension channel sets (Section 5.1),
 *   - run Algorithm 1 to extract disjoint Theorem-1 partitions,
 *   - print the resulting Figure-8-style turn listing,
 *   - verify on a concrete 4x4x4 mesh and confirm full adaptiveness,
 *   - compare against the closed-form minimum (n+1)*2^(n-1).
 *
 * Build & run:  ./examples/design_3d_router
 */

#include <iostream>

#include "cdg/adaptivity.hh"
#include "cdg/turn_cdg.hh"
#include "core/arrange.hh"
#include "core/minimal.hh"
#include "core/partitioning.hh"
#include "core/turns.hh"
#include "topo/network.hh"

int
main()
{
    using namespace ebda;

    // VC budget: 3, 2, 3 virtual channels along X, Y, Z — the paper's
    // Section 5 walkthrough. The arrangement follows the paper: Z leads
    // (Arrangement 2 tie-break) and the Y set is re-paired so Y2+
    // follows Y1+ (Arrangement 3, "to cover the neighbouring regions").
    const std::vector<int> vcs = {3, 2, 3};
    core::SetArrangement sets;
    sets.push_back(core::makeSets({0, 0, 3})[0]); // D_Z first
    sets.push_back(core::makeSets({3})[0]);       // D_X
    core::DimensionSet y;
    y.dim = 1;
    y.channels = {core::makeClass(1, core::Sign::Pos, 0),
                  core::makeClass(1, core::Sign::Pos, 1),
                  core::makeClass(1, core::Sign::Neg, 0),
                  core::makeClass(1, core::Sign::Neg, 1)};
    sets.push_back(y);
    std::cout << "arranged sets:\n" << core::toString(sets) << "\n\n";

    // Algorithm 1: consume the sets into disjoint partitions.
    const auto scheme = core::partitionSets(sets);
    std::cout << "partitions (" << scheme.size() << "):\n";
    for (std::size_t i = 0; i < scheme.size(); ++i)
        std::cout << "  P" << static_cast<char>('A' + i) << " = "
                  << scheme[i].toString() << '\n';

    // Turn listing in the Figure 8 style.
    const auto turns = core::TurnSet::extract(scheme);
    std::cout << "\nturns: " << turns.count(core::TurnKind::Turn90)
              << " x 90-degree, " << turns.count(core::TurnKind::UTurn)
              << " x U, " << turns.count(core::TurnKind::ITurn)
              << " x I\n";
    for (std::uint16_t p = 0; p < scheme.size(); ++p) {
        std::cout << "  P" << static_cast<char>('A' + p) << " internal:";
        for (const auto &t : turns.turnsBetween(p, p))
            std::cout << ' ' << t.compassName();
        std::cout << '\n';
    }

    // Oracle verification + adaptiveness measurement.
    const auto net = topo::Network::mesh({4, 4, 4}, vcs);
    const auto verdict = cdg::checkDeadlockFree(net, scheme);
    std::cout << "\nDally oracle on 4x4x4: "
              << (verdict.deadlockFree ? "deadlock-free" : "CYCLIC")
              << '\n';

    const auto small = topo::Network::mesh({3, 3, 3}, vcs);
    const auto adapt = cdg::measureAdaptiveness(small, scheme);
    std::cout << "fully adaptive: " << (adapt.fullyAdaptive ? "yes" : "no")
              << " (average fraction " << adapt.averageFraction << ")\n";

    std::cout << "\nchannel classes used: "
              << core::channelCount(scheme)
              << "; theoretical minimum for fully adaptive 3D: "
              << core::minFullyAdaptiveChannels(3) << '\n';
    return 0;
}
