#!/usr/bin/env bash
# Regenerate BENCH_sim.json, the committed performance baseline.
#
# Four benches feed it, all built in a Release (-O3) tree:
#  - bench_route_compute: compiled-table vs virtual-dispatch route
#    compute on the standard 8x8, 2-VC mesh plus one fixed
#    latency-sweep point with the table on and off. Exits non-zero on
#    a table/virtual mismatch or any table-path heap allocation.
#  - bench_cycle_rate: whole-sim-loop throughput (cycles/s and
#    flit-moves/s over exactly the measurement window, best of three
#    identical runs) with a global allocation hook proving the
#    steady-state loop performs zero heap allocations. Exits non-zero
#    on any steady-state allocation or a regression against the
#    previously committed baseline.
#  - bench_sched_mode: cycle- vs event-driven scheduler backends on a
#    16x16 mesh, gating the >=5x event-mode win at near-idle load and
#    a 10% cycle-mode regression bound at saturation.
#  - bench_protocol_deadlock: request–reply delivery vs reply-buffer
#    depth on a Dally-clean 4x4 mesh, gating the messageClasses=2
#    escape (>= 0.99 delivery, watchdog-clean) and the protocol
#    classification of every one-class wedge.
#
# The route bench writes the top-level JSON; the cycle, sched, and
# protocol benches' summaries are merged in as the `sim_loop`,
# `sched_mode`, and `protocol` members. Any bench failing aborts the
# script, so a stale or regressed baseline can never be committed from
# a broken build.
#
# Usage: scripts/perf_baseline.sh [build-dir]   (default: build-perf)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-perf}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target bench_route_compute bench_cycle_rate bench_sched_mode \
    bench_protocol_deadlock

EBDA_ROUTE_BENCH_JSON="BENCH_sim.json" \
    "$BUILD_DIR/bench/bench_route_compute"

# Gate the sim loop against the PREVIOUS committed baseline (if any),
# then merge its summary into the fresh BENCH_sim.json.
SIM_LOOP_JSON="$(mktemp)"
SCHED_MODE_JSON="$(mktemp)"
PROTOCOL_JSON="$(mktemp)"
PREV_BASELINE="$(mktemp)"
trap 'rm -f "$SIM_LOOP_JSON" "$SCHED_MODE_JSON" "$PROTOCOL_JSON" \
    "$PREV_BASELINE"' EXIT
if git show HEAD:BENCH_sim.json > "$PREV_BASELINE" 2>/dev/null; then
    export EBDA_SIM_BASELINE_JSON="$PREV_BASELINE"
fi
EBDA_CYCLE_BENCH_JSON="$SIM_LOOP_JSON" \
    "$BUILD_DIR/bench/bench_cycle_rate"

# Scheduler backends: >=5x event win at idle, <=10% cycle regression
# at saturation (gated against the previous baseline's sched_mode).
EBDA_SCHED_BENCH_JSON="$SCHED_MODE_JSON" \
    "$BUILD_DIR/bench/bench_sched_mode"

# Protocol layer: delivery vs reply-buffer depth, wedge classification
# gate (the bench exits non-zero if the reply-class escape ever fails).
EBDA_PROTOCOL_BENCH_JSON="$PROTOCOL_JSON" \
    "$BUILD_DIR/bench/bench_protocol_deadlock"

# Splice `"sim_loop"`, `"sched_mode"`, and `"protocol"` onto the route
# bench's object.
python3 - "$SIM_LOOP_JSON" "$SCHED_MODE_JSON" "$PROTOCOL_JSON" <<'EOF'
import json, sys
with open("BENCH_sim.json") as f:
    doc = json.load(f)
with open(sys.argv[1]) as f:
    doc["sim_loop"] = json.load(f)
with open(sys.argv[2]) as f:
    doc["sched_mode"] = json.load(f)
with open(sys.argv[3]) as f:
    doc["protocol"] = json.load(f)
with open("BENCH_sim.json", "w") as f:
    json.dump(doc, f, separators=(",", ":"))
    f.write("\n")
EOF

echo "wrote BENCH_sim.json"
