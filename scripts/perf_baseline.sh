#!/usr/bin/env bash
# Regenerate BENCH_sim.json, the committed route-compute perf baseline.
#
# Builds bench_route_compute in a Release (-O3) tree and runs it; the
# bench measures compiled-table vs virtual-dispatch route compute on
# the standard 8x8, 2-VC mesh plus one fixed latency-sweep point with
# the table on and off, and writes the machine-readable summary
# (ns/call, speedup, cycles/sec, table-path allocation count) to the
# path in EBDA_ROUTE_BENCH_JSON. It exits non-zero on a table/virtual
# mismatch or any table-path heap allocation, so a stale baseline can
# never be committed from a broken build.
#
# Usage: scripts/perf_baseline.sh [build-dir]   (default: build-perf)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-perf}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_route_compute

EBDA_ROUTE_BENCH_JSON="BENCH_sim.json" \
    "$BUILD_DIR/bench/bench_route_compute"

echo "wrote BENCH_sim.json"
