#!/usr/bin/env bash
# Regenerate BENCH_sim.json, the committed performance baseline.
#
# Four benches feed it, all built in a Release (-O3) tree:
#  - bench_route_compute: compiled-table vs virtual-dispatch route
#    compute on the standard 8x8, 2-VC mesh plus one fixed
#    latency-sweep point with the table on and off. Exits non-zero on
#    a table/virtual mismatch or any table-path heap allocation.
#  - bench_cycle_rate: whole-sim-loop throughput (cycles/s and
#    flit-moves/s over exactly the measurement window, best of three
#    identical runs) with a global allocation hook proving the
#    steady-state loop performs zero heap allocations. Exits non-zero
#    on any steady-state allocation or a regression against the
#    previously committed baseline.
#  - bench_sched_mode: cycle- vs event-driven scheduler backends on a
#    16x16 mesh, gating the >=5x event-mode win at near-idle load and
#    a 10% cycle-mode regression bound at saturation.
#  - bench_protocol_deadlock: request–reply delivery vs reply-buffer
#    depth on a Dally-clean 4x4 mesh, gating the messageClasses=2
#    escape (>= 0.99 delivery, watchdog-clean) and the protocol
#    classification of every one-class wedge.
#
# A fifth bench, bench_shard_scaling, measures the sharded cycle
# backend at shards {1,2,4,8} on the 32x32 saturation point (speedup
# gates are enforced only on hosts with enough hardware threads; the
# bit-identity and determinism gates always are).
#
# A sixth, bench_sweep_engine, times the binary result store: warm
# start vs a legacy JSONL parse (>= 10x), all-hit sweep serving
# (>= 100k jobs/s), and the cost-ordered straggler-tail makespan
# (enforced only with >= 4 hardware threads; the bit-identity check
# between spec- and cost-ordered rows always runs).
#
# The route bench writes the top-level JSON; the cycle, sched,
# protocol, shard, and sweep benches' summaries are merged in as the
# `sim_loop`, `sched_mode`, `protocol`, `shard_scaling`, and
# `sweep_engine` members.
# Any bench failing aborts the script, so a stale or regressed
# baseline can never be committed from a broken build.
#
# After the merge the script compares the fresh sim_loop rate against
# the PREVIOUS committed baseline and prints a loud warning when they
# drift more than 10% in either direction: the bench's own gate only
# fails on a >25% regression, so silent drift used to accumulate
# (489,829 committed vs 441,933 measured, pass:true). The warning is
# the cue to either find the slowdown or re-commit the refreshed
# figures — never to leave a baseline the host can no longer produce.
#
# Usage: scripts/perf_baseline.sh [build-dir]   (default: build-perf)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-perf}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target bench_route_compute bench_cycle_rate bench_sched_mode \
    bench_protocol_deadlock bench_shard_scaling bench_sweep_engine

EBDA_ROUTE_BENCH_JSON="BENCH_sim.json" \
    "$BUILD_DIR/bench/bench_route_compute"

# Gate the sim loop against the PREVIOUS committed baseline (if any),
# then merge its summary into the fresh BENCH_sim.json.
SIM_LOOP_JSON="$(mktemp)"
SCHED_MODE_JSON="$(mktemp)"
PROTOCOL_JSON="$(mktemp)"
SHARD_JSON="$(mktemp)"
SWEEP_JSON="$(mktemp)"
PREV_BASELINE="$(mktemp)"
trap 'rm -f "$SIM_LOOP_JSON" "$SCHED_MODE_JSON" "$PROTOCOL_JSON" \
    "$SHARD_JSON" "$SWEEP_JSON" "$PREV_BASELINE"' EXIT
if git show HEAD:BENCH_sim.json > "$PREV_BASELINE" 2>/dev/null; then
    export EBDA_SIM_BASELINE_JSON="$PREV_BASELINE"
fi
EBDA_CYCLE_BENCH_JSON="$SIM_LOOP_JSON" \
    "$BUILD_DIR/bench/bench_cycle_rate"

# Scheduler backends: >=5x event win at idle, <=10% cycle regression
# at saturation (gated against the previous baseline's sched_mode).
EBDA_SCHED_BENCH_JSON="$SCHED_MODE_JSON" \
    "$BUILD_DIR/bench/bench_sched_mode"

# Protocol layer: delivery vs reply-buffer depth, wedge classification
# gate (the bench exits non-zero if the reply-class escape ever fails).
EBDA_PROTOCOL_BENCH_JSON="$PROTOCOL_JSON" \
    "$BUILD_DIR/bench/bench_protocol_deadlock"

# Sharded cycle backend: scaling curve at shards {1,2,4,8} on the
# 32x32 saturation point. Speedup gates self-skip (loudly) on hosts
# with too few hardware threads; bit-identity and determinism gates
# always run.
EBDA_SHARD_BENCH_JSON="$SHARD_JSON" \
    "$BUILD_DIR/bench/bench_shard_scaling"

# Sweep engine: warm-start and all-hit serving gates always run; the
# straggler-tail makespan gate self-skips (loudly) below 4 hardware
# threads, but spec- vs cost-ordered rows must stay byte-identical
# everywhere.
EBDA_SWEEP_ENGINE_JSON="$SWEEP_JSON" \
    "$BUILD_DIR/bench/bench_sweep_engine"

# Splice `"sim_loop"`, `"sched_mode"`, `"protocol"`, `"shard_scaling"`,
# and `"sweep_engine"` onto the route bench's object, then diff the fresh
# sim_loop rate against the previous committed baseline: a drift
# beyond 10% in EITHER direction gets a loud warning, because the
# bench's own gate only fails on a >25% regression and anything inside
# that band silently rots the committed figure otherwise.
python3 - "$SIM_LOOP_JSON" "$SCHED_MODE_JSON" "$PROTOCOL_JSON" \
    "$SHARD_JSON" "$SWEEP_JSON" "$PREV_BASELINE" <<'EOF'
import json, os, sys
with open("BENCH_sim.json") as f:
    doc = json.load(f)
with open(sys.argv[1]) as f:
    doc["sim_loop"] = json.load(f)
with open(sys.argv[2]) as f:
    doc["sched_mode"] = json.load(f)
with open(sys.argv[3]) as f:
    doc["protocol"] = json.load(f)
with open(sys.argv[4]) as f:
    doc["shard_scaling"] = json.load(f)
with open(sys.argv[5]) as f:
    doc["sweep_engine"] = json.load(f)
with open("BENCH_sim.json", "w") as f:
    json.dump(doc, f, separators=(",", ":"))
    f.write("\n")

prev_path = sys.argv[6]
try:
    with open(prev_path) as f:
        prev = json.load(f).get("sim_loop", {}).get("cycles_per_sec", 0)
except (OSError, ValueError):
    prev = 0
fresh = doc["sim_loop"]["cycles_per_sec"]
if prev and fresh:
    drift = fresh / prev - 1.0
    if abs(drift) > 0.10:
        bar = "!" * 66
        print(bar, file=sys.stderr)
        print(f"!! WARNING: sim_loop drifted {drift:+.1%} from the "
              f"committed baseline", file=sys.stderr)
        print(f"!!   committed {prev:,.0f} cycles/s -> measured "
              f"{fresh:,.0f} cycles/s", file=sys.stderr)
        print("!!   BENCH_sim.json has been refreshed with the "
              "measured figure; commit it", file=sys.stderr)
        print("!!   only after confirming the change is expected "
              "(host or code, not noise).", file=sys.stderr)
        print(bar, file=sys.stderr)
    else:
        print(f"sim_loop drift vs committed baseline: {drift:+.1%} "
              f"(within 10%)", file=sys.stderr)
EOF

echo "wrote BENCH_sim.json"
