/**
 * @file
 * Router spec strings -> routing relations. The sweep engine names
 * routers by short strings so a JSON spec (and a cache key) can refer
 * to them:
 *
 *   "xy" | "yx"                 dimension-order routing
 *   "west-first" | "north-last" | "negative-first"
 *                               Glass-Ni turn models
 *   "odd-even"                  Chiu's Odd-Even
 *   "duato"                     Duato fully adaptive with escape VC
 *                               (pair with atomicVcAllocation)
 *   "minimal"                   unrestricted minimal adaptive —
 *                               deadlock-PRONE negative control for
 *                               watchdog/forensics experiments
 *   "fig7b" | "fig7c"           the paper's minimum-channel 2D schemes
 *   "region:<n>"                core::regionScheme(n)
 *   "merged:<n>"                core::mergedScheme(n)
 *   "ebda:<scheme>"             any partition scheme in parse.hh
 *                               syntax, e.g. "ebda:{X+ X- Y-} -> {Y+}"
 *
 * Structural engines (work on any graph, including ASCII-declared
 * networks — everything above needs a dense mesh/torus grid):
 *
 *   "updown" | "updown:<root>"  Autonet up/down from the given root
 *   "dragonfly-min[:<a>]"       minimal dragonfly with escape VCs;
 *                               ":a" = routers per group (defaults to
 *                               the factory-recorded shape)
 *   "dragonfly-noescape[:<a>]"  same paths, no VC escalation —
 *                               deadlock-PRONE negative control
 *   "fullmesh-2hop"             VC-free ascend-then-descend detour
 *                               routing on a complete graph
 *   "fullmesh-naive"            any-intermediate detours —
 *                               deadlock-PRONE negative control
 *
 * EbDa-derived relations use Mode::Minimal on meshes and
 * Mode::ShortestState on tori (wrap traversals are non-minimal in the
 * channel state graph).
 */

#ifndef EBDA_SWEEP_ROUTER_FACTORY_HH
#define EBDA_SWEEP_ROUTER_FACTORY_HH

#include <memory>
#include <optional>
#include <string>

#include "cdg/routing_relation.hh"
#include "topo/network.hh"

namespace ebda::sweep {

/**
 * Build the relation named by spec on net. Returns nullptr and sets
 * *error for unknown names, malformed/invalid schemes, or relations
 * the network cannot host (e.g. "duato" with a single VC).
 */
std::unique_ptr<cdg::RoutingRelation> makeRouter(
    const topo::Network &net, const std::string &spec,
    std::string *error = nullptr);

/**
 * Network-independent validation of a router spec string (used at
 * spec-parse time): the error message, or std::nullopt when the spec
 * is well-formed.
 */
std::optional<std::string> checkRouterSpec(const std::string &spec);

} // namespace ebda::sweep

#endif // EBDA_SWEEP_ROUTER_FACTORY_HH
