#include "sweep/manifest.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "util/json.hh"

namespace ebda::sweep {

namespace fs = std::filesystem;

std::uint64_t
SweepManifest::specKey(const std::vector<SweepJob> &jobs)
{
    std::string keys;
    keys.reserve(jobs.size() * 16);
    for (const SweepJob &job : jobs)
        keys += keyToHex(job.key);
    return fnv1a64(keys);
}

std::string
SweepManifest::filePath(const std::string &cacheDir, std::uint64_t specKey)
{
    return (fs::path(cacheDir) / ("manifest-" + keyToHex(specKey) + ".json"))
        .string();
}

SweepManifest::SweepManifest(std::string cacheDir, std::uint64_t specKey,
                             std::size_t jobs)
    : file(filePath(cacheDir, specKey)), spec(specKey), doneBits(jobs, false)
{
}

void
SweepManifest::markDone(std::size_t job)
{
    if (job >= doneBits.size() || doneBits[job])
        return;
    doneBits[job] = true;
    ++nDone;
}

bool
SweepManifest::load(std::string *error)
{
    std::ifstream in(file);
    if (!in) {
        if (error)
            *error = "no manifest at " + file;
        return false;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const auto doc = parseJson(text);
    if (!doc || !doc->isObject()) {
        if (error)
            *error = "unparseable manifest " + file;
        return false;
    }
    const auto *key = doc->find("specKey");
    const auto *jobs = doc->find("jobs");
    const auto *done = doc->find("done");
    if (!key || !key->isString() || !jobs || !done || !done->isString()) {
        if (error)
            *error = "malformed manifest " + file;
        return false;
    }
    char *end = nullptr;
    const std::uint64_t k = std::strtoull(key->asString().c_str(), &end, 16);
    if (!end || *end != '\0' || k != spec) {
        if (error)
            *error = "manifest " + file + " is for a different sweep spec";
        return false;
    }
    const std::uint64_t n = jobs->asU64();
    if (n != doneBits.size()) {
        if (error)
            *error = "manifest " + file + " covers a different job count";
        return false;
    }
    const std::string &bitmap = done->asString();
    if (bitmap.size() != (doneBits.size() + 3) / 4) {
        if (error)
            *error = "manifest " + file + " bitmap length mismatch";
        return false;
    }
    std::vector<bool> bits(doneBits.size(), false);
    std::size_t count = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        const char c = bitmap[i / 4];
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else {
            if (error)
                *error = "manifest " + file + " bitmap is not hex";
            return false;
        }
        if (digit & (1 << (i % 4))) {
            bits[i] = true;
            ++count;
        }
    }
    doneBits = std::move(bits);
    nDone = count;
    return true;
}

bool
SweepManifest::save(std::string *error) const
{
    std::string bitmap((doneBits.size() + 3) / 4, '0');
    for (std::size_t i = 0; i < doneBits.size(); ++i) {
        if (!doneBits[i])
            continue;
        char &c = bitmap[i / 4];
        const int digit =
            (c <= '9' ? c - '0' : c - 'a' + 10) | (1 << (i % 4));
        c = static_cast<char>(digit < 10 ? '0' + digit : 'a' + digit - 10);
    }
    JsonWriter w;
    w.beginObject();
    w.field("specKey", keyToHex(spec));
    w.field("jobs", static_cast<std::uint64_t>(doneBits.size()));
    w.field("completed", static_cast<std::uint64_t>(nDone));
    w.field("done", bitmap);
    w.end();

    const std::string tmp = file + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            if (error)
                *error = "cannot write " + tmp;
            return false;
        }
        out << w.str() << '\n';
        out.flush();
        if (!out) {
            if (error)
                *error = "write failed for " + tmp;
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, file, ec);
    if (ec) {
        if (error)
            *error = "cannot replace " + file + ": " + ec.message();
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

void
SweepManifest::remove() const
{
    std::error_code ec;
    fs::remove(file, ec);
    fs::remove(file + ".tmp", ec);
}

} // namespace ebda::sweep
