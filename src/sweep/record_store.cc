#include "sweep/record_store.hh"

#include "sweep/sweep_spec.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace ebda::sweep {

namespace {

constexpr char kBinMagic[8] = {'E', 'B', 'D', 'A', 'B', 'I', 'N', '1'};
constexpr char kIdxMagic[8] = {'E', 'B', 'D', 'A', 'I', 'D', 'X', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kRecordMagic = 0x52444245; // "EBDR" little-endian
constexpr std::uint64_t kFileHeaderBytes = 16;
constexpr std::uint64_t kRecordHeaderBytes = 48;
constexpr std::uint64_t kIdxEntryBytes = 24;
constexpr std::uint64_t kQuarantineBit = std::uint64_t{1} << 63;
constexpr std::uint32_t kFlagQuarantined = 1;

template <typename T> void putRaw(std::string *out, T value)
{
    char buf[sizeof(T)];
    std::memcpy(buf, &value, sizeof(T));
    out->append(buf, sizeof(T));
}

template <typename T> T getRaw(const unsigned char *p)
{
    T value;
    std::memcpy(&value, p, sizeof(T));
    return value;
}

/** Whole-file read; empty string when the file does not exist. */
std::string slurp(const std::string &path)
{
    std::string data;
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return data;
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    std::fclose(f);
    return data;
}

bool appendAndFlush(const std::string &path, const std::string &bytes)
{
    if (bytes.empty())
        return true;
    FILE *f = std::fopen(path.c_str(), "ab");
    if (!f)
        return false;
    bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    ok = std::fflush(f) == 0 && ok;
    std::fclose(f);
    return ok;
}

} // namespace

std::string RecordStore::binFile(const std::string &dir)
{
    return (std::filesystem::path(dir) / "cache.bin").string();
}

std::string RecordStore::indexFile(const std::string &dir)
{
    return (std::filesystem::path(dir) / "cache.idx").string();
}

std::string RecordStore::fileHeader(bool index)
{
    std::string hdr(index ? kIdxMagic : kBinMagic, 8);
    putRaw(&hdr, kVersion);
    putRaw(&hdr, std::uint32_t{0});
    return hdr;
}

void RecordStore::writeFileHeader(const char *magic, const std::string &path)
{
    appendAndFlush(path, fileHeader(magic == kIdxMagic));
}

RecordStore::RecordStore(std::string dir) : dirPath(std::move(dir))
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dirPath, ec);

    const std::string bin = binFile(dirPath);
    const std::string idxPath = indexFile(dirPath);

    // --- Record file: create or validate the header. A record file
    // whose header does not parse is moved aside rather than silently
    // overwritten — the cache is disposable, the user's bytes are not.
    std::uint64_t onDisk = fs::exists(bin, ec) ? fs::file_size(bin, ec) : 0;
    bool fresh = onDisk < kFileHeaderBytes;
    if (onDisk >= kFileHeaderBytes) {
        std::string hdr = slurp(bin).substr(0, kFileHeaderBytes);
        if (std::memcmp(hdr.data(), kBinMagic, 8) != 0 ||
            getRaw<std::uint32_t>(
                reinterpret_cast<const unsigned char *>(hdr.data()) + 8) !=
                kVersion) {
            fs::rename(bin, bin + ".unrecognized", ec);
            fresh = true;
        }
    } else if (onDisk > 0) {
        fs::rename(bin, bin + ".unrecognized", ec);
    }
    if (fresh) {
        fs::remove(bin, ec);
        writeFileHeader(kBinMagic, bin);
        onDisk = kFileHeaderBytes;
    }
    binSize = fs::exists(bin, ec) ? fs::file_size(bin, ec) : kFileHeaderBytes;

    // Map the whole record file read-only up front; recovery below
    // walks the mapping, and may shrink binSize past a torn tail (the
    // mapping stays larger than the logical size — harmless).
    if (binSize > 0) {
        int fd = ::open(bin.c_str(), O_RDONLY);
        if (fd >= 0) {
            void *m = ::mmap(nullptr, binSize, PROT_READ, MAP_SHARED, fd, 0);
            ::close(fd);
            if (m != MAP_FAILED) {
                mapBase = static_cast<const unsigned char *>(m);
                mapSize = binSize;
            }
        }
    }

    // --- Index file: load entries, drop torn/invalid ones.
    std::string idxBytes = slurp(idxPath);
    bool idxValid = idxBytes.size() >= kFileHeaderBytes &&
                    std::memcmp(idxBytes.data(), kIdxMagic, 8) == 0 &&
                    getRaw<std::uint32_t>(reinterpret_cast<const unsigned char *>(
                                              idxBytes.data()) +
                                          8) == kVersion;
    std::uint64_t covered = kFileHeaderBytes;
    if (idxValid) {
        const auto *p =
            reinterpret_cast<const unsigned char *>(idxBytes.data());
        std::uint64_t usable =
            idxBytes.size() - (idxBytes.size() - kFileHeaderBytes) % kIdxEntryBytes;
        if (usable < idxBytes.size()) {
            // Torn trailing index entry: logically truncated here,
            // physically truncated when we next rewrite the index.
            ::truncate(idxPath.c_str(), static_cast<off_t>(usable));
        }
        for (std::uint64_t off = kFileHeaderBytes; off + kIdxEntryBytes <= usable;
             off += kIdxEntryBytes) {
            std::uint64_t key = getRaw<std::uint64_t>(p + off);
            std::uint64_t packed = getRaw<std::uint64_t>(p + off + 8);
            double wall = getRaw<double>(p + off + 16);
            RecordMeta meta;
            meta.offset = packed & ~kQuarantineBit;
            meta.quarantined = (packed & kQuarantineBit) != 0;
            meta.wallSeconds = wall;
            if (meta.offset < kFileHeaderBytes ||
                meta.offset + kRecordHeaderBytes > binSize) {
                ++nInvalidIdx;
                continue;
            }
            // Cheap per-entry validation: the header at the claimed
            // offset must carry the claimed key. Payload hashes are
            // only verified on read (that is the O(touched pages)
            // contract).
            RecordView v;
            std::uint64_t end = 0;
            if (!readHeaderAt(meta.offset, &v, &end, /*verifyHash=*/false) ||
                v.key != key) {
                ++nInvalidIdx;
                continue;
            }
            idx.insert_or_assign(key, meta);
            if (end > covered)
                covered = end;
        }
    } else {
        // Missing or unrecognized index: rebuild from a full scan.
        rebuilt = true;
        fs::remove(idxPath, ec);
        writeFileHeader(kIdxMagic, idxPath);
        idx.clear();
    }

    // --- Tail scan: records appended after the last index entry (a
    // writer killed between the record append and the index append),
    // or the whole file when rebuilding. A torn/corrupt record
    // truncates the file there.
    std::string recoveredIdx;
    scanFrom(covered, &recoveredIdx);
    appendAndFlush(idxPath, recoveredIdx);

    for (const auto &[k, meta] : idx) {
        (void)k;
        if (meta.quarantined)
            ++nQuarantined;
    }
}

RecordStore::~RecordStore()
{
    if (mapBase)
        ::munmap(const_cast<unsigned char *>(mapBase), mapSize);
}

bool RecordStore::readHeaderAt(std::uint64_t off, RecordView *view,
                               std::uint64_t *end, bool verifyHash) const
{
    if (!mapBase || off + kRecordHeaderBytes > mapSize)
        return false;
    const unsigned char *p = mapBase + off;
    if (getRaw<std::uint32_t>(p) != kRecordMagic)
        return false;
    std::uint32_t flags = getRaw<std::uint32_t>(p + 4);
    std::uint64_t key = getRaw<std::uint64_t>(p + 8);
    std::uint64_t configLen = getRaw<std::uint32_t>(p + 16);
    std::uint64_t resultLen = getRaw<std::uint32_t>(p + 20);
    std::uint64_t quarLen = getRaw<std::uint32_t>(p + 24);
    double wall = getRaw<double>(p + 32);
    std::uint64_t hash = getRaw<std::uint64_t>(p + 40);
    std::uint64_t payload = configLen + resultLen + quarLen;
    if (off + kRecordHeaderBytes + payload > mapSize)
        return false;
    const char *body = reinterpret_cast<const char *>(p + kRecordHeaderBytes);
    if (verifyHash &&
        fnv1a64(std::string_view(body, payload)) != hash)
        return false;
    view->key = key;
    view->quarantined = (flags & kFlagQuarantined) != 0;
    view->wallSeconds = wall;
    view->config = std::string_view(body, configLen);
    view->result = std::string_view(body + configLen, resultLen);
    view->quarantine = std::string_view(body + configLen + resultLen, quarLen);
    *end = off + kRecordHeaderBytes + payload;
    return true;
}

void RecordStore::scanFrom(std::uint64_t off, std::string *idxAppend)
{
    while (off < binSize) {
        RecordView v;
        std::uint64_t end = 0;
        // Bound the scan by the logical size, not the mapping.
        if (!readHeaderAt(off, &v, &end, /*verifyHash=*/true) ||
            end > binSize) {
            // Torn or corrupt trailing record: drop it and everything
            // after it (append-only file, so nothing valid follows a
            // bad frame).
            tornTruncated = binSize - off;
            ::truncate(binFile(dirPath).c_str(), static_cast<off_t>(off));
            binSize = off;
            return;
        }
        RecordMeta meta;
        meta.offset = off;
        meta.quarantined = v.quarantined;
        meta.wallSeconds = v.wallSeconds;
        idx.insert_or_assign(v.key, meta);
        putRaw(idxAppend, v.key);
        putRaw(idxAppend,
               meta.offset | (meta.quarantined ? kQuarantineBit : 0));
        putRaw(idxAppend, meta.wallSeconds);
        if (!rebuilt)
            ++nTailRecovered;
        off = end;
    }
}

std::optional<RecordView> RecordStore::read(std::uint64_t key) const
{
    auto it = idx.find(key);
    if (it == idx.end())
        return std::nullopt;
    RecordView v;
    std::uint64_t end = 0;
    // No payload-hash pass on the hot path: index entries were bounds-
    // and key-checked at open, and the hash still guards every recovery
    // scan. A rotten payload surfaces as a parse failure in the caller
    // (a miss), exactly like a corrupt legacy line did.
    if (!readHeaderAt(it->second.offset, &v, &end, /*verifyHash=*/false) ||
        v.key != key)
        return std::nullopt;
    return v;
}

void RecordStore::serialize(std::string *bin, std::string *idxStream,
                            std::uint64_t binBase, std::uint64_t key,
                            bool quarantined, double wallSeconds,
                            std::string_view config, std::string_view result,
                            std::string_view quarantine)
{
    std::uint64_t offset = binBase + bin->size();
    putRaw(bin, kRecordMagic);
    putRaw(bin, std::uint32_t{quarantined ? kFlagQuarantined : 0u});
    putRaw(bin, key);
    putRaw(bin, static_cast<std::uint32_t>(config.size()));
    putRaw(bin, static_cast<std::uint32_t>(result.size()));
    putRaw(bin, static_cast<std::uint32_t>(quarantine.size()));
    putRaw(bin, std::uint32_t{0});
    putRaw(bin, wallSeconds);
    std::string payload;
    payload.reserve(config.size() + result.size() + quarantine.size());
    payload.append(config).append(result).append(quarantine);
    putRaw(bin, fnv1a64(payload));
    bin->append(payload);
    putRaw(idxStream, key);
    putRaw(idxStream, offset | (quarantined ? kQuarantineBit : 0));
    putRaw(idxStream, wallSeconds);
}

void RecordStore::append(std::uint64_t key, bool quarantined,
                         double wallSeconds, std::string_view config,
                         std::string_view result, std::string_view quarantine)
{
    serialize(&pendingBin, &pendingIdx, binSize, key, quarantined,
              wallSeconds, config, result, quarantine);
    ++nPending;
}

std::uint64_t RecordStore::forEachRecord(
    const std::function<void(const RecordView &)> &fn) const
{
    std::uint64_t off = kFileHeaderBytes;
    while (off < binSize) {
        RecordView v;
        std::uint64_t end = 0;
        if (!readHeaderAt(off, &v, &end, /*verifyHash=*/true) ||
            end > binSize)
            break;
        fn(v);
        off = end;
    }
    return binSize > off ? binSize - off : 0;
}

bool RecordStore::commit()
{
    if (nPending == 0)
        return true;
    // Records first, index second: an interrupted commit leaves at
    // worst a torn record tail (truncated on next open) or indexless
    // records (re-indexed by the tail scan).
    if (!appendAndFlush(binFile(dirPath), pendingBin))
        return false;
    binSize += pendingBin.size();
    bool ok = appendAndFlush(indexFile(dirPath), pendingIdx);
    pendingBin.clear();
    pendingIdx.clear();
    nPending = 0;
    return ok;
}

std::uint64_t RecordStore::indexBytes() const
{
    std::error_code ec;
    auto sz = std::filesystem::file_size(indexFile(dirPath), ec);
    return ec ? 0 : static_cast<std::uint64_t>(sz);
}

} // namespace ebda::sweep
