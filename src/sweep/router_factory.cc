#include "router_factory.hh"

#include <cstdlib>

#include "core/catalog.hh"
#include "core/minimal.hh"
#include "core/parse.hh"
#include "routing/baselines.hh"
#include "routing/duato.hh"
#include "routing/ebda_routing.hh"

namespace ebda::sweep {

namespace {

/** "prefix:payload" split; payload empty when the prefix is absent. */
bool
splitPrefixed(const std::string &spec, const char *prefix,
              std::string &payload)
{
    const std::string p = std::string(prefix) + ":";
    if (spec.rfind(p, 0) != 0)
        return false;
    payload = spec.substr(p.size());
    return true;
}

std::optional<int>
parseSmallInt(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    char *end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (!end || *end != '\0' || v < 1 || v > 9)
        return std::nullopt;
    return static_cast<int>(v);
}

/** Resolve the partition scheme named by an EbDa-family spec, or
 *  nullopt (with *error) when the spec is not EbDa-family / invalid. */
std::optional<core::PartitionScheme>
schemeFor(const std::string &spec, bool *is_ebda_family,
          std::string *error)
{
    *is_ebda_family = true;
    std::string payload;
    if (spec == "fig7b")
        return core::schemeFig7b();
    if (spec == "fig7c")
        return core::schemeFig7c();
    if (splitPrefixed(spec, "region", payload)) {
        const auto n = parseSmallInt(payload);
        if (!n) {
            if (error)
                *error = "region:<n> needs n in 1..9";
            return std::nullopt;
        }
        return core::regionScheme(static_cast<std::uint8_t>(*n));
    }
    if (splitPrefixed(spec, "merged", payload)) {
        const auto n = parseSmallInt(payload);
        if (!n) {
            if (error)
                *error = "merged:<n> needs n in 1..9";
            return std::nullopt;
        }
        return core::mergedScheme(static_cast<std::uint8_t>(*n));
    }
    if (splitPrefixed(spec, "ebda", payload)) {
        std::string err;
        const auto scheme = core::parseScheme(payload, &err);
        if (!scheme) {
            if (error)
                *error = "bad scheme: " + err;
            return std::nullopt;
        }
        const auto validation = scheme->validate();
        if (!validation.ok) {
            if (error)
                *error = "invalid scheme: " + validation.reason;
            return std::nullopt;
        }
        return scheme;
    }
    *is_ebda_family = false;
    return std::nullopt;
}

} // namespace

std::unique_ptr<cdg::RoutingRelation>
makeRouter(const topo::Network &net, const std::string &spec,
           std::string *error)
{
    using namespace ebda::routing;
    try {
        if (spec == "xy")
            return std::make_unique<DimensionOrderRouting>(
                DimensionOrderRouting::xy(net));
        if (spec == "yx")
            return std::make_unique<DimensionOrderRouting>(
                DimensionOrderRouting::yx(net));
        if (spec == "west-first")
            return std::make_unique<WestFirstRouting>(net);
        if (spec == "north-last")
            return std::make_unique<NorthLastRouting>(net);
        if (spec == "negative-first")
            return std::make_unique<NegativeFirstRouting>(net);
        if (spec == "odd-even")
            return std::make_unique<OddEvenRouting>(net);
        if (spec == "duato")
            return std::make_unique<DuatoFullyAdaptive>(net);
        if (spec == "minimal")
            return std::make_unique<MinimalAdaptiveRouting>(net);

        bool ebda_family = false;
        const auto scheme = schemeFor(spec, &ebda_family, error);
        if (ebda_family) {
            if (!scheme)
                return nullptr;
            return std::make_unique<EbDaRouting>(
                net, *scheme, core::TurnExtractionOptions{},
                net.isTorus() ? EbDaRouting::Mode::ShortestState
                              : EbDaRouting::Mode::Minimal);
        }
    } catch (const std::exception &e) {
        if (error)
            *error = e.what();
        return nullptr;
    }
    if (error)
        *error = "unknown router '" + spec + "'";
    return nullptr;
}

std::optional<std::string>
checkRouterSpec(const std::string &spec)
{
    static const char *fixed[] = {"xy",         "yx",
                                  "west-first", "north-last",
                                  "negative-first", "odd-even",
                                  "duato",      "minimal"};
    for (const char *f : fixed)
        if (spec == f)
            return std::nullopt;

    bool ebda_family = false;
    std::string error;
    const auto scheme = schemeFor(spec, &ebda_family, &error);
    if (ebda_family)
        return scheme ? std::nullopt : std::optional<std::string>(error);
    return "unknown router '" + spec + "'";
}

} // namespace ebda::sweep
