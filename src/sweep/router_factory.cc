#include "router_factory.hh"

#include <cstdlib>

#include "core/catalog.hh"
#include "core/minimal.hh"
#include "core/parse.hh"
#include "routing/baselines.hh"
#include "routing/dragonfly.hh"
#include "routing/duato.hh"
#include "routing/ebda_routing.hh"
#include "routing/fullmesh.hh"
#include "routing/updown.hh"

namespace ebda::sweep {

namespace {

/** "prefix:payload" split; payload empty when the prefix is absent. */
bool
splitPrefixed(const std::string &spec, const char *prefix,
              std::string &payload)
{
    const std::string p = std::string(prefix) + ":";
    if (spec.rfind(p, 0) != 0)
        return false;
    payload = spec.substr(p.size());
    return true;
}

std::optional<int>
parseSmallInt(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    char *end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (!end || *end != '\0' || v < 1 || v > 9)
        return std::nullopt;
    return static_cast<int>(v);
}

/** Decimal integer in [lo, hi], or nullopt. */
std::optional<long>
parseIntIn(const std::string &s, long lo, long hi)
{
    if (s.empty())
        return std::nullopt;
    char *end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (!end || *end != '\0' || v < lo || v > hi)
        return std::nullopt;
    return v;
}

/** Routers-per-group for a dragonfly spec: the ":a" payload when
 *  given, else the factory-recorded shape; 0 with *error set when
 *  neither is available. */
int
dragonflyGroupSize(const topo::Network &net, const std::string &payload,
                   std::string *error)
{
    if (!payload.empty()) {
        const auto a = parseIntIn(payload, 2, 1 << 20);
        if (!a) {
            if (error)
                *error = "dragonfly router needs ':<a>' with a >= 2 "
                         "(got ':" + payload + "')";
            return 0;
        }
        return static_cast<int>(*a);
    }
    if (const auto shape = net.dragonflyShape())
        return shape->a;
    if (error)
        *error = "dragonfly router on a custom network needs an "
                 "explicit group size, e.g. 'dragonfly-min:4'";
    return 0;
}

/** Resolve the partition scheme named by an EbDa-family spec, or
 *  nullopt (with *error) when the spec is not EbDa-family / invalid. */
std::optional<core::PartitionScheme>
schemeFor(const std::string &spec, bool *is_ebda_family,
          std::string *error)
{
    *is_ebda_family = true;
    std::string payload;
    if (spec == "fig7b")
        return core::schemeFig7b();
    if (spec == "fig7c")
        return core::schemeFig7c();
    if (splitPrefixed(spec, "region", payload)) {
        const auto n = parseSmallInt(payload);
        if (!n) {
            if (error)
                *error = "region:<n> needs n in 1..9";
            return std::nullopt;
        }
        return core::regionScheme(static_cast<std::uint8_t>(*n));
    }
    if (splitPrefixed(spec, "merged", payload)) {
        const auto n = parseSmallInt(payload);
        if (!n) {
            if (error)
                *error = "merged:<n> needs n in 1..9";
            return std::nullopt;
        }
        return core::mergedScheme(static_cast<std::uint8_t>(*n));
    }
    if (splitPrefixed(spec, "ebda", payload)) {
        std::string err;
        const auto scheme = core::parseScheme(payload, &err);
        if (!scheme) {
            if (error)
                *error = "bad scheme: " + err;
            return std::nullopt;
        }
        const auto validation = scheme->validate();
        if (!validation.ok) {
            if (error)
                *error = "invalid scheme: " + validation.reason;
            return std::nullopt;
        }
        return scheme;
    }
    *is_ebda_family = false;
    return std::nullopt;
}

} // namespace

std::unique_ptr<cdg::RoutingRelation>
makeRouter(const topo::Network &net, const std::string &spec,
           std::string *error)
{
    using namespace ebda::routing;
    try {
        // Structural engines first: they derive everything they need
        // from the graph and work on factory and ASCII networks alike.
        std::string payload;
        if (spec == "updown" || splitPrefixed(spec, "updown", payload)) {
            topo::NodeId root = 0;
            if (!payload.empty()) {
                const auto r = parseIntIn(
                    payload, 0,
                    static_cast<long>(net.numNodes()) - 1);
                if (!r) {
                    if (error)
                        *error = "updown root ':" + payload
                                 + "' is not a node id in 0.."
                                 + std::to_string(net.numNodes() - 1);
                    return nullptr;
                }
                root = static_cast<topo::NodeId>(*r);
            }
            return std::make_unique<UpDownRouting>(net, root);
        }
        if (spec == "dragonfly-min"
            || splitPrefixed(spec, "dragonfly-min", payload)) {
            const int a = dragonflyGroupSize(net, payload, error);
            if (!a)
                return nullptr;
            return std::make_unique<DragonflyMinRouting>(net, a);
        }
        if (spec == "dragonfly-noescape"
            || splitPrefixed(spec, "dragonfly-noescape", payload)) {
            // The deadlock-prone negative control, exposed so checker
            // sweeps can exercise both verdicts.
            const int a = dragonflyGroupSize(net, payload, error);
            if (!a)
                return nullptr;
            return std::make_unique<DragonflyMinRouting>(
                net, a, /*vc_escalation=*/false);
        }
        if (spec == "fullmesh-2hop")
            return std::make_unique<FullMeshRouting>(net);
        if (spec == "fullmesh-naive")
            return std::make_unique<FullMeshRouting>(
                net, FullMeshRouting::Mode::Unrestricted);

        // Everything below steers by grid coordinates.
        if (!net.hasGrid()) {
            if (error) {
                *error = checkRouterSpec(spec)
                             ? "unknown router '" + spec + "'"
                             : "router '" + spec
                                   + "' requires a mesh/torus grid "
                                     "topology";
            }
            return nullptr;
        }

        if (spec == "xy")
            return std::make_unique<DimensionOrderRouting>(
                DimensionOrderRouting::xy(net));
        if (spec == "yx")
            return std::make_unique<DimensionOrderRouting>(
                DimensionOrderRouting::yx(net));
        if (spec == "west-first")
            return std::make_unique<WestFirstRouting>(net);
        if (spec == "north-last")
            return std::make_unique<NorthLastRouting>(net);
        if (spec == "negative-first")
            return std::make_unique<NegativeFirstRouting>(net);
        if (spec == "odd-even")
            return std::make_unique<OddEvenRouting>(net);
        if (spec == "duato")
            return std::make_unique<DuatoFullyAdaptive>(net);
        if (spec == "minimal")
            return std::make_unique<MinimalAdaptiveRouting>(net);

        bool ebda_family = false;
        const auto scheme = schemeFor(spec, &ebda_family, error);
        if (ebda_family) {
            if (!scheme)
                return nullptr;
            return std::make_unique<EbDaRouting>(
                net, *scheme, core::TurnExtractionOptions{},
                net.isTorus() ? EbDaRouting::Mode::ShortestState
                              : EbDaRouting::Mode::Minimal);
        }
    } catch (const std::exception &e) {
        if (error)
            *error = e.what();
        return nullptr;
    }
    if (error)
        *error = "unknown router '" + spec + "'";
    return nullptr;
}

std::optional<std::string>
checkRouterSpec(const std::string &spec)
{
    static const char *fixed[] = {"xy",         "yx",
                                  "west-first", "north-last",
                                  "negative-first", "odd-even",
                                  "duato",      "minimal",
                                  "updown",     "dragonfly-min",
                                  "dragonfly-noescape",
                                  "fullmesh-2hop", "fullmesh-naive"};
    for (const char *f : fixed)
        if (spec == f)
            return std::nullopt;

    // Parameterized structural specs: updown:<root>,
    // dragonfly-min:<a>, dragonfly-noescape:<a>.
    std::string payload;
    if (splitPrefixed(spec, "updown", payload))
        return parseIntIn(payload, 0, 1L << 30)
                   ? std::nullopt
                   : std::optional<std::string>(
                         "updown root ':" + payload
                         + "' is not a non-negative integer");
    if (splitPrefixed(spec, "dragonfly-min", payload)
        || splitPrefixed(spec, "dragonfly-noescape", payload))
        return parseIntIn(payload, 2, 1L << 20)
                   ? std::nullopt
                   : std::optional<std::string>(
                         "dragonfly group size ':" + payload
                         + "' must be an integer >= 2");

    bool ebda_family = false;
    std::string error;
    const auto scheme = schemeFor(spec, &ebda_family, &error);
    if (ebda_family)
        return scheme ? std::nullopt : std::optional<std::string>(error);
    return "unknown router '" + spec + "'";
}

} // namespace ebda::sweep
