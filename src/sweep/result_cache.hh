/**
 * @file
 * Content-addressed persistent result cache for simulation jobs.
 *
 * Storage is the binary record store (record_store.hh): an append-only
 * record file plus a persisted hash index, mmap-served so opening a
 * warm cache costs O(index bytes) and each lookup touches only its own
 * record's pages — not O(parse the whole file). Keys are unchanged
 * from day one: fnv1a64 of the job's canonical JSON (sweep_spec.hh),
 * so identical (router, topology, pattern, config) points — across
 * benches, reruns and spec files — resolve to the same address, and
 * every cache populated by earlier versions keeps its addresses.
 *
 * The original JSONL format (one `{"key":"<16 hex>","config":{...},
 * "result":{...}[,"quarantine":"<reason>"]}` line per entry) is demoted
 * to an interchange format: a legacy `<dir>/cache.jsonl` is migrated
 * into the record store once, transparently, on open (then renamed to
 * `cache.jsonl.migrated`), and `exportJsonl`/`importJsonl` round-trip
 * the store through the same line format for inspection and transport.
 *
 * store() group-commits: records accumulate in memory and hit disk in
 * batches (or on flush()/destruction), instead of the old per-line
 * flush under the global mutex. Torn tails from a killed writer are
 * truncated on the next open; records whose index append was lost are
 * re-indexed (see record_store.hh for the recovery contract). Later
 * records win on duplicate keys, as later lines always did.
 */

#ifndef EBDA_SWEEP_RESULT_CACHE_HH
#define EBDA_SWEEP_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/simulator.hh"
#include "sweep/record_store.hh"

namespace ebda::sweep {

/** The on-disk cache: persisted index loaded on construction, record
 *  payloads parsed only when their key is looked up. */
class ResultCache
{
  public:
    /** Open (creating dir and files as needed), recover, and migrate a
     *  legacy cache.jsonl if one is present. */
    explicit ResultCache(std::string dir);
    ~ResultCache();

    const std::string &directory() const { return dirPath; }

    /** Path of the legacy JSONL file inside a cache dir (now only the
     *  migration source and export/import interchange path). */
    static std::string cacheFile(const std::string &dir);
    /** Paths of the binary store's files inside a cache dir. */
    static std::string binFile(const std::string &dir);
    static std::string indexFile(const std::string &dir);

    /** A cache entry: the result plus the quarantine reason (empty for
     *  healthy entries) and the measured simulation wall-clock that
     *  produced it (0 = unknown; feeds the runner's cost model). */
    struct Entry
    {
        sim::SimResult result;
        std::string quarantine;
        double wallSeconds = 0.0;
        bool quarantined() const { return !quarantine.empty(); }
    };

    /** Distinct keys served (on-disk winners plus this session's
     *  stores). */
    std::size_t entries() const;

    /** Served keys whose winning record carries a quarantine reason. */
    std::size_t quarantinedEntries() const;

    /** Malformed data skipped on open: corrupt legacy JSONL lines
     *  during migration, stale index entries, and a torn record tail
     *  (counted once). Never fatal. */
    std::size_t corruptedLines() const { return corrupted; }

    /** Legacy JSONL entries migrated into the store by this open. */
    std::size_t migratedEntries() const { return migrated; }

    /** Cached result for a key; counts a hit or a miss. Quarantined
     *  entries are served like any other (callers that must know use
     *  lookupEntry). */
    std::optional<sim::SimResult> lookup(std::uint64_t key);

    /** Cached entry (result + quarantine + wall-clock) for a key;
     *  counts a hit or a miss. */
    std::optional<Entry> lookupEntry(std::uint64_t key);

    /** Insert and enqueue for the next group commit. wallSeconds is
     *  the measured simulation wall-clock (0 = unknown). */
    void store(std::uint64_t key, const std::string &canonicalConfig,
               const sim::SimResult &result, double wallSeconds = 0.0);

    /** Insert a quarantine record: the job's (partial) result plus a
     *  one-line reason, so future sweeps serve it instead of rerunning
     *  a known-wedged or over-budget job. */
    void storeQuarantine(std::uint64_t key,
                         const std::string &canonicalConfig,
                         const sim::SimResult &result,
                         const std::string &reason,
                         double wallSeconds = 0.0);

    /** Write all pending records to disk (one record-file append + one
     *  index append). Called automatically every kGroupCommitRecords
     *  stores, at destruction, and by the runner at sweep end. */
    bool flush();

    std::uint64_t hits() const { return hitCount.load(); }
    std::uint64_t misses() const { return missCount.load(); }

    /** Wall-clock seconds threads have spent inside cache calls
     *  (lock waits, serialization, group commits, record parses) —
     *  the sweep summary's cache-blocked stat. */
    double blockedSeconds() const
    {
        return static_cast<double>(blockedNanos.load()) * 1e-9;
    }

    /** Measured simulation wall-clock for a key, served from the index
     *  (or this session's stores) without touching record payloads.
     *  nullopt when the key is absent or its wall-clock was unknown. */
    std::optional<double> measuredWallSeconds(std::uint64_t key) const;

    /** @name Open-time recovery accounting (see record_store.hh). */
    std::size_t tailRecovered() const { return store_->tailRecovered(); }
    std::uint64_t tornBytesTruncated() const
    {
        return store_->tornBytesTruncated();
    }
    bool indexRebuilt() const { return store_->indexRebuilt(); }

    /** Delete the cache's files — record store, index, legacy JSONL,
     *  and sweep manifests; a `cache.jsonl.migrated` backup and the
     *  directory are kept. False + *error when removal failed; missing
     *  files are success. */
    static bool clear(const std::string &dir,
                      std::string *error = nullptr);

    /** Outcome of compact(). */
    struct CompactStats
    {
        /** Distinct keys kept. */
        std::size_t kept = 0;
        /** Unreadable trailing records dropped. */
        std::size_t droppedCorrupted = 0;
        /** Superseded duplicate-key records dropped. */
        std::size_t droppedDuplicate = 0;
        /** Record-file bytes reclaimed by the rewrite. */
        std::uint64_t reclaimedBytes = 0;
    };

    /**
     * Rewrite the record store keeping only each key's winning record
     * (the latest, matching lookup()), sorted by key, and rebuild the
     * index to match; both files are swapped in via temp file +
     * rename. A missing store compacts to nothing successfully.
     */
    static std::optional<CompactStats> compact(
        const std::string &dir, std::string *error = nullptr);

    /** Store shape without loading any result payloads — `cache
     *  stats` is O(index). */
    struct StoreStats
    {
        std::size_t records = 0;     ///< distinct keys served
        std::size_t quarantined = 0; ///< of which quarantined
        std::uint64_t fileBytes = 0; ///< record-file size
        std::uint64_t indexBytes = 0;
        std::size_t tailRecovered = 0;
        std::uint64_t tornBytesTruncated = 0;
        bool indexRebuilt = false;
        bool legacyJsonlPresent = false; ///< unmigrated cache.jsonl
    };
    static StoreStats stats(const std::string &dir);

    /** Export the store to the legacy JSONL line format (sorted by key
     *  for stable diffs), replacing outPath. Records round-trip
     *  byte-identically through importJsonl. */
    static bool exportJsonl(const std::string &dir,
                            const std::string &outPath,
                            std::size_t *exported = nullptr,
                            std::string *error = nullptr);

    /** Outcome of importJsonl(). */
    struct ImportStats
    {
        std::size_t imported = 0;
        std::size_t corrupted = 0;
    };

    /** Append every valid line of a legacy-format JSONL file to the
     *  store (imported records win on duplicate keys, as later lines
     *  always did). */
    static std::optional<ImportStats> importJsonl(
        const std::string &dir, const std::string &inPath,
        std::string *error = nullptr);

    /** Stores per group commit (exposed for tests/benches). */
    static constexpr std::size_t kGroupCommitRecords = 64;
    /** Pending payload bytes that force a commit early. */
    static constexpr std::size_t kGroupCommitBytes = 1u << 20;

  private:
    void migrateLegacyJsonl();

    std::string dirPath;
    mutable std::mutex mtx;
    /** This session's stores (they win over on-disk records). */
    std::unordered_map<std::uint64_t, Entry> fresh;
    std::unique_ptr<RecordStore> store_;
    std::size_t corrupted = 0;
    std::size_t migrated = 0;
    std::atomic<std::uint64_t> hitCount{0};
    std::atomic<std::uint64_t> missCount{0};
    std::atomic<std::uint64_t> blockedNanos{0};
};

} // namespace ebda::sweep

#endif // EBDA_SWEEP_RESULT_CACHE_HH
