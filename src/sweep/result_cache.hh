/**
 * @file
 * Content-addressed persistent result cache for simulation jobs.
 *
 * Layout: one append-only JSONL file `<dir>/cache.jsonl`; each line is
 *   {"key":"<16 hex>","config":{...canonical job...},"result":{...}}
 * optionally followed by a `"quarantine":"<reason>"` member when the
 * sweep engine benched the job after it tripped its watchdog or blew a
 * budget (the stored result is the tripped run's partial result, kept
 * so older readers — which require key+result — still parse the line).
 * The key is fnv1a64 of the job's canonical JSON (sweep_spec.hh), so
 * identical (router, topology, pattern, config) points — across
 * benches, reruns and spec files — resolve to the same address. The
 * config object is stored alongside for human inspection and
 * debugging; lookups go by key.
 *
 * Robustness: corrupted or truncated lines (e.g. from a killed run)
 * are skipped on load and counted, never fatal. Later lines win on
 * duplicate keys. store() is thread-safe (the runner calls it from
 * worker threads) and flushes per line.
 */

#ifndef EBDA_SWEEP_RESULT_CACHE_HH
#define EBDA_SWEEP_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/simulator.hh"

namespace ebda::sweep {

/** The on-disk cache, loaded eagerly on construction. */
class ResultCache
{
  public:
    /** Open (creating dir and file as needed) and load the cache. */
    explicit ResultCache(std::string dir);

    const std::string &directory() const { return dirPath; }

    /** Path of the JSONL file inside a cache dir. */
    static std::string cacheFile(const std::string &dir);

    /** A resident cache entry: the result plus the quarantine reason
     *  (empty for healthy entries). */
    struct Entry
    {
        sim::SimResult result;
        std::string quarantine;
        bool quarantined() const { return !quarantine.empty(); }
    };

    /** Entries resident after load + stores. */
    std::size_t entries() const;

    /** Resident entries carrying a quarantine reason. */
    std::size_t quarantinedEntries() const;

    /** Malformed lines skipped during load. */
    std::size_t corruptedLines() const { return corrupted; }

    /** Cached result for a key; counts a hit or a miss. Quarantined
     *  entries are served like any other (callers that must know use
     *  lookupEntry). */
    std::optional<sim::SimResult> lookup(std::uint64_t key);

    /** Cached entry (result + quarantine reason) for a key; counts a
     *  hit or a miss. */
    std::optional<Entry> lookupEntry(std::uint64_t key);

    /** Insert and append to disk. */
    void store(std::uint64_t key, const std::string &canonicalConfig,
               const sim::SimResult &result);

    /** Insert a quarantine record: the job's (partial) result plus a
     *  one-line reason, so future sweeps serve it instead of rerunning
     *  a known-wedged or over-budget job. */
    void storeQuarantine(std::uint64_t key,
                         const std::string &canonicalConfig,
                         const sim::SimResult &result,
                         const std::string &reason);

    std::uint64_t hits() const { return hitCount.load(); }
    std::uint64_t misses() const { return missCount.load(); }

    /** Delete the cache file (directory is kept). False + *error when
     *  removal failed; a missing file is success. */
    static bool clear(const std::string &dir,
                      std::string *error = nullptr);

    /** Outcome of compact(). */
    struct CompactStats
    {
        /** Distinct keys kept. */
        std::size_t kept = 0;
        /** Malformed lines dropped. */
        std::size_t droppedCorrupted = 0;
        /** Superseded duplicate-key lines dropped. */
        std::size_t droppedDuplicate = 0;
    };

    /**
     * Rewrite the JSONL file dropping corrupted lines and superseded
     * duplicates (the last line of a key wins, matching load()).
     * Surviving lines are kept verbatim, sorted by key for stable
     * diffs, and swapped in atomically via a temp file + rename. A
     * missing file compacts to nothing successfully.
     */
    static std::optional<CompactStats> compact(
        const std::string &dir, std::string *error = nullptr);

  private:
    void load();

    std::string dirPath;
    mutable std::mutex mtx;
    std::unordered_map<std::uint64_t, Entry> map;
    std::ofstream appender;
    std::size_t corrupted = 0;
    std::atomic<std::uint64_t> hitCount{0};
    std::atomic<std::uint64_t> missCount{0};
};

} // namespace ebda::sweep

#endif // EBDA_SWEEP_RESULT_CACHE_HH
