/**
 * @file
 * Adaptive injection-rate refinement: `ebda_sweep refine`.
 *
 * A classic saturation study burns most of its cores on flat regions
 * of the latency curve — points far below or far above the knee whose
 * value is obvious after two samples. refineSweep() instead treats
 * each (topology, router, pattern, selection) combination of a spec as
 * one *curve* and bisects the injection-rate axis toward the
 * saturation knee: the lowest rate at which the fabric saturates
 * (latency crosses a threshold, the run deadlocks, fails to drain, or
 * gets quarantined).
 *
 * Every evaluated point is a regular sweep job — same canonical JSON,
 * same derived seed, same cache key as the grid sweep would produce at
 * that rate (expand()'s seed-derivation dance is replicated exactly),
 * and all points run through runSweep, so they hit and populate the
 * same result cache and emit the same JSONL rows benches already
 * consume. Bisection is deterministic: rates depend only on measured
 * results, never on timing or thread count.
 */

#ifndef EBDA_SWEEP_REFINE_HH
#define EBDA_SWEEP_REFINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/runner.hh"
#include "sweep/sweep_spec.hh"

namespace ebda::sweep {

struct RefineOptions
{
    /** Absolute saturation latency threshold (cycles); 0 selects
     *  factor mode. */
    double latencyThreshold = 0.0;
    /** Factor mode: saturated when latency exceeds kneeFactor × the
     *  latency measured at the low end of the rate range. */
    double kneeFactor = 3.0;
    /** Stop bisecting a curve when hi − lo <= tolerance. */
    double tolerance = 0.005;
    /** Hard cap on bisection rounds (each round adds one point per
     *  still-active curve). */
    int maxRounds = 16;
    /** Execution knobs for the underlying runSweep batches. */
    RunOptions run;
};

/** Verdict for one curve. */
struct RefineCurve
{
    /** "mesh 8x8 vcs 2,2 | xy | uniform | sel 0" style label. */
    std::string label;
    /** Bracket the knee landed in: lo unsaturated, hi saturated
     *  (modulo the edge cases flagged below). */
    double lo = 0.0;
    double hi = 0.0;
    /** Knee estimate: midpoint of the final bracket. */
    double knee = 0.0;
    /** Latency threshold the curve was judged against. */
    double threshold = 0.0;
    /** Rates evaluated for this curve (including the endpoints). */
    int points = 0;
    /** The low endpoint already saturates: knee <= lo. */
    bool saturatedAtLo = false;
    /** The high endpoint never saturates: knee > hi. */
    bool unsaturatedAtHi = false;
    /** A job of this curve failed outright (bad router spec etc.);
     *  the curve was abandoned. */
    bool failed = false;
    std::string error;
};

/** Everything refineSweep produced. */
struct RefineReport
{
    std::vector<RefineCurve> curves;
    /** Every evaluated job with its outcome, across all curves and
     *  rounds — feed to writeResultsJsonl for the standard rows. */
    std::vector<SweepJob> jobs;
    std::vector<JobOutcome> outcomes;
    std::uint64_t simulated = 0;
    std::uint64_t cacheHits = 0;
    double elapsedSeconds = 0.0;
    int threads = 1;
    double cacheBlockedSeconds = 0.0;
    bool interrupted = false;
};

/** Bisect every curve of the spec toward its saturation knee. The
 *  spec's rates axis supplies the initial bracket: its min is the low
 *  endpoint, its max the high endpoint (a single-rate spec refines
 *  [rate/10, rate]). */
RefineReport refineSweep(const SweepSpec &spec,
                         const RefineOptions &opts);

} // namespace ebda::sweep

#endif // EBDA_SWEEP_REFINE_HH
