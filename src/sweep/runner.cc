#include "runner.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <numeric>

#include "sim/sim_json.hh"
#include "sweep/router_factory.hh"
#include "sweep/thread_pool.hh"

namespace ebda::sweep {

JobOutcome
runJob(const SweepJob &job)
{
    return runJob(job, RunOptions{});
}

JobOutcome
runJob(const SweepJob &job, const RunOptions &opts)
{
    JobOutcome out;
    try {
        const auto net = job.topo.build();
        std::string err;
        const auto router = makeRouter(net, job.router, &err);
        if (!router) {
            out.ok = false;
            out.error = err;
            return out;
        }
        const sim::TrafficGenerator gen(net, job.pattern);
        // Resolve the scheduling backend per job, after the cache key
        // was derived from the canonical config: an explicit override
        // from the options wins, then the job's own setting, then the
        // injection-rate heuristic (sim/scheduler.hh).
        sim::SimConfig cfg = job.cfg;
        cfg.schedMode = sim::resolveSchedMode(
            opts.schedMode != sim::SchedMode::Auto ? opts.schedMode
                                                   : cfg.schedMode,
            cfg.injectionRate, net.numNodes());
        sim::Simulator simr(net, *router, gen, cfg);
        if (opts.jobCycleBudget > 0)
            simr.setCycleLimit(opts.jobCycleBudget);
        const bool deadline = opts.jobWallClockBudgetSeconds > 0.0;
        if (deadline || opts.interruptFlag) {
            const auto cutoff =
                std::chrono::steady_clock::now()
                + std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        deadline ? opts.jobWallClockBudgetSeconds
                                 : 0.0));
            const std::atomic<bool> *interrupt = opts.interruptFlag;
            simr.setAbortCheck([deadline, cutoff, interrupt]() {
                if (interrupt
                    && interrupt->load(std::memory_order_relaxed))
                    return true;
                return deadline
                       && std::chrono::steady_clock::now() >= cutoff;
            });
        }
        out.result = simr.run();
    } catch (const std::exception &e) {
        out.ok = false;
        out.error = e.what();
    }
    return out;
}

namespace {

bool
interrupted(const RunOptions &opts)
{
    return opts.interruptFlag
           && opts.interruptFlag->load(std::memory_order_relaxed);
}

/** Save the manifest every this many completions (plus once at the
 *  end), bounding checkpoint loss from a kill to a small window. */
constexpr std::size_t kManifestSaveInterval = 32;

/** nodes × cycles × rate-pressure prior: the relative cost of a job
 *  nobody has measured yet. The 0.2 floor keeps near-idle jobs from
 *  rounding to free — they still pay warmup/drain. */
double
jobCostPrior(const SweepJob &job)
{
    const double nodes =
        static_cast<double>(job.topo.nodeCountEstimate());
    const double cycles = static_cast<double>(job.cfg.warmupCycles)
                          + static_cast<double>(job.cfg.measureCycles);
    return nodes * cycles * (0.2 + job.cfg.injectionRate);
}

} // namespace

std::vector<std::size_t>
costOrder(const std::vector<SweepJob> &jobs, const ResultCache *cache)
{
    const std::size_t n = jobs.size();
    std::vector<double> cost(n);
    std::vector<char> measured(n, 0);
    double wallSum = 0.0, priorSum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        cost[i] = jobCostPrior(jobs[i]);
        if (!cache)
            continue;
        if (const auto wall = cache->measuredWallSeconds(jobs[i].key)) {
            wallSum += *wall;
            priorSum += cost[i];
            cost[i] = *wall;
            measured[i] = 1;
        }
    }
    // Calibrate the prior into seconds so measured and estimated jobs
    // sort on one scale (a monotone transform — it cannot reorder the
    // unmeasured jobs among themselves).
    if (wallSum > 0.0 && priorSum > 0.0) {
        const double scale = wallSum / priorSum;
        for (std::size_t i = 0; i < n; ++i)
            if (!measured[i])
                cost[i] *= scale;
    }
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return cost[a] > cost[b];
                     });
    return order;
}

SweepReport
runSweep(const std::vector<SweepJob> &jobs, const RunOptions &opts)
{
    SweepReport report;
    report.threads = opts.threads > 0 ? opts.threads
                                      : ThreadPool::defaultThreads();
    report.outcomes.resize(jobs.size());

    const auto t0 = std::chrono::steady_clock::now();

    std::atomic<std::uint64_t> simulated{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> skipped{0};
    std::atomic<std::uint64_t> quarantined{0};
    std::atomic<std::uint64_t> retried{0};

    const double blocked0 =
        opts.cache ? opts.cache->blockedSeconds() : 0.0;

    // Checkpoint bookkeeping: mark a concluded job in the manifest and
    // periodically persist it together with the cache's pending group
    // commit, so a kill loses at most a save interval of progress.
    std::mutex manifestMtx;
    std::size_t sinceSave = 0;
    const auto concludeJob = [&](std::size_t i) {
        if (!opts.manifest)
            return;
        std::lock_guard<std::mutex> lock(manifestMtx);
        opts.manifest->markDone(i);
        if (++sinceSave >= kManifestSaveInterval) {
            sinceSave = 0;
            if (opts.cache)
                opts.cache->flush();
            opts.manifest->save();
        }
    };

    const auto worker = [&](std::size_t i) {
        const SweepJob &job = jobs[i];
        JobOutcome &out = report.outcomes[i];
        if (interrupted(opts)) {
            out.ok = false;
            out.skipped = true;
            out.error = "interrupted";
            skipped.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (opts.cache) {
            if (auto cached = opts.cache->lookupEntry(job.key)) {
                out.result = std::move(cached->result);
                out.fromCache = true;
                if (cached->quarantined()) {
                    out.quarantined = true;
                    out.error = cached->quarantine;
                    quarantined.fetch_add(1,
                                          std::memory_order_relaxed);
                }
                concludeJob(i);
                return;
            }
        }
        // Time each execution: the measured wall-clock is stored with
        // the record and feeds the next sweep's cost model.
        auto timedRun = [&](double *wallOut) {
            const auto r0 = std::chrono::steady_clock::now();
            JobOutcome o = runJob(job, opts);
            *wallOut = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - r0)
                           .count();
            return o;
        };
        double wall = 0.0;
        out = timedRun(&wall);
        if (!out.ok) {
            failed.fetch_add(1, std::memory_order_relaxed);
            concludeJob(i);
            return;
        }
        const auto countRun = [&] {
            simulated.fetch_add(1, std::memory_order_relaxed);
            if (opts.runCounter)
                opts.runCounter->fetch_add(1,
                                           std::memory_order_relaxed);
        };
        countRun();
        // A run cut short by the interrupt flag is a skip, not a
        // verdict about the job — leave the cache alone.
        if (out.result.aborted && interrupted(opts)) {
            out.ok = false;
            out.skipped = true;
            out.error = "interrupted";
            skipped.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        // Watchdog trips get a bounded retry before quarantine (a
        // deterministic wedge will trip again, but a budget-induced
        // abort on a loaded machine deserves a second chance).
        int retriesLeft = opts.watchdogRetries;
        while ((out.result.deadlocked || out.result.aborted)
               && retriesLeft-- > 0 && !interrupted(opts)) {
            retried.fetch_add(1, std::memory_order_relaxed);
            double retryWall = 0.0;
            JobOutcome again = timedRun(&retryWall);
            if (!again.ok)
                break;
            out = std::move(again);
            wall = retryWall;
            countRun();
        }
        if (out.result.deadlocked || out.result.aborted) {
            out.quarantined = true;
            out.error = (out.result.deadlocked
                             ? "watchdog: deadlock declared at cycle "
                             : "budget: aborted at cycle ")
                        + std::to_string(out.result.cycles);
            quarantined.fetch_add(1, std::memory_order_relaxed);
            if (opts.cache)
                opts.cache->storeQuarantine(job.key, job.canonical,
                                            out.result, out.error,
                                            wall);
            concludeJob(i);
            return;
        }
        if (opts.cache)
            opts.cache->store(job.key, job.canonical, out.result, wall);
        concludeJob(i);
    };

    ThreadPool pool(report.threads);
    if (opts.order == JobOrder::CostDescending)
        pool.parallelForOrdered(costOrder(jobs, opts.cache), worker);
    else
        pool.parallelFor(jobs.size(), worker);

    if (opts.cache)
        opts.cache->flush();
    if (opts.manifest)
        opts.manifest->save();

    const auto t1 = std::chrono::steady_clock::now();
    report.elapsedSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    report.simulated = simulated.load();
    report.failed = failed.load();
    report.skipped = skipped.load();
    report.quarantined = quarantined.load();
    report.retried = retried.load();
    report.interrupted = interrupted(opts);
    if (opts.cache) {
        report.cacheHits = opts.cache->hits();
        report.cacheMisses = opts.cache->misses();
        report.cacheBlockedSeconds =
            opts.cache->blockedSeconds() - blocked0;
    }
    return report;
}

void
writeResultsJsonl(const std::vector<SweepJob> &jobs,
                  const std::vector<JobOutcome> &outcomes,
                  std::ostream &out)
{
    std::vector<std::size_t> order(jobs.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return jobs[a].key < jobs[b].key;
              });
    for (const std::size_t i : order) {
        if (!outcomes[i].ok)
            continue;
        out << "{\"key\":\"" << keyToHex(jobs[i].key)
            << "\",\"config\":" << jobs[i].canonical
            << ",\"result\":" << sim::toJson(outcomes[i].result)
            << "}\n";
    }
}

} // namespace ebda::sweep
