#include "runner.hh"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "sim/sim_json.hh"
#include "sweep/router_factory.hh"
#include "sweep/thread_pool.hh"

namespace ebda::sweep {

JobOutcome
runJob(const SweepJob &job)
{
    JobOutcome out;
    try {
        const auto net =
            job.topo.torus ? topo::Network::torus(job.topo.dims,
                                                  job.topo.vcs)
                           : topo::Network::mesh(job.topo.dims,
                                                 job.topo.vcs);
        std::string err;
        const auto router = makeRouter(net, job.router, &err);
        if (!router) {
            out.ok = false;
            out.error = err;
            return out;
        }
        const sim::TrafficGenerator gen(net, job.pattern);
        out.result = sim::runSimulation(net, *router, gen, job.cfg);
    } catch (const std::exception &e) {
        out.ok = false;
        out.error = e.what();
    }
    return out;
}

SweepReport
runSweep(const std::vector<SweepJob> &jobs, const RunOptions &opts)
{
    SweepReport report;
    report.threads = opts.threads > 0 ? opts.threads
                                      : ThreadPool::defaultThreads();
    report.outcomes.resize(jobs.size());

    const auto t0 = std::chrono::steady_clock::now();

    std::atomic<std::uint64_t> simulated{0};
    std::atomic<std::uint64_t> failed{0};

    ThreadPool pool(report.threads);
    pool.parallelFor(jobs.size(), [&](std::size_t i) {
        const SweepJob &job = jobs[i];
        JobOutcome &out = report.outcomes[i];
        if (opts.cache) {
            if (auto cached = opts.cache->lookup(job.key)) {
                out.result = *cached;
                out.fromCache = true;
                return;
            }
        }
        out = runJob(job);
        if (!out.ok) {
            failed.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        simulated.fetch_add(1, std::memory_order_relaxed);
        if (opts.runCounter)
            opts.runCounter->fetch_add(1, std::memory_order_relaxed);
        if (opts.cache)
            opts.cache->store(job.key, job.canonical, out.result);
    });

    const auto t1 = std::chrono::steady_clock::now();
    report.elapsedSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    report.simulated = simulated.load();
    report.failed = failed.load();
    if (opts.cache) {
        report.cacheHits = opts.cache->hits();
        report.cacheMisses = opts.cache->misses();
    }
    return report;
}

void
writeResultsJsonl(const std::vector<SweepJob> &jobs,
                  const std::vector<JobOutcome> &outcomes,
                  std::ostream &out)
{
    std::vector<std::size_t> order(jobs.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return jobs[a].key < jobs[b].key;
              });
    for (const std::size_t i : order) {
        if (!outcomes[i].ok)
            continue;
        out << "{\"key\":\"" << keyToHex(jobs[i].key)
            << "\",\"config\":" << jobs[i].canonical
            << ",\"result\":" << sim::toJson(outcomes[i].result)
            << "}\n";
    }
}

} // namespace ebda::sweep
