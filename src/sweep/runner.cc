#include "runner.hh"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "sim/sim_json.hh"
#include "sweep/router_factory.hh"
#include "sweep/thread_pool.hh"

namespace ebda::sweep {

JobOutcome
runJob(const SweepJob &job)
{
    return runJob(job, RunOptions{});
}

JobOutcome
runJob(const SweepJob &job, const RunOptions &opts)
{
    JobOutcome out;
    try {
        const auto net = job.topo.build();
        std::string err;
        const auto router = makeRouter(net, job.router, &err);
        if (!router) {
            out.ok = false;
            out.error = err;
            return out;
        }
        const sim::TrafficGenerator gen(net, job.pattern);
        // Resolve the scheduling backend per job, after the cache key
        // was derived from the canonical config: an explicit override
        // from the options wins, then the job's own setting, then the
        // injection-rate heuristic (sim/scheduler.hh).
        sim::SimConfig cfg = job.cfg;
        cfg.schedMode = sim::resolveSchedMode(
            opts.schedMode != sim::SchedMode::Auto ? opts.schedMode
                                                   : cfg.schedMode,
            cfg.injectionRate, net.numNodes());
        sim::Simulator simr(net, *router, gen, cfg);
        if (opts.jobCycleBudget > 0)
            simr.setCycleLimit(opts.jobCycleBudget);
        const bool deadline = opts.jobWallClockBudgetSeconds > 0.0;
        if (deadline || opts.interruptFlag) {
            const auto cutoff =
                std::chrono::steady_clock::now()
                + std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        deadline ? opts.jobWallClockBudgetSeconds
                                 : 0.0));
            const std::atomic<bool> *interrupt = opts.interruptFlag;
            simr.setAbortCheck([deadline, cutoff, interrupt]() {
                if (interrupt
                    && interrupt->load(std::memory_order_relaxed))
                    return true;
                return deadline
                       && std::chrono::steady_clock::now() >= cutoff;
            });
        }
        out.result = simr.run();
    } catch (const std::exception &e) {
        out.ok = false;
        out.error = e.what();
    }
    return out;
}

namespace {

bool
interrupted(const RunOptions &opts)
{
    return opts.interruptFlag
           && opts.interruptFlag->load(std::memory_order_relaxed);
}

} // namespace

SweepReport
runSweep(const std::vector<SweepJob> &jobs, const RunOptions &opts)
{
    SweepReport report;
    report.threads = opts.threads > 0 ? opts.threads
                                      : ThreadPool::defaultThreads();
    report.outcomes.resize(jobs.size());

    const auto t0 = std::chrono::steady_clock::now();

    std::atomic<std::uint64_t> simulated{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> skipped{0};
    std::atomic<std::uint64_t> quarantined{0};
    std::atomic<std::uint64_t> retried{0};

    ThreadPool pool(report.threads);
    pool.parallelFor(jobs.size(), [&](std::size_t i) {
        const SweepJob &job = jobs[i];
        JobOutcome &out = report.outcomes[i];
        if (interrupted(opts)) {
            out.ok = false;
            out.skipped = true;
            out.error = "interrupted";
            skipped.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (opts.cache) {
            if (auto cached = opts.cache->lookupEntry(job.key)) {
                out.result = std::move(cached->result);
                out.fromCache = true;
                if (cached->quarantined()) {
                    out.quarantined = true;
                    out.error = cached->quarantine;
                    quarantined.fetch_add(1,
                                          std::memory_order_relaxed);
                }
                return;
            }
        }
        out = runJob(job, opts);
        if (!out.ok) {
            failed.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        const auto countRun = [&] {
            simulated.fetch_add(1, std::memory_order_relaxed);
            if (opts.runCounter)
                opts.runCounter->fetch_add(1,
                                           std::memory_order_relaxed);
        };
        countRun();
        // A run cut short by the interrupt flag is a skip, not a
        // verdict about the job — leave the cache alone.
        if (out.result.aborted && interrupted(opts)) {
            out.ok = false;
            out.skipped = true;
            out.error = "interrupted";
            skipped.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        // Watchdog trips get a bounded retry before quarantine (a
        // deterministic wedge will trip again, but a budget-induced
        // abort on a loaded machine deserves a second chance).
        int retriesLeft = opts.watchdogRetries;
        while ((out.result.deadlocked || out.result.aborted)
               && retriesLeft-- > 0 && !interrupted(opts)) {
            retried.fetch_add(1, std::memory_order_relaxed);
            JobOutcome again = runJob(job, opts);
            if (!again.ok)
                break;
            out = std::move(again);
            countRun();
        }
        if (out.result.deadlocked || out.result.aborted) {
            out.quarantined = true;
            out.error = (out.result.deadlocked
                             ? "watchdog: deadlock declared at cycle "
                             : "budget: aborted at cycle ")
                        + std::to_string(out.result.cycles);
            quarantined.fetch_add(1, std::memory_order_relaxed);
            if (opts.cache)
                opts.cache->storeQuarantine(job.key, job.canonical,
                                            out.result, out.error);
            return;
        }
        if (opts.cache)
            opts.cache->store(job.key, job.canonical, out.result);
    });

    const auto t1 = std::chrono::steady_clock::now();
    report.elapsedSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    report.simulated = simulated.load();
    report.failed = failed.load();
    report.skipped = skipped.load();
    report.quarantined = quarantined.load();
    report.retried = retried.load();
    report.interrupted = interrupted(opts);
    if (opts.cache) {
        report.cacheHits = opts.cache->hits();
        report.cacheMisses = opts.cache->misses();
    }
    return report;
}

void
writeResultsJsonl(const std::vector<SweepJob> &jobs,
                  const std::vector<JobOutcome> &outcomes,
                  std::ostream &out)
{
    std::vector<std::size_t> order(jobs.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return jobs[a].key < jobs[b].key;
              });
    for (const std::size_t i : order) {
        if (!outcomes[i].ok)
            continue;
        out << "{\"key\":\"" << keyToHex(jobs[i].key)
            << "\",\"config\":" << jobs[i].canonical
            << ",\"result\":" << sim::toJson(outcomes[i].result)
            << "}\n";
    }
}

} // namespace ebda::sweep
