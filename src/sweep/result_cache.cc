#include "result_cache.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "sim/sim_json.hh"
#include "sweep/sweep_spec.hh"
#include "util/json.hh"

namespace ebda::sweep {

namespace fs = std::filesystem;

namespace {

/** RAII accumulator for the cache-blocked stat: adds the scope's
 *  wall-clock to the counter on destruction. */
class BlockedTimer
{
  public:
    explicit BlockedTimer(std::atomic<std::uint64_t> *acc)
        : acc(acc), t0(std::chrono::steady_clock::now())
    {
    }
    ~BlockedTimer()
    {
        const auto dt = std::chrono::steady_clock::now() - t0;
        acc->fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                    .count()),
            std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> *acc;
    std::chrono::steady_clock::time_point t0;
};

/** One parsed line of the legacy JSONL format, with the raw byte
 *  extents of the config and result members preserved so records
 *  round-trip byte-identically through migrate/export/import. */
struct LegacyLine
{
    std::uint64_t key = 0;
    std::string_view config; ///< raw bytes into the line
    std::string_view result; ///< raw bytes into the line
    std::string quarantine;
    sim::SimResult parsed;
};

/** One past the end of the JSON value starting at pos (string-aware
 *  nesting scan); npos on malformed input. */
std::size_t skipJsonValue(const std::string &s, std::size_t pos)
{
    if (pos >= s.size())
        return std::string::npos;
    if (s[pos] == '"') {
        for (std::size_t i = pos + 1; i < s.size(); ++i) {
            if (s[i] == '\\') {
                ++i;
                continue;
            }
            if (s[i] == '"')
                return i + 1;
        }
        return std::string::npos;
    }
    if (s[pos] == '{' || s[pos] == '[') {
        int depth = 0;
        bool inString = false;
        for (std::size_t i = pos; i < s.size(); ++i) {
            const char c = s[i];
            if (inString) {
                if (c == '\\')
                    ++i;
                else if (c == '"')
                    inString = false;
                continue;
            }
            if (c == '"')
                inString = true;
            else if (c == '{' || c == '[')
                ++depth;
            else if (c == '}' || c == ']') {
                if (--depth == 0)
                    return i + 1;
            }
        }
        return std::string::npos;
    }
    // Bare scalar: runs to a delimiter.
    std::size_t i = pos;
    while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
           !std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
    return i > pos ? i : std::string::npos;
}

/** Raw byte extents of each top-level member value of a one-line JSON
 *  object (the line must already have passed parseJson). */
bool rawMemberExtents(
    const std::string &line,
    std::vector<std::pair<std::string_view, std::string_view>> *out)
{
    std::size_t i = line.find('{');
    if (i == std::string::npos)
        return false;
    ++i;
    while (i < line.size()) {
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        if (i < line.size() && line[i] == '}')
            return true;
        if (i >= line.size() || line[i] != '"')
            return false;
        const std::size_t nameStart = ++i;
        while (i < line.size() && line[i] != '"') {
            if (line[i] == '\\')
                ++i;
            ++i;
        }
        if (i >= line.size())
            return false;
        const std::string_view name(line.data() + nameStart, i - nameStart);
        ++i; // closing quote
        while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        if (i >= line.size() || line[i] != ':')
            return false;
        ++i;
        while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        const std::size_t valueStart = i;
        const std::size_t valueEnd = skipJsonValue(line, i);
        if (valueEnd == std::string::npos || valueEnd > line.size())
            return false;
        out->emplace_back(
            name, std::string_view(line.data() + valueStart,
                                   valueEnd - valueStart));
        i = valueEnd;
        while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        if (i < line.size() && line[i] == ',') {
            ++i;
            continue;
        }
        if (i < line.size() && line[i] == '}')
            return true;
        return false;
    }
    return false;
}

/** Parse + validate one legacy cache line. The returned views point
 *  into `line` and are only valid while it lives. */
bool parseLegacyLine(const std::string &line, LegacyLine *out)
{
    const auto doc = parseJson(line);
    if (!doc || !doc->isObject())
        return false;
    const auto *key = doc->find("key");
    const auto *result = doc->find("result");
    if (!key || !key->isString() || key->asString().empty() || !result)
        return false;
    char *end = nullptr;
    out->key = std::strtoull(key->asString().c_str(), &end, 16);
    if (!end || *end != '\0')
        return false;
    const auto res = sim::resultFromJson(*result);
    if (!res)
        return false;
    out->parsed = *res;
    const auto *quarantine = doc->find("quarantine");
    out->quarantine = quarantine && quarantine->isString()
                          ? quarantine->asString()
                          : std::string();
    std::vector<std::pair<std::string_view, std::string_view>> members;
    if (!rawMemberExtents(line, &members))
        return false;
    out->config = std::string_view();
    out->result = std::string_view();
    for (const auto &[name, raw] : members) {
        if (name == "config")
            out->config = raw;
        else if (name == "result")
            out->result = raw;
    }
    return !out->result.empty();
}

/** Render one record back into the legacy line format, byte-identical
 *  to what the old per-line writer produced. */
std::string legacyLine(std::uint64_t key, std::string_view config,
                       std::string_view result, std::string_view quarantine)
{
    JsonWriter w;
    w.beginObject();
    w.field("key", keyToHex(key));
    w.end();
    std::string line = w.str();
    line.pop_back(); // drop '}'
    if (!config.empty()) {
        line += ",\"config\":";
        line.append(config);
    }
    line += ",\"result\":";
    line.append(result);
    if (!quarantine.empty()) {
        JsonWriter q;
        q.beginObject();
        q.field("quarantine", std::string(quarantine));
        q.end();
        // Reuse the writer's string escaping: strip the braces and
        // splice the rendered member in.
        const std::string member = q.str();
        if (member.size() >= 2) {
            line += ',';
            line.append(member, 1, member.size() - 2);
        }
    }
    line += "}";
    return line;
}

/** Winners (latest record per key) in key order — the stable order
 *  compact and export both emit. */
std::vector<RecordView> sortedWinners(const RecordStore &store,
                                      std::size_t *totalRecords,
                                      std::uint64_t *tailBytes = nullptr)
{
    std::unordered_map<std::uint64_t, RecordView> winners;
    std::size_t total = 0;
    const std::uint64_t tail = store.forEachRecord([&](const RecordView &v) {
        ++total;
        winners.insert_or_assign(v.key, v);
    });
    if (totalRecords)
        *totalRecords = total;
    if (tailBytes)
        *tailBytes = tail;
    std::vector<RecordView> order;
    order.reserve(winners.size());
    for (const auto &[k, v] : winners) {
        (void)k;
        order.push_back(v);
    }
    std::sort(order.begin(), order.end(),
              [](const RecordView &a, const RecordView &b) {
                  return a.key < b.key;
              });
    return order;
}

} // namespace

std::string
ResultCache::cacheFile(const std::string &dir)
{
    return (fs::path(dir) / "cache.jsonl").string();
}

std::string
ResultCache::binFile(const std::string &dir)
{
    return RecordStore::binFile(dir);
}

std::string
ResultCache::indexFile(const std::string &dir)
{
    return RecordStore::indexFile(dir);
}

ResultCache::ResultCache(std::string dir) : dirPath(std::move(dir))
{
    store_ = std::make_unique<RecordStore>(dirPath);
    corrupted += store_->invalidIndexEntries();
    if (store_->tornBytesTruncated() > 0)
        ++corrupted; // one torn tail record
    migrateLegacyJsonl();
}

ResultCache::~ResultCache()
{
    flush();
}

void
ResultCache::migrateLegacyJsonl()
{
    const std::string legacy = cacheFile(dirPath);
    std::error_code ec;
    if (!fs::exists(legacy, ec))
        return;
    std::ifstream in(legacy);
    if (!in)
        return;
    std::string line;
    std::size_t appended = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        LegacyLine ll;
        if (!parseLegacyLine(line, &ll)) {
            ++corrupted;
            continue;
        }
        // A key already in the record store was written after the
        // legacy file went stale — the binary record wins.
        if (store_->index().count(ll.key))
            continue;
        store_->append(ll.key, !ll.quarantine.empty(), /*wallSeconds=*/0.0,
                       ll.config, ll.result, ll.quarantine);
        ++appended;
    }
    in.close();
    if (appended)
        store_->commit();
    migrated = appended;
    fs::rename(legacy, legacy + ".migrated", ec);
    // Reopen so the migrated records are index-served like any others.
    if (appended)
        store_ = std::make_unique<RecordStore>(dirPath);
}

std::size_t
ResultCache::entries() const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::size_t n = fresh.size();
    for (const auto &[k, meta] : store_->index()) {
        (void)meta;
        if (!fresh.count(k))
            ++n;
    }
    return n;
}

std::size_t
ResultCache::quarantinedEntries() const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::size_t n = 0;
    for (const auto &[k, e] : fresh) {
        (void)k;
        if (e.quarantined())
            ++n;
    }
    for (const auto &[k, meta] : store_->index())
        if (meta.quarantined && !fresh.count(k))
            ++n;
    return n;
}

std::optional<sim::SimResult>
ResultCache::lookup(std::uint64_t key)
{
    auto entry = lookupEntry(key);
    if (!entry)
        return std::nullopt;
    return std::move(entry->result);
}

std::optional<ResultCache::Entry>
ResultCache::lookupEntry(std::uint64_t key)
{
    BlockedTimer timer(&blockedNanos);
    {
        std::lock_guard<std::mutex> lock(mtx);
        const auto it = fresh.find(key);
        if (it != fresh.end()) {
            hitCount.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    // Disk path: the index is immutable after open and the mapping is
    // read-only, so the record read + parse runs lock-free.
    if (const auto rec = store_->read(key)) {
        const auto doc = parseJson(std::string(rec->result));
        std::optional<sim::SimResult> res;
        if (doc)
            res = sim::resultFromJson(*doc);
        if (res) {
            hitCount.fetch_add(1, std::memory_order_relaxed);
            Entry entry;
            entry.result = *res;
            entry.quarantine = std::string(rec->quarantine);
            entry.wallSeconds = rec->wallSeconds;
            // Memoize the parsed entry: repeat lookups of a hot key
            // (refine rounds, bench reps) skip the record parse. The
            // record is immutable for this store's lifetime, so the
            // copy can never go stale.
            {
                std::lock_guard<std::mutex> lock(mtx);
                fresh.emplace(key, entry);
            }
            return entry;
        }
    }
    missCount.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
}

std::optional<double>
ResultCache::measuredWallSeconds(std::uint64_t key) const
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        const auto it = fresh.find(key);
        if (it != fresh.end())
            return it->second.wallSeconds > 0.0
                       ? std::optional<double>(it->second.wallSeconds)
                       : std::nullopt;
    }
    const auto it = store_->index().find(key);
    if (it == store_->index().end() || it->second.wallSeconds <= 0.0)
        return std::nullopt;
    return it->second.wallSeconds;
}

void
ResultCache::store(std::uint64_t key, const std::string &canonical_config,
                   const sim::SimResult &result, double wallSeconds)
{
    storeQuarantine(key, canonical_config, result, std::string(),
                    wallSeconds);
}

void
ResultCache::storeQuarantine(std::uint64_t key,
                             const std::string &canonical_config,
                             const sim::SimResult &result,
                             const std::string &reason, double wallSeconds)
{
    BlockedTimer timer(&blockedNanos);
    // Render outside the lock; only the map insert, the buffer append
    // and (every kGroupCommitRecords stores) the group commit happen
    // under it — the old per-line flush() is gone.
    const std::string resultJson = sim::toJson(result);
    std::lock_guard<std::mutex> lock(mtx);
    fresh[key] = Entry{result, reason, wallSeconds};
    store_->append(key, !reason.empty(), wallSeconds, canonical_config,
                   resultJson, reason);
    if (store_->pendingRecords() >= kGroupCommitRecords ||
        store_->pendingBytes() >= kGroupCommitBytes)
        store_->commit();
}

bool
ResultCache::flush()
{
    BlockedTimer timer(&blockedNanos);
    std::lock_guard<std::mutex> lock(mtx);
    return store_->commit();
}

ResultCache::StoreStats
ResultCache::stats(const std::string &dir)
{
    StoreStats s;
    std::error_code ec;
    s.legacyJsonlPresent = fs::exists(cacheFile(dir), ec);
    if (!fs::exists(RecordStore::binFile(dir), ec))
        return s;
    RecordStore store(dir);
    s.records = store.index().size();
    s.quarantined = store.quarantinedRecords();
    s.fileBytes = store.fileBytes();
    s.indexBytes = store.indexBytes();
    s.tailRecovered = store.tailRecovered();
    s.tornBytesTruncated = store.tornBytesTruncated();
    s.indexRebuilt = store.indexRebuilt();
    return s;
}

std::optional<ResultCache::CompactStats>
ResultCache::compact(const std::string &dir, std::string *error)
{
    CompactStats stats;
    std::error_code ec;
    // Migrate a legacy JSONL first so compaction sees the whole cache.
    if (fs::exists(cacheFile(dir), ec)) {
        ResultCache migrator(dir);
    }
    if (!fs::exists(RecordStore::binFile(dir), ec))
        return stats; // nothing to compact

    std::string bin = RecordStore::fileHeader(/*index=*/false);
    std::string idxStream = RecordStore::fileHeader(/*index=*/true);
    std::uint64_t oldBytes = 0;
    {
        RecordStore store(dir);
        // fileBytes() is post-truncation; the torn bytes the open cut
        // off are space this compaction reclaimed too.
        oldBytes = store.fileBytes() + store.indexBytes()
                   + store.tornBytesTruncated();
        std::size_t total = 0;
        std::uint64_t tail = 0;
        const auto winners = sortedWinners(store, &total, &tail);
        // A torn tail is normally truncated by the open itself; count
        // it as compaction's corruption drop either way.
        if (tail > 0 || store.tornBytesTruncated() > 0)
            stats.droppedCorrupted = 1; // unreadable tail
        for (const RecordView &v : winners)
            RecordStore::serialize(&bin, &idxStream, /*binBase=*/0, v.key,
                                   v.quarantined, v.wallSeconds, v.config,
                                   v.result, v.quarantine);
        stats.kept = winners.size();
        stats.droppedDuplicate = total - winners.size();
    }

    const std::string binPath = RecordStore::binFile(dir);
    const std::string idxPath = RecordStore::indexFile(dir);
    const auto writeWhole = [&](const std::string &path,
                                const std::string &bytes) {
        std::ofstream out(path, std::ios::trunc | std::ios::binary);
        if (!out)
            return false;
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        return static_cast<bool>(out);
    };
    if (!writeWhole(binPath + ".compact.tmp", bin) ||
        !writeWhole(idxPath + ".compact.tmp", idxStream)) {
        if (error)
            *error = "cannot write compaction temp files in " + dir;
        fs::remove(binPath + ".compact.tmp", ec);
        fs::remove(idxPath + ".compact.tmp", ec);
        return std::nullopt;
    }
    // Records first, index second — a crash between the renames leaves
    // a stale index, which the next open detects and rebuilds.
    fs::rename(binPath + ".compact.tmp", binPath, ec);
    if (!ec)
        fs::rename(idxPath + ".compact.tmp", idxPath, ec);
    if (ec) {
        if (error)
            *error = "cannot replace store in " + dir + ": " + ec.message();
        return std::nullopt;
    }
    const std::uint64_t newBytes = bin.size() + idxStream.size();
    stats.reclaimedBytes = oldBytes > newBytes ? oldBytes - newBytes : 0;
    return stats;
}

bool
ResultCache::clear(const std::string &dir, std::string *error)
{
    std::error_code ec;
    bool ok = true;
    const auto removeIfPresent = [&](const std::string &path) {
        std::error_code rec;
        if (!fs::exists(path, rec))
            return;
        if (!fs::remove(path, rec) || rec) {
            if (error)
                *error = "cannot remove " + path + ": " + rec.message();
            ok = false;
        }
    };
    removeIfPresent(RecordStore::binFile(dir));
    removeIfPresent(RecordStore::indexFile(dir));
    removeIfPresent(cacheFile(dir));
    // Sweep manifests checkpoint jobs against cached results; they are
    // meaningless once the cache is gone.
    if (fs::exists(dir, ec)) {
        for (const auto &entry : fs::directory_iterator(dir, ec)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind("manifest-", 0) == 0 &&
                name.size() > 5 &&
                name.compare(name.size() - 5, 5, ".json") == 0)
                removeIfPresent(entry.path().string());
        }
    }
    return ok;
}

bool
ResultCache::exportJsonl(const std::string &dir, const std::string &outPath,
                         std::size_t *exported, std::string *error)
{
    std::error_code ec;
    // Fold a pending legacy file in first so the export is complete.
    if (fs::exists(cacheFile(dir), ec)) {
        ResultCache migrator(dir);
    }
    std::ofstream out(outPath, std::ios::trunc);
    if (!out) {
        if (error)
            *error = "cannot write " + outPath;
        return false;
    }
    std::size_t n = 0;
    if (fs::exists(RecordStore::binFile(dir), ec)) {
        RecordStore store(dir);
        for (const RecordView &v : sortedWinners(store, nullptr)) {
            out << legacyLine(v.key, v.config, v.result, v.quarantine)
                << '\n';
            ++n;
        }
    }
    out.flush();
    if (!out) {
        if (error)
            *error = "write failed for " + outPath;
        return false;
    }
    if (exported)
        *exported = n;
    return true;
}

std::optional<ResultCache::ImportStats>
ResultCache::importJsonl(const std::string &dir, const std::string &inPath,
                         std::string *error)
{
    std::ifstream in(inPath);
    if (!in) {
        if (error)
            *error = "cannot read " + inPath;
        return std::nullopt;
    }
    ImportStats stats;
    RecordStore store(dir);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        LegacyLine ll;
        if (!parseLegacyLine(line, &ll)) {
            ++stats.corrupted;
            continue;
        }
        store.append(ll.key, !ll.quarantine.empty(), /*wallSeconds=*/0.0,
                     ll.config, ll.result, ll.quarantine);
        ++stats.imported;
    }
    if (!store.commit()) {
        if (error)
            *error = "write failed for store in " + dir;
        return std::nullopt;
    }
    return stats;
}

} // namespace ebda::sweep
