#include "result_cache.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "sim/sim_json.hh"
#include "sweep/sweep_spec.hh"
#include "util/json.hh"

namespace ebda::sweep {

namespace fs = std::filesystem;

std::string
ResultCache::cacheFile(const std::string &dir)
{
    return (fs::path(dir) / "cache.jsonl").string();
}

ResultCache::ResultCache(std::string dir) : dirPath(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dirPath, ec); // best effort; open may fail
    load();
    appender.open(cacheFile(dirPath), std::ios::app);
}

void
ResultCache::load()
{
    std::ifstream in(cacheFile(dirPath));
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto doc = parseJson(line);
        if (!doc || !doc->isObject()) {
            ++corrupted;
            continue;
        }
        const auto *key = doc->find("key");
        const auto *result = doc->find("result");
        if (!key || !key->isString() || !result) {
            ++corrupted;
            continue;
        }
        char *end = nullptr;
        const std::uint64_t k =
            std::strtoull(key->asString().c_str(), &end, 16);
        if (!end || *end != '\0' || key->asString().empty()) {
            ++corrupted;
            continue;
        }
        const auto res = sim::resultFromJson(*result);
        if (!res) {
            ++corrupted;
            continue;
        }
        Entry entry;
        entry.result = *res;
        const auto *quarantine = doc->find("quarantine");
        if (quarantine && quarantine->isString())
            entry.quarantine = quarantine->asString();
        map[k] = std::move(entry); // later lines win
    }
}

std::size_t
ResultCache::entries() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return map.size();
}

std::size_t
ResultCache::quarantinedEntries() const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::size_t n = 0;
    for (const auto &[k, e] : map)
        if (e.quarantined())
            ++n;
    return n;
}

std::optional<sim::SimResult>
ResultCache::lookup(std::uint64_t key)
{
    auto entry = lookupEntry(key);
    if (!entry)
        return std::nullopt;
    return std::move(entry->result);
}

std::optional<ResultCache::Entry>
ResultCache::lookupEntry(std::uint64_t key)
{
    std::lock_guard<std::mutex> lock(mtx);
    const auto it = map.find(key);
    if (it == map.end()) {
        missCount.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hitCount.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
ResultCache::store(std::uint64_t key, const std::string &canonical_config,
                   const sim::SimResult &result)
{
    storeQuarantine(key, canonical_config, result, std::string());
}

void
ResultCache::storeQuarantine(std::uint64_t key,
                             const std::string &canonical_config,
                             const sim::SimResult &result,
                             const std::string &reason)
{
    JsonWriter w;
    w.beginObject();
    w.field("key", keyToHex(key));
    w.end();
    // Splice the pre-rendered canonical config and the result in to
    // keep the stored config byte-identical to the job's canonical
    // form (the writer would re-escape, but not re-order, anyway).
    std::string line = w.str();
    line.pop_back(); // drop '}'
    line += ",\"config\":" + canonical_config;
    line += ",\"result\":" + sim::toJson(result);
    if (!reason.empty()) {
        JsonWriter q;
        q.beginObject();
        q.field("quarantine", reason);
        q.end();
        // Reuse the writer's string escaping: strip the braces and
        // splice the rendered member in.
        const std::string member = q.str();
        line += "," + member.substr(1, member.size() - 2);
    }
    line += "}";

    std::lock_guard<std::mutex> lock(mtx);
    map[key] = Entry{result, reason};
    if (appender) {
        appender << line << '\n';
        appender.flush();
    }
}

std::optional<ResultCache::CompactStats>
ResultCache::compact(const std::string &dir, std::string *error)
{
    CompactStats stats;
    const auto file = cacheFile(dir);
    std::error_code ec;
    if (!fs::exists(file, ec))
        return stats; // nothing to compact

    // Last valid line per key wins, exactly as load() resolves
    // duplicates; keep the raw line so survivors are byte-identical.
    std::unordered_map<std::uint64_t, std::string> lines;
    {
        std::ifstream in(file);
        if (!in) {
            if (error)
                *error = "cannot read " + file;
            return std::nullopt;
        }
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            const auto doc = parseJson(line);
            const JsonValue *key =
                doc && doc->isObject() ? doc->find("key") : nullptr;
            const JsonValue *result =
                doc && doc->isObject() ? doc->find("result") : nullptr;
            if (!key || !key->isString() || key->asString().empty()
                || !result) {
                ++stats.droppedCorrupted;
                continue;
            }
            char *end = nullptr;
            const std::uint64_t k =
                std::strtoull(key->asString().c_str(), &end, 16);
            if (!end || *end != '\0' || !sim::resultFromJson(*result)) {
                ++stats.droppedCorrupted;
                continue;
            }
            if (!lines.emplace(k, line).second) {
                ++stats.droppedDuplicate;
                lines[k] = line;
            }
        }
    }

    std::vector<std::pair<std::uint64_t, const std::string *>> order;
    order.reserve(lines.size());
    for (const auto &[k, l] : lines)
        order.emplace_back(k, &l);
    std::sort(order.begin(), order.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });

    const std::string tmp = file + ".compact.tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            if (error)
                *error = "cannot write " + tmp;
            return std::nullopt;
        }
        for (const auto &[k, l] : order)
            out << *l << '\n';
        out.flush();
        if (!out) {
            if (error)
                *error = "write failed for " + tmp;
            return std::nullopt;
        }
    }
    fs::rename(tmp, file, ec);
    if (ec) {
        if (error)
            *error = "cannot replace " + file + ": " + ec.message();
        fs::remove(tmp, ec);
        return std::nullopt;
    }
    stats.kept = order.size();
    return stats;
}

bool
ResultCache::clear(const std::string &dir, std::string *error)
{
    std::error_code ec;
    const auto file = cacheFile(dir);
    if (!fs::exists(file, ec))
        return true;
    if (!fs::remove(file, ec) || ec) {
        if (error)
            *error = "cannot remove " + file + ": " + ec.message();
        return false;
    }
    return true;
}

} // namespace ebda::sweep
