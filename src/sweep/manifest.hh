/**
 * @file
 * Sweep manifest: the checkpoint file behind `ebda_sweep run --resume`.
 *
 * A manifest records which jobs of one expanded sweep have already
 * concluded (simulated, cache-served, quarantined, or cleanly failed —
 * anything but interrupted/skipped). It lives next to the result cache
 * as `<cache dir>/manifest-<speckey>.json`:
 *
 *   {"specKey":"<16 hex>","jobs":N,"completed":K,"done":"<hex bitmap>"}
 *
 * where specKey is fnv1a64 over the ordered job keys of the expanded
 * sweep — so a manifest is only ever applied to the exact job list it
 * was written for (spec edits, different --shards, or a different
 * expansion all change the key and the stale manifest is rejected).
 * The bitmap is job-index-ordered, 4 bits per hex digit, LSB-first
 * within a digit.
 *
 * The actual idempotence comes from the content-addressed cache — a
 * resumed sweep re-looks-up every job and the completed ones hit. The
 * manifest adds what the cache cannot: exact progress accounting for
 * the resume UX, and completion tracking for failed jobs that have no
 * cache record. Saves go through a temp file + rename, so a manifest
 * is never torn.
 */

#ifndef EBDA_SWEEP_MANIFEST_HH
#define EBDA_SWEEP_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/sweep_spec.hh"

namespace ebda::sweep {

class SweepManifest
{
  public:
    /** fnv1a64 over the ordered job keys — the identity a manifest is
     *  bound to. Call after any re-finalization (e.g. --shards). */
    static std::uint64_t specKey(const std::vector<SweepJob> &jobs);

    /** Manifest path for a spec key inside a cache dir. */
    static std::string filePath(const std::string &cacheDir,
                                std::uint64_t specKey);

    /** Fresh manifest covering `jobs` entries, none done. */
    SweepManifest(std::string cacheDir, std::uint64_t specKey,
                  std::size_t jobs);

    /** Load an existing manifest for this spec key. Returns false
     *  (manifest left fresh) when the file is missing, unreadable, or
     *  stale (different specKey or job count). */
    bool load(std::string *error = nullptr);

    /** Atomically persist (temp file + rename). */
    bool save(std::string *error = nullptr) const;

    /** Remove the manifest file (sweep fully completed). */
    void remove() const;

    void markDone(std::size_t job);
    bool isDone(std::size_t job) const { return doneBits[job]; }
    std::size_t jobs() const { return doneBits.size(); }
    std::size_t completed() const { return nDone; }
    std::uint64_t key() const { return spec; }
    const std::string &path() const { return file; }

  private:
    std::string file;
    std::uint64_t spec = 0;
    std::vector<bool> doneBits;
    std::size_t nDone = 0;
};

} // namespace ebda::sweep

#endif // EBDA_SWEEP_MANIFEST_HH
