#include "thread_pool.hh"

namespace ebda::sweep {

int
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads)
    : numThreads(threads < 1 ? 1 : threads)
{
    // A 1-thread pool runs inline; no worker needed.
    if (numThreads < 2)
        return;
    workers.reserve(static_cast<std::size_t>(numThreads));
    for (int i = 0; i < numThreads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cvStart.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::runIndices()
{
    const std::size_t guidedDivisor =
        static_cast<std::size_t>(numThreads) * 4;
    while (true) {
        std::size_t begin, end;
        if (!order) {
            // Plain parallel-for: one index per claim.
            begin = nextIndex.fetch_add(1, std::memory_order_relaxed);
            if (begin >= batchSize)
                return;
            end = begin + 1;
        } else {
            // Guided self-scheduling: claim remaining/(4·threads)
            // slots at once, shrinking to single slots at the tail.
            begin = nextIndex.load(std::memory_order_relaxed);
            do {
                if (begin >= batchSize)
                    return;
                const std::size_t remaining = batchSize - begin;
                std::size_t chunk = remaining / guidedDivisor;
                if (chunk < 1)
                    chunk = 1;
                end = begin + chunk;
            } while (!nextIndex.compare_exchange_weak(
                begin, end, std::memory_order_relaxed));
        }
        for (std::size_t slot = begin; slot < end; ++slot) {
            const std::size_t i = order ? (*order)[slot] : slot;
            try {
                (*fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mtx);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mtx);
            cvStart.wait(lock, [&] {
                return stopping || generation != seen;
            });
            if (stopping)
                return;
            seen = generation;
        }
        runIndices();
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (--activeWorkers == 0)
                cvDone.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &f)
{
    order = nullptr;
    runBatch(n, f);
}

void
ThreadPool::parallelForOrdered(const std::vector<std::size_t> &ord,
                               const std::function<void(std::size_t)> &f)
{
    order = &ord;
    runBatch(ord.size(), f);
}

void
ThreadPool::runBatch(std::size_t n,
                     const std::function<void(std::size_t)> &f)
{
    if (n == 0)
        return;

    if (workers.empty()) {
        // Inline serial execution, same counter discipline.
        fn = &f;
        batchSize = n;
        nextIndex.store(0, std::memory_order_relaxed);
        firstError = nullptr;
        runIndices();
        fn = nullptr;
        order = nullptr;
        if (firstError)
            std::rethrow_exception(firstError);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mtx);
        fn = &f;
        batchSize = n;
        nextIndex.store(0, std::memory_order_relaxed);
        firstError = nullptr;
        activeWorkers = static_cast<int>(workers.size());
        ++generation;
    }
    cvStart.notify_all();

    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mtx);
        cvDone.wait(lock, [&] { return activeWorkers == 0; });
        fn = nullptr;
        order = nullptr;
        err = firstError;
        firstError = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace ebda::sweep
