/**
 * @file
 * Declarative parameter-sweep specification — the front door of the
 * sweep engine. A SweepSpec is the cross product
 *
 *   topologies x routers x patterns x selection policies x rates
 *
 * over a base SimConfig template; expand() materializes it into the
 * flat job vector the runner executes. Each job carries a *canonical*
 * JSON rendering of its full configuration (fixed key order, exact
 * doubles) whose 64-bit FNV-1a hash is the job's content address —
 * the key for the result cache and the sort key of result files.
 *
 * Seeding: with deriveSeeds (the default) every job's RNG seed is
 * SplitMix64(master seed ^ hash of the seedless canonical config), so
 * distinct grid points get independent, reproducible streams and the
 * same spec always regenerates the same seeds — parallel execution is
 * bit-identical to serial by construction, because a job's result
 * depends only on its own config.
 *
 * JSON spec format (see docs/SWEEP.md):
 * @code
 * {
 *   "name": "latency-curve",
 *   "topologies": [{"type":"mesh","dims":[8,8],"vcs":[2,2]}],
 *   "routers":   ["xy", "odd-even", "fig7b", "ebda:{X+ X- Y-} -> {Y+}"],
 *   "patterns":  ["uniform", "transpose"],
 *   "rates":     [0.05, 0.15, 0.25],
 *   "selection": ["max-credits"],
 *   "sim":       {"seed": 2017, "measureCycles": 4000, ...}
 * }
 * @endcode
 * "topology" (single object) is accepted for "topologies"; "patterns",
 * "selection" and "rates" default to uniform / max-credits / the base
 * config's injectionRate.
 */

#ifndef EBDA_SWEEP_SWEEP_SPEC_HH
#define EBDA_SWEEP_SWEEP_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hh"
#include "sim/traffic.hh"
#include "topo/network.hh"
#include "util/json.hh"

namespace ebda::sweep {

/** 64-bit FNV-1a of a byte string (the content-address hash). */
std::uint64_t fnv1a64(std::string_view bytes);

/** Hash key rendered as the fixed-width hex used in cache/result
 *  files, e.g. "00c3a5f2deadbeef". */
std::string keyToHex(std::uint64_t key);

/**
 * One topology of the grid — a tagged {kind, params} union.
 *
 * JSON shapes (the tag key is "type"; "kind" is accepted as an alias):
 *   {"type":"mesh",  "dims":[8,8], "vcs":[2,2]}         (legacy flat)
 *   {"type":"torus", "params":{"dims":[8,8],"vcs":[2,2]}}
 *   {"type":"dragonfly","params":{"a":4,"p":2,"h":2,
 *                                 "localVcs":2,"globalVcs":1}}
 *   {"type":"fullmesh", "params":{"nodes":8,"vcs":1}}
 *   {"type":"ascii",    "params":{"map":"A--B\n...","defaultVcs":1}}
 *
 * toJson() emits the legacy flat shape for mesh/torus (their canonical
 * job JSON — and hence every cached result key — stays byte-identical)
 * and the tagged params shape for the new kinds; fromJson() accepts
 * both, so the canonical rendering always round-trips.
 */
struct TopologySpec
{
    enum class Kind : std::uint8_t
    {
        Mesh,
        Torus,
        Dragonfly,
        FullMesh,
        Ascii,
    };

    Kind kind = Kind::Mesh;

    /** Mesh / torus: per-dimension radices and VC counts. */
    std::vector<int> dims;
    std::vector<int> vcs;

    /** Dragonfly: routers/group, hosts/router, globals/router, and the
     *  local/global VC budgets. */
    int a = 0, p = 0, h = 0;
    int localVcs = 2, globalVcs = 1;

    /** Full mesh: node count and per-link VCs. */
    int nodes = 0;
    int nodeVcs = 1;

    /** ASCII map source and the DSL's default VC count. */
    std::string map;
    int defaultVcs = 1;

    /** Materialize the network. Throws std::invalid_argument with a
     *  path-named message on bad parameters (factory validation). */
    topo::Network build() const;

    /** Emit as the "topology" object of a canonical job JSON. */
    void toJson(JsonWriter &w, const std::string &key) const;

    /** Parse either JSON shape; `path` names the object in errors. */
    static std::optional<TopologySpec> fromJson(const JsonValue &v,
                                                std::string *err,
                                                const std::string &path);

    /** "mesh 8x8 vcs 2,2" — for labels and error messages. */
    std::string toString() const;

    /** Rough node count without building the network — the size term
     *  of the sweep runner's job-cost prior. Exactness does not
     *  matter; monotonicity in fabric size does. */
    std::size_t nodeCountEstimate() const;
};

/** One fully resolved simulation job. */
struct SweepJob
{
    TopologySpec topo;
    /** Router spec string (see router_factory.hh). */
    std::string router;
    sim::TrafficPattern pattern = sim::TrafficPattern::Uniform;
    /** Complete simulation parameters, including the final seed. */
    sim::SimConfig cfg;

    /** Canonical JSON of the full job configuration. */
    std::string canonical;
    /** fnv1a64(canonical) — the content address. */
    std::uint64_t key = 0;
};

/** Compute canonical + key for a hand-assembled job (expand() calls
 *  this for every grid point). */
void finalizeJob(SweepJob &job);

/** The declarative grid. */
struct SweepSpec
{
    std::string name;
    std::vector<TopologySpec> topologies;
    std::vector<std::string> routers;
    std::vector<sim::TrafficPattern> patterns;
    std::vector<sim::SelectionPolicy> selections;
    std::vector<double> rates;
    /** Template config; its seed is the master seed. */
    sim::SimConfig base;
    /** Derive per-job seeds from the master seed and job content. */
    bool deriveSeeds = true;

    /** Parse a JSON spec document (text or pre-parsed). */
    static std::optional<SweepSpec> parse(const std::string &text,
                                          std::string *error = nullptr);
    static std::optional<SweepSpec> fromJson(const JsonValue &v,
                                             std::string *error = nullptr);

    /** Number of jobs expand() will produce. */
    std::size_t jobCount() const;

    /** Materialize the grid (topology-major, rate-minor order). */
    std::vector<SweepJob> expand() const;
};

} // namespace ebda::sweep

#endif // EBDA_SWEEP_SWEEP_SPEC_HH
