/**
 * @file
 * The sweep executor: takes a flat job vector (from SweepSpec::expand
 * or hand-assembled by a bench), consults the result cache, and runs
 * the remaining simulations on a ThreadPool.
 *
 * Every job is hermetic — the worker constructs its own Network,
 * routing relation, traffic generator and Simulator from the job's
 * declarative fields, so no mutable state is shared between workers
 * (routing relations memoise reachability internally and must not be
 * shared across threads) and a job's result is a pure function of its
 * canonical config. That purity is what makes the content-addressed
 * cache sound and parallel execution bit-identical to serial.
 */

#ifndef EBDA_SWEEP_RUNNER_HH
#define EBDA_SWEEP_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sweep/result_cache.hh"
#include "sweep/sweep_spec.hh"

namespace ebda::sweep {

/** Per-job outcome, aligned with the input job vector. */
struct JobOutcome
{
    sim::SimResult result;
    /** Result came from the cache; no simulation ran. */
    bool fromCache = false;
    /** False when the job could not run (bad router spec etc.). */
    bool ok = true;
    std::string error;
};

/** Aggregate accounting of one sweep. */
struct SweepReport
{
    std::vector<JobOutcome> outcomes;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    /** Simulations actually executed (= misses when a cache is on). */
    std::uint64_t simulated = 0;
    std::uint64_t failed = 0;
    double elapsedSeconds = 0.0;
    int threads = 1;
};

/** Execution knobs. */
struct RunOptions
{
    /** Worker threads; <= 0 selects ThreadPool::defaultThreads(). */
    int threads = 0;
    /** Optional persistent cache (nullptr = always simulate). */
    ResultCache *cache = nullptr;
    /** Optional counter incremented once per executed simulation
     *  (test instrumentation). */
    std::atomic<std::uint64_t> *runCounter = nullptr;
};

/** Execute one job, no cache involved (also used by the runner). */
JobOutcome runJob(const SweepJob &job);

/** Run all jobs; outcomes[i] corresponds to jobs[i]. */
SweepReport runSweep(const std::vector<SweepJob> &jobs,
                     const RunOptions &opts = {});

/**
 * Emit one results line per job:
 *   {"key":"<hex>","config":{...},"result":{...}}
 * sorted ascending by key (so output is invariant under thread count
 * and job order). Failed jobs are skipped — they have no result.
 */
void writeResultsJsonl(const std::vector<SweepJob> &jobs,
                       const std::vector<JobOutcome> &outcomes,
                       std::ostream &out);

} // namespace ebda::sweep

#endif // EBDA_SWEEP_RUNNER_HH
