/**
 * @file
 * The sweep executor: takes a flat job vector (from SweepSpec::expand
 * or hand-assembled by a bench), consults the result cache, and runs
 * the remaining simulations on a ThreadPool.
 *
 * Every job is hermetic — the worker constructs its own Network,
 * routing relation, traffic generator and Simulator from the job's
 * declarative fields, so no mutable state is shared between workers
 * (routing relations memoise reachability internally and must not be
 * shared across threads) and a job's result is a pure function of its
 * canonical config. That purity is what makes the content-addressed
 * cache sound and parallel execution bit-identical to serial.
 */

#ifndef EBDA_SWEEP_RUNNER_HH
#define EBDA_SWEEP_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sweep/manifest.hh"
#include "sweep/result_cache.hh"
#include "sweep/sweep_spec.hh"

namespace ebda::sweep {

/** Per-job outcome, aligned with the input job vector. */
struct JobOutcome
{
    sim::SimResult result;
    /** Result came from the cache; no simulation ran. */
    bool fromCache = false;
    /** False when the job could not run (bad router spec etc.). */
    bool ok = true;
    /** Job never ran: the sweep was interrupted before its turn. */
    bool skipped = false;
    /** Job tripped its watchdog or blew a budget (after any retry)
     *  and was benched with a quarantine record, or a quarantined
     *  cache entry was served. result holds the tripped run's partial
     *  numbers; error holds the quarantine reason. */
    bool quarantined = false;
    std::string error;
};

/** Aggregate accounting of one sweep. */
struct SweepReport
{
    std::vector<JobOutcome> outcomes;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    /** Simulations actually executed (= misses when a cache is on). */
    std::uint64_t simulated = 0;
    std::uint64_t failed = 0;
    /** Jobs skipped because the sweep was interrupted. */
    std::uint64_t skipped = 0;
    /** Jobs quarantined this sweep or served from quarantine. */
    std::uint64_t quarantined = 0;
    /** Retries consumed by watchdog-tripped jobs. */
    std::uint64_t retried = 0;
    double elapsedSeconds = 0.0;
    int threads = 1;
    /** True when an interrupt flag stopped the sweep early. */
    bool interrupted = false;
    /** Wall-clock seconds workers spent inside cache calls during this
     *  sweep (lock waits + serialization + group commits) — the
     *  contention canary printed in the sweep summary. */
    double cacheBlockedSeconds = 0.0;
};

/** Order jobs are pulled through the pool. */
enum class JobOrder : std::uint8_t
{
    /** Spec order (index 0..n-1), single-index self-scheduling — the
     *  original schedule. */
    Spec,
    /** Longest-expected-first from the cost model (costOrder below),
     *  pulled through guided chunked self-scheduling. Collapses the
     *  straggler tail on heterogeneous grids; results are identical
     *  to Spec by the hermetic-job purity contract. */
    CostDescending,
};

/** Execution knobs. */
struct RunOptions
{
    /** Worker threads; <= 0 selects ThreadPool::defaultThreads(). */
    int threads = 0;
    /** Optional persistent cache (nullptr = always simulate). */
    ResultCache *cache = nullptr;
    /** Optional counter incremented once per executed simulation
     *  (test instrumentation). */
    std::atomic<std::uint64_t> *runCounter = nullptr;
    /** Per-job wall-clock budget in seconds; <= 0 disables. A job
     *  over budget is aborted cooperatively and quarantined. */
    double jobWallClockBudgetSeconds = 0.0;
    /** Per-job simulated-cycle budget; 0 disables. */
    std::uint64_t jobCycleBudget = 0;
    /** Bounded retries for a job that trips the simulator watchdog
     *  (deadlock declared) before it is quarantined. */
    int watchdogRetries = 1;
    /** Cooperative interrupt (e.g. SIGINT): when it flips true,
     *  running jobs abort and pending jobs are skipped; completed
     *  results are still returned and cached. */
    const std::atomic<bool> *interruptFlag = nullptr;
    /** Scheduling-backend override for executed jobs (ebda_sweep run
     *  --sched): an explicit mode forces every job; Auto defers to the
     *  job's own schedMode, resolved per job from its injection rate
     *  (sim/scheduler.hh heuristic — event mode for lightly loaded
     *  jobs, the cycle loop near saturation). Never part of the cache
     *  key: the backends are trace-equivalent, so cached results are
     *  shared across modes. */
    sim::SchedMode schedMode = sim::SchedMode::Auto;
    /** Job scheduling order (see JobOrder). Never affects results or
     *  the output JSONL, only wall-clock. */
    JobOrder order = JobOrder::CostDescending;
    /** Optional checkpoint manifest (manifest.hh): the runner marks
     *  jobs done as they conclude and saves periodically, so a killed
     *  sweep resumes with exact progress accounting. The caller owns
     *  loading/removing it. */
    SweepManifest *manifest = nullptr;
};

/**
 * Execution order for JobOrder::CostDescending: job indices sorted
 * longest-expected-first. A job's expected cost is its measured
 * wall-clock when its key is cached; otherwise a nodes × cycles ×
 * rate-pressure prior, scaled into seconds by calibrating against
 * whatever measured wall-clocks the cache does hold for this sweep's
 * keys. Ties (and the no-cache case) break by index, so the order is
 * deterministic.
 */
std::vector<std::size_t> costOrder(const std::vector<SweepJob> &jobs,
                                   const ResultCache *cache);

/** Execute one job, no cache involved (also used by the runner). */
JobOutcome runJob(const SweepJob &job);

/** Execute one job under the options' budgets and interrupt flag
 *  (cache and retry handling stay with runSweep). */
JobOutcome runJob(const SweepJob &job, const RunOptions &opts);

/** Run all jobs; outcomes[i] corresponds to jobs[i]. */
SweepReport runSweep(const std::vector<SweepJob> &jobs,
                     const RunOptions &opts = {});

/**
 * Emit one results line per job:
 *   {"key":"<hex>","config":{...},"result":{...}}
 * sorted ascending by key (so output is invariant under thread count
 * and job order). Failed and skipped jobs are omitted — they have no
 * result; quarantined jobs are written (their partial result is the
 * record of what tripped).
 */
void writeResultsJsonl(const std::vector<SweepJob> &jobs,
                       const std::vector<JobOutcome> &outcomes,
                       std::ostream &out);

} // namespace ebda::sweep

#endif // EBDA_SWEEP_RUNNER_HH
