/**
 * @file
 * A small fixed-size worker pool with a self-scheduling parallel-for:
 * workers pull indices off a shared atomic counter, so long and short
 * jobs interleave without static partitioning (the work-stealing-lite
 * schedule that fits independent simulation jobs).
 *
 * Determinism contract: parallelFor(n, fn) invokes fn exactly once per
 * index; as long as fn(i) touches only state owned by index i (the
 * sweep runner's jobs do), results are independent of the schedule and
 * therefore identical for any thread count, including 1.
 *
 * Exceptions thrown by fn are caught, the first one is rethrown from
 * parallelFor after the batch drains; the pool stays usable.
 */

#ifndef EBDA_SWEEP_THREAD_POOL_HH
#define EBDA_SWEEP_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ebda::sweep {

/** Fixed worker threads executing index batches. */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (clamped to >= 1). With 1 thread the
     *  pool runs batches inline on the calling thread. */
    explicit ThreadPool(int threads);

    /** Joins all workers (waits for an in-flight batch). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return numThreads; }

    /** Run fn(0..n-1) across the workers; blocks until all indices
     *  completed. Rethrows the first exception any fn raised. */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Run fn(order[0]), fn(order[1]), ... across the workers with
     * guided chunked self-scheduling: workers claim shrinking chunks
     * of the order vector (remaining / 4·threads, min 1) off the
     * shared counter, so a cost-descending order front-loads the
     * expensive jobs and the tail self-balances with chunk size 1 —
     * the straggler-collapse schedule for heterogeneous job costs.
     * `order` must be a permutation-like index list (each entry < the
     * caller's job count; duplicates are the caller's bug). The same
     * determinism contract as parallelFor applies: execution order is
     * a schedule detail, results may not depend on it.
     */
    void parallelForOrdered(const std::vector<std::size_t> &order,
                            const std::function<void(std::size_t)> &fn);

    /** Default worker count: the hardware concurrency (>= 1). */
    static int defaultThreads();

  private:
    void workerLoop();
    void runIndices();
    void runBatch(std::size_t n,
                  const std::function<void(std::size_t)> &fn);

    const int numThreads;
    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable cvStart;
    std::condition_variable cvDone;

    /** Batch state (guarded by mtx except the atomic index). */
    std::uint64_t generation = 0;
    bool stopping = false;
    const std::function<void(std::size_t)> *fn = nullptr;
    /** Non-null while a parallelForOrdered batch runs: counter slots
     *  map through this permutation, claimed in guided chunks. */
    const std::vector<std::size_t> *order = nullptr;
    std::size_t batchSize = 0;
    std::atomic<std::size_t> nextIndex{0};
    int activeWorkers = 0;
    std::exception_ptr firstError;
};

} // namespace ebda::sweep

#endif // EBDA_SWEEP_THREAD_POOL_HH
