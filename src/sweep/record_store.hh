/**
 * @file
 * Binary record store for the sweep result cache: a compact append-only
 * record file (`cache.bin`) plus a persisted hash index (`cache.idx`)
 * in the cache directory, mmap-served so a warm start costs O(index
 * bytes + touched pages) instead of O(parse the whole legacy JSONL).
 *
 * Record file layout (little-endian, Linux-local cache format — not an
 * interchange format; `ebda_sweep cache export` is the portable path):
 *
 *   file header (16 B):  "EBDABIN1" | u32 version=1 | u32 reserved
 *   record (48 B header + payload):
 *     u32 magic 'EBDR' | u32 flags (bit0 = quarantined) | u64 key
 *     u32 configLen | u32 resultLen | u32 quarLen | u32 reserved
 *     f64 wallSeconds (measured sim wall-clock; 0 = unknown)
 *     u64 payloadHash (fnv1a64 of the payload bytes)
 *     payload: canonical-config JSON + result JSON + quarantine reason
 *
 * Index file layout:
 *
 *   file header (16 B):  "EBDAIDX1" | u32 version=1 | u32 reserved
 *   entry (24 B): u64 key | u64 offset (bit63 = quarantined) |
 *                 f64 wallSeconds
 *
 * Both files are append-only between compactions; later entries win on
 * duplicate keys (the legacy JSONL rule). The index duplicates the
 * quarantine flag and wall-clock so `cache stats` and the runner's
 * cost model never touch record payloads at all.
 *
 * Crash safety: records are appended before their index entries, so on
 * open the store (a) truncates a torn trailing record (a killed writer
 * mid-append), (b) re-indexes intact records the index does not cover
 * yet (killed between record and index append), and (c) rebuilds the
 * whole index by scanning the record file when the index is missing or
 * its header is invalid. All three paths are counted, never fatal.
 *
 * Thread safety: open() and append()/commit() must be externally
 * serialized (ResultCache holds the lock); read() of records covered
 * by the open-time mapping is lock-free and safe from any thread.
 */

#ifndef EBDA_SWEEP_RECORD_STORE_HH
#define EBDA_SWEEP_RECORD_STORE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ebda::sweep {

/** One key's index entry: where its record lives plus the metadata
 *  mirrored into the index (served without touching the record). */
struct RecordMeta
{
    std::uint64_t offset = 0;
    bool quarantined = false;
    /** Measured simulation wall-clock stored with the record (seconds;
     *  0 = unknown). Feeds the runner's cost model. */
    double wallSeconds = 0.0;
};

/** Zero-copy view of one stored record (points into the mapping; valid
 *  for the store's lifetime). */
struct RecordView
{
    std::uint64_t key = 0;
    bool quarantined = false;
    double wallSeconds = 0.0;
    std::string_view config;
    std::string_view result;
    std::string_view quarantine;
};

class RecordStore
{
  public:
    /** Paths of the two files inside a cache dir. */
    static std::string binFile(const std::string &dir);
    static std::string indexFile(const std::string &dir);

    /** Open (creating dir and files as needed), recover, and map. */
    explicit RecordStore(std::string dir);
    ~RecordStore();

    RecordStore(const RecordStore &) = delete;
    RecordStore &operator=(const RecordStore &) = delete;

    /** Key -> meta for every record on disk at open time (later
     *  records won on duplicate keys). Immutable after open, so
     *  concurrent reads need no lock. */
    const std::unordered_map<std::uint64_t, RecordMeta> &index() const
    {
        return idx;
    }

    /** mmap-served record read for a key present in index(). Validates
     *  the header (magic, key, bounds); the payload hash is checked by
     *  the recovery scans, not on this hot path. nullopt on any
     *  mismatch. Lock-free. */
    std::optional<RecordView> read(std::uint64_t key) const;

    /** Serialize one record into the pending group-commit buffer.
     *  Nothing touches disk until commit(). */
    void append(std::uint64_t key, bool quarantined, double wallSeconds,
                std::string_view config, std::string_view result,
                std::string_view quarantine);

    std::size_t pendingRecords() const { return nPending; }
    std::size_t pendingBytes() const { return pendingBin.size(); }

    /** Group-commit: one write of all pending record bytes + flush,
     *  then one write of their index entries + flush. Returns false
     *  (store keeps the data pending) when a write failed. */
    bool commit();

    /** Visit every intact on-disk record in file order (sequential
     *  scan, reads payloads — compaction/export territory, not the
     *  lookup path). Returns unreadable trailing bytes skipped. */
    std::uint64_t
    forEachRecord(const std::function<void(const RecordView &)> &fn) const;

    /** Serialize one record + its index entry onto byte streams; the
     *  record's offset is binBase + bin->size(). Shared by append()
     *  and compaction's rewrite. */
    static void serialize(std::string *bin, std::string *idxStream,
                          std::uint64_t binBase, std::uint64_t key,
                          bool quarantined, double wallSeconds,
                          std::string_view config, std::string_view result,
                          std::string_view quarantine);

    /** Fresh header bytes for a record (index=false) or index file. */
    static std::string fileHeader(bool index);

    /** @name Open-time accounting
     *  @{ */
    /** Records recovered by the tail scan (intact but unindexed). */
    std::size_t tailRecovered() const { return nTailRecovered; }
    /** Bytes truncated off a torn trailing record. */
    std::uint64_t tornBytesTruncated() const { return tornTruncated; }
    /** Index entries dropped (bad offset / stale) on open. */
    std::size_t invalidIndexEntries() const { return nInvalidIdx; }
    /** True when the index was rebuilt from a full record-file scan. */
    bool indexRebuilt() const { return rebuilt; }
    /** @} */

    /** Record-file bytes on disk (after recovery, before pending). */
    std::uint64_t fileBytes() const { return binSize; }
    /** Index-file bytes on disk. */
    std::uint64_t indexBytes() const;

    /** Quarantined records on disk (from index flags; no payloads). */
    std::size_t quarantinedRecords() const { return nQuarantined; }

  private:
    bool readHeaderAt(std::uint64_t off, RecordView *view,
                      std::uint64_t *end, bool verifyHash) const;
    void scanFrom(std::uint64_t off, std::string *idxAppend);
    void writeFileHeader(const char *magic, const std::string &path);

    std::string dirPath;
    std::unordered_map<std::uint64_t, RecordMeta> idx;

    /** Read-only mapping of the record file as of open. */
    const unsigned char *mapBase = nullptr;
    std::uint64_t mapSize = 0;

    /** Append cursors. */
    std::uint64_t binSize = 0;
    std::string pendingBin;
    std::string pendingIdx;
    std::size_t nPending = 0;

    std::size_t nQuarantined = 0;
    std::size_t nTailRecovered = 0;
    std::uint64_t tornTruncated = 0;
    std::size_t nInvalidIdx = 0;
    bool rebuilt = false;
};

} // namespace ebda::sweep

#endif // EBDA_SWEEP_RECORD_STORE_HH
