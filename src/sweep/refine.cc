#include "sweep/refine.hh"

#include <algorithm>
#include <chrono>

#include "util/random.hh"

namespace ebda::sweep {

namespace {

/** One curve = one (topology, router, pattern, selection) combination;
 *  bisection state rides along. */
struct CurveState
{
    TopologySpec topo;
    std::string router;
    sim::TrafficPattern pattern;
    sim::SelectionPolicy selection;

    double lo = 0.0, hi = 0.0;
    double threshold = 0.0;
    bool active = false;
    RefineCurve verdict;
};

/** Build the job the grid sweep would produce at this rate —
 *  expand()'s seed-derivation dance, replicated exactly so refine
 *  points share cache keys with grid points. */
SweepJob
makeJob(const SweepSpec &spec, const CurveState &c, double rate)
{
    SweepJob job;
    job.topo = c.topo;
    job.router = c.router;
    job.pattern = c.pattern;
    job.cfg = spec.base;
    job.cfg.selection = c.selection;
    job.cfg.injectionRate = rate;
    if (spec.deriveSeeds) {
        job.cfg.seed = 0;
        finalizeJob(job);
        job.cfg.seed = SplitMix64(spec.base.seed ^ job.key).next();
    }
    finalizeJob(job);
    return job;
}

bool
saturated(const JobOutcome &out, double threshold)
{
    return out.quarantined || out.result.deadlocked || !out.result.drained
           || out.result.avgLatency > threshold;
}

} // namespace

RefineReport
refineSweep(const SweepSpec &spec, const RefineOptions &opts)
{
    RefineReport report;
    const auto t0 = std::chrono::steady_clock::now();

    RunOptions run = opts.run;
    // Manifests checkpoint a fixed job list; refine's is dynamic.
    run.manifest = nullptr;

    // Initial bracket from the spec's rates axis.
    double lo0 = 0.01, hi0 = 1.0;
    if (!spec.rates.empty()) {
        const auto [mn, mx] =
            std::minmax_element(spec.rates.begin(), spec.rates.end());
        lo0 = *mn;
        hi0 = *mx;
        if (lo0 == hi0)
            lo0 = std::max(1e-4, hi0 / 10.0);
    }

    std::vector<CurveState> curves;
    for (const auto &topo : spec.topologies) {
        for (const auto &router : spec.routers) {
            for (const auto pattern : spec.patterns) {
                for (const auto selection : spec.selections) {
                    CurveState c;
                    c.topo = topo;
                    c.router = router;
                    c.pattern = pattern;
                    c.selection = selection;
                    c.lo = lo0;
                    c.hi = hi0;
                    c.verdict.label =
                        topo.toString() + " | " + router + " | "
                        + sim::toString(pattern) + " | sel "
                        + std::to_string(static_cast<int>(selection));
                    c.verdict.lo = lo0;
                    c.verdict.hi = hi0;
                    curves.push_back(std::move(c));
                }
            }
        }
    }

    // Run one batch through the regular sweep executor; outcomes are
    // appended to the report so the CLI emits standard JSONL rows.
    // Returns the per-curve outcome indices.
    const auto runBatch =
        [&](const std::vector<SweepJob> &batch) -> std::vector<JobOutcome> {
        const SweepReport r = runSweep(batch, run);
        report.simulated += r.simulated;
        report.threads = r.threads;
        report.cacheBlockedSeconds += r.cacheBlockedSeconds;
        report.interrupted = report.interrupted || r.interrupted;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            report.jobs.push_back(batch[i]);
            report.outcomes.push_back(r.outcomes[i]);
        }
        return r.outcomes;
    };

    // Round 0: both endpoints of every curve, one parallel batch.
    std::vector<SweepJob> endpoints;
    endpoints.reserve(curves.size() * 2);
    for (const CurveState &c : curves) {
        endpoints.push_back(makeJob(spec, c, c.lo));
        endpoints.push_back(makeJob(spec, c, c.hi));
    }
    const auto endpointOutcomes = runBatch(endpoints);

    for (std::size_t ci = 0; ci < curves.size(); ++ci) {
        CurveState &c = curves[ci];
        const JobOutcome &loOut = endpointOutcomes[ci * 2];
        const JobOutcome &hiOut = endpointOutcomes[ci * 2 + 1];
        c.verdict.points = 2;
        if (loOut.skipped || hiOut.skipped) {
            c.verdict.failed = true;
            c.verdict.error = "interrupted";
            continue;
        }
        if (!loOut.ok || !hiOut.ok) {
            c.verdict.failed = true;
            c.verdict.error = !loOut.ok ? loOut.error : hiOut.error;
            continue;
        }
        c.threshold = opts.latencyThreshold > 0.0
                          ? opts.latencyThreshold
                          : opts.kneeFactor
                                * std::max(loOut.result.avgLatency, 1.0);
        c.verdict.threshold = c.threshold;
        if (saturated(loOut, c.threshold)) {
            c.verdict.saturatedAtLo = true;
            c.verdict.knee = c.lo;
            continue;
        }
        if (!saturated(hiOut, c.threshold)) {
            c.verdict.unsaturatedAtHi = true;
            c.verdict.knee = c.hi;
            continue;
        }
        c.active = true;
    }

    // Bisection rounds: one midpoint per active curve per round, all
    // midpoints of a round in one parallel batch. Each round halves
    // every active bracket, so rates depend only on measured verdicts
    // — never on timing — and a rerun reproduces the same points
    // (served from cache).
    for (int round = 0;
         round < opts.maxRounds && !report.interrupted; ++round) {
        std::vector<SweepJob> mids;
        std::vector<std::size_t> midCurve;
        for (std::size_t ci = 0; ci < curves.size(); ++ci) {
            CurveState &c = curves[ci];
            if (!c.active)
                continue;
            if (c.hi - c.lo <= opts.tolerance) {
                c.active = false;
                c.verdict.knee = 0.5 * (c.lo + c.hi);
                continue;
            }
            mids.push_back(makeJob(spec, c, 0.5 * (c.lo + c.hi)));
            midCurve.push_back(ci);
        }
        if (mids.empty())
            break;
        const auto midOutcomes = runBatch(mids);
        for (std::size_t mi = 0; mi < mids.size(); ++mi) {
            CurveState &c = curves[midCurve[mi]];
            const JobOutcome &out = midOutcomes[mi];
            const double mid = mids[mi].cfg.injectionRate;
            ++c.verdict.points;
            if (out.skipped) {
                c.active = false;
                c.verdict.failed = true;
                c.verdict.error = "interrupted";
                continue;
            }
            if (!out.ok) {
                c.active = false;
                c.verdict.failed = true;
                c.verdict.error = out.error;
                continue;
            }
            if (saturated(out, c.threshold))
                c.hi = mid;
            else
                c.lo = mid;
        }
    }
    // Close out any brackets the round cap cut short.
    for (CurveState &c : curves) {
        if (c.active) {
            c.active = false;
            c.verdict.knee = 0.5 * (c.lo + c.hi);
        }
        c.verdict.lo = c.lo;
        c.verdict.hi = c.hi;
        report.curves.push_back(std::move(c.verdict));
    }

    if (run.cache)
        report.cacheHits = run.cache->hits();
    report.elapsedSeconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
    return report;
}

} // namespace ebda::sweep
