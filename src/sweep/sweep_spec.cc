#include "sweep_spec.hh"

#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "sim/sim_json.hh"
#include "sweep/router_factory.hh"
#include "topo/ascii_map.hh"
#include "util/random.hh"

namespace ebda::sweep {

std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x00000100000001b3ULL;
    }
    return h;
}

std::string
keyToHex(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

std::string
TopologySpec::toString() const
{
    switch (kind) {
    case Kind::Mesh:
    case Kind::Torus: {
        std::string s = kind == Kind::Torus ? "torus " : "mesh ";
        for (std::size_t i = 0; i < dims.size(); ++i)
            s += (i ? "x" : "") + std::to_string(dims[i]);
        s += " vcs ";
        for (std::size_t i = 0; i < vcs.size(); ++i)
            s += (i ? "," : "") + std::to_string(vcs[i]);
        return s;
    }
    case Kind::Dragonfly:
        return "dragonfly a" + std::to_string(a) + " p" + std::to_string(p)
               + " h" + std::to_string(h) + " vcs "
               + std::to_string(localVcs) + ","
               + std::to_string(globalVcs);
    case Kind::FullMesh:
        return "fullmesh " + std::to_string(nodes) + " vcs "
               + std::to_string(nodeVcs);
    case Kind::Ascii:
        // The map itself is unreadable in a label; identify it by its
        // content hash.
        return "ascii map " + keyToHex(fnv1a64(map)).substr(8);
    }
    return "?";
}

std::size_t
TopologySpec::nodeCountEstimate() const
{
    switch (kind) {
    case Kind::Mesh:
    case Kind::Torus: {
        std::size_t n = 1;
        for (const int d : dims)
            n *= static_cast<std::size_t>(d > 0 ? d : 1);
        return n;
    }
    case Kind::Dragonfly: {
        // a routers per group, a*h+1 groups, p hosts hanging off each
        // router.
        const std::size_t routers =
            static_cast<std::size_t>(a > 0 ? a : 1) *
            static_cast<std::size_t>(a * h + 1 > 0 ? a * h + 1 : 1);
        return routers * static_cast<std::size_t>(p > 0 ? p : 1);
    }
    case Kind::FullMesh:
        return static_cast<std::size_t>(nodes > 0 ? nodes : 1);
    case Kind::Ascii: {
        // Node labels are the map's alphanumeric characters.
        std::size_t n = 0;
        for (const char c : map)
            if (std::isalnum(static_cast<unsigned char>(c)))
                ++n;
        return n > 0 ? n : 1;
    }
    }
    return 1;
}

topo::Network
TopologySpec::build() const
{
    switch (kind) {
    case Kind::Mesh:
        return topo::Network::mesh(dims, vcs);
    case Kind::Torus:
        return topo::Network::torus(dims, vcs);
    case Kind::Dragonfly:
        return topo::Network::dragonfly(a, p, h, localVcs, globalVcs);
    case Kind::FullMesh:
        return topo::Network::fullMesh(nodes, nodeVcs);
    case Kind::Ascii:
        return topo::parseAsciiMap(map, topo::AsciiMapOptions{defaultVcs})
            .network;
    }
    throw std::invalid_argument("topology: unknown kind");
}

void
TopologySpec::toJson(JsonWriter &w, const std::string &key) const
{
    w.beginObject(key);
    switch (kind) {
    case Kind::Mesh:
    case Kind::Torus:
        // Legacy flat shape — the bytes of every existing mesh/torus
        // cache key depend on it.
        w.field("type", kind == Kind::Torus ? "torus" : "mesh");
        w.beginArray("dims");
        for (const int d : dims)
            w.value(d);
        w.end();
        w.beginArray("vcs");
        for (const int v : vcs)
            w.value(v);
        w.end();
        break;
    case Kind::Dragonfly:
        w.field("type", "dragonfly");
        w.beginObject("params");
        w.field("a", a);
        w.field("p", p);
        w.field("h", h);
        w.field("localVcs", localVcs);
        w.field("globalVcs", globalVcs);
        w.end();
        break;
    case Kind::FullMesh:
        w.field("type", "fullmesh");
        w.beginObject("params");
        w.field("nodes", nodes);
        w.field("vcs", nodeVcs);
        w.end();
        break;
    case Kind::Ascii:
        w.field("type", "ascii");
        w.beginObject("params");
        w.field("map", map);
        w.field("defaultVcs", defaultVcs);
        w.end();
        break;
    }
    w.end();
}

namespace {

/** Canonical JSON of a job's complete configuration. Key order is
 *  fixed; doubles are exact — this string *is* the cache identity. */
std::string
canonicalJson(const SweepJob &job)
{
    JsonWriter w;
    w.beginObject();
    job.topo.toJson(w, "topology");
    w.field("router", job.router);
    w.field("pattern", sim::toString(job.pattern));
    w.beginObject("config");
    sim::jsonFields(w, job.cfg);
    w.end();
    w.end();
    return w.str();
}

bool
readIntArray(const JsonValue &v, std::vector<int> &out, std::string *err,
             const std::string &path)
{
    if (!v.isArray() || v.size() == 0) {
        if (err)
            *err = path + ": must be a non-empty array";
        return false;
    }
    out.clear();
    for (const auto &e : v.elements()) {
        if (!e.isNumber() || e.asInt() < 1) {
            if (err)
                *err = path + ": entries must be integers >= 1";
            return false;
        }
        out.push_back(e.asInt());
    }
    return true;
}

/** Read one integer field of a params object, with range check and a
 *  default for absent keys. Returns false (and sets *err) on junk. */
bool
readIntField(const JsonValue &params, const char *key, int min_value,
             int *out, std::string *err, const std::string &path)
{
    const auto *v = params.find(key);
    if (!v)
        return true; // keep the default
    if (!v->isNumber() || v->asInt() < min_value) {
        if (err)
            *err = path + "." + key + ": must be an integer >= "
                   + std::to_string(min_value);
        return false;
    }
    *out = v->asInt();
    return true;
}

} // namespace

/** Parse one topology object; `path` names it in errors ("topology",
 *  "topologies[2]"). Unknown keys are rejected — a typo here would
 *  silently sweep the wrong grid. */
std::optional<TopologySpec>
TopologySpec::fromJson(const JsonValue &v, std::string *err,
                       const std::string &path)
{
    auto fail = [&](const std::string &what) -> std::optional<TopologySpec> {
        if (err)
            *err = what;
        return std::nullopt;
    };

    if (!v.isObject())
        return fail(path + ": must be an object");
    for (const auto &[key, val] : v.members()) {
        if (key != "type" && key != "kind" && key != "dims" && key != "vcs"
            && key != "params")
            return fail(path + ": unknown key '" + key + "'");
    }

    // The tag: "type", with "kind" accepted as an alias.
    std::string tag = "mesh";
    const auto *type = v.find("type");
    if (!type)
        type = v.find("kind");
    if (type) {
        if (!type->isString())
            return fail(path + ".type: must be a string");
        tag = type->asString();
    }

    // Params may live in a nested object (tagged shape) or, for
    // mesh/torus, flat in the topology object itself (legacy shape).
    const JsonValue *params = v.find("params");
    if (params && !params->isObject())
        return fail(path + ".params: must be an object");
    const std::string ppath = params ? path + ".params" : path;
    const JsonValue &p = params ? *params : v;

    // Reject typos inside a params object too (flat-shape keys are
    // covered by the topology-level check above).
    auto checkKeys = [&](std::initializer_list<const char *> allowed) {
        if (!params)
            return true;
        for (const auto &[key, val] : p.members()) {
            bool ok = false;
            for (const char *k : allowed)
                ok = ok || key == k;
            if (!ok) {
                if (err)
                    *err = ppath + ": unknown key '" + key + "'";
                return false;
            }
        }
        return true;
    };

    TopologySpec t;
    if (tag == "mesh" || tag == "torus") {
        t.kind = tag == "torus" ? Kind::Torus : Kind::Mesh;
        if (!checkKeys({"dims", "vcs"}))
            return std::nullopt;
        const auto *dims = p.find("dims");
        if (!dims || !readIntArray(*dims, t.dims, err, ppath + ".dims"))
            return std::nullopt;
        if (const auto *vcs = p.find("vcs")) {
            if (!readIntArray(*vcs, t.vcs, err, ppath + ".vcs"))
                return std::nullopt;
        } else {
            t.vcs.assign(t.dims.size(), 1);
        }
        if (t.vcs.size() != t.dims.size())
            return fail(ppath + ".vcs: must have one entry per dimension");
        return t;
    }
    if (tag == "dragonfly") {
        t.kind = Kind::Dragonfly;
        if (!params)
            return fail(path + ": dragonfly needs a 'params' object");
        if (!checkKeys({"a", "p", "h", "localVcs", "globalVcs"}))
            return std::nullopt;
        t.a = 2;
        t.p = 1;
        t.h = 1;
        if (!readIntField(p, "a", 2, &t.a, err, ppath)
            || !readIntField(p, "p", 1, &t.p, err, ppath)
            || !readIntField(p, "h", 1, &t.h, err, ppath)
            || !readIntField(p, "localVcs", 1, &t.localVcs, err, ppath)
            || !readIntField(p, "globalVcs", 1, &t.globalVcs, err, ppath))
            return std::nullopt;
        return t;
    }
    if (tag == "fullmesh") {
        t.kind = Kind::FullMesh;
        if (!params)
            return fail(path + ": fullmesh needs a 'params' object");
        if (!checkKeys({"nodes", "vcs"}))
            return std::nullopt;
        t.nodes = 2;
        if (!readIntField(p, "nodes", 2, &t.nodes, err, ppath)
            || !readIntField(p, "vcs", 1, &t.nodeVcs, err, ppath))
            return std::nullopt;
        return t;
    }
    if (tag == "ascii") {
        t.kind = Kind::Ascii;
        if (!params)
            return fail(path + ": ascii needs a 'params' object");
        if (!checkKeys({"map", "defaultVcs"}))
            return std::nullopt;
        const auto *map = p.find("map");
        if (!map || !map->isString() || map->asString().empty())
            return fail(ppath + ".map: must be a non-empty string");
        t.map = map->asString();
        if (!readIntField(p, "defaultVcs", 1, &t.defaultVcs, err, ppath))
            return std::nullopt;
        // Surface DSL syntax errors at parse time, not mid-sweep.
        try {
            topo::parseAsciiMap(t.map,
                                topo::AsciiMapOptions{t.defaultVcs});
        } catch (const std::invalid_argument &e) {
            return fail(ppath + ".map: " + e.what());
        }
        return t;
    }
    return fail(path + ".type: must be \"mesh\", \"torus\", "
                       "\"dragonfly\", \"fullmesh\" or \"ascii\"");
}

void
finalizeJob(SweepJob &job)
{
    job.canonical = canonicalJson(job);
    job.key = fnv1a64(job.canonical);
}

std::optional<SweepSpec>
SweepSpec::parse(const std::string &text, std::string *error)
{
    const auto doc = parseJson(text, error);
    if (!doc)
        return std::nullopt;
    return fromJson(*doc, error);
}

std::optional<SweepSpec>
SweepSpec::fromJson(const JsonValue &v, std::string *error)
{
    auto fail = [&](const std::string &what) -> std::optional<SweepSpec> {
        if (error)
            *error = what;
        return std::nullopt;
    };

    if (!v.isObject())
        return fail("spec must be a JSON object");

    SweepSpec spec;
    if (const auto *name = v.find("name")) {
        if (!name->isString())
            return fail("'name' must be a string");
        spec.name = name->asString();
    }

    // Topologies: "topologies" (array) or "topology" (single object).
    std::string err;
    if (const auto *ts = v.find("topologies")) {
        if (!ts->isArray() || ts->size() == 0)
            return fail("'topologies' must be a non-empty array");
        std::size_t i = 0;
        for (const auto &e : ts->elements()) {
            const auto t = TopologySpec::fromJson(
                e, &err, "topologies[" + std::to_string(i++) + "]");
            if (!t)
                return fail(err);
            spec.topologies.push_back(*t);
        }
    } else if (const auto *t1 = v.find("topology")) {
        const auto t = TopologySpec::fromJson(*t1, &err, "topology");
        if (!t)
            return fail(err);
        spec.topologies.push_back(*t);
    } else {
        return fail("spec needs 'topology' or 'topologies'");
    }

    // Routers (required).
    const auto *routers = v.find("routers");
    if (!routers || !routers->isArray() || routers->size() == 0)
        return fail("'routers' must be a non-empty array");
    std::size_t idx = 0;
    for (const auto &e : routers->elements()) {
        const std::string path = "routers[" + std::to_string(idx++) + "]";
        if (!e.isString())
            return fail(path + ": must be a string");
        if (const auto bad = checkRouterSpec(e.asString()))
            return fail(path + " '" + e.asString() + "': " + *bad);
        spec.routers.push_back(e.asString());
    }

    // Patterns (default uniform).
    if (const auto *ps = v.find("patterns")) {
        if (!ps->isArray() || ps->size() == 0)
            return fail("'patterns' must be a non-empty array");
        idx = 0;
        for (const auto &e : ps->elements()) {
            const std::string path =
                "patterns[" + std::to_string(idx++) + "]";
            if (!e.isString())
                return fail(path + ": must be a string");
            const auto p = sim::patternFromString(e.asString());
            if (!p)
                return fail(path + ": unknown traffic pattern '"
                            + e.asString() + "'");
            spec.patterns.push_back(*p);
        }
    } else {
        spec.patterns.push_back(sim::TrafficPattern::Uniform);
    }

    // Selection policies (default max-credits).
    if (const auto *ss = v.find("selection")) {
        if (!ss->isArray() || ss->size() == 0)
            return fail("'selection' must be a non-empty array");
        idx = 0;
        for (const auto &e : ss->elements()) {
            const std::string path =
                "selection[" + std::to_string(idx++) + "]";
            if (!e.isString())
                return fail(path + ": must be a string");
            const auto p = sim::selectionFromString(e.asString());
            if (!p)
                return fail(path + ": unknown selection policy '"
                            + e.asString() + "'");
            spec.selections.push_back(*p);
        }
    } else {
        spec.selections.push_back(sim::SelectionPolicy::MaxCredits);
    }

    // Base sim config template.
    if (const auto *simv = v.find("sim")) {
        const auto c = sim::configFromJson(*simv, &err);
        if (!c) {
            // Re-anchor quoted key names under "sim." so the message
            // names the full path ("'seed' ..." -> "'sim.seed' ...").
            if (!err.empty() && err.front() == '\'')
                return fail("'sim." + err.substr(1));
            return fail("sim: " + err);
        }
        spec.base = *c;
    }

    // Rates (default: the base config's injection rate).
    if (const auto *rs = v.find("rates")) {
        if (!rs->isArray() || rs->size() == 0)
            return fail("'rates' must be a non-empty array");
        idx = 0;
        for (const auto &e : rs->elements()) {
            const std::string path =
                "rates[" + std::to_string(idx++) + "]";
            if (!e.isNumber() || e.asDouble() <= 0.0)
                return fail(path + ": must be a positive number");
            spec.rates.push_back(e.asDouble());
        }
    } else {
        spec.rates.push_back(spec.base.injectionRate);
    }

    if (const auto *ds = v.find("deriveSeeds")) {
        if (!ds->isBool())
            return fail("'deriveSeeds' must be a bool");
        spec.deriveSeeds = ds->asBool();
    }

    // Reject typos at the top level too.
    static const char *known[] = {"name",     "topology", "topologies",
                                  "routers",  "patterns", "selection",
                                  "rates",    "sim",      "deriveSeeds"};
    for (const auto &[key, val] : v.members()) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            return fail("unknown spec key '" + key + "'");
    }

    return spec;
}

std::size_t
SweepSpec::jobCount() const
{
    return topologies.size() * routers.size() * patterns.size()
           * selections.size() * rates.size();
}

std::vector<SweepJob>
SweepSpec::expand() const
{
    std::vector<SweepJob> jobs;
    jobs.reserve(jobCount());
    for (const auto &topo : topologies) {
        for (const auto &router : routers) {
            for (const auto pattern : patterns) {
                for (const auto selection : selections) {
                    for (const double rate : rates) {
                        SweepJob job;
                        job.topo = topo;
                        job.router = router;
                        job.pattern = pattern;
                        job.cfg = base;
                        job.cfg.selection = selection;
                        job.cfg.injectionRate = rate;
                        if (deriveSeeds) {
                            // Seed from the seedless content so every
                            // grid point gets an independent stream
                            // that only the master seed and the job's
                            // own parameters determine.
                            job.cfg.seed = 0;
                            finalizeJob(job);
                            job.cfg.seed =
                                SplitMix64(base.seed ^ job.key).next();
                        }
                        finalizeJob(job);
                        jobs.push_back(std::move(job));
                    }
                }
            }
        }
    }
    return jobs;
}

} // namespace ebda::sweep
