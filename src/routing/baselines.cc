#include "baselines.hh"

#include <numeric>
#include <sstream>

#include "util/logging.hh"

namespace ebda::routing {

using core::Sign;

MeshRouting::MeshRouting(const topo::Network &network) : net(network)
{
    EBDA_ASSERT(!net.isTorus(),
                "mesh baseline routing does not handle wrap links");
}

void
MeshRouting::appendLink(std::vector<topo::ChannelId> &out, topo::NodeId at,
                        std::uint8_t dim, Sign sign) const
{
    const auto link = net.linkFrom(at, dim, sign);
    if (!link)
        return;
    for (int v = 0; v < net.vcsOnLink(*link); ++v)
        out.push_back(net.channel(*link, v));
}

int
MeshRouting::offset(topo::NodeId at, topo::NodeId dest, std::uint8_t d) const
{
    return net.minimalOffset(at, dest, d);
}

DimensionOrderRouting::DimensionOrderRouting(
    const topo::Network &network, std::vector<std::uint8_t> dim_order)
    : MeshRouting(network), order(std::move(dim_order))
{
    EBDA_ASSERT(order.size() == network.numDims(),
                "dimension order must mention every dimension once");
}

DimensionOrderRouting
DimensionOrderRouting::xy(const topo::Network &net)
{
    std::vector<std::uint8_t> order(net.numDims());
    std::iota(order.begin(), order.end(), 0);
    return DimensionOrderRouting(net, std::move(order));
}

DimensionOrderRouting
DimensionOrderRouting::yx(const topo::Network &net)
{
    std::vector<std::uint8_t> order(net.numDims());
    std::iota(order.rbegin(), order.rend(), 0);
    return DimensionOrderRouting(net, std::move(order));
}

std::vector<topo::ChannelId>
DimensionOrderRouting::candidates(topo::ChannelId /*in*/, topo::NodeId at,
                                  topo::NodeId /*src*/,
                                  topo::NodeId dest) const
{
    std::vector<topo::ChannelId> out;
    for (std::uint8_t d : order) {
        const int off = offset(at, dest, d);
        if (off == 0)
            continue;
        appendLink(out, at, d, off > 0 ? Sign::Pos : Sign::Neg);
        break; // strictly one dimension at a time
    }
    return out;
}

std::string
DimensionOrderRouting::name() const
{
    std::ostringstream os;
    os << "DOR[";
    for (std::uint8_t d : order)
        os << core::dimLetter(d);
    os << ']';
    return os.str();
}

WestFirstRouting::WestFirstRouting(const topo::Network &network)
    : MeshRouting(network)
{
    EBDA_ASSERT(network.numDims() == 2, "West-First is a 2D turn model");
}

std::vector<topo::ChannelId>
WestFirstRouting::candidates(topo::ChannelId /*in*/, topo::NodeId at,
                             topo::NodeId /*src*/, topo::NodeId dest) const
{
    std::vector<topo::ChannelId> out;
    const int dx = offset(at, dest, 0);
    const int dy = offset(at, dest, 1);
    if (dx < 0) {
        // All westward hops must come first and exclusively.
        appendLink(out, at, 0, Sign::Neg);
        return out;
    }
    if (dx > 0)
        appendLink(out, at, 0, Sign::Pos);
    if (dy != 0)
        appendLink(out, at, 1, dy > 0 ? Sign::Pos : Sign::Neg);
    return out;
}

NorthLastRouting::NorthLastRouting(const topo::Network &network)
    : MeshRouting(network)
{
    EBDA_ASSERT(network.numDims() == 2, "North-Last is a 2D turn model");
}

std::vector<topo::ChannelId>
NorthLastRouting::candidates(topo::ChannelId /*in*/, topo::NodeId at,
                             topo::NodeId /*src*/, topo::NodeId dest) const
{
    std::vector<topo::ChannelId> out;
    const int dx = offset(at, dest, 0);
    const int dy = offset(at, dest, 1);
    if (dx != 0)
        appendLink(out, at, 0, dx > 0 ? Sign::Pos : Sign::Neg);
    if (dy < 0)
        appendLink(out, at, 1, Sign::Neg);
    if (out.empty() && dy > 0) {
        // North only when it is the sole productive direction; once a
        // packet heads north it can never leave the column again.
        appendLink(out, at, 1, Sign::Pos);
    }
    return out;
}

NegativeFirstRouting::NegativeFirstRouting(const topo::Network &network)
    : MeshRouting(network)
{
    EBDA_ASSERT(network.numDims() == 2, "Negative-First here is 2D");
}

std::vector<topo::ChannelId>
NegativeFirstRouting::candidates(topo::ChannelId /*in*/, topo::NodeId at,
                                 topo::NodeId /*src*/,
                                 topo::NodeId dest) const
{
    std::vector<topo::ChannelId> out;
    const int dx = offset(at, dest, 0);
    const int dy = offset(at, dest, 1);
    // Every negative hop strictly precedes every positive hop.
    if (dx < 0)
        appendLink(out, at, 0, Sign::Neg);
    if (dy < 0)
        appendLink(out, at, 1, Sign::Neg);
    if (!out.empty())
        return out;
    if (dx > 0)
        appendLink(out, at, 0, Sign::Pos);
    if (dy > 0)
        appendLink(out, at, 1, Sign::Pos);
    return out;
}

OddEvenRouting::OddEvenRouting(const topo::Network &network)
    : MeshRouting(network)
{
    EBDA_ASSERT(network.numDims() == 2, "Odd-Even is a 2D turn model");
}

std::vector<topo::ChannelId>
OddEvenRouting::candidates(topo::ChannelId /*in*/, topo::NodeId at,
                           topo::NodeId src, topo::NodeId dest) const
{
    std::vector<topo::ChannelId> out;
    const int dx = offset(at, dest, 0);
    const int dy = offset(at, dest, 1);
    const int cur_col = net.coordAlong(at, 0);
    const int src_col = net.coordAlong(src, 0);
    const int dst_col = net.coordAlong(dest, 0);
    const bool cur_odd = cur_col % 2 != 0;
    const bool dst_odd = dst_col % 2 != 0;

    if (dx == 0) {
        appendLink(out, at, 1, dy > 0 ? Sign::Pos : Sign::Neg);
        return out;
    }
    if (dx > 0) { // eastbound
        if (dy == 0) {
            appendLink(out, at, 0, Sign::Pos);
            return out;
        }
        // The EN/ES turn will happen in some column ahead; it is legal
        // only in odd columns, except that the source column may always
        // start the northward/southward leg.
        if (cur_odd || cur_col == src_col)
            appendLink(out, at, 1, dy > 0 ? Sign::Pos : Sign::Neg);
        // Going further east is only safe if the turn column remains
        // available: destination column odd, or more than one hop left.
        if (dst_odd || dx != 1)
            appendLink(out, at, 0, Sign::Pos);
        return out;
    }
    // Westbound: west is always available; the NW/SW turn back into the
    // west direction is legal only in even columns, so the north/south
    // leg may only start there.
    appendLink(out, at, 0, Sign::Neg);
    if (dy != 0 && !cur_odd)
        appendLink(out, at, 1, dy > 0 ? Sign::Pos : Sign::Neg);
    return out;
}

std::vector<topo::ChannelId>
MinimalAdaptiveRouting::candidates(topo::ChannelId /*in*/,
                                   topo::NodeId at, topo::NodeId /*src*/,
                                   topo::NodeId dest) const
{
    std::vector<topo::ChannelId> out;
    for (std::uint8_t d = 0; d < net.numDims(); ++d) {
        const int off = net.minimalOffset(at, dest, d);
        if (off == 0)
            continue;
        const auto link =
            net.linkFrom(at, d, off > 0 ? Sign::Pos : Sign::Neg);
        if (!link)
            continue;
        for (int v = 0; v < net.vcsOnLink(*link); ++v)
            out.push_back(net.channel(*link, v));
    }
    return out;
}

} // namespace ebda::routing
