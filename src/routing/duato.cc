#include "duato.hh"

#include "util/logging.hh"

namespace ebda::routing {

using core::Sign;

DuatoFullyAdaptive::DuatoFullyAdaptive(const topo::Network &network)
    : net(network)
{
    EBDA_ASSERT(!net.isTorus(),
                "Duato escape here is mesh dimension-order");
    for (std::uint8_t d = 0; d < net.numDims(); ++d) {
        EBDA_ASSERT(net.vcs()[d] >= 2, "Duato routing needs >= 2 VCs per "
                    "dimension; dim ", d, " has ", net.vcs()[d]);
    }
}

bool
DuatoFullyAdaptive::isEscape(topo::ChannelId c) const
{
    const topo::LinkId l = net.linkOf(c);
    return net.vcOf(c) == net.vcsOnLink(l) - 1;
}

std::vector<topo::ChannelId>
DuatoFullyAdaptive::candidates(topo::ChannelId /*in*/, topo::NodeId at,
                               topo::NodeId /*src*/,
                               topo::NodeId dest) const
{
    std::vector<topo::ChannelId> out;
    bool escape_added = false;
    for (std::uint8_t d = 0; d < net.numDims(); ++d) {
        const int off = net.minimalOffset(at, dest, d);
        if (off == 0)
            continue;
        const auto link =
            net.linkFrom(at, d, off > 0 ? Sign::Pos : Sign::Neg);
        if (!link)
            continue;
        const int nvc = net.vcsOnLink(*link);
        // Adaptive VCs of every productive link.
        for (int v = 0; v + 1 < nvc; ++v)
            out.push_back(net.channel(*link, v));
        // Escape VC only along the dimension-order direction (the
        // lowest unresolved dimension).
        if (!escape_added) {
            out.push_back(net.channel(*link, nvc - 1));
            escape_added = true;
        }
    }
    return out;
}

} // namespace ebda::routing
