/**
 * @file
 * Route-table compiler: flattens a RoutingRelation over its fixed
 * Network into a CSR table so steady-state route compute is array
 * indexing instead of a virtual call that heap-allocates a vector.
 *
 * Every EbDa-style relation is a pure function of (input channel,
 * current node, source, destination); the current node is itself
 * determined by the input channel (the head of `in`, or the source for
 * injection queries), so the whole relation fits in a table keyed by
 * (in, dest) — widened to (in, src, dest) when the relation consults
 * the source (e.g. Odd-Even's source column). Candidate *contents and
 * order* are exactly what the virtual relation returns, which is what
 * keeps compiled runs bit-identical to virtual-path runs.
 *
 * Layout (rows hold {begin, len} into one shared candidate pool):
 *  - narrow: row(in, dest)       = in * N + dest, then an injection
 *    block at C * N keyed (src, dest) — injection candidates depend on
 *    the source because the source IS the current node there;
 *  - wide:   row(in, src, dest)  = (in * N + src) * N + dest, injection
 *    block at C * N * N.
 *
 * Probing is reachability-guided: rows are filled by BFS from the
 * injection candidates, so the compiler only ever queries channel
 * states a real packet can occupy. That matters — relations guard
 * their reachable-state invariants with asserts (EbDaRouting panics on
 * unclassified channels), and it is also cheaper: unreachable rows
 * stay empty and are never queried at runtime (a packet can only
 * occupy a channel some probed row offered, by induction from
 * injection).
 *
 * Compile-time soundness: a relation declaring SrcSensitivity::
 * Independent compiles narrow and is spot-checked against a
 * deterministic sample of sources (and exhaustively by
 * tests/test_route_table.cc); Unknown and Dependent relations compile
 * wide — per-source rows need no source-independence assumption, so
 * the Unknown default is sound without an exhaustive detection pass.
 * Relations whose candidates() may assert even on reachable probe
 * combinations opt out via probeSafe() and take the virtual fallback,
 * as does any table whose compiled size would exceed the configurable
 * memory budget.
 *
 * Fault integration: the table is compiled over the simulator's
 * effective (possibly fault-degraded) relation. When a fault event
 * kills channels, `filterDeadChannel` edits only the rows containing
 * the dead channel in place — via a lazily built channel -> rows
 * reverse index — keeping the table exactly equal to the degraded
 * virtual view with no recompile.
 */

#ifndef EBDA_ROUTING_ROUTE_TABLE_HH
#define EBDA_ROUTING_ROUTE_TABLE_HH

#include <cstdint>
#include <vector>

#include "cdg/routing_relation.hh"

namespace ebda::routing {

/**
 * Borrowed, immutable view of one candidate list. Valid until the
 * owning table is filtered (fault event) or the scratch vector it
 * aliases on the fallback path is reused.
 */
struct CandidateSpan
{
    const topo::ChannelId *ptr = nullptr;
    std::size_t count = 0;

    const topo::ChannelId *begin() const { return ptr; }
    const topo::ChannelId *end() const { return ptr + count; }
    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    topo::ChannelId operator[](std::size_t i) const { return ptr[i]; }
};

/**
 * A compiled routing relation. Construct once per (Network, relation);
 * query via candidatesView (zero-allocation when compiled) or
 * candidatesInto.
 */
class RouteTable
{
  public:
    struct Options
    {
        /** Compile at all; false forces the virtual fallback. */
        bool enable = true;
        /** Table size cap (rows + pool); beyond it the table falls
         *  back to the virtual relation. */
        std::uint64_t memoryBudgetBytes = 64ull << 20;
    };

    RouteTable(const cdg::RoutingRelation &relation, Options options);

    explicit RouteTable(const cdg::RoutingRelation &relation)
        : RouteTable(relation, Options())
    {
    }

    /** True when queries are served from the table; false on the
     *  virtual fallback (disabled, probe-unsafe, or over budget). */
    bool compiled() const { return compiledFlag; }

    /** True when the table was widened to per-source rows. */
    bool perSource() const { return wide; }

    /** Bytes held by rows + candidate pool (0 when not compiled). */
    std::uint64_t tableBytes() const { return bytes; }

    /** Wall-clock nanoseconds spent probing + filling the table. */
    std::uint64_t compileNanos() const { return compileNs; }

    /** Route-compute queries served so far (table or fallback). */
    std::uint64_t calls() const { return callCount; }

    /** Fold externally counted queries into calls(). The sharded
     *  scheduler's workers query via candidatesViewUncounted (the
     *  mutable counter here is not thread-safe) and tally per shard;
     *  the scheduler adds the totals back once the workers joined so
     *  result.routeComputeCalls stays exact and deterministic. */
    void addCalls(std::uint64_t n) const { callCount += n; }

    /** The relation compiled (the simulator's effective relation). */
    const cdg::RoutingRelation &relation() const { return rel; }

    /**
     * The hot path. Compiled: returns a view into the table, no
     * allocation. Fallback: fills `scratch` via the virtual relation
     * and returns a view of it. `at` is only consulted on the
     * fallback; `dest` must differ from the current node (callers
     * eject on arrival).
     */
    CandidateSpan
    candidatesView(topo::ChannelId in, topo::NodeId at, topo::NodeId src,
                   topo::NodeId dest,
                   std::vector<topo::ChannelId> &scratch) const
    {
        ++callCount;
        if (compiledFlag) {
            const Row r = rows[rowIndex(in, src, dest)];
            return CandidateSpan{pool.data() + r.begin, r.len};
        }
        scratch = rel.candidates(in, at, src, dest);
        return CandidateSpan{scratch.data(), scratch.size()};
    }

    /**
     * candidatesView without the call tally — safe to invoke from
     * several threads at once on a compiled table (pure reads). The
     * caller counts queries itself and folds them in via addCalls().
     * The virtual fallback fills the caller-provided scratch, so each
     * thread must pass its own.
     */
    CandidateSpan
    candidatesViewUncounted(topo::ChannelId in, topo::NodeId at,
                            topo::NodeId src, topo::NodeId dest,
                            std::vector<topo::ChannelId> &scratch) const
    {
        if (compiledFlag) {
            const Row r = rows[rowIndex(in, src, dest)];
            return CandidateSpan{pool.data() + r.begin, r.len};
        }
        scratch = rel.candidates(in, at, src, dest);
        return CandidateSpan{scratch.data(), scratch.size()};
    }

    /** Copy the candidate list into `out` (cold paths that keep it). */
    void candidatesInto(topo::ChannelId in, topo::NodeId at,
                        topo::NodeId src, topo::NodeId dest,
                        std::vector<topo::ChannelId> &out) const;

    /**
     * Remove `dead` from every row containing it (fault event). Only
     * the affected rows are touched; the channel -> rows reverse index
     * backing this is built lazily on the first call, so fault-free
     * runs never pay for it. No-op on the fallback path (the degraded
     * virtual relation filters dynamically).
     */
    void filterDeadChannel(topo::ChannelId dead);

  private:
    struct Row
    {
        std::uint32_t begin = 0;
        std::uint32_t len = 0;
    };

    std::size_t
    rowIndex(topo::ChannelId in, topo::NodeId src, topo::NodeId dest) const
    {
        if (in == cdg::kInjectionChannel)
            return injBase + static_cast<std::size_t>(src) * numNodes
                + dest;
        if (!wide)
            return static_cast<std::size_t>(in) * numNodes + dest;
        return (static_cast<std::size_t>(in) * numNodes + src) * numNodes
            + dest;
    }

    enum class FillOutcome : std::uint8_t
    {
        Ok,
        /** Table would exceed the memory budget -> virtual fallback. */
        OverBudget,
        /** A declared-Independent relation disagreed across sources on
         *  a sampled reachable state -> recompile wide. */
        SrcMismatch,
    };

    /** Probe every reachable row (BFS from injection candidates). */
    FillOutcome fill();

    void buildReverseIndex();

    const cdg::RoutingRelation &rel;
    Options opts;
    std::size_t numNodes;
    std::size_t numChannels;

    bool wide = false;
    bool compiledFlag = false;
    std::size_t injBase = 0;
    std::uint64_t bytes = 0;
    std::uint64_t compileNs = 0;
    mutable std::uint64_t callCount = 0;

    std::vector<Row> rows;
    std::vector<topo::ChannelId> pool;

    /** channel -> ids of rows whose candidate list contains it. */
    std::vector<std::vector<std::uint32_t>> revIndex;
    bool revBuilt = false;
};

} // namespace ebda::routing

#endif // EBDA_ROUTING_ROUTE_TABLE_HH
