#include "ebda_routing.hh"

#include <deque>
#include <limits>

#include "util/logging.hh"

namespace ebda::routing {

using core::Sign;

namespace {

constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

} // namespace

EbDaRouting::EbDaRouting(const topo::Network &network,
                         const core::PartitionScheme &sch,
                         const core::TurnExtractionOptions &opts, Mode m)
    : net(network), scheme(sch),
      turns(core::TurnSet::extract(sch, opts)), map(network, sch), mode(m)
{
}

std::string
EbDaRouting::name() const
{
    return "EbDa[" + scheme.toString() + "]";
}

bool
EbDaRouting::legal(topo::ChannelId in, topo::ChannelId ch) const
{
    const cdg::ClassIndex k2 = map.classOf(ch);
    if (k2 == cdg::kUnclassified)
        return false;
    if (in == cdg::kInjectionChannel)
        return true;
    const cdg::ClassIndex k1 = map.classOf(in);
    EBDA_ASSERT(k1 != cdg::kUnclassified,
                "packet occupies unclassified channel ",
                net.channelName(in));
    return turns.allows(map.classAt(k1), map.classAt(k2));
}

std::vector<topo::ChannelId>
EbDaRouting::rawMinimal(topo::ChannelId in, topo::NodeId at,
                        topo::NodeId dest) const
{
    std::vector<topo::ChannelId> out;
    for (std::uint8_t d = 0; d < net.numDims(); ++d) {
        const int off = net.minimalOffset(at, dest, d);
        if (off == 0)
            continue;
        const auto link =
            net.linkFrom(at, d, off > 0 ? Sign::Pos : Sign::Neg);
        if (!link)
            continue;
        for (int v = 0; v < net.vcsOnLink(*link); ++v) {
            const topo::ChannelId ch = net.channel(*link, v);
            if (legal(in, ch))
                out.push_back(ch);
        }
    }
    return out;
}

bool
EbDaRouting::survives(topo::ChannelId c, topo::NodeId dest) const
{
    auto &table = survivors[dest];
    if (table.empty())
        table.assign(net.numChannels(), 0);
    if (table[c])
        return table[c] == 1;

    const topo::NodeId head = net.link(net.linkOf(c)).dst;
    bool ok = false;
    if (head == dest) {
        ok = true;
    } else {
        // Minimal moves strictly decrease the head-to-dest distance, so
        // the recursion is well-founded.
        for (topo::ChannelId next : rawMinimal(c, head, dest)) {
            if (survives(next, dest)) {
                ok = true;
                break;
            }
        }
    }
    table[c] = ok ? 1 : 2;
    return ok;
}

std::vector<topo::ChannelId>
EbDaRouting::minimalCandidates(topo::ChannelId in, topo::NodeId at,
                               topo::NodeId dest) const
{
    std::vector<topo::ChannelId> raw = rawMinimal(in, at, dest);
    std::vector<topo::ChannelId> out;
    out.reserve(raw.size());
    for (topo::ChannelId c : raw)
        if (survives(c, dest))
            out.push_back(c);
    return out;
}

const std::vector<std::uint32_t> &
EbDaRouting::distTable(topo::NodeId dest) const
{
    auto it = distances.find(dest);
    if (it != distances.end())
        return it->second;

    // Backward BFS in the channel state graph: channels whose head is
    // dest are one hop from ejection; predecessors of channel c2 are the
    // in-channels of c2's tail with a legal transition to c2.
    std::vector<std::uint32_t> dist(net.numChannels(), kUnreachable);
    std::deque<topo::ChannelId> queue;
    for (topo::ChannelId c = 0; c < net.numChannels(); ++c) {
        if (map.classOf(c) == cdg::kUnclassified)
            continue;
        if (net.link(net.linkOf(c)).dst == dest) {
            dist[c] = 1;
            queue.push_back(c);
        }
    }
    while (!queue.empty()) {
        const topo::ChannelId c2 = queue.front();
        queue.pop_front();
        const topo::NodeId tail = net.link(net.linkOf(c2)).src;
        for (topo::LinkId l : net.inLinks(tail)) {
            for (int v = 0; v < net.vcsOnLink(l); ++v) {
                const topo::ChannelId c1 = net.channel(l, v);
                if (dist[c1] != kUnreachable)
                    continue;
                if (map.classOf(c1) == cdg::kUnclassified)
                    continue;
                // A packet on c1 must not be at its destination already;
                // it is, by construction, since head(c1)=tail != dest
                // unless tail == dest, in which case c1 ejects instead.
                if (tail == dest)
                    continue;
                if (legal(c1, c2)) {
                    dist[c1] = dist[c2] + 1;
                    queue.push_back(c1);
                }
            }
        }
    }
    it = distances.emplace(dest, std::move(dist)).first;
    return it->second;
}

std::uint32_t
EbDaRouting::stateDistance(topo::ChannelId c, topo::NodeId dest) const
{
    return distTable(dest)[c];
}

std::vector<topo::ChannelId>
EbDaRouting::shortestStateCandidates(topo::ChannelId in, topo::NodeId at,
                                     topo::NodeId dest) const
{
    const auto &dist = distTable(dest);
    std::vector<topo::ChannelId> out;

    if (in == cdg::kInjectionChannel) {
        // All first channels at the global minimum distance.
        std::uint32_t best = kUnreachable;
        for (topo::ChannelId c : net.outChannels(at)) {
            if (map.classOf(c) == cdg::kUnclassified)
                continue;
            best = std::min(best, dist[c]);
        }
        if (best == kUnreachable)
            return out;
        for (topo::ChannelId c : net.outChannels(at)) {
            if (map.classOf(c) != cdg::kUnclassified && dist[c] == best)
                out.push_back(c);
        }
        return out;
    }

    const std::uint32_t here = dist[in];
    if (here == kUnreachable || here == 1)
        return out; // unreachable, or next step is ejection
    for (topo::ChannelId c : net.outChannels(at)) {
        if (dist[c] == here - 1 && legal(in, c))
            out.push_back(c);
    }
    return out;
}

std::vector<topo::ChannelId>
EbDaRouting::candidates(topo::ChannelId in, topo::NodeId at,
                        topo::NodeId /*src*/, topo::NodeId dest) const
{
    return mode == Mode::Minimal
        ? minimalCandidates(in, at, dest)
        : shortestStateCandidates(in, at, dest);
}

} // namespace ebda::routing
