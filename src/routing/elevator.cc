#include "elevator.hh"

#include <cmath>

#include "util/logging.hh"

namespace ebda::routing {

using core::Sign;

ElevatorFirstRouting::ElevatorFirstRouting(
    const topo::Network &network,
    std::vector<std::pair<int, int>> elevator_columns)
    : net(network), elevators(std::move(elevator_columns))
{
    EBDA_ASSERT(net.numDims() == 3, "Elevator-First routes 3D networks");
    EBDA_ASSERT(!elevators.empty(), "need at least one elevator column");
    EBDA_ASSERT(net.vcs()[0] >= 2 && net.vcs()[1] >= 2,
                "Elevator-First needs 2 VCs along X and Y");
}

std::pair<int, int>
ElevatorFirstRouting::elevatorFor(topo::NodeId src) const
{
    const int sx = net.coordAlong(src, 0);
    const int sy = net.coordAlong(src, 1);
    std::pair<int, int> best = elevators.front();
    int best_dist = std::abs(best.first - sx) + std::abs(best.second - sy);
    for (const auto &e : elevators) {
        const int d = std::abs(e.first - sx) + std::abs(e.second - sy);
        if (d < best_dist) {
            best = e;
            best_dist = d;
        }
    }
    return best;
}

std::vector<topo::ChannelId>
ElevatorFirstRouting::xyHop(topo::NodeId at, int x, int y, int vc) const
{
    std::vector<topo::ChannelId> out;
    const int dx = x - net.coordAlong(at, 0);
    const int dy = y - net.coordAlong(at, 1);
    std::uint8_t dim = 0;
    Sign sign = Sign::Pos;
    if (dx != 0) {
        dim = 0;
        sign = dx > 0 ? Sign::Pos : Sign::Neg;
    } else if (dy != 0) {
        dim = 1;
        sign = dy > 0 ? Sign::Pos : Sign::Neg;
    } else {
        return out;
    }
    const auto link = net.linkFrom(at, dim, sign);
    EBDA_ASSERT(link.has_value(), "mesh link missing during XY leg");
    out.push_back(net.channel(*link, vc));
    return out;
}

std::vector<topo::ChannelId>
ElevatorFirstRouting::candidates(topo::ChannelId in, topo::NodeId at,
                                 topo::NodeId src, topo::NodeId dest) const
{
    const int dz = net.coordAlong(dest, 2) - net.coordAlong(at, 2);

    // Same-layer delivery never uses the vertical phase: pure XY, VC 0.
    if (net.coordAlong(src, 2) == net.coordAlong(dest, 2)) {
        return xyHop(at, net.coordAlong(dest, 0), net.coordAlong(dest, 1),
                     0);
    }

    // Phase is recoverable from the current channel: XY VC 1 and
    // downstream of a Z link mean the vertical leg is done.
    const bool post_vertical = in != cdg::kInjectionChannel
        && (net.link(net.linkOf(in)).dim == 2 ? dz == 0
                                              : net.vcOf(in) == 1);

    if (!post_vertical) {
        const auto [ex, ey] = elevatorFor(src);
        if (net.coordAlong(at, 0) != ex || net.coordAlong(at, 1) != ey)
            return xyHop(at, ex, ey, 0); // ride to the elevator on VC 0
        // At the elevator column: ride vertically.
        EBDA_ASSERT(dz != 0, "vertical phase entered with no Z offset");
        const auto link =
            net.linkFrom(at, 2, dz > 0 ? Sign::Pos : Sign::Neg);
        EBDA_ASSERT(link.has_value(),
                    "elevator column lacks a vertical link at node ", at);
        return {net.channel(*link, 0)};
    }

    if (dz != 0) {
        // Still riding the elevator.
        const auto link =
            net.linkFrom(at, 2, dz > 0 ? Sign::Pos : Sign::Neg);
        EBDA_ASSERT(link.has_value(), "vertical link chain interrupted");
        return {net.channel(*link, 0)};
    }

    // Destination layer: XY on VC 1.
    return xyHop(at, net.coordAlong(dest, 0), net.coordAlong(dest, 1), 1);
}

} // namespace ebda::routing
