/**
 * @file
 * Routing relations derived from an EbDa partition scheme — the
 * "roadmap" of the paper turned into executable routing.
 *
 * A packet's routing state is the channel (and hence channel class) it
 * currently occupies; legal next hops are the channels whose class
 * transition is in the scheme's extracted turn set. Two modes:
 *
 *  - Mode::Minimal — candidates are restricted to productive
 *    (distance-reducing) links. Greedy legality alone can steer a packet
 *    into a dead end (e.g. an Odd-Even packet one eastward hop from an
 *    even destination column with Y offset left: the EN-at-even-column
 *    turn it would then need is prohibited). Classical algorithms encode
 *    the avoidance in closed form (Chiu's ROUTE); here it is generic:
 *    candidates are pruned to *survivors*, channels from which the
 *    destination remains reachable by minimal legal moves, via a
 *    per-destination memoised reachability pass.
 *
 *  - Mode::ShortestState — candidates are the successors lying on a
 *    shortest path to the destination in the turn-restricted channel
 *    state graph, with no minimality assumption on node distance. This
 *    handles topologies where legal paths are necessarily non-minimal:
 *    vertically partially connected 3D meshes (packets detour via
 *    elevator columns) and tori (wrap traversals are U-turns). Monotone
 *    decreasing state distance gives livelock freedom; the turn set
 *    gives deadlock freedom.
 *
 * Pruning only removes dependencies, so the Dally guarantee of the turn
 * set is preserved in both modes.
 */

#ifndef EBDA_ROUTING_EBDA_ROUTING_HH
#define EBDA_ROUTING_EBDA_ROUTING_HH

#include <unordered_map>
#include <vector>

#include "cdg/class_map.hh"
#include "cdg/routing_relation.hh"
#include "core/turns.hh"

namespace ebda::routing {

/**
 * Routing relation derived from a partition scheme.
 */
class EbDaRouting : public cdg::RoutingRelation
{
  public:
    enum class Mode : std::uint8_t
    {
        /** Productive-link candidates with survivor pruning (meshes). */
        Minimal,
        /** Shortest path in the channel state graph (any topology). */
        ShortestState,
    };

    /**
     * @param net    the network routed on (must outlive the relation)
     * @param scheme a valid partition scheme for the network
     * @param opts   turn-extraction options (all theorems by default)
     * @param mode   candidate-selection mode
     */
    EbDaRouting(const topo::Network &net,
                const core::PartitionScheme &scheme,
                const core::TurnExtractionOptions &opts = {},
                Mode mode = Mode::Minimal);

    std::vector<topo::ChannelId> candidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId src,
        topo::NodeId dest) const override;

    std::string name() const override;

    const topo::Network &network() const override { return net; }

    /** Candidates depend on the occupied channel and destination only
     *  (class transitions + per-dest reachability), never the source. */
    cdg::SrcSensitivity
    srcSensitivity() const override
    {
        return cdg::SrcSensitivity::Independent;
    }

    /** The extracted turn set driving the relation. */
    const core::TurnSet &turnSet() const { return turns; }

    /** The channel-to-class lowering. */
    const cdg::ClassMap &classMap() const { return map; }

    /** Channel state-graph distance from channel c to dest (hops until
     *  ejection), or UINT32_MAX when unreachable. ShortestState mode. */
    std::uint32_t stateDistance(topo::ChannelId c, topo::NodeId dest) const;

  private:
    /** True when the class transition in -> ch is legal (straight moves
     *  included); injection may enter any classified channel. */
    bool legal(topo::ChannelId in, topo::ChannelId ch) const;

    /** Minimal-mode raw legality: productive link + legal transition. */
    std::vector<topo::ChannelId> rawMinimal(topo::ChannelId in,
                                            topo::NodeId at,
                                            topo::NodeId dest) const;

    std::vector<topo::ChannelId> minimalCandidates(topo::ChannelId in,
                                                   topo::NodeId at,
                                                   topo::NodeId dest) const;

    std::vector<topo::ChannelId> shortestStateCandidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId dest) const;

    /** Minimal mode: dest reachable from channel c by minimal legal
     *  moves; memoised per destination. */
    bool survives(topo::ChannelId c, topo::NodeId dest) const;

    /** ShortestState mode: per-dest BFS distance table (lazy). */
    const std::vector<std::uint32_t> &distTable(topo::NodeId dest) const;

    const topo::Network &net;
    core::PartitionScheme scheme;
    core::TurnSet turns;
    cdg::ClassMap map;
    Mode mode;

    /** dest -> per-channel survivor flags (0 unknown, 1 yes, 2 no). */
    mutable std::unordered_map<topo::NodeId, std::vector<std::uint8_t>>
        survivors;
    /** dest -> per-channel state distance. */
    mutable std::unordered_map<topo::NodeId, std::vector<std::uint32_t>>
        distances;
};

} // namespace ebda::routing

#endif // EBDA_ROUTING_EBDA_ROUTING_HH
