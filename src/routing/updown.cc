#include "updown.hh"

#include <deque>
#include <limits>

#include "util/logging.hh"

namespace ebda::routing {

namespace {

constexpr std::uint32_t kUnseen = std::numeric_limits<std::uint32_t>::max();
constexpr std::uint8_t kDownReach = 1;
constexpr std::uint8_t kUpReach = 2;

} // namespace

UpDownRouting::UpDownRouting(const topo::Network &network,
                             topo::NodeId root)
    : net(network)
{
    // BFS levels from the root over physical links.
    level.assign(net.numNodes(), kUnseen);
    std::deque<topo::NodeId> queue;
    level[root] = 0;
    queue.push_back(root);
    while (!queue.empty()) {
        const topo::NodeId n = queue.front();
        queue.pop_front();
        for (topo::LinkId l : net.outLinks(n)) {
            const topo::NodeId m = net.link(l).dst;
            if (level[m] == kUnseen) {
                level[m] = level[n] + 1;
                queue.push_back(m);
            }
        }
    }
    for (topo::NodeId n = 0; n < net.numNodes(); ++n) {
        EBDA_ASSERT(level[n] != kUnseen,
                    "network is disconnected: node ", n,
                    " unreachable from root ", root);
    }

    // Orient links: up = toward the root (lower level, id tiebreak).
    // The (level, id) lexicographic order makes both orientations DAGs.
    upLink.assign(net.numLinks(), false);
    for (topo::LinkId l = 0; l < net.numLinks(); ++l) {
        const topo::Link &lk = net.link(l);
        upLink[l] = level[lk.dst] < level[lk.src]
            || (level[lk.dst] == level[lk.src] && lk.dst < lk.src);
    }
}

const std::vector<std::uint8_t> &
UpDownRouting::reachTable(topo::NodeId dest) const
{
    auto it = reach.find(dest);
    if (it != reach.end())
        return it->second;

    std::vector<std::uint8_t> table(net.numNodes(), 0);
    std::deque<topo::NodeId> queue;

    // Phase 1: nodes reaching dest via down links only (reverse BFS).
    table[dest] |= kDownReach;
    queue.push_back(dest);
    while (!queue.empty()) {
        const topo::NodeId m = queue.front();
        queue.pop_front();
        for (topo::LinkId l : net.inLinks(m)) {
            const topo::NodeId n = net.link(l).src;
            if (!upLink[l] && !(table[n] & kDownReach)) {
                table[n] |= kDownReach;
                queue.push_back(n);
            }
        }
    }

    // Phase 2: nodes reaching dest via up* then down* (reverse BFS over
    // up links from every down-reaching node).
    for (topo::NodeId n = 0; n < net.numNodes(); ++n) {
        if (table[n] & kDownReach) {
            table[n] |= kUpReach;
            queue.push_back(n);
        }
    }
    while (!queue.empty()) {
        const topo::NodeId m = queue.front();
        queue.pop_front();
        for (topo::LinkId l : net.inLinks(m)) {
            const topo::NodeId n = net.link(l).src;
            if (upLink[l] && !(table[n] & kUpReach)) {
                table[n] |= kUpReach;
                queue.push_back(n);
            }
        }
    }

    it = reach.emplace(dest, std::move(table)).first;
    return it->second;
}

std::vector<topo::ChannelId>
UpDownRouting::candidates(topo::ChannelId in, topo::NodeId at,
                          topo::NodeId /*src*/, topo::NodeId dest) const
{
    const auto &table = reachTable(dest);
    const bool down_phase =
        in != cdg::kInjectionChannel && !upLink[net.linkOf(in)];

    std::vector<topo::ChannelId> out;
    for (topo::LinkId l : net.outLinks(at)) {
        const bool up = upLink[l];
        if (down_phase && up)
            continue; // once down, never up again
        const topo::NodeId m = net.link(l).dst;
        const std::uint8_t need = up ? kUpReach : kDownReach;
        if (!(table[m] & need))
            continue;
        for (int v = 0; v < net.vcsOnLink(l); ++v)
            out.push_back(net.channel(l, v));
    }
    return out;
}

} // namespace ebda::routing
