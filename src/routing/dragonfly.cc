#include "dragonfly.hh"

#include <stdexcept>

#include "util/logging.hh"

namespace ebda::routing {

using topo::ChannelId;
using topo::LinkId;
using topo::NodeId;

namespace {

[[noreturn]] void
reject(const std::string &msg)
{
    throw std::invalid_argument("dragonfly routing: " + msg);
}

} // namespace

DragonflyMinRouting::DragonflyMinRouting(const topo::Network &net_, int a_,
                                         bool vc_escalation)
    : net(net_), a(a_), escalate(vc_escalation)
{
    if (a < 2)
        reject("routers per group must be >= 2 (got "
               + std::to_string(a) + ")");
    if (net.numNodes() % static_cast<std::size_t>(a) != 0)
        reject(std::to_string(net.numNodes())
               + " nodes do not divide into groups of "
               + std::to_string(a));
    groups = static_cast<int>(net.numNodes()) / a;
    if (groups < 2)
        reject("need at least 2 groups (got " + std::to_string(groups)
               + ")");

    // Discover the intra-group full meshes and check their VC budget.
    localLink.assign(net.numNodes() * static_cast<std::size_t>(a),
                     topo::kInvalidId);
    for (NodeId u = 0; u < net.numNodes(); ++u)
        for (int r = 0; r < a; ++r) {
            const NodeId v =
                static_cast<NodeId>(group(u)) * a + static_cast<NodeId>(r);
            if (v == u)
                continue;
            const auto l = net.linkBetween(u, v);
            if (!l)
                reject("group " + std::to_string(group(u))
                       + " is not a full mesh: missing local link "
                       + net.nodeName(u) + "->" + net.nodeName(v));
            if (escalate && net.vcsOnLink(*l) < 2)
                reject("local link " + net.nodeName(u) + "->"
                       + net.nodeName(v)
                       + " needs >= 2 VCs for escalation (has "
                       + std::to_string(net.vcsOnLink(*l)) + ")");
            localLink[u * static_cast<std::size_t>(a)
                      + static_cast<std::size_t>(r)] = *l;
        }

    // Discover the global links: exactly one per ordered group pair.
    groupGlobal.assign(
        static_cast<std::size_t>(groups) * static_cast<std::size_t>(groups),
        topo::kInvalidId);
    for (LinkId l = 0; l < net.numLinks(); ++l) {
        const topo::Link &lk = net.link(l);
        const int gs = group(lk.src);
        const int gd = group(lk.dst);
        if (gs == gd)
            continue;
        LinkId &slot =
            groupGlobal[static_cast<std::size_t>(gs) * groups + gd];
        if (slot != topo::kInvalidId)
            reject("more than one global link from group "
                   + std::to_string(gs) + " to group "
                   + std::to_string(gd));
        slot = l;
    }
    for (int gs = 0; gs < groups; ++gs)
        for (int gd = 0; gd < groups; ++gd) {
            if (gs == gd)
                continue;
            if (groupGlobal[static_cast<std::size_t>(gs) * groups + gd]
                == topo::kInvalidId)
                reject("no global link from group " + std::to_string(gs)
                       + " to group " + std::to_string(gd));
        }
}

std::vector<ChannelId>
DragonflyMinRouting::candidates(ChannelId in, NodeId at, NodeId /*src*/,
                                NodeId dest) const
{
    std::vector<ChannelId> out;
    const int g_at = group(at);
    const int g_dest = group(dest);

    if (g_at != g_dest) {
        // Pre-global phase: reach this group's gateway, then cross.
        const LinkId glob =
            groupGlobal[static_cast<std::size_t>(g_at) * groups + g_dest];
        const NodeId gateway = net.link(glob).src;
        if (at == gateway) {
            for (int v = 0; v < net.vcsOnLink(glob); ++v)
                out.push_back(net.channel(glob, v));
        } else {
            const LinkId l =
                localLink[at * static_cast<std::size_t>(a)
                          + static_cast<std::size_t>(gateway)
                              % static_cast<std::size_t>(a)];
            // Escape discipline: pre-global local hops stay on VC 0.
            out.push_back(net.channel(l, 0));
        }
        return out;
    }

    // Destination group. The packet either never left it (injected
    // here: any VC — it ejects after this hop) or arrived over a
    // global link (VC escalation: VCs >= 1 only).
    const LinkId l = localLink[at * static_cast<std::size_t>(a)
                               + static_cast<std::size_t>(dest)
                                   % static_cast<std::size_t>(a)];
    const bool after_global = in != cdg::kInjectionChannel
        && group(net.link(net.linkOf(in)).src)
            != group(net.link(net.linkOf(in)).dst);
    // With escalation off every local hop is pinned to VC 0 (offering
    // higher VCs adaptively would act as an accidental escape path and
    // defeat the negative control).
    const int first_vc = (escalate && after_global) ? 1 : 0;
    const int last_vc = escalate ? net.vcsOnLink(l) : 1;
    for (int v = first_vc; v < last_vc; ++v)
        out.push_back(net.channel(l, v));
    return out;
}

} // namespace ebda::routing
