/**
 * @file
 * VC-free deadlock-free routing on a full mesh (complete graph), after
 * the HOTI'25 full-mesh scheme: a packet either takes the direct link
 * or detours through one intermediate node with a HIGHER id than both
 * endpoints ("ascend, then descend").
 *
 * Every first hop to an intermediate ascends (m > s) and every second
 * hop descends (t < m), so all channel dependencies point from
 * ascending links to descending links and the channel dependency graph
 * is acyclic with a single VC per link — no virtual channels needed.
 *
 * Mode::Unrestricted allows ANY intermediate node instead; its
 * dependency graph contains (s,m) -> (m,t) for every distinct triple
 * and is cyclic for n >= 3 — the deadlock-prone negative control.
 *
 * The relation is structural (it only needs a complete digraph), so it
 * routes fullMesh() factory networks and ASCII-declared complete graphs
 * alike. Construction throws std::invalid_argument if some ordered node
 * pair lacks a direct link.
 */

#ifndef EBDA_ROUTING_FULLMESH_HH
#define EBDA_ROUTING_FULLMESH_HH

#include <vector>

#include "cdg/routing_relation.hh"

namespace ebda::routing {

/**
 * Direct-or-one-detour routing on a complete graph.
 */
class FullMeshRouting : public cdg::RoutingRelation
{
  public:
    enum class Mode : std::uint8_t
    {
        /** Detour only via m > max(src, dest): deadlock-free, VC-free. */
        Ascend,
        /** Detour via any intermediate: the deadlock-prone control. */
        Unrestricted,
    };

    explicit FullMeshRouting(const topo::Network &net,
                             Mode mode = Mode::Ascend);

    std::vector<topo::ChannelId> candidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId src,
        topo::NodeId dest) const override;

    std::string
    name() const override
    {
        return mode == Mode::Ascend ? "FullMesh-2Hop"
                                    : "FullMesh-2Hop/Unrestricted";
    }

    cdg::SrcSensitivity
    srcSensitivity() const override
    {
        return cdg::SrcSensitivity::Independent;
    }

    const topo::Network &network() const override { return net; }

  private:
    topo::LinkId direct(topo::NodeId u, topo::NodeId v) const
    {
        return directLink[u * net.numNodes() + v];
    }

    const topo::Network &net;
    const Mode mode;
    /** Row-major direct-link table over ordered node pairs. */
    std::vector<topo::LinkId> directLink;
};

} // namespace ebda::routing

#endif // EBDA_ROUTING_FULLMESH_HH
