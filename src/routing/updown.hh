/**
 * @file
 * Up/Down (Up*-Down*) routing from Autonet — the classical spanning-
 * tree-based
 * deadlock-free algorithm the paper's Theorem-2 proof leans on ("no
 * cycle is introduced when channels are taken in a strictly ascending
 * order").
 *
 * A BFS spanning tree is built from a root; every link is oriented "up"
 * (toward the root: to a lower BFS level, or to a lower node id at the
 * same level) or "down". A legal path is zero or more up links followed
 * by zero or more down links. Works on arbitrary connected topologies,
 * including the vertically partially connected 3D mesh.
 */

#ifndef EBDA_ROUTING_UPDOWN_HH
#define EBDA_ROUTING_UPDOWN_HH

#include <unordered_map>
#include <vector>

#include "cdg/routing_relation.hh"

namespace ebda::routing {

/**
 * Up/Down routing relation over an arbitrary connected network.
 */
class UpDownRouting : public cdg::RoutingRelation
{
  public:
    /**
     * @param net  network (must be connected; verified by construction)
     * @param root spanning-tree root node
     */
    explicit UpDownRouting(const topo::Network &net, topo::NodeId root = 0);

    std::vector<topo::ChannelId> candidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId src,
        topo::NodeId dest) const override;

    std::string name() const override { return "Up*/Down*"; }

    const topo::Network &network() const override { return net; }

    cdg::SrcSensitivity
    srcSensitivity() const override
    {
        return cdg::SrcSensitivity::Independent;
    }

    /** True when the link is oriented toward the root. */
    bool isUp(topo::LinkId l) const { return upLink[l]; }

  private:
    /** dest -> per-node flags; bit0: reachable via down links only,
     *  bit1: reachable via up-then-down. */
    const std::vector<std::uint8_t> &reachTable(topo::NodeId dest) const;

    const topo::Network &net;
    std::vector<std::uint32_t> level;
    std::vector<bool> upLink;
    mutable std::unordered_map<topo::NodeId, std::vector<std::uint8_t>>
        reach;
};

} // namespace ebda::routing

#endif // EBDA_ROUTING_UPDOWN_HH
