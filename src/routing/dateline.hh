/**
 * @file
 * Classic torus dimension-order routing with dateline VCs — the baseline
 * the paper's Theorem-2 torus note (wrap traversal as U-turn) is
 * compared against.
 *
 * Each dimension needs two VCs: packets travel on VC 0 until they cross
 * the dimension's dateline (realised by the wrap link) and on VC 1
 * afterwards, which cuts the ring cycle in the dependency graph.
 * Requires a torus built with WrapClassification::SameAsTravel so wrap
 * links keep the travel direction's class (classes are unused here, but
 * the network is shared with class-based relations in benches).
 */

#ifndef EBDA_ROUTING_DATELINE_HH
#define EBDA_ROUTING_DATELINE_HH

#include "cdg/routing_relation.hh"

namespace ebda::routing {

/**
 * Torus dimension-order routing with dateline VC switching.
 */
class TorusDatelineRouting : public cdg::RoutingRelation
{
  public:
    /** Requires a torus network with >= 2 VCs in every dimension. */
    explicit TorusDatelineRouting(const topo::Network &net);

    std::vector<topo::ChannelId> candidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId src,
        topo::NodeId dest) const override;

    std::string name() const override { return "Torus-DOR-dateline"; }

    const topo::Network &network() const override { return net; }

    cdg::SrcSensitivity
    srcSensitivity() const override
    {
        return cdg::SrcSensitivity::Independent;
    }

  private:
    const topo::Network &net;
};

} // namespace ebda::routing

#endif // EBDA_ROUTING_DATELINE_HH
