#include "dateline.hh"

#include "util/logging.hh"

namespace ebda::routing {

using core::Sign;

TorusDatelineRouting::TorusDatelineRouting(const topo::Network &network)
    : net(network)
{
    EBDA_ASSERT(net.isTorus(), "dateline routing is for tori");
    for (std::uint8_t d = 0; d < net.numDims(); ++d) {
        EBDA_ASSERT(net.vcs()[d] >= 2,
                    "dateline routing needs >= 2 VCs per dimension");
    }
}

std::vector<topo::ChannelId>
TorusDatelineRouting::candidates(topo::ChannelId in, topo::NodeId at,
                                 topo::NodeId /*src*/,
                                 topo::NodeId dest) const
{
    std::vector<topo::ChannelId> out;
    for (std::uint8_t d = 0; d < net.numDims(); ++d) {
        const int off = net.minimalOffset(at, dest, d);
        if (off == 0)
            continue;
        const auto link =
            net.linkFrom(at, d, off > 0 ? Sign::Pos : Sign::Neg);
        if (!link)
            return out;
        const topo::Link &lk = net.link(*link);

        // VC 1 once the dateline (wrap link) of this dimension has been
        // crossed; VC 0 before. The wrap link itself is the crossing.
        int vc = 0;
        if (lk.wrap) {
            vc = 1;
        } else if (in != cdg::kInjectionChannel) {
            const topo::Link &prev = net.link(net.linkOf(in));
            if (prev.dim == d)
                vc = net.vcOf(in); // keep post-dateline VC in-dimension
        }
        out.push_back(net.channel(*link, vc));
        break; // strict dimension order
    }
    return out;
}

} // namespace ebda::routing
