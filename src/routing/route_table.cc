#include "routing/route_table.hh"

#include <chrono>

namespace ebda::routing {

namespace {

/** The node the head flits of channel c arrive at. */
topo::NodeId
headOf(const topo::Network &net, topo::ChannelId c)
{
    return net.link(net.linkOf(c)).dst;
}

} // namespace

RouteTable::RouteTable(const cdg::RoutingRelation &relation,
                       Options options)
    : rel(relation), opts(options),
      numNodes(relation.network().numNodes()),
      numChannels(relation.network().numChannels())
{
    if (!opts.enable || !rel.probeSafe())
        return;
    const auto t0 = std::chrono::steady_clock::now();
    // Independent relations collapse the source axis; Dependent and
    // Unknown compile per-source rows, which assume nothing about the
    // relation and so need no detection pass.
    wide = rel.srcSensitivity() != cdg::SrcSensitivity::Independent;
    FillOutcome outcome = fill();
    if (outcome == FillOutcome::SrcMismatch) {
        // The Independent declaration failed its sample check: widen
        // instead of compiling a corrupt table.
        wide = true;
        rows.clear();
        pool.clear();
        outcome = fill();
    }
    compiledFlag = outcome == FillOutcome::Ok;
    if (!compiledFlag) {
        rows.clear();
        rows.shrink_to_fit();
        pool.clear();
        pool.shrink_to_fit();
        bytes = 0;
    }
    compileNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

RouteTable::FillOutcome
RouteTable::fill()
{
    const topo::Network &net = rel.network();
    const std::size_t chanRows = wide
        ? numChannels * numNodes * numNodes
        : numChannels * numNodes;
    injBase = chanRows;
    const std::size_t rowCount = chanRows + numNodes * numNodes;
    const std::uint64_t rowBytes =
        static_cast<std::uint64_t>(rowCount) * sizeof(Row);
    if (rowBytes > opts.memoryBudgetBytes)
        return FillOutcome::OverBudget;
    rows.assign(rowCount, Row{});
    bytes = rowBytes;

    const auto store = [&](std::size_t r,
                           const std::vector<topo::ChannelId> &cand) {
        rows[r].begin = static_cast<std::uint32_t>(pool.size());
        rows[r].len = static_cast<std::uint32_t>(cand.size());
        pool.insert(pool.end(), cand.begin(), cand.end());
        bytes = rowBytes
            + static_cast<std::uint64_t>(pool.size())
                * sizeof(topo::ChannelId);
        return bytes <= opts.memoryBudgetBytes;
    };

    // Reachability frontier, restarted per BFS pass without clearing:
    // seen[c] == stamp marks c visited in the current pass.
    std::vector<std::uint32_t> seen(numChannels, 0);
    std::uint32_t stamp = 0;
    std::vector<topo::ChannelId> frontier;
    const auto push = [&](const std::vector<topo::ChannelId> &cand) {
        for (const topo::ChannelId c : cand) {
            if (seen[c] != stamp) {
                seen[c] = stamp;
                frontier.push_back(c);
            }
        }
    };

    if (!wide) {
        // One pass per destination, seeded by every source's injection
        // candidates (the relation ignores the source, so the channels
        // a dest-bound packet can occupy are this union).
        std::size_t spotTick = 0;
        const topo::NodeId probes[] = {
            0, static_cast<topo::NodeId>(numNodes / 2),
            static_cast<topo::NodeId>(numNodes - 1)};
        for (topo::NodeId dest = 0; dest < numNodes; ++dest) {
            ++stamp;
            frontier.clear();
            for (topo::NodeId src = 0; src < numNodes; ++src) {
                if (src == dest)
                    continue; // traffic never self-addresses
                const auto inj = rel.candidates(cdg::kInjectionChannel,
                                                src, src, dest);
                if (!store(rowIndex(cdg::kInjectionChannel, src, dest),
                           inj))
                    return FillOutcome::OverBudget;
                push(inj);
            }
            for (std::size_t i = 0; i < frontier.size(); ++i) {
                const topo::ChannelId in = frontier[i];
                const topo::NodeId at = headOf(net, in);
                // Packets eject on arrival; the row is never queried.
                if (at == dest)
                    continue;
                const auto cand = rel.candidates(in, at, at, dest);
                if (!store(rowIndex(in, at, dest), cand))
                    return FillOutcome::OverBudget;
                // Trust but verify: sample the Independent declaration
                // on reachable states only (unreachable probes may
                // trip relation invariant asserts).
                if ((spotTick++ & 15u) == 0) {
                    for (const topo::NodeId s : probes)
                        if (s != at
                            && rel.candidates(in, at, s, dest) != cand)
                            return FillOutcome::SrcMismatch;
                }
                push(cand);
            }
        }
        return FillOutcome::Ok;
    }

    // Wide: one pass per (src, dest) — every probed (in, src, dest) is
    // a state some real packet can occupy, by induction from injection.
    for (topo::NodeId src = 0; src < numNodes; ++src) {
        for (topo::NodeId dest = 0; dest < numNodes; ++dest) {
            if (dest == src)
                continue; // traffic never self-addresses
            ++stamp;
            frontier.clear();
            const auto inj = rel.candidates(cdg::kInjectionChannel, src,
                                            src, dest);
            if (!store(rowIndex(cdg::kInjectionChannel, src, dest), inj))
                return FillOutcome::OverBudget;
            push(inj);
            for (std::size_t i = 0; i < frontier.size(); ++i) {
                const topo::ChannelId in = frontier[i];
                const topo::NodeId at = headOf(net, in);
                if (at == dest)
                    continue;
                const auto cand = rel.candidates(in, at, src, dest);
                if (!store(rowIndex(in, src, dest), cand))
                    return FillOutcome::OverBudget;
                push(cand);
            }
        }
    }
    return FillOutcome::Ok;
}

void
RouteTable::candidatesInto(topo::ChannelId in, topo::NodeId at,
                           topo::NodeId src, topo::NodeId dest,
                           std::vector<topo::ChannelId> &out) const
{
    ++callCount;
    if (compiledFlag) {
        const Row r = rows[rowIndex(in, src, dest)];
        out.assign(pool.begin() + r.begin,
                   pool.begin() + r.begin + r.len);
    } else {
        out = rel.candidates(in, at, src, dest);
    }
}

void
RouteTable::buildReverseIndex()
{
    revIndex.assign(numChannels, {});
    for (std::size_t r = 0; r < rows.size(); ++r)
        for (std::uint32_t k = 0; k < rows[r].len; ++k)
            revIndex[pool[rows[r].begin + k]].push_back(
                static_cast<std::uint32_t>(r));
    revBuilt = true;
}

void
RouteTable::filterDeadChannel(topo::ChannelId dead)
{
    if (!compiledFlag)
        return;
    if (!revBuilt)
        buildReverseIndex();
    if (dead >= revIndex.size())
        return;
    // In-row compaction: entries keep their relative order, matching
    // the order-preserving remove_if of FaultedRelationView exactly.
    for (const std::uint32_t r : revIndex[dead]) {
        Row &row = rows[r];
        std::uint32_t keep = 0;
        for (std::uint32_t k = 0; k < row.len; ++k) {
            const topo::ChannelId c = pool[row.begin + k];
            if (c != dead)
                pool[row.begin + keep++] = c;
        }
        row.len = keep;
    }
}

} // namespace ebda::routing
