/**
 * @file
 * Handcrafted classical routing relations used as baselines and as
 * independent cross-checks of the EbDa-derived algorithms:
 *  - DimensionOrderRouting: XY/YX and general n-dim dimension order;
 *  - WestFirstRouting, NorthLastRouting, NegativeFirstRouting: the three
 *    unique 2D turn-model algorithms (Glass-Ni);
 *  - OddEvenRouting: Chiu's ROUTE function, exactly as published;
 *  - MinimalAdaptiveRouting: fully unrestricted minimal adaptive — the
 *    deliberately deadlock-PRONE negative control (its CDG is cyclic on
 *    any ring of turns), used to exercise the simulator's watchdog and
 *    deadlock forensics.
 *
 * All relations route minimally and may use every VC of a chosen link
 * (VC transitions along the same direction cannot close a cycle under
 * the restricted algorithms' orderings).
 */

#ifndef EBDA_ROUTING_BASELINES_HH
#define EBDA_ROUTING_BASELINES_HH

#include <vector>

#include "cdg/routing_relation.hh"

namespace ebda::routing {

/** Shared implementation scaffolding for mesh relations. */
class MeshRouting : public cdg::RoutingRelation
{
  public:
    explicit MeshRouting(const topo::Network &net);

    const topo::Network &network() const override { return net; }

    /** Every mesh baseline here ignores `src` — except Odd-Even, which
     *  overrides this back to Dependent. */
    cdg::SrcSensitivity
    srcSensitivity() const override
    {
        return cdg::SrcSensitivity::Independent;
    }

  protected:
    /** All VCs of the link leaving `at` along (dim, sign), appended to
     *  out. No-op when the link does not exist. */
    void appendLink(std::vector<topo::ChannelId> &out, topo::NodeId at,
                    std::uint8_t dim, core::Sign sign) const;

    /** Offset of dest from at along dim (torus-aware minimal). */
    int offset(topo::NodeId at, topo::NodeId dest, std::uint8_t d) const;

    const topo::Network &net;
};

/**
 * Deterministic dimension-order routing: resolve dimensions in the given
 * priority order ({0,1} = XY, {1,0} = YX).
 */
class DimensionOrderRouting : public MeshRouting
{
  public:
    DimensionOrderRouting(const topo::Network &net,
                          std::vector<std::uint8_t> dim_order);

    /** Convenience XY order (0, 1, ..., n-1). */
    static DimensionOrderRouting xy(const topo::Network &net);

    /** Convenience YX order (n-1, ..., 1, 0). */
    static DimensionOrderRouting yx(const topo::Network &net);

    std::vector<topo::ChannelId> candidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId src,
        topo::NodeId dest) const override;

    std::string name() const override;

  private:
    std::vector<std::uint8_t> order;
};

/** Glass-Ni West-First: route west first; no turn into the west. */
class WestFirstRouting : public MeshRouting
{
  public:
    explicit WestFirstRouting(const topo::Network &net);

    std::vector<topo::ChannelId> candidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId src,
        topo::NodeId dest) const override;

    std::string name() const override { return "West-First"; }
};

/** Glass-Ni North-Last: go north only when nothing else is productive. */
class NorthLastRouting : public MeshRouting
{
  public:
    explicit NorthLastRouting(const topo::Network &net);

    std::vector<topo::ChannelId> candidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId src,
        topo::NodeId dest) const override;

    std::string name() const override { return "North-Last"; }
};

/** Glass-Ni Negative-First: all negative hops before any positive hop. */
class NegativeFirstRouting : public MeshRouting
{
  public:
    explicit NegativeFirstRouting(const topo::Network &net);

    std::vector<topo::ChannelId> candidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId src,
        topo::NodeId dest) const override;

    std::string name() const override { return "Negative-First"; }
};

/**
 * Chiu's Odd-Even minimal adaptive routing (the ROUTE function of the
 * original paper): EN/ES turns are forbidden at even columns, NW/SW
 * turns at odd columns; the availability rules below encode the dead-end
 * avoidance in closed form.
 */
class OddEvenRouting : public MeshRouting
{
  public:
    explicit OddEvenRouting(const topo::Network &net);

    std::vector<topo::ChannelId> candidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId src,
        topo::NodeId dest) const override;

    std::string name() const override { return "Odd-Even"; }

    /** Chiu's ROUTE consults the source column parity. */
    cdg::SrcSensitivity
    srcSensitivity() const override
    {
        return cdg::SrcSensitivity::Dependent;
    }
};

/**
 * Fully unrestricted minimal adaptive routing: every profitable
 * dimension, every VC of the chosen link, no turn or VC restriction at
 * all. NOT deadlock-free on anything with a turn cycle (any 2D+ mesh)
 * and certainly not on a torus — this is the negative control for the
 * Dally verifier and the runtime witness generator for the simulator's
 * deadlock forensics. Works on meshes and tori.
 */
class MinimalAdaptiveRouting : public cdg::RoutingRelation
{
  public:
    explicit MinimalAdaptiveRouting(const topo::Network &net) : net(net) {}

    std::vector<topo::ChannelId> candidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId src,
        topo::NodeId dest) const override;

    std::string name() const override { return "Minimal-Adaptive"; }

    const topo::Network &network() const override { return net; }

    cdg::SrcSensitivity
    srcSensitivity() const override
    {
        return cdg::SrcSensitivity::Independent;
    }

  private:
    const topo::Network &net;
};

} // namespace ebda::routing

#endif // EBDA_ROUTING_BASELINES_HH
