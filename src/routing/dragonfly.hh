/**
 * @file
 * Minimal dragonfly routing with an escape VC, the baseline engine of
 * the dragonfly literature (Dally's VC-escalation discipline; the
 * "minimal with escape VCs" class in the InfiniBand dragonfly engine
 * taxonomy).
 *
 * A minimal route is local-global-local: a hop inside the source group
 * to the router owning the global link toward the destination group,
 * the global hop, and a hop inside the destination group to the
 * destination router (degenerate hops are skipped). Cyclic dependencies
 * local -> global -> local -> global ... are broken by VC escalation:
 *
 *   - local hop before the global hop: VC 0 only,
 *   - global hop: any VC of the global link,
 *   - local hop after the global hop: VCs >= 1 only,
 *   - purely intra-group packets: any VC (single hop, then ejection).
 *
 * The channel dependency graph is then layered (local vc0 -> global ->
 * local vc>=1) and acyclic. Construction with vc_escalation = false
 * drops the escalation (every local hop uses VC 0) and is the
 * deliberately deadlock-PRONE negative control for checker tests.
 *
 * The relation is structural: it derives groups from node ids
 * (group = node / a) and discovers local/global links from the graph,
 * so it routes networks declared by the dragonfly() factory and by
 * ASCII maps alike. Construction throws std::invalid_argument if the
 * network is not a canonical dragonfly for the given group size.
 */

#ifndef EBDA_ROUTING_DRAGONFLY_HH
#define EBDA_ROUTING_DRAGONFLY_HH

#include <vector>

#include "cdg/routing_relation.hh"

namespace ebda::routing {

/**
 * Minimal dragonfly routing with VC escalation over the canonical
 * dragonfly (one global link between every pair of groups).
 */
class DragonflyMinRouting : public cdg::RoutingRelation
{
  public:
    /**
     * @param net network whose structure is a canonical dragonfly
     * @param a   routers per group (node id = group * a + router)
     * @param vc_escalation true for the deadlock-free engine; false for
     *                      the deadlock-prone negative control
     */
    DragonflyMinRouting(const topo::Network &net, int a,
                        bool vc_escalation = true);

    std::vector<topo::ChannelId> candidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId src,
        topo::NodeId dest) const override;

    std::string
    name() const override
    {
        return escalate ? "Dragonfly-Min" : "Dragonfly-Min/NoEscape";
    }

    cdg::SrcSensitivity
    srcSensitivity() const override
    {
        return cdg::SrcSensitivity::Independent;
    }

    const topo::Network &network() const override { return net; }

    int routersPerGroup() const { return a; }
    int numGroups() const { return groups; }

  private:
    int group(topo::NodeId n) const { return static_cast<int>(n) / a; }

    const topo::Network &net;
    const int a;
    int groups = 0;
    bool escalate = true;

    /** groupGlobal[g * groups + g']: the unique global link g -> g'. */
    std::vector<topo::LinkId> groupGlobal;
    /** localLink[u * a + r]: link from u to router r of u's group. */
    std::vector<topo::LinkId> localLink;
};

} // namespace ebda::routing

#endif // EBDA_ROUTING_DRAGONFLY_HH
