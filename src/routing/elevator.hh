/**
 * @file
 * Elevator-First routing (Dubois et al.) for vertically partially
 * connected 3D meshes — the deterministic baseline of Section 6.3.
 *
 * Packets route XY (dimension order) on VC 0 to a chosen elevator
 * column, ride the vertical links to the destination layer, then route
 * XY on VC 1 to the destination. VC requirements are (2, 2, 1) along
 * (X, Y, Z), matching the paper. The elevator for a (source, dest) pair
 * is the one nearest the source (ties by catalogue order), a
 * deterministic choice that keeps the relation memoryless.
 */

#ifndef EBDA_ROUTING_ELEVATOR_HH
#define EBDA_ROUTING_ELEVATOR_HH

#include <utility>
#include <vector>

#include "cdg/routing_relation.hh"

namespace ebda::routing {

/**
 * Deterministic Elevator-First routing.
 */
class ElevatorFirstRouting : public cdg::RoutingRelation
{
  public:
    /**
     * @param net       a partially connected 3D mesh with VCs >= (2,2,1)
     * @param elevators the (x, y) columns owning vertical links (must
     *                  match the columns the network was built with)
     */
    ElevatorFirstRouting(const topo::Network &net,
                         std::vector<std::pair<int, int>> elevators);

    std::vector<topo::ChannelId> candidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId src,
        topo::NodeId dest) const override;

    std::string name() const override { return "Elevator-First"; }

    const topo::Network &network() const override { return net; }

    /** The elevator choice is a function of the source. */
    cdg::SrcSensitivity
    srcSensitivity() const override
    {
        return cdg::SrcSensitivity::Dependent;
    }

    /** candidates() asserts on phase states no real packet can reach
     *  (e.g. riding a vertical link with no Z offset for this source),
     *  so exhaustive probing would abort — table compilers must fall
     *  back to the virtual path. */
    bool probeSafe() const override { return false; }

    /** The elevator column used for packets of the given source. */
    std::pair<int, int> elevatorFor(topo::NodeId src) const;

  private:
    /** XY dimension-order hop toward (x, y) on the given VC. */
    std::vector<topo::ChannelId> xyHop(topo::NodeId at, int x, int y,
                                       int vc) const;

    const topo::Network &net;
    std::vector<std::pair<int, int>> elevators;
};

} // namespace ebda::routing

#endif // EBDA_ROUTING_ELEVATOR_HH
