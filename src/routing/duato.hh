/**
 * @file
 * Duato-style fully adaptive routing: every VC except the last on each
 * link is an *adaptive* channel usable toward any productive direction;
 * the last VC is the *escape* channel routed by deterministic dimension
 * order. Deadlock freedom follows from Duato's theorem (the escape
 * subnetwork is acyclic and always reachable), NOT from Dally's: the
 * full channel dependency graph is deliberately cyclic, so the relation
 * CDG check is expected to fail on this relation — the benches use that
 * contrast to illustrate the difference between the two theories
 * discussed in Section 2 of the paper.
 *
 * Duato's guarantee additionally requires atomic VC buffers (one packet
 * per buffer, header at the head — Assumption 3 of his theory, quoted in
 * the paper); the simulator enforces this when configured with
 * atomicVcAllocation.
 */

#ifndef EBDA_ROUTING_DUATO_HH
#define EBDA_ROUTING_DUATO_HH

#include "cdg/routing_relation.hh"

namespace ebda::routing {

/**
 * Fully adaptive minimal routing with a dimension-order escape VC.
 */
class DuatoFullyAdaptive : public cdg::RoutingRelation
{
  public:
    /** Requires every dimension to have at least 2 VCs (>= 1 adaptive
     *  plus the escape). */
    explicit DuatoFullyAdaptive(const topo::Network &net);

    std::vector<topo::ChannelId> candidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId src,
        topo::NodeId dest) const override;

    std::string name() const override { return "Duato-FA"; }

    const topo::Network &network() const override { return net; }

    cdg::SrcSensitivity
    srcSensitivity() const override
    {
        return cdg::SrcSensitivity::Independent;
    }

    /** True when the channel is the escape VC of its link. */
    bool isEscape(topo::ChannelId c) const;

  private:
    const topo::Network &net;
};

} // namespace ebda::routing

#endif // EBDA_ROUTING_DUATO_HH
