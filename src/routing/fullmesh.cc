#include "fullmesh.hh"

#include <stdexcept>

namespace ebda::routing {

using topo::ChannelId;
using topo::LinkId;
using topo::NodeId;

FullMeshRouting::FullMeshRouting(const topo::Network &net_, Mode mode_)
    : net(net_), mode(mode_)
{
    const std::size_t n = net.numNodes();
    if (n < 2)
        throw std::invalid_argument(
            "fullmesh routing: need >= 2 nodes (got " + std::to_string(n)
            + ")");
    directLink.assign(n * n, topo::kInvalidId);
    for (NodeId u = 0; u < n; ++u)
        for (NodeId v = 0; v < n; ++v) {
            if (u == v)
                continue;
            const auto l = net.linkBetween(u, v);
            if (!l)
                throw std::invalid_argument(
                    "fullmesh routing: network is not a complete graph; "
                    "missing link "
                    + net.nodeName(u) + "->" + net.nodeName(v));
            directLink[u * n + v] = *l;
        }
}

std::vector<ChannelId>
FullMeshRouting::candidates(ChannelId in, NodeId at, NodeId /*src*/,
                            NodeId dest) const
{
    std::vector<ChannelId> out;
    auto push_all = [&](LinkId l) {
        for (int v = 0; v < net.vcsOnLink(l); ++v)
            out.push_back(net.channel(l, v));
    };

    // The direct link is always legal (and the only choice once the
    // packet sits on an intermediate node).
    push_all(direct(at, dest));
    if (in != cdg::kInjectionChannel)
        return out;

    if (mode == Mode::Ascend) {
        // Ascend-then-descend: intermediates above both endpoints.
        for (NodeId m = std::max(at, dest) + 1; m < net.numNodes(); ++m)
            push_all(direct(at, m));
    } else {
        for (NodeId m = 0; m < net.numNodes(); ++m)
            if (m != at && m != dest)
                push_all(direct(at, m));
    }
    return out;
}

} // namespace ebda::routing
