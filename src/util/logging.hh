/**
 * @file
 * Lightweight logging and error-reporting helpers in the spirit of
 * gem5's base/logging.hh.
 *
 * Two error functions are provided:
 *  - panic():  something happened that should never happen regardless of
 *              what the user does, i.e. an internal library bug. Aborts.
 *  - fatal():  the computation cannot continue due to a user-caused
 *              condition (bad configuration, invalid arguments). Exits.
 *
 * Two status functions are provided:
 *  - warn():   something might be subtly off but execution can continue.
 *  - inform(): a purely informational status message.
 */

#ifndef EBDA_UTIL_LOGGING_HH
#define EBDA_UTIL_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ebda {

namespace detail {

/** Format a parameter pack into a single string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message; use for internal invariant violations. */
#define EBDA_PANIC(...) \
    ::ebda::detail::panicImpl(__FILE__, __LINE__, \
                              ::ebda::detail::concat(__VA_ARGS__))

/** Exit with a message; use for user-caused unrecoverable conditions. */
#define EBDA_FATAL(...) \
    ::ebda::detail::fatalImpl(__FILE__, __LINE__, \
                              ::ebda::detail::concat(__VA_ARGS__))

/** Print a warning that execution continues past. */
#define EBDA_WARN(...) \
    ::ebda::detail::warnImpl(::ebda::detail::concat(__VA_ARGS__))

/** Print an informational status message. */
#define EBDA_INFORM(...) \
    ::ebda::detail::informImpl(::ebda::detail::concat(__VA_ARGS__))

/**
 * Assert a library invariant with a formatted message. Unlike the C
 * assert() this is active in all build types: the checks guard theory-level
 * soundness properties whose silent violation would invalidate results.
 */
#define EBDA_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            EBDA_PANIC("assertion '", #cond, "' failed: ", \
                       ::ebda::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

} // namespace ebda

#endif // EBDA_UTIL_LOGGING_HH
