/**
 * @file
 * A minimal JSON writer for machine-readable tool output (ebda_tool
 * --json). Emission only — the project never parses JSON — with
 * correct string escaping and stable key order (insertion order).
 */

#ifndef EBDA_UTIL_JSON_HH
#define EBDA_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ebda {

/**
 * Builder for one JSON value tree. Usage:
 * @code
 *   JsonWriter w;
 *   w.beginObject();
 *   w.field("latency", 12.5);
 *   w.field("deadlocked", false);
 *   w.beginArray("hops");
 *   w.value(1); w.value(2);
 *   w.end();   // array
 *   w.end();   // object
 *   std::cout << w.str();
 * @endcode
 */
class JsonWriter
{
  public:
    /** Open the root (or a nested) object. With a key when inside an
     *  object. */
    void beginObject();
    void beginObject(const std::string &key);

    /** Open an array. */
    void beginArray();
    void beginArray(const std::string &key);

    /** Close the innermost object/array. */
    void end();

    /** Key/value fields inside an object. */
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, double value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, int value);
    void field(const std::string &key, bool value);

    /** Bare values inside an array. */
    void value(const std::string &v);
    void value(double v);
    void value(std::uint64_t v);
    void value(int v);
    void value(bool v);

    /** The serialized document (valid once all scopes are closed). */
    const std::string &str() const { return out; }

    /** True when every begun scope has been ended. */
    bool complete() const { return depth == 0 && started; }

  private:
    void comma();
    void key(const std::string &k);
    static std::string escape(const std::string &s);

    std::string out;
    int depth = 0;
    bool started = false;
    /** Whether the current scope already holds an element. */
    std::vector<bool> hasElement;
    /** Closing character per open scope ('}' or ']'). */
    std::vector<char> closer;
};

} // namespace ebda

#endif // EBDA_UTIL_JSON_HH
