/**
 * @file
 * Minimal JSON support: a writer for machine-readable tool output
 * (ebda_tool --json, sweep results) and a small recursive-descent
 * parser (JsonValue / parseJson) for sweep specs and the sweep result
 * cache. The writer emits correct string escaping with stable key
 * order (insertion order); the parser accepts strict JSON and keeps
 * the raw lexeme of numbers so 64-bit integers (e.g. RNG seeds)
 * round-trip exactly.
 */

#ifndef EBDA_UTIL_JSON_HH
#define EBDA_UTIL_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ebda {

/**
 * Builder for one JSON value tree. Usage:
 * @code
 *   JsonWriter w;
 *   w.beginObject();
 *   w.field("latency", 12.5);
 *   w.field("deadlocked", false);
 *   w.beginArray("hops");
 *   w.value(1); w.value(2);
 *   w.end();   // array
 *   w.end();   // object
 *   std::cout << w.str();
 * @endcode
 */
class JsonWriter
{
  public:
    /** Open the root (or a nested) object. With a key when inside an
     *  object. */
    void beginObject();
    void beginObject(const std::string &key);

    /** Open an array. */
    void beginArray();
    void beginArray(const std::string &key);

    /** Close the innermost object/array. */
    void end();

    /** Key/value fields inside an object. */
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, double value);
    /** Double with explicit significant digits; 17 round-trips any
     *  IEEE-754 double exactly through parse/print. */
    void field(const std::string &key, double value, int sigDigits);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, int value);
    void field(const std::string &key, bool value);

    /** Bare values inside an array. */
    void value(const std::string &v);
    void value(double v);
    void value(std::uint64_t v);
    void value(int v);
    void value(bool v);

    /** The serialized document (valid once all scopes are closed). */
    const std::string &str() const { return out; }

    /** True when every begun scope has been ended. */
    bool complete() const { return depth == 0 && started; }

  private:
    void comma();
    void key(const std::string &k);
    static std::string escape(const std::string &s);

    std::string out;
    int depth = 0;
    bool started = false;
    /** Whether the current scope already holds an element. */
    std::vector<bool> hasElement;
    /** Closing character per open scope ('}' or ']'). */
    std::vector<char> closer;
};

/**
 * One parsed JSON value. Objects preserve member insertion order;
 * numbers keep their raw lexeme so unsigned 64-bit values larger than
 * 2^53 are recoverable without double rounding.
 */
class JsonValue
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Type type() const { return kind; }
    bool isNull() const { return kind == Type::Null; }
    bool isBool() const { return kind == Type::Bool; }
    bool isNumber() const { return kind == Type::Number; }
    bool isString() const { return kind == Type::String; }
    bool isArray() const { return kind == Type::Array; }
    bool isObject() const { return kind == Type::Object; }

    /** Typed accessors; the fallback is returned on type mismatch. */
    bool asBool(bool fallback = false) const;
    double asDouble(double fallback = 0.0) const;
    int asInt(int fallback = 0) const;
    /** Exact for integer lexemes up to 2^64-1 (falls back to the
     *  double value otherwise). */
    std::uint64_t asU64(std::uint64_t fallback = 0) const;
    const std::string &asString() const { return text; }

    /** Array access. */
    std::size_t size() const { return items.size(); }
    const JsonValue &at(std::size_t i) const { return items[i]; }
    const std::vector<JsonValue> &elements() const { return items; }

    /** Object access: member by key (nullptr when absent). */
    const JsonValue *find(const std::string &key) const;
    const std::vector<std::pair<std::string, JsonValue>> &members() const
    {
        return fields;
    }

  private:
    friend class JsonParser;

    Type kind = Type::Null;
    bool boolean = false;
    double number = 0.0;
    /** String payload, or the raw number lexeme. */
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;
};

/**
 * Parse one JSON document (strict grammar; trailing garbage is an
 * error). Returns std::nullopt and sets *error on malformed input.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

} // namespace ebda

#endif // EBDA_UTIL_JSON_HH
