/**
 * @file
 * Statistics accumulators used by the simulator and the benches: a
 * streaming mean/variance accumulator (Welford) and a bounded histogram
 * with percentile queries.
 */

#ifndef EBDA_UTIL_STATS_HH
#define EBDA_UTIL_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ebda {

/**
 * Streaming accumulator of count/mean/variance/min/max using Welford's
 * numerically stable online algorithm.
 */
class StatAccumulator
{
  public:
    /** Reset to the empty state. */
    void reset();

    /** Add one sample. Inline: the simulator records latency and hop
     *  samples for every ejected packet. */
    void
    add(double x)
    {
        ++n;
        const double delta = x - m;
        m += delta / static_cast<double>(n);
        m2 += delta * (x - m);
        s += x;
        minV = std::min(minV, x);
        maxV = std::max(maxV, x);
    }

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const StatAccumulator &other);

    /** Number of samples added. */
    std::uint64_t count() const { return n; }

    /** Sample mean; 0 when empty. */
    double mean() const { return n ? m : 0.0; }

    /** Unbiased sample variance; 0 for fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample; +inf when empty. */
    double min() const { return minV; }

    /** Largest sample; -inf when empty. */
    double max() const { return maxV; }

    /** Exact running sum of all samples (tracked directly; the mean
     *  times the count reconstruction loses low-order bits once sample
     *  magnitudes differ widely). */
    double sum() const { return s; }

  private:
    std::uint64_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double s = 0.0;
    double minV = std::numeric_limits<double>::infinity();
    double maxV = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width integer histogram with an overflow bucket, supporting
 * percentile queries. Used for packet-latency distributions.
 */
class Histogram
{
  public:
    /**
     * @param num_buckets number of unit-width buckets before overflow
     */
    explicit Histogram(std::size_t num_buckets = 1024);

    /** Clear all buckets. */
    void reset();

    /** Record one (non-negative) sample; values beyond the bucket range
     *  land in the overflow bucket but still count for mean/percentiles
     *  computed from the exact tail list. Inline: one call per ejected
     *  measured packet. */
    void
    add(std::uint64_t value)
    {
        if (value < buckets.size()) {
            ++buckets[value];
        } else {
            overflow.push_back(value);
            overflowSorted = false;
        }
        ++total;
        sumV += static_cast<double>(value);
        maxV = std::max(maxV, value);
    }

    /** Merge another histogram into this one. The bucket ranges must
     *  match (both sides built with the same num_buckets); overflow
     *  samples are concatenated. Deterministic for a fixed merge
     *  order — the sharded scheduler folds per-shard histograms in
     *  ascending shard order. */
    void merge(const Histogram &other);

    /** Total samples recorded. */
    std::uint64_t count() const { return total; }

    /** Mean of recorded samples. */
    double mean() const;

    /** The q-quantile (q in [0,1]) of recorded samples; exact for values
     *  in range, exact as well for overflow values (kept individually). */
    std::uint64_t percentile(double q) const;

    /** Largest recorded value. */
    std::uint64_t max() const { return maxV; }

  private:
    std::vector<std::uint64_t> buckets;
    /** Overflow samples kept exactly; rare by construction. */
    mutable std::vector<std::uint64_t> overflow;
    mutable bool overflowSorted = true;
    std::uint64_t total = 0;
    double sumV = 0.0;
    std::uint64_t maxV = 0;
};

} // namespace ebda

#endif // EBDA_UTIL_STATS_HH
