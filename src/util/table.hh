/**
 * @file
 * Plain-text table rendering used by the bench harnesses to print the
 * reproduced paper tables/series in aligned columns, plus a small CSV
 * writer for post-processing.
 */

#ifndef EBDA_UTIL_TABLE_HH
#define EBDA_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace ebda {

/**
 * A simple column-aligned text table. Cells are strings; numeric
 * convenience overloads format with sensible defaults.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal rule between row groups. */
    void addRule();

    /** Render with column alignment to an ostream. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string toString() const;

    /** Write as CSV (no alignment, commas escaped by quoting). */
    void writeCsv(std::ostream &os) const;

    /** Number of data rows (rules excluded). */
    std::size_t numRows() const;

    /** Format helpers for numeric cells. */
    static std::string num(double v, int precision = 3);
    static std::string num(std::uint64_t v);
    static std::string num(int v);

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool rule = false;
    };

    std::vector<std::string> header;
    std::vector<Row> rows;
};

} // namespace ebda

#endif // EBDA_UTIL_TABLE_HH
