#include "table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ebda {

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows.push_back(Row{std::move(cells), false});
}

void
TextTable::addRule()
{
    rows.push_back(Row{{}, true});
}

std::size_t
TextTable::numRows() const
{
    std::size_t n = 0;
    for (const auto &r : rows)
        if (!r.rule)
            ++n;
    return n;
}

void
TextTable::print(std::ostream &os) const
{
    // Compute column widths over header and all rows.
    std::vector<std::size_t> width;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > width.size())
            width.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    grow(header);
    for (const auto &r : rows)
        if (!r.rule)
            grow(r.cells);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < width.size(); ++i) {
            const std::string &c = i < cells.size() ? cells[i] : "";
            os << "| " << std::left << std::setw(static_cast<int>(width[i]))
               << c << ' ';
        }
        os << "|\n";
    };
    auto rule = [&]() {
        for (std::size_t w : width)
            os << '+' << std::string(w + 2, '-');
        os << "+\n";
    };

    rule();
    if (!header.empty()) {
        emit(header);
        rule();
    }
    for (const auto &r : rows) {
        if (r.rule)
            rule();
        else
            emit(r.cells);
    }
    rule();
}

std::string
TextTable::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

void
TextTable::writeCsv(std::ostream &os) const
{
    auto cell = [&](const std::string &c) {
        if (c.find_first_of(",\"\n") == std::string::npos) {
            os << c;
            return;
        }
        os << '"';
        for (char ch : c) {
            if (ch == '"')
                os << '"';
            os << ch;
        }
        os << '"';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ',';
            cell(cells[i]);
        }
        os << '\n';
    };
    if (!header.empty())
        line(header);
    for (const auto &r : rows)
        if (!r.rule)
            line(r.cells);
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
TextTable::num(int v)
{
    return std::to_string(v);
}

} // namespace ebda
