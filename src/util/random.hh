/**
 * @file
 * Deterministic pseudo-random number generation for simulation and
 * property-based testing.
 *
 * The simulator requires a fast, reproducible generator whose streams can
 * be split per node so results do not depend on event interleaving. We use
 * xoshiro256** (Blackman & Vigna) seeded through SplitMix64, the
 * recommended seeding procedure for the xoshiro family.
 */

#ifndef EBDA_UTIL_RANDOM_HH
#define EBDA_UTIL_RANDOM_HH

#include <array>
#include <cstdint>

namespace ebda {

/**
 * SplitMix64: a tiny 64-bit generator used to seed xoshiro streams and to
 * derive independent substreams from a master seed.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * xoshiro256**: the main PRNG. Passes BigCrush; period 2^256 - 1.
 *
 * The draw methods are defined inline: the simulator performs one
 * Bernoulli draw per node per cycle, so the generator is hot-loop code.
 */
class Rng
{
  public:
    /** Construct from a master seed; substream selects an independent
     *  stream (e.g. one per network node). */
    explicit Rng(std::uint64_t seed, std::uint64_t substream = 0);

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;

        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Lemire's nearly-divisionless unbiased bounded generation.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        std::uint64_t l = static_cast<std::uint64_t>(m);
        if (l < bound) {
            std::uint64_t t = -bound % bound;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        // 53 random mantissa bits -> uniform in [0, 1).
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool
    nextBool(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    nextRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            nextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** @name Raw state access
     *  For block-batched draw engines (sim/event_queue.cc) that advance
     *  many streams in lockstep and must hand a stream back to / take
     *  it over from a live Rng without perturbing the sequence. A
     *  stream restored via setState continues bit-identically.
     *  @{ */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {s[0], s[1], s[2], s[3]};
    }

    void
    setState(const std::array<std::uint64_t, 4> &state_)
    {
        s[0] = state_[0];
        s[1] = state_[1];
        s[2] = state_[2];
        s[3] = state_[3];
    }
    /** @} */

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace ebda

#endif // EBDA_UTIL_RANDOM_HH
