/**
 * @file
 * Deterministic pseudo-random number generation for simulation and
 * property-based testing.
 *
 * The simulator requires a fast, reproducible generator whose streams can
 * be split per node so results do not depend on event interleaving. We use
 * xoshiro256** (Blackman & Vigna) seeded through SplitMix64, the
 * recommended seeding procedure for the xoshiro family.
 */

#ifndef EBDA_UTIL_RANDOM_HH
#define EBDA_UTIL_RANDOM_HH

#include <cstdint>

namespace ebda {

/**
 * SplitMix64: a tiny 64-bit generator used to seed xoshiro streams and to
 * derive independent substreams from a master seed.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * xoshiro256**: the main PRNG. Passes BigCrush; period 2^256 - 1.
 */
class Rng
{
  public:
    /** Construct from a master seed; substream selects an independent
     *  stream (e.g. one per network node). */
    explicit Rng(std::uint64_t seed, std::uint64_t substream = 0);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p. */
    bool nextBool(double p);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    nextRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            nextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
    }

  private:
    std::uint64_t s[4];
};

} // namespace ebda

#endif // EBDA_UTIL_RANDOM_HH
