/**
 * @file
 * Minimal --key value command-line parser shared by the ebda_tool and
 * ebda_sweep front ends.
 *
 * Accepted forms:
 *   --key value     value = the next token, unless it is itself an
 *                   option (starts with "--" and does not parse as a
 *                   number, so negative values like --delta -0.5 or
 *                   even --delta --5 are taken as values);
 *   --key=value     unambiguous for any value, including ones that
 *                   begin with '-'/'--';
 *   --key           boolean flag (stored as "true").
 *
 * Unknown positional tokens are an error reported via error().
 */

#ifndef EBDA_UTIL_CLI_HH
#define EBDA_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>

namespace ebda {

/** Parsed --key value argument map. */
class Args
{
  public:
    /** Parse argv[first..argc). Check error() afterwards. */
    Args(int argc, char **argv, int first);

    /** Value of --key, or fallback when absent. */
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;

    /** True when --key was given (with or without a value). */
    bool has(const std::string &key) const { return values.count(key); }

    /** @name Typed getters.
     *  Return fallback and record an error() when the value does not
     *  parse. @{ */
    double getDouble(const std::string &key, double fallback) const;
    long getInt(const std::string &key, long fallback) const;
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t fallback) const;
    /** @} */

    /** Empty when parsing succeeded. */
    const std::string &error() const { return bad; }

  private:
    /** Full-token numeric check ("-0.5", "3e-2", ...). */
    static bool looksNumeric(const std::string &token);

    std::map<std::string, std::string> values;
    /** Parse/typed-getter diagnostics (getters are logically const). */
    mutable std::string bad;
};

} // namespace ebda

#endif // EBDA_UTIL_CLI_HH
