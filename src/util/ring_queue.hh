/**
 * @file
 * A growable FIFO ring queue with amortised-allocation-free steady
 * state: capacity doubles on overflow and is never returned, so once a
 * queue has seen its high-water mark, push/pop/erase perform no heap
 * allocation. The simulator's per-node source queues use this instead
 * of std::deque, whose chunked storage allocates and frees blocks as
 * the head crosses chunk boundaries even at constant occupancy.
 */

#ifndef EBDA_UTIL_RING_QUEUE_HH
#define EBDA_UTIL_RING_QUEUE_HH

#include <cassert>
#include <cstddef>
#include <vector>

namespace ebda {

/** FIFO over a power-of-two-free contiguous ring; element k (from the
 *  front) lives at `store[(head + k) % store.size()]`. */
template <typename T>
class RingQueue
{
  public:
    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return store.size(); }

    /** Grow the backing store to hold at least `n` elements. */
    void
    reserve(std::size_t n)
    {
        if (n > store.size())
            regrow(n);
    }

    const T &
    front() const
    {
        assert(count > 0);
        return store[head];
    }

    void
    push_back(const T &v)
    {
        if (count == store.size())
            regrow(count ? count * 2 : 8);
        store[wrap(head + count)] = v;
        ++count;
    }

    void
    pop_front()
    {
        assert(count > 0);
        head = wrap(head + 1);
        --count;
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

    /** Element k from the front (k < size()). */
    const T &
    operator[](std::size_t k) const
    {
        return store[wrap(head + k)];
    }

    /** Remove every element matching `pred`, preserving order, in
     *  place (no allocation). Returns the number removed. */
    template <typename Pred>
    std::size_t
    eraseIf(Pred &&pred)
    {
        std::size_t write = 0;
        for (std::size_t read = 0; read < count; ++read) {
            const T &v = store[wrap(head + read)];
            if (pred(static_cast<const T &>(v)))
                continue;
            if (write != read)
                store[wrap(head + write)] = v;
            ++write;
        }
        const std::size_t removed = count - write;
        count = write;
        return removed;
    }

  private:
    std::size_t
    wrap(std::size_t i) const
    {
        return i >= store.size() ? i - store.size() : i;
    }

    void
    regrow(std::size_t cap)
    {
        std::vector<T> next(cap);
        for (std::size_t k = 0; k < count; ++k)
            next[k] = store[wrap(head + k)];
        store.swap(next);
        head = 0;
    }

    std::vector<T> store;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace ebda

#endif // EBDA_UTIL_RING_QUEUE_HH
