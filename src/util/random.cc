#include "random.hh"

namespace ebda {

Rng::Rng(std::uint64_t seed, std::uint64_t substream)
{
    // Mix the substream id into the seed so per-node streams are
    // statistically independent.
    SplitMix64 sm(seed ^ (substream * 0x9e3779b97f4a7c15ULL
                          + 0x2545f4914f6cdd1dULL));
    for (auto &word : s)
        word = sm.next();
}

} // namespace ebda
