#include "random.hh"

namespace ebda {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t substream)
{
    // Mix the substream id into the seed so per-node streams are
    // statistically independent.
    SplitMix64 sm(seed ^ (substream * 0x9e3779b97f4a7c15ULL
                          + 0x2545f4914f6cdd1dULL));
    for (auto &word : s)
        word = sm.next();
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

} // namespace ebda
