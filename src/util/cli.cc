#include "cli.hh"

#include <cerrno>
#include <cstdlib>

namespace ebda {

bool
Args::looksNumeric(const std::string &token)
{
    // Strip one leading option dash so "--5" counts as numeric -5.
    const char *s = token.c_str();
    if (token.size() >= 2 && token[0] == '-' && token[1] == '-')
        s += 1;
    if (*s == '\0')
        return false;
    char *end = nullptr;
    std::strtod(s, &end);
    return end && *end == '\0' && end != s;
}

Args::Args(int argc, char **argv, int first)
{
    for (int i = first; i < argc; ++i) {
        std::string token = argv[i];
        if (token.rfind("--", 0) != 0) {
            bad = "unexpected argument '" + token + "'";
            return;
        }
        std::string body = token.substr(2);
        if (body.empty()) {
            bad = "bare '--' is not an option";
            return;
        }
        const auto eq = body.find('=');
        if (eq != std::string::npos) {
            values[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        if (i + 1 < argc) {
            const std::string next = argv[i + 1];
            // The next token is a value unless it is an option itself;
            // numeric tokens ("-0.5", "--5") are always values.
            if (next.rfind("--", 0) != 0 || looksNumeric(next)) {
                std::string v = next;
                if (v.rfind("--", 0) == 0 && looksNumeric(v))
                    v = v.substr(1); // "--5" was meant as -5
                values[body] = v;
                ++i;
                continue;
            }
        }
        values[body] = "true"; // boolean flag
    }
}

std::string
Args::get(const std::string &key, const std::string &fallback) const
{
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
}

double
Args::getDouble(const std::string &key, double fallback) const
{
    const auto it = values.find(key);
    if (it == values.end())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (!end || *end != '\0' || end == it->second.c_str()) {
        bad = "--" + key + " expects a number, got '" + it->second + "'";
        return fallback;
    }
    return v;
}

long
Args::getInt(const std::string &key, long fallback) const
{
    const auto it = values.find(key);
    if (it == values.end())
        return fallback;
    errno = 0;
    char *end = nullptr;
    const long v = std::strtol(it->second.c_str(), &end, 10);
    if (errno != 0 || !end || *end != '\0' || end == it->second.c_str()) {
        bad = "--" + key + " expects an integer, got '" + it->second + "'";
        return fallback;
    }
    return v;
}

std::uint64_t
Args::getU64(const std::string &key, std::uint64_t fallback) const
{
    const auto it = values.find(key);
    if (it == values.end())
        return fallback;
    errno = 0;
    char *end = nullptr;
    const auto v = std::strtoull(it->second.c_str(), &end, 10);
    if (errno != 0 || !end || *end != '\0' || end == it->second.c_str()) {
        bad = "--" + key + " expects an unsigned integer, got '"
              + it->second + "'";
        return fallback;
    }
    return v;
}

} // namespace ebda
