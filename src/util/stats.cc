#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace ebda {

void
StatAccumulator::reset()
{
    *this = StatAccumulator();
}

void
StatAccumulator::merge(const StatAccumulator &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double delta = other.m - m;
    const std::uint64_t total = n + other.n;
    m += delta * static_cast<double>(other.n) / static_cast<double>(total);
    m2 += other.m2 + delta * delta
        * static_cast<double>(n) * static_cast<double>(other.n)
        / static_cast<double>(total);
    n = total;
    s += other.s;
    minV = std::min(minV, other.minV);
    maxV = std::max(maxV, other.maxV);
}

double
StatAccumulator::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
StatAccumulator::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(std::size_t num_buckets) : buckets(num_buckets, 0)
{
    EBDA_ASSERT(num_buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    overflow.clear();
    overflowSorted = true;
    total = 0;
    sumV = 0.0;
    maxV = 0;
}

void
Histogram::merge(const Histogram &other)
{
    EBDA_ASSERT(buckets.size() == other.buckets.size(),
                "histogram merge requires matching bucket ranges");
    for (std::size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    if (!other.overflow.empty()) {
        overflow.insert(overflow.end(), other.overflow.begin(),
                        other.overflow.end());
        overflowSorted = false;
    }
    total += other.total;
    sumV += other.sumV;
    maxV = std::max(maxV, other.maxV);
}

double
Histogram::mean() const
{
    return total ? sumV / static_cast<double>(total) : 0.0;
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (total == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the desired sample (nearest-rank definition).
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    if (rank == 0)
        rank = 1;

    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank)
            return i;
    }
    if (!overflowSorted) {
        std::sort(overflow.begin(), overflow.end());
        overflowSorted = true;
    }
    const std::uint64_t idx = rank - seen - 1;
    EBDA_ASSERT(idx < overflow.size(), "percentile rank out of range");
    return overflow[idx];
}

} // namespace ebda
