#include "json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "logging.hh"

namespace ebda {

void
JsonWriter::comma()
{
    if (!hasElement.empty()) {
        if (hasElement.back())
            out += ',';
        hasElement.back() = true;
    }
}

void
JsonWriter::key(const std::string &k)
{
    comma();
    out += '"';
    out += escape(k);
    out += "\":";
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string r;
    r.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            r += "\\\"";
            break;
          case '\\':
            r += "\\\\";
            break;
          case '\n':
            r += "\\n";
            break;
          case '\t':
            r += "\\t";
            break;
          case '\r':
            r += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                r += buf;
            } else {
                r += c;
            }
        }
    }
    return r;
}

void
JsonWriter::beginObject()
{
    comma();
    out += '{';
    ++depth;
    started = true;
    hasElement.push_back(false);
    closer.push_back('}');
}

void
JsonWriter::beginObject(const std::string &k)
{
    key(k);
    out += '{';
    ++depth;
    hasElement.push_back(false);
    closer.push_back('}');
}

void
JsonWriter::beginArray()
{
    comma();
    out += '[';
    ++depth;
    started = true;
    hasElement.push_back(false);
    closer.push_back(']');
}

void
JsonWriter::beginArray(const std::string &k)
{
    key(k);
    out += '[';
    ++depth;
    hasElement.push_back(false);
    closer.push_back(']');
}

void
JsonWriter::end()
{
    EBDA_ASSERT(depth > 0, "JsonWriter::end with no open scope");
    out += closer.back();
    closer.pop_back();
    --depth;
    hasElement.pop_back();
}

void
JsonWriter::field(const std::string &k, const std::string &v)
{
    key(k);
    out += '"';
    out += escape(v);
    out += '"';
}

void
JsonWriter::field(const std::string &k, const char *v)
{
    field(k, std::string(v));
}

void
JsonWriter::field(const std::string &k, double v)
{
    key(k);
    if (std::isfinite(v)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        out += buf;
    } else {
        out += "null";
    }
}

void
JsonWriter::field(const std::string &k, std::uint64_t v)
{
    key(k);
    out += std::to_string(v);
}

void
JsonWriter::field(const std::string &k, int v)
{
    key(k);
    out += std::to_string(v);
}

void
JsonWriter::field(const std::string &k, bool v)
{
    key(k);
    out += v ? "true" : "false";
}

void
JsonWriter::value(const std::string &v)
{
    comma();
    out += '"';
    out += escape(v);
    out += '"';
}

void
JsonWriter::value(double v)
{
    comma();
    if (std::isfinite(v)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        out += buf;
    } else {
        out += "null";
    }
}

void
JsonWriter::value(std::uint64_t v)
{
    comma();
    out += std::to_string(v);
}

void
JsonWriter::value(int v)
{
    comma();
    out += std::to_string(v);
}

void
JsonWriter::value(bool v)
{
    comma();
    out += v ? "true" : "false";
}

void
JsonWriter::field(const std::string &k, double v, int sig_digits)
{
    key(k);
    if (std::isfinite(v)) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.*g", sig_digits, v);
        out += buf;
    } else {
        out += "null";
    }
}

// --------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------

bool
JsonValue::asBool(bool fallback) const
{
    return kind == Type::Bool ? boolean : fallback;
}

double
JsonValue::asDouble(double fallback) const
{
    return kind == Type::Number ? number : fallback;
}

int
JsonValue::asInt(int fallback) const
{
    return kind == Type::Number ? static_cast<int>(number) : fallback;
}

std::uint64_t
JsonValue::asU64(std::uint64_t fallback) const
{
    if (kind != Type::Number)
        return fallback;
    // Integer lexeme: parse exactly (doubles lose bits past 2^53).
    if (text.find_first_of(".eE") == std::string::npos
        && !text.empty() && text[0] != '-') {
        errno = 0;
        char *end = nullptr;
        const auto v = std::strtoull(text.c_str(), &end, 10);
        if (errno == 0 && end && *end == '\0')
            return v;
    }
    return static_cast<std::uint64_t>(number);
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Type::Object)
        return nullptr;
    for (const auto &[k, v] : fields)
        if (k == key)
            return &v;
    return nullptr;
}

/** Recursive-descent JSON parser over a string view of the input. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : in(text) {}

    std::optional<JsonValue>
    parse(std::string *error)
    {
        JsonValue v;
        if (!parseValue(v)) {
            if (error)
                *error = err + " at offset " + std::to_string(pos);
            return std::nullopt;
        }
        skipWs();
        if (pos != in.size()) {
            if (error)
                *error = "trailing characters at offset "
                         + std::to_string(pos);
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos < in.size()
               && (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n'
                   || in[pos] == '\r'))
            ++pos;
    }

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what;
        return false;
    }

    /** Current location for path-named errors ("a.b[2].c"). */
    std::string
    atPath() const
    {
        return path.empty() ? std::string("<root>") : path;
    }

    std::string
    keyPath(const std::string &key) const
    {
        return path.empty() ? key : path + '.' + key;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (in.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= in.size())
            return fail("unexpected end of input");
        const char c = in[pos];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"')
            return parseString(out);
        if (c == 't' || c == 'f') {
            out.kind = JsonValue::Type::Bool;
            out.boolean = (c == 't');
            return literal(c == 't' ? "true" : "false")
                       ? true
                       : fail("bad literal");
        }
        if (c == 'n') {
            out.kind = JsonValue::Type::Null;
            return literal("null") ? true : fail("bad literal");
        }
        return parseNumber(out);
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Type::Object;
        ++pos; // '{'
        ++depth;
        skipWs();
        if (pos < in.size() && in[pos] == '}') {
            ++pos;
            --depth;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue key;
            if (pos >= in.size() || in[pos] != '"'
                || !parseString(key))
                return fail("expected object key");
            skipWs();
            if (pos >= in.size() || in[pos] != ':')
                return fail("expected ':'");
            ++pos;
            // Duplicate keys silently shadow on lookup (find returns
            // the first match): reject them outright, naming the path.
            for (const auto &[k, existing] : out.fields) {
                if (k == key.text)
                    return fail("duplicate object key '"
                                + keyPath(key.text) + "'");
            }
            const std::size_t plen = path.size();
            if (!path.empty())
                path += '.';
            path += key.text;
            JsonValue val;
            if (!parseValue(val))
                return false;
            path.resize(plen);
            out.fields.emplace_back(key.text, std::move(val));
            skipWs();
            if (pos >= in.size())
                return fail("unterminated object");
            if (in[pos] == ',') {
                ++pos;
                continue;
            }
            if (in[pos] == '}') {
                ++pos;
                --depth;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Type::Array;
        ++pos; // '['
        ++depth;
        skipWs();
        if (pos < in.size() && in[pos] == ']') {
            ++pos;
            --depth;
            return true;
        }
        while (true) {
            const std::size_t plen = path.size();
            path += '[' + std::to_string(out.items.size()) + ']';
            JsonValue val;
            if (!parseValue(val))
                return false;
            path.resize(plen);
            out.items.push_back(std::move(val));
            skipWs();
            if (pos >= in.size())
                return fail("unterminated array");
            if (in[pos] == ',') {
                ++pos;
                continue;
            }
            if (in[pos] == ']') {
                ++pos;
                --depth;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(JsonValue &out)
    {
        out.kind = JsonValue::Type::String;
        ++pos; // '"'
        std::string s;
        while (pos < in.size()) {
            const char c = in[pos];
            if (c == '"') {
                ++pos;
                out.text = std::move(s);
                return true;
            }
            if (c == '\\') {
                if (pos + 1 >= in.size())
                    return fail("unterminated escape");
                const char e = in[pos + 1];
                pos += 2;
                switch (e) {
                  case '"': s += '"'; break;
                  case '\\': s += '\\'; break;
                  case '/': s += '/'; break;
                  case 'b': s += '\b'; break;
                  case 'f': s += '\f'; break;
                  case 'n': s += '\n'; break;
                  case 'r': s += '\r'; break;
                  case 't': s += '\t'; break;
                  case 'u': {
                    if (pos + 4 > in.size())
                        return fail("bad \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = in[pos + i];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    pos += 4;
                    // UTF-8 encode the BMP code point (surrogate
                    // pairs are passed through as-is).
                    if (cp < 0x80) {
                        s += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        s += static_cast<char>(0xc0 | (cp >> 6));
                        s += static_cast<char>(0x80 | (cp & 0x3f));
                    } else {
                        s += static_cast<char>(0xe0 | (cp >> 12));
                        s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                        s += static_cast<char>(0x80 | (cp & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
                continue;
            }
            s += c;
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos;
        if (pos < in.size() && in[pos] == '-')
            ++pos;
        while (pos < in.size()
               && (std::isdigit(static_cast<unsigned char>(in[pos]))
                   || in[pos] == '.' || in[pos] == 'e' || in[pos] == 'E'
                   || in[pos] == '+' || in[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected a value");
        out.kind = JsonValue::Type::Number;
        out.text = in.substr(start, pos - start);
        errno = 0;
        char *end = nullptr;
        out.number = std::strtod(out.text.c_str(), &end);
        if (end != out.text.c_str() + out.text.size())
            return fail("bad number");
        // JSON has no NaN/Inf; an overflowing lexeme like 1e999 would
        // otherwise smuggle one in and poison every downstream
        // computation silently.
        if (!std::isfinite(out.number))
            return fail("non-finite number at '" + atPath() + "'");
        return true;
    }

    static constexpr int kMaxDepth = 128;

    const std::string &in;
    std::size_t pos = 0;
    int depth = 0;
    std::string err;
    /** Key/index trail to the value being parsed (error paths). */
    std::string path;
};

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    return JsonParser(text).parse(error);
}

} // namespace ebda
