#include "json.hh"

#include <cmath>
#include <cstdio>

#include "logging.hh"

namespace ebda {

void
JsonWriter::comma()
{
    if (!hasElement.empty()) {
        if (hasElement.back())
            out += ',';
        hasElement.back() = true;
    }
}

void
JsonWriter::key(const std::string &k)
{
    comma();
    out += '"';
    out += escape(k);
    out += "\":";
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string r;
    r.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            r += "\\\"";
            break;
          case '\\':
            r += "\\\\";
            break;
          case '\n':
            r += "\\n";
            break;
          case '\t':
            r += "\\t";
            break;
          case '\r':
            r += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                r += buf;
            } else {
                r += c;
            }
        }
    }
    return r;
}

void
JsonWriter::beginObject()
{
    comma();
    out += '{';
    ++depth;
    started = true;
    hasElement.push_back(false);
    closer.push_back('}');
}

void
JsonWriter::beginObject(const std::string &k)
{
    key(k);
    out += '{';
    ++depth;
    hasElement.push_back(false);
    closer.push_back('}');
}

void
JsonWriter::beginArray()
{
    comma();
    out += '[';
    ++depth;
    started = true;
    hasElement.push_back(false);
    closer.push_back(']');
}

void
JsonWriter::beginArray(const std::string &k)
{
    key(k);
    out += '[';
    ++depth;
    hasElement.push_back(false);
    closer.push_back(']');
}

void
JsonWriter::end()
{
    EBDA_ASSERT(depth > 0, "JsonWriter::end with no open scope");
    out += closer.back();
    closer.pop_back();
    --depth;
    hasElement.pop_back();
}

void
JsonWriter::field(const std::string &k, const std::string &v)
{
    key(k);
    out += '"';
    out += escape(v);
    out += '"';
}

void
JsonWriter::field(const std::string &k, const char *v)
{
    field(k, std::string(v));
}

void
JsonWriter::field(const std::string &k, double v)
{
    key(k);
    if (std::isfinite(v)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        out += buf;
    } else {
        out += "null";
    }
}

void
JsonWriter::field(const std::string &k, std::uint64_t v)
{
    key(k);
    out += std::to_string(v);
}

void
JsonWriter::field(const std::string &k, int v)
{
    key(k);
    out += std::to_string(v);
}

void
JsonWriter::field(const std::string &k, bool v)
{
    key(k);
    out += v ? "true" : "false";
}

void
JsonWriter::value(const std::string &v)
{
    comma();
    out += '"';
    out += escape(v);
    out += '"';
}

void
JsonWriter::value(double v)
{
    comma();
    if (std::isfinite(v)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        out += buf;
    } else {
        out += "null";
    }
}

void
JsonWriter::value(std::uint64_t v)
{
    comma();
    out += std::to_string(v);
}

void
JsonWriter::value(int v)
{
    comma();
    out += std::to_string(v);
}

void
JsonWriter::value(bool v)
{
    comma();
    out += v ? "true" : "false";
}

} // namespace ebda
