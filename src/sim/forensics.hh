/**
 * @file
 * Deadlock forensics: when the progress watchdog fires, walk the frozen
 * fabric, reconstruct the wait-for graph among buffers, extract a
 * concrete cycle of channels, and cross-reference it against the Dally
 * relation-CDG — the runtime witness must be an instance of a
 * statically predicted dependency cycle.
 *
 * Wait-for model (over input VC buffers):
 *  - a routed, non-eject VC waits on its allocated output channel
 *    (buffer space there frees only when that channel's VC advances);
 *  - an unrouted VC with a head flit at its front waits on *all* of its
 *    routing candidates (an OR-wait; modelling it as AND over-
 *    approximates, but any cycle found is still a genuine hold-and-wait
 *    witness because in a frozen fabric none of the candidates ever
 *    frees);
 *  - eject-routed VCs never block permanently (the ejection port has no
 *    backpressure) and injection VCs have no in-edges, so neither can
 *    lie on a cycle.
 *
 * Protocol extension (when the request–reply layer is active): the
 * graph grows one vertex per node endpoint, after the injection VC
 * vertices. Three new edge kinds close the cross-message loop the
 * channel-only graph cannot see (Verbeek & Schmaltz wait-for-graph
 * discipline, arXiv:1110.4677):
 *  - a request head refused eject-routing at its destination waits on
 *    that *endpoint* (its reply buffer is full);
 *  - an endpoint with serviced replies pending waits on its reply-band
 *    *injection VCs* (slots free only when a reply fully injects);
 *  - an injection VC holding a blocked reply waits on the reply's
 *    routing candidates — the spawned-message edge, already covered by
 *    the baseline rules but now class-filtered to the channels the
 *    reply may legally allocate.
 * A cycle through an endpoint vertex is a *protocol* (message-
 * dependency) deadlock; the dump then also records whether the
 * channel-level Dally oracle still certifies the relation clean —
 * on a true protocol wedge it does, which is exactly the blind spot
 * (arXiv:2101.06015) this layer exists to demonstrate.
 */

#ifndef EBDA_SIM_FORENSICS_HH
#define EBDA_SIM_FORENSICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "routing/route_table.hh"
#include "sim/router.hh"

namespace ebda::sim {

/** One buffer holding a blocked packet in the frozen fabric. */
struct BlockedVc
{
    /** Channel the buffer belongs to (kInjectionChannel for injection
     *  buffers). */
    topo::ChannelId channel = 0;
    /** Router the buffer feeds. */
    topo::NodeId node = 0;
    /** Packet at the buffer front (index into the packet table). */
    std::uint32_t packet = 0;
    /** Holds an output allocation (waitingOn is then that single
     *  channel); otherwise waitingOn lists all routing candidates. */
    bool routed = false;
    std::vector<topo::ChannelId> waitingOn;
    std::uint32_t bufferedFlits = 0;
    /** Request head refused ejection by a full endpoint: the wait
     *  target is the endpoint at `node`, not a channel. */
    bool waitsOnEndpoint = false;
};

/** The forensic dump extracted from a frozen fabric. */
struct DeadlockForensics
{
    /** Cycle the watchdog fired at. */
    std::uint64_t frozenAtCycle = 0;
    /** Flits stuck in the fabric. */
    std::uint64_t frozenFlits = 0;
    /** Every buffer with a blocked packet. */
    std::vector<BlockedVc> blocked;
    /** A concrete wait-for cycle as a vertex sequence v0, ..., vk-1
     *  (each vi waits on v(i+1 mod k)); empty when no cycle was found
     *  (e.g. a route-compute livelock rather than hold-and-wait).
     *  Vertices below the network channel count are channels; in
     *  protocol runs, [numChannels, endpointVertexBase) are injection
     *  VCs and [endpointVertexBase, ...) are node endpoints. */
    std::vector<topo::ChannelId> waitCycle;
    /** True when every edge of waitCycle is an edge of the relation's
     *  Dally CDG — the static verifier predicted this cycle. */
    bool cycleInRelationCdg = false;

    /** @name Protocol (message-dependency) classification
     *  Populated only when buildForensics ran with protocol state.
     *  @{ */
    /** The request–reply layer was active for this dump. */
    bool protocolRun = false;
    /** The wait cycle passes through an endpoint or injection vertex:
     *  a cross-message deadlock, invisible to the channel CDG. */
    bool protocolDeadlock = false;
    /** Channel-level Dally oracle verdict on the routing relation,
     *  re-checked at dump time — clean on a true protocol wedge. */
    bool channelOracleClean = false;
    /** Vertex-space layout for decoding waitCycle entries. */
    std::uint32_t numChannels = 0;
    std::uint32_t endpointVertexBase = 0;
    std::uint32_t injectionVcs = 0;
    /** @} */

    /** Multi-line human-readable dump with channel names. */
    std::string describe(const topo::Network &net) const;
};

class ProtocolState;

/** Walk the frozen fabric and build the forensic dump. `route` is the
 *  simulator's compiled table over the effective relation: candidate
 *  queries go through it, the Dally cross-reference through
 *  route.relation(). Pass the protocol state to extend the graph with
 *  endpoint vertices and cross-message edges. */
DeadlockForensics buildForensics(const Fabric &fab,
                                 const routing::RouteTable &route,
                                 std::uint64_t cycle,
                                 const ProtocolState *proto = nullptr);

} // namespace ebda::sim

#endif // EBDA_SIM_FORENSICS_HH
