/**
 * @file
 * Deadlock forensics: when the progress watchdog fires, walk the frozen
 * fabric, reconstruct the wait-for graph among buffers, extract a
 * concrete cycle of channels, and cross-reference it against the Dally
 * relation-CDG — the runtime witness must be an instance of a
 * statically predicted dependency cycle.
 *
 * Wait-for model (over input VC buffers):
 *  - a routed, non-eject VC waits on its allocated output channel
 *    (buffer space there frees only when that channel's VC advances);
 *  - an unrouted VC with a head flit at its front waits on *all* of its
 *    routing candidates (an OR-wait; modelling it as AND over-
 *    approximates, but any cycle found is still a genuine hold-and-wait
 *    witness because in a frozen fabric none of the candidates ever
 *    frees);
 *  - eject-routed VCs never block permanently (the ejection port has no
 *    backpressure) and injection VCs have no in-edges, so neither can
 *    lie on a cycle.
 */

#ifndef EBDA_SIM_FORENSICS_HH
#define EBDA_SIM_FORENSICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "routing/route_table.hh"
#include "sim/router.hh"

namespace ebda::sim {

/** One buffer holding a blocked packet in the frozen fabric. */
struct BlockedVc
{
    /** Channel the buffer belongs to (kInjectionChannel for injection
     *  buffers). */
    topo::ChannelId channel = 0;
    /** Router the buffer feeds. */
    topo::NodeId node = 0;
    /** Packet at the buffer front (index into the packet table). */
    std::uint32_t packet = 0;
    /** Holds an output allocation (waitingOn is then that single
     *  channel); otherwise waitingOn lists all routing candidates. */
    bool routed = false;
    std::vector<topo::ChannelId> waitingOn;
    std::uint32_t bufferedFlits = 0;
};

/** The forensic dump extracted from a frozen fabric. */
struct DeadlockForensics
{
    /** Cycle the watchdog fired at. */
    std::uint64_t frozenAtCycle = 0;
    /** Flits stuck in the fabric. */
    std::uint64_t frozenFlits = 0;
    /** Every buffer with a blocked packet. */
    std::vector<BlockedVc> blocked;
    /** A concrete wait-for cycle as a channel sequence c0, ..., ck-1
     *  (each ci waits on c(i+1 mod k)); empty when no cycle was found
     *  (e.g. a route-compute livelock rather than hold-and-wait). */
    std::vector<topo::ChannelId> waitCycle;
    /** True when every edge of waitCycle is an edge of the relation's
     *  Dally CDG — the static verifier predicted this cycle. */
    bool cycleInRelationCdg = false;

    /** Multi-line human-readable dump with channel names. */
    std::string describe(const topo::Network &net) const;
};

/** Walk the frozen fabric and build the forensic dump. `route` is the
 *  simulator's compiled table over the effective relation: candidate
 *  queries go through it, the Dally cross-reference through
 *  route.relation(). */
DeadlockForensics buildForensics(const Fabric &fab,
                                 const routing::RouteTable &route,
                                 std::uint64_t cycle);

} // namespace ebda::sim

#endif // EBDA_SIM_FORENSICS_HH
