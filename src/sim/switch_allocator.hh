/**
 * @file
 * The switch-allocation + traversal pipeline stage, extracted from the
 * monolithic simulator.
 *
 * One flit per output link per cycle, one flit per input port per
 * cycle, one ejected flit per node per cycle, granted round-robin via
 * a rotating offset shared by link order, per-link VC order and
 * per-node ejection order — the exact rotation the monolithic loop
 * used, so grants are bit-identical.
 *
 * The stage sweeps only links with owned output VCs and nodes with
 * eject-routed VCs (skipped entries are provable no-ops), attributes
 * refusals to the upstream router's stall counters (credit-starved vs.
 * switch-lost), and reactivates the VC-allocation set when a tail
 * departure exposes the next packet's head.
 */

#ifndef EBDA_SIM_SWITCH_ALLOCATOR_HH
#define EBDA_SIM_SWITCH_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "sim/active_set.hh"
#include "sim/router.hh"
#include "util/stats.hh"

namespace ebda::sim {

class ProtocolState;

/** Ejection-side statistics sinks, owned by the simulator. */
struct EjectStats
{
    Histogram &latencyHist;
    StatAccumulator &latencyStat;
    StatAccumulator &hopsStat;
    std::uint64_t &packetsEjected;
    std::uint64_t &measuredEjectedFlits;
    std::uint64_t &measuredInFlight;
    /** True while the measurement window is open this cycle. */
    bool inMeasurementWindow;
};

/** Switch allocation: link traversal and ejection. */
class SwitchAllocator
{
  public:
    explicit SwitchAllocator(Fabric &fab)
        : fab(fab),
          portUsedStamp(fab.net.numLinks() + fab.net.numNodes(),
                        UINT64_MAX)
    {
        // Per-link probe record (channel base + VC arity in one 8-byte
        // load) and the rotation-start table size: the rotated orders
        // need `offset % arity`, and precomputing one start per
        // distinct arity per cycle replaces one integer division per
        // link/node visit.
        linkInfo.reserve(fab.net.numLinks());
        std::size_t max_rot = 1;
        std::vector<std::uint32_t> node_vcs(
            fab.net.numNodes(),
            static_cast<std::uint32_t>(fab.cfg.injectionVcs));
        for (topo::LinkId l = 0; l < fab.net.numLinks(); ++l) {
            const int nvc = fab.net.vcsOnLink(l);
            linkInfo.push_back({fab.net.linkChannelBase(l),
                                static_cast<std::uint32_t>(nvc)});
            max_rot = std::max(max_rot, static_cast<std::size_t>(nvc));
            node_vcs[fab.net.link(l).dst] +=
                static_cast<std::uint32_t>(nvc);
        }
        // A node's ejection domain holds every VC terminating there.
        for (const std::uint32_t v : node_vcs)
            max_rot = std::max(max_rot, static_cast<std::size_t>(v));
        rotStart.assign(max_rot + 1, 0);
    }

    /**
     * Network traversal: move at most one flit per active output link.
     * Advances the rotating grant offset (shared with ejection).
     *
     * @return true when any flit moved.
     */
    bool traverse(std::uint64_t cycle, ActiveSet &linkActive,
                  ActiveSet &allocActive, std::vector<Router> &routers);

    /**
     * Ejection: consume at most one flit per active node. Must run
     * after traverse() in the same cycle (shares the per-cycle input
     * port grants).
     *
     * @return true when any flit ejected.
     */
    bool eject(std::uint64_t cycle, ActiveSet &ejectActive,
               ActiveSet &allocActive, std::vector<Router> &routers,
               EjectStats &stats);

    /**
     * Pure switching-mode gate for moving a head flit out of vc into
     * an output buffer with the given free space. Inline: traverse
     * evaluates this for every movable head every cycle.
     */
    static bool
    headMayAdvance(SwitchingMode switching, int packet_length,
                   const InputVc &vc, int space_at_out)
    {
        switch (switching) {
          case SwitchingMode::Wormhole:
            return true;
          case SwitchingMode::VirtualCutThrough:
            // The downstream buffer must be able to accept the entire
            // packet so a blocked packet never straddles routers.
            return space_at_out >= packet_length;
          case SwitchingMode::StoreAndForward:
            // Additionally the whole packet must already be buffered
            // here.
            if (space_at_out < packet_length)
                return false;
            if (vc.buf.size() < static_cast<std::size_t>(packet_length))
                return false;
            {
                const Flit &last =
                    vc.buf[static_cast<std::size_t>(packet_length) - 1];
                return last.tail && last.pkt == vc.buf.front().pkt;
            }
        }
        return true;
    }

    /** Request–reply protocol layer (sim/protocol.hh), or nullptr.
     *  When set, ejected request tails convert their reserved endpoint
     *  slot into a pending reply; ejected reply tails complete the
     *  round trip. */
    ProtocolState *proto = nullptr;

    /** Current rotating grant offset (advanced at each traverse). */
    std::size_t offset() const { return swArbOffset; }

    /** Re-derive the grant offset and the per-arity rotation starts
     *  after skipped cycles. traverse() advances both unconditionally,
     *  so they are pure functions of the cycle count: before executing
     *  the iteration for `cycle`, swArbOffset == cycle and
     *  rotStart[n] == cycle % n (traverse then increments to the
     *  (cycle+1) values, exactly as if every skipped cycle had run).
     *  The event scheduler calls this after each idle jump. */
    void
    resyncOffset(std::uint64_t cycle)
    {
        swArbOffset = static_cast<std::size_t>(cycle);
        for (std::size_t n = 1; n < rotStart.size(); ++n)
            rotStart[n] = static_cast<std::uint32_t>(
                cycle % static_cast<std::uint64_t>(n));
    }

  private:
    /** Input port of a VC: its link, or the node's injection port
     *  (precomputed at Fabric construction). */
    static std::size_t portOf(const InputVc &vc) { return vc.port; }

    /** Per-link switch-probe record: first channel and VC arity,
     *  fetched with one load in the traversal inner loop. */
    struct LinkProbe
    {
        topo::ChannelId base;
        std::uint32_t nvc;
    };

    Fabric &fab;
    std::size_t swArbOffset = 0;
    /** Input-port usage stamps (one flit per port per cycle). */
    std::vector<std::uint64_t> portUsedStamp;
    /** Probe records indexed by LinkId. */
    std::vector<LinkProbe> linkInfo;
    /** rotStart[n] = swArbOffset % n, refreshed once per traverse —
     *  the rotated VC / ejection starting position for every arity
     *  that occurs in the fabric. */
    std::vector<std::uint32_t> rotStart;
};

} // namespace ebda::sim

#endif // EBDA_SIM_SWITCH_ALLOCATOR_HH
