/**
 * @file
 * The switch-allocation + traversal pipeline stage, extracted from the
 * monolithic simulator.
 *
 * One flit per output link per cycle, one flit per input port per
 * cycle, one ejected flit per node per cycle, granted round-robin via
 * a rotating offset shared by link order, per-link VC order and
 * per-node ejection order — the exact rotation the monolithic loop
 * used, so grants are bit-identical.
 *
 * The stage sweeps only links with owned output VCs and nodes with
 * eject-routed VCs (skipped entries are provable no-ops), attributes
 * refusals to the upstream router's stall counters (credit-starved vs.
 * switch-lost), and reactivates the VC-allocation set when a tail
 * departure exposes the next packet's head.
 */

#ifndef EBDA_SIM_SWITCH_ALLOCATOR_HH
#define EBDA_SIM_SWITCH_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "sim/active_set.hh"
#include "sim/router.hh"
#include "util/stats.hh"

namespace ebda::sim {

/** Ejection-side statistics sinks, owned by the simulator. */
struct EjectStats
{
    Histogram &latencyHist;
    StatAccumulator &latencyStat;
    StatAccumulator &hopsStat;
    std::uint64_t &packetsEjected;
    std::uint64_t &measuredEjectedFlits;
    std::uint64_t &measuredInFlight;
    /** True while the measurement window is open this cycle. */
    bool inMeasurementWindow;
};

/** Switch allocation: link traversal and ejection. */
class SwitchAllocator
{
  public:
    explicit SwitchAllocator(Fabric &fab)
        : fab(fab),
          portUsedStamp(fab.net.numLinks() + fab.net.numNodes(),
                        UINT64_MAX)
    {
    }

    /**
     * Network traversal: move at most one flit per active output link.
     * Advances the rotating grant offset (shared with ejection).
     *
     * @return true when any flit moved.
     */
    bool traverse(std::uint64_t cycle, ActiveSet &linkActive,
                  ActiveSet &allocActive, std::vector<Router> &routers);

    /**
     * Ejection: consume at most one flit per active node. Must run
     * after traverse() in the same cycle (shares the per-cycle input
     * port grants).
     *
     * @return true when any flit ejected.
     */
    bool eject(std::uint64_t cycle, ActiveSet &ejectActive,
               ActiveSet &allocActive, std::vector<Router> &routers,
               EjectStats &stats);

    /**
     * Pure switching-mode gate for moving a head flit out of vc into
     * an output buffer with the given free space.
     */
    static bool headMayAdvance(SwitchingMode switching, int packet_length,
                               const InputVc &vc, int space_at_out);

    /** Current rotating grant offset (advanced at each traverse). */
    std::size_t offset() const { return swArbOffset; }

  private:
    /** Input port of a VC: its link, or the node's injection port. */
    std::size_t
    portOf(const InputVc &vc) const
    {
        return vc.self == cdg::kInjectionChannel
            ? fab.net.numLinks() + vc.atNode
            : fab.net.linkOf(vc.self);
    }

    Fabric &fab;
    std::size_t swArbOffset = 0;
    /** Input-port usage stamps (one flit per port per cycle). */
    std::vector<std::uint64_t> portUsedStamp;
};

} // namespace ebda::sim

#endif // EBDA_SIM_SWITCH_ALLOCATOR_HH
