/**
 * @file
 * Runtime fault injection: a deterministic schedule of link and router
 * deaths applied to a live fabric mid-simulation, plus the degraded
 * routing view the VC allocator routes through afterwards.
 *
 * This is the dynamic complement of `Network::withoutLinks` (the static
 * fault model of bench_fault_tolerance): instead of rebuilding the
 * network, the injector keeps dead-element masks over the *original*
 * topology and performs fabric surgery when an event fires —
 *
 *  - every flit buffered in a dead channel, at a dead router, or
 *    belonging to a packet whose held allocation crosses a dead channel
 *    is purged (a wormhole packet cannot be spliced mid-body);
 *  - held allocations of purged packets are released and allocations
 *    into dead channels revoked, so surviving head flits re-enter route
 *    compute against the degraded view;
 *  - purged packets are reported back to the simulator, which applies
 *    the drop-and-source-retransmit policy (capped exponential
 *    backoff) or declares them lost.
 *
 * `FaultedRelationView` filters dead output channels out of the base
 * relation's candidate sets. Routing it instead of the base relation is
 * the entire reroute mechanism: route compute, the forensics walker and
 * the Dally relation-CDG oracle all consume the same degraded relation,
 * which is how each fault event doubles as a machine check of the
 * paper's Theorem-2 note that U-turns are what keep degraded networks
 * deadlock-free and connected.
 *
 * Everything is deterministic: random schedules come from a dedicated
 * xoshiro substream of the plan's own seed, purge scans run in fabric
 * index order, and dead routers simply stop drawing from their
 * per-node traffic streams — no other router's substream shifts, so a
 * faulty run replays bit-identically from (seed, FaultPlan).
 */

#ifndef EBDA_SIM_FAULT_INJECTOR_HH
#define EBDA_SIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "cdg/routing_relation.hh"
#include "sim/active_set.hh"
#include "sim/router.hh"

namespace ebda::sim {

/** Applies a FaultPlan to a live fabric and answers liveness queries. */
class FaultInjector
{
  public:
    /** Materializes the schedule (explicit events validated against the
     *  network, random events drawn from the plan's seed) sorted by
     *  cycle. Invalid explicit events (no such link / node) are
     *  dropped. */
    FaultInjector(const topo::Network &net, const FaultPlan &plan);

    /** True when the plan schedules any fault — the simulator gates
     *  every fault-path branch on this, keeping fault-free runs
     *  bit-identical to the pre-fault simulator. */
    bool enabled() const { return enabledFlag; }

    const FaultPlan &plan() const { return thePlan; }

    /** The materialized schedule, sorted by cycle. */
    const std::vector<FaultEvent> &schedule() const { return events; }

    /** Cycle of the next unapplied event (UINT64_MAX when done). */
    std::uint64_t
    nextEventCycle() const
    {
        return nextIdx < events.size() ? events[nextIdx].cycle
                                       : ~std::uint64_t{0};
    }

    /** Events applied so far. */
    std::size_t eventsApplied() const { return nextIdx; }

    /** @name Liveness masks
     *  @{ */
    bool nodeDead(topo::NodeId n) const { return nodeDeadMask[n] != 0; }
    bool linkDead(topo::LinkId l) const { return linkDeadMask[l] != 0; }
    bool channelDead(topo::ChannelId c) const
    {
        return chanDeadMask[c] != 0;
    }
    bool anyDead() const { return deadLinks > 0 || deadNodes > 0; }
    std::size_t deadLinkCount() const { return deadLinks; }
    std::size_t deadNodeCount() const { return deadNodes; }
    /** @} */

    /**
     * Apply every event scheduled at or before `cycle`: update the
     * masks, then purge affected packets from the fabric. Returns the
     * purged packet ids (ascending; empty when no event was due).
     * Revoked-but-surviving VCs are rescheduled on `allocActive`.
     */
    std::vector<std::uint32_t> apply(std::uint64_t cycle, Fabric &fab,
                                     ActiveSet &allocActive);

    /**
     * Channels newly marked dead since the last call, in marking
     * order; clears the list. The simulator drains this after every
     * apply() to invalidate the affected compiled route-table rows —
     * no full recompile per fault event.
     */
    std::vector<topo::ChannelId>
    takeNewlyDeadChannels()
    {
        std::vector<topo::ChannelId> out;
        out.swap(newlyDead);
        return out;
    }

    /**
     * Purge every flit of the marked packets (`kill[pkt] != 0`) from
     * the fabric, releasing/revoking allocations and maintaining the
     * occupancy, ownership and flitsInFlight invariants. Also used by
     * the simulator's watchdog recovery pass. Returns the purged
     * packet ids in ascending order.
     */
    std::vector<std::uint32_t> purge(Fabric &fab, ActiveSet &allocActive,
                                     const std::vector<std::uint8_t> &kill,
                                     std::uint64_t cycle);

  private:
    void killLink(topo::NodeId src, topo::NodeId dst);
    void killNode(topo::NodeId n);
    void markLinkDead(topo::LinkId l);

    /** True when ivcs[idx] can never hold a live flit again. */
    bool deadIvc(const Fabric &fab, std::size_t idx) const;

    const topo::Network &net;
    FaultPlan thePlan;
    bool enabledFlag = false;

    std::vector<FaultEvent> events;
    std::size_t nextIdx = 0;

    std::vector<std::uint8_t> nodeDeadMask;
    std::vector<std::uint8_t> linkDeadMask;
    std::vector<std::uint8_t> chanDeadMask;
    std::vector<topo::ChannelId> newlyDead;
    std::size_t deadLinks = 0;
    std::size_t deadNodes = 0;
};

/**
 * The degraded routing relation: the base relation with every candidate
 * that enters a dead channel filtered out. The simulator routes, walks
 * forensics and runs the Dally oracle through this view once a plan is
 * enabled; before the first event fires it is transparent.
 */
class FaultedRelationView final : public cdg::RoutingRelation
{
  public:
    FaultedRelationView(const cdg::RoutingRelation &base,
                        const FaultInjector &faults)
        : base(base), faults(faults)
    {
    }

    std::vector<topo::ChannelId>
    candidates(topo::ChannelId in, topo::NodeId at, topo::NodeId src,
               topo::NodeId dest) const override
    {
        auto out = base.candidates(in, at, src, dest);
        if (faults.anyDead()) {
            out.erase(std::remove_if(out.begin(), out.end(),
                                     [&](topo::ChannelId c) {
                                         return faults.channelDead(c);
                                     }),
                      out.end());
        }
        return out;
    }

    std::string
    name() const override
    {
        return base.name() + " (degraded)";
    }

    const topo::Network &network() const override
    {
        return base.network();
    }

    /** @name Table-compiler hints, forwarded from the base relation
     *  (filtering dead channels changes neither source dependence nor
     *  probe safety).
     *  @{ */
    cdg::SrcSensitivity
    srcSensitivity() const override
    {
        return base.srcSensitivity();
    }
    bool probeSafe() const override { return base.probeSafe(); }
    /** @} */

  private:
    const cdg::RoutingRelation &base;
    const FaultInjector &faults;
};

} // namespace ebda::sim

#endif // EBDA_SIM_FAULT_INJECTOR_HH
