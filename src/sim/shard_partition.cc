#include "sim/shard_partition.hh"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace ebda::sim {

int
resolveShardCount(int requested, std::size_t num_nodes,
                  bool route_table_compiled, bool faults_enabled,
                  bool protocol_enabled)
{
    if (faults_enabled || protocol_enabled || !route_table_compiled)
        return 1;
    const int cap = static_cast<int>(std::min<std::size_t>(
        num_nodes, static_cast<std::size_t>(kMaxShards)));
    if (requested >= 1)
        return std::clamp(requested, 1, cap);
    // Auto: shard only fabrics large enough to amortise the barrier,
    // with a count derived from the fabric size alone. One shard per
    // 256 nodes, up to 8: past 8 slabs the cut surface grows faster
    // than the per-shard work shrinks on the fabrics this targets.
    if (num_nodes < kAutoShardNodeCutoff)
        return 1;
    const auto s = static_cast<int>(
        std::min<std::size_t>(8, num_nodes / 256));
    return std::clamp(s, 1, cap);
}

unsigned
shardWorkerThreads(int shards)
{
    unsigned t = 0;
    if (const char *env = std::getenv("EBDA_SHARD_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            t = static_cast<unsigned>(v);
    }
    if (t == 0)
        t = std::thread::hardware_concurrency();
    if (t == 0)
        t = 1;
    return std::min(t, static_cast<unsigned>(std::max(1, shards)));
}

namespace {

/** Balanced contiguous chunks over an explicit node order. */
std::vector<std::uint16_t>
chunkByOrder(const std::vector<topo::NodeId> &order,
             std::size_t num_nodes, int shards)
{
    std::vector<std::uint16_t> shard_of(num_nodes, 0);
    const auto s = static_cast<std::size_t>(shards);
    for (std::size_t i = 0; i < order.size(); ++i)
        shard_of[order[i]] = static_cast<std::uint16_t>(
            i * s / order.size());
    return shard_of;
}

} // namespace

std::vector<std::uint16_t>
partitionNodes(const topo::Network &net, int shards)
{
    const std::size_t n = net.numNodes();
    if (shards <= 1)
        return std::vector<std::uint16_t>(n, 0);
    const auto s = static_cast<std::size_t>(shards);

    if (net.hasGrid()) {
        // Slab along the largest dimension (ties toward the lowest
        // index) when its radix covers the shard count.
        const std::vector<int> &dims = net.dims();
        std::uint8_t best = 0;
        for (std::uint8_t d = 1; d < dims.size(); ++d) {
            if (dims[d] > dims[best])
                best = d;
        }
        const auto radix = static_cast<std::size_t>(dims[best]);
        if (radix >= s) {
            std::vector<std::uint16_t> shard_of(n);
            for (topo::NodeId v = 0; v < n; ++v)
                shard_of[v] = static_cast<std::uint16_t>(
                    static_cast<std::size_t>(net.coordAlong(v, best))
                    * s / radix);
            return shard_of;
        }
    } else if (const auto shape = net.dragonflyShape()) {
        // Group-aligned slabs: node id = group * a + router, so the
        // contiguous id chunks below are whole groups when the group
        // count covers the shard count.
        const auto groups = static_cast<std::size_t>(shape->groups);
        if (groups >= s) {
            std::vector<std::uint16_t> shard_of(n);
            for (topo::NodeId v = 0; v < n; ++v) {
                const auto g = static_cast<std::size_t>(v)
                    / static_cast<std::size_t>(shape->a);
                shard_of[v] = static_cast<std::uint16_t>(
                    g * s / groups);
            }
            return shard_of;
        }
    } else {
        // BFS order from node 0 keeps graph neighbourhoods together;
        // unreachable nodes (disconnected test graphs) go last.
        std::vector<topo::NodeId> order;
        order.reserve(n);
        std::vector<std::uint8_t> seen(n, 0);
        order.push_back(0);
        seen[0] = 1;
        for (std::size_t head = 0; head < order.size(); ++head) {
            for (const topo::LinkId l : net.outLinks(order[head])) {
                const topo::NodeId to = net.link(l).dst;
                if (!seen[to]) {
                    seen[to] = 1;
                    order.push_back(to);
                }
            }
        }
        for (topo::NodeId v = 0; v < n; ++v) {
            if (!seen[v])
                order.push_back(v);
        }
        return chunkByOrder(order, n, shards);
    }

    // Fallback for grids thinner than the shard count along every
    // dimension (and undersized dragonflies): node ids are laid out
    // row-major, so contiguous id chunks stay spatially coherent.
    std::vector<std::uint16_t> shard_of(n);
    for (topo::NodeId v = 0; v < n; ++v)
        shard_of[v] =
            static_cast<std::uint16_t>(static_cast<std::size_t>(v) * s / n);
    return shard_of;
}

} // namespace ebda::sim
