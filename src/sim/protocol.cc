#include "protocol.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ebda::sim {

namespace {

/** Stream tag folded into the master seed for the per-endpoint jitter
 *  substreams ("protocol" in ASCII): endpoint draws never perturb the
 *  per-router traffic streams, so enabling the layer replays
 *  bit-identically from (seed, ProtocolConfig). */
constexpr std::uint64_t kEndpointStreamTag = 0x70726f746f636f6cULL;

[[noreturn]] void
fail(const std::string &what)
{
    throw std::invalid_argument(what);
}

} // namespace

ProtocolState::ProtocolState(const topo::Network &net, const SimConfig &cfg)
    : replyActive(net.numNodes()),
      serviceLatency(cfg.protocol.serviceLatency),
      serviceJitter(cfg.protocol.serviceJitter),
      depth(cfg.protocol.replyBufferDepth),
      classes(cfg.protocol.messageClasses),
      reserve(cfg.protocol.reserveReplyBuffer),
      requestInjVcs(cfg.injectionVcs)
{
    if (depth < 1)
        fail("protocol.replyBufferDepth must be >= 1, got "
             + std::to_string(depth));
    if (classes < 1 || classes > 2)
        fail("protocol.messageClasses must be 1 (shared VCs) or 2 "
             "(dedicated reply class), got " + std::to_string(classes));
    if (classes == 2) {
        // Carve the reply band out of every link's VCs and out of the
        // injection VCs: the top floor(n/2) (at least one) VCs carry
        // replies, the rest requests. Both bands must be non-empty
        // everywhere or a packet class would be unroutable.
        if (cfg.injectionVcs < 2)
            fail("protocol.messageClasses=2 needs injectionVcs >= 2 to "
                 "carve a reply band, got "
                 + std::to_string(cfg.injectionVcs));
        const int reply_inj = std::max(1, cfg.injectionVcs / 2);
        requestInjVcs = cfg.injectionVcs - reply_inj;
        chanClass.assign(net.numChannels(), 0);
        for (topo::LinkId l = 0; l < net.numLinks(); ++l) {
            const int nvc = net.vcsOnLink(l);
            if (nvc < 2)
                fail("protocol.messageClasses=2 needs >= 2 VCs on every "
                     "link to carve a reply band; link "
                     + std::to_string(l) + " has "
                     + std::to_string(nvc));
            const int reply_vcs = std::max(1, nvc / 2);
            const topo::ChannelId base = net.linkChannelBase(l);
            for (int v = nvc - reply_vcs; v < nvc; ++v)
                chanClass[base + static_cast<topo::ChannelId>(v)] = 1;
        }
    }

    endpoints.reserve(net.numNodes());
    for (topo::NodeId n = 0; n < net.numNodes(); ++n) {
        endpoints.emplace_back(Rng(cfg.seed ^ kEndpointStreamTag, n));
        endpoints.back().pending.reserve(
            static_cast<std::size_t>(depth));
    }
}

void
ProtocolState::onRequestDelivered(topo::NodeId n, const PacketRec &pkt,
                                  std::uint64_t cycle)
{
    ++requestsDelivered;
    Endpoint &ep = endpoints[n];
    ep.pending.push_back({cycle + serviceDelay(n), pkt.src});
    replyActive.schedule(n);
}

std::uint64_t
ProtocolState::serviceDelay(topo::NodeId n)
{
    std::uint64_t d = serviceLatency;
    if (serviceJitter > 0)
        d += endpoints[n].rng.nextBounded(serviceJitter + 1);
    return d;
}

void
ProtocolState::releaseEjectReservations(
    const Fabric &fab, const std::vector<std::uint8_t> &kill)
{
    for (const InputVc &vc : fab.ivcs) {
        if (!vc.routed || !vc.eject || vc.curPkt == topo::kInvalidId)
            continue;
        if (vc.curPkt < kill.size() && kill[vc.curPkt]
            && fab.packets[vc.curPkt].msgClass == 0)
            releaseDeliverySlot(vc.atNode);
    }
}

} // namespace ebda::sim
