#include "sim/router.hh"

#include "util/logging.hh"

namespace ebda::sim {

Fabric::Fabric(const topo::Network &network, const SimConfig &config)
    : net(network), cfg(config)
{
    EBDA_ASSERT(cfg.vcDepth >= 1, "vcDepth must be positive");
    EBDA_ASSERT(cfg.packetLength >= 1, "packetLength must be positive");
    EBDA_ASSERT(cfg.injectionVcs >= 1, "need at least one injection VC");
    EBDA_ASSERT(cfg.routerLatency >= 1, "routerLatency must be >= 1");
    if (cfg.switching != SwitchingMode::Wormhole) {
        EBDA_ASSERT(cfg.vcDepth >= cfg.packetLength,
                    "VCT/SAF need vcDepth >= packetLength (",
                    cfg.vcDepth, " < ", cfg.packetLength, ")");
    }

    const std::size_t channels = net.numChannels();
    const topo::NodeId nodes = net.numNodes();
    ivcs.resize(channels
                + static_cast<std::size_t>(nodes)
                    * static_cast<std::size_t>(cfg.injectionVcs));
    // One link/dst lookup per link, not one per channel.
    for (topo::LinkId l = 0; l < net.numLinks(); ++l) {
        const topo::NodeId dst = net.link(l).dst;
        for (int v = 0; v < net.vcsOnLink(l); ++v) {
            const topo::ChannelId c = net.channel(l, v);
            ivcs[c].self = c;
            ivcs[c].atNode = dst;
        }
    }
    for (topo::NodeId n = 0; n < nodes; ++n) {
        for (int k = 0; k < cfg.injectionVcs; ++k) {
            InputVc &vc = ivcs[injIndex(n, k)];
            vc.self = cdg::kInjectionChannel;
            vc.atNode = n;
        }
    }

    owner.assign(channels, topo::kInvalidId);
    ownedOnLink.assign(net.numLinks(), 0);
    ejectPending.assign(net.numNodes(), 0);
    channelLoad.assign(channels, 0);
    occIntegral.assign(channels, 0.0);
    occStamp.assign(channels, 0);
    occPeak.assign(channels, 0);
}

std::vector<ChannelOccupancy>
Fabric::channelOccupancy(std::uint64_t horizon) const
{
    const std::size_t channels = net.numChannels();
    std::vector<ChannelOccupancy> out(channels);
    for (topo::ChannelId c = 0; c < channels; ++c) {
        // Flush the lazy integral: the buffer held its current size
        // from the last touch until the horizon.
        const double integral = occIntegral[c]
            + static_cast<double>(ivcs[c].buf.size())
                * static_cast<double>(horizon - occStamp[c]);
        out[c].mean =
            horizon ? integral / static_cast<double>(horizon) : 0.0;
        out[c].peak = occPeak[c];
    }
    return out;
}

} // namespace ebda::sim
