#include "sim/router.hh"

#include "util/logging.hh"

namespace ebda::sim {

Fabric::Fabric(const topo::Network &network, const SimConfig &config)
    : net(network), cfg(config)
{
    EBDA_ASSERT(cfg.vcDepth >= 1, "vcDepth must be positive");
    EBDA_ASSERT(cfg.packetLength >= 1, "packetLength must be positive");
    EBDA_ASSERT(cfg.injectionVcs >= 1, "need at least one injection VC");
    EBDA_ASSERT(cfg.routerLatency >= 1, "routerLatency must be >= 1");
    if (cfg.switching != SwitchingMode::Wormhole) {
        EBDA_ASSERT(cfg.vcDepth >= cfg.packetLength,
                    "VCT/SAF need vcDepth >= packetLength (",
                    cfg.vcDepth, " < ", cfg.packetLength, ")");
    }

    const std::size_t channels = net.numChannels();
    const topo::NodeId nodes = net.numNodes();
    ivcs.resize(channels
                + static_cast<std::size_t>(nodes)
                    * static_cast<std::size_t>(cfg.injectionVcs));

    // Carve the contiguous flit arena into one fixed-capacity ring per
    // VC. A channel buffer never exceeds vcDepth (the switch stage
    // gates on free space); an injection buffer holds at most one
    // whole packet (filled only when empty). The uniform stride keeps
    // slab addressing trivial and rebinding unnecessary.
    vcStride = static_cast<std::uint32_t>(
        std::max(cfg.vcDepth, cfg.packetLength));
    flitSlab.assign(ivcs.size() * static_cast<std::size_t>(vcStride),
                    Flit{});
    for (std::size_t i = 0; i < ivcs.size(); ++i)
        ivcs[i].buf.bind(&flitSlab[i * vcStride], vcStride);

    // Pre-size the packet table so the freelist, not vector growth,
    // serves steady-state generation: bound the in-fabric population
    // by total flit capacity and leave queueing headroom per node.
    const std::size_t pktReserve = flitSlab.size()
            / static_cast<std::size_t>(cfg.packetLength)
        + static_cast<std::size_t>(nodes) * 64;
    packets.reserve(pktReserve);
    pktFreelist.reserve(pktReserve);
    // One link/dst lookup per link, not one per channel. The input
    // port (switch-constraint domain) is precomputed here so the
    // switch stage never re-derives it per flit move.
    for (topo::LinkId l = 0; l < net.numLinks(); ++l) {
        const topo::NodeId dst = net.link(l).dst;
        for (int v = 0; v < net.vcsOnLink(l); ++v) {
            const topo::ChannelId c = net.channel(l, v);
            ivcs[c].self = c;
            ivcs[c].atNode = dst;
            ivcs[c].port = static_cast<std::uint32_t>(l);
        }
    }
    for (topo::NodeId n = 0; n < nodes; ++n) {
        for (int k = 0; k < cfg.injectionVcs; ++k) {
            InputVc &vc = ivcs[injIndex(n, k)];
            vc.self = cdg::kInjectionChannel;
            vc.atNode = n;
            vc.port =
                static_cast<std::uint32_t>(net.numLinks() + n);
        }
    }

    chan.assign(channels, ChannelState{});
    ownedOnLink.assign(net.numLinks(), 0);
    ejectPending.assign(net.numNodes(), 0);
    ejectMask.assign(net.numNodes(), 0);
    // Each VC's position in its node's ascending local-VC list (the
    // same order the simulator builds the ejection domains in): the
    // bit it occupies in ejectMask.
    std::vector<std::uint8_t> localCount(net.numNodes(), 0);
    for (std::size_t i = 0; i < ivcs.size(); ++i) {
        const std::uint8_t pos = localCount[ivcs[i].atNode]++;
        EBDA_ASSERT(pos < 64,
                    "more than 64 VCs terminate at node ",
                    ivcs[i].atNode, "; ejectMask would overflow");
        ivcs[i].localPos = pos;
    }
}

std::vector<ChannelOccupancy>
Fabric::channelOccupancy(std::uint64_t horizon) const
{
    const std::size_t channels = net.numChannels();
    std::vector<ChannelOccupancy> out(channels);
    for (topo::ChannelId c = 0; c < channels; ++c) {
        // Flush the lazy integral: the buffer held its current size
        // from the last touch until the horizon.
        const ChannelState &cs = chan[c];
        const double integral = cs.occIntegral
            + static_cast<double>(ivcs[c].buf.size())
                * static_cast<double>(horizon - cs.occStamp);
        out[c].mean =
            horizon ? integral / static_cast<double>(horizon) : 0.0;
        out[c].peak = cs.occPeak;
    }
    return out;
}

} // namespace ebda::sim
