/**
 * @file
 * The sharded cycle backend: one big simulation split across cores by
 * spatial domain decomposition, behind the same SchedulerBackend seam
 * as the classic cycle loop and the event scheduler.
 *
 * Nodes are partitioned into contiguous spatial shards
 * (sim/shard_partition.hh). A shard owns every pipeline stage that
 * touches state *at* its nodes: packet generation and injection,
 * VC allocation for the input buffers terminating there, traversal of
 * the links leaving there, and ejection. Because each concrete channel
 * (u -> v) splits cleanly — ownership and load on the u side,
 * buffer occupancy on the v side — the only state that crosses a shard
 * boundary is the flits sent over cut links and the credits returned
 * for them, and those travel through preallocated double-buffered
 * mailboxes: a producer appends to the buffer of parity (cycle & 1)
 * during its cycle, the consumer drains the opposite-parity buffer at
 * the top of the next cycle, and one sense-reversing spin barrier per
 * cycle is the entire synchronisation protocol.
 *
 * Determinism, the non-negotiable property: no shard ever reads
 * another shard's mutable state except through a drained mailbox, and
 * mailboxes are drained in ascending producer order, so the execution
 * is a pure function of (config, shard count). The worker-thread count
 * (EBDA_SHARD_THREADS, default hardware concurrency) only divides the
 * fixed shard list among executors — oversubscribed, single-threaded
 * and fully parallel runs produce identical results, which is what
 * lets tests/test_shard_equiv.cc pin sharded outputs without a
 * reference machine. Cross-shard credit visibility lags one cycle
 * (the mailbox hop), so a sharded run is a slightly different — but
 * equally valid — simulation than the classic loop; shards = 1 always
 * takes the classic CycleScheduler, bit for bit.
 *
 * v1 scope: fault plans, the protocol layer and uncompiled route
 * tables fall back to the classic backend (sim/shard_partition.hh
 * documents why); the event scheduler takes precedence when the load
 * heuristic picks it.
 */

#ifndef EBDA_SIM_SHARD_SCHED_HH
#define EBDA_SIM_SHARD_SCHED_HH

#include <cstdint>

#include "sim/scheduler.hh"

namespace ebda::sim {

/** The multi-core cycle backend: every cycle, in order, across all
 *  shards, with a barrier between cycles. */
class ShardedCycleScheduler final : public SchedulerBackend
{
  public:
    /** @param shard_count concrete shard count (>= 2), already
     *  resolved via resolveShardCount(). */
    explicit ShardedCycleScheduler(int shard_count)
        : shardCount(shard_count)
    {
    }

    std::uint64_t run(Simulator &sim, SimResult &result) override;

    int shards() const { return shardCount; }

  private:
    int shardCount;
};

} // namespace ebda::sim

#endif // EBDA_SIM_SHARD_SCHED_HH
