#include "sim/switch_allocator.hh"

#include "sim/protocol.hh"

namespace ebda::sim {

bool
SwitchAllocator::traverse(std::uint64_t cycle, ActiveSet &linkActive,
                          ActiveSet &allocActive,
                          std::vector<Router> &routers)
{
    bool moved = false;
    ++swArbOffset;

    // Hoisted loop invariants: the sweep visits every active link
    // every cycle, so per-flit work must not re-derive them.
    const SwitchingMode switching = fab.cfg.switching;
    const int packet_length = fab.cfg.packetLength;
    const int vc_depth = fab.cfg.vcDepth;
    const std::uint64_t pipe_extra =
        static_cast<std::uint64_t>(fab.cfg.routerLatency - 1);
    // Rotated starting positions for every VC/ejection arity in the
    // fabric. The offset advances by exactly one per traverse, so
    // rotStart[n] == swArbOffset % n is maintained incrementally —
    // no division per link or node visit, none per cycle either.
    for (std::size_t n = 1; n < rotStart.size(); ++n) {
        if (++rotStart[n] >= n)
            rotStart[n] = 0;
    }

    linkActive.sweep(
        swArbOffset % fab.net.numLinks(), [&](std::size_t li) -> bool {
            const topo::LinkId l = static_cast<topo::LinkId>(li);
            // Channel base + VC arity in one 8-byte probe record.
            const LinkProbe lp = linkInfo[li];
            const int nvc = static_cast<int>(lp.nvc);
            const topo::ChannelId base = lp.base;
            // Rotated VC order: v walks v0, v0+1, ..., wrapping by
            // conditional subtract instead of a modulo per probe.
            int v = static_cast<int>(rotStart[lp.nvc]);
            for (int vi = 0; vi < nvc; ++vi, ++v) {
                if (v >= nvc)
                    v -= nvc;
                const topo::ChannelId out =
                    base + static_cast<topo::ChannelId>(v);
                ChannelState &cs = fab.chan[out];
                const std::uint32_t holder = cs.owner;
                if (holder == topo::kInvalidId)
                    continue;
                InputVc &vc = fab.ivcs[holder];
                if (vc.buf.empty() || vc.buf.front().arrival >= cycle)
                    continue; // nothing movable yet: not a stall
                // One lookup of the downstream buffer for the space
                // probe, the push and the routed re-check alike.
                InputVc &down = fab.ivcs[out];
                const int space =
                    vc_depth - static_cast<int>(down.buf.size());
                if (space <= 0) {
                    ++routers[vc.atNode].stalls.creditStarved;
                    continue;
                }
                if (vc.buf.front().head
                    && !headMayAdvance(switching, packet_length, vc,
                                       space)) {
                    ++routers[vc.atNode].stalls.creditStarved;
                    continue;
                }
                if (portUsedStamp[portOf(vc)] == cycle) {
                    ++routers[vc.atNode].stalls.switchLost;
                    continue;
                }

                Flit flit = fab.popFlit(holder, vc, cycle);
                portUsedStamp[portOf(vc)] = cycle;
                // The flit becomes movable routerLatency cycles after
                // the hop (pipeline depth).
                flit.arrival = cycle + pipe_extra;
                fab.pushFlit(out, down, flit, cycle);
                ++cs.load;
                if (flit.head)
                    ++fab.packets[flit.pkt].hops;
                if (flit.tail) {
                    cs.owner = topo::kInvalidId;
                    --fab.ownedOnLink[l];
                    vc.routed = false;
                    vc.out = topo::kInvalidId;
                    vc.curPkt = topo::kInvalidId;
                    // The next packet's head (if any) needs an output.
                    if (!vc.buf.empty())
                        allocActive.schedule(holder);
                }
                // The moved flit may be a head waiting for allocation
                // downstream.
                if (!down.routed)
                    allocActive.schedule(out);
                moved = true;
                break; // one flit per output link per cycle
            }
            return fab.ownedOnLink[l] > 0;
        });
    return moved;
}

bool
SwitchAllocator::eject(std::uint64_t cycle, ActiveSet &ejectActive,
                       ActiveSet &allocActive,
                       std::vector<Router> &routers, EjectStats &stats)
{
    bool moved = false;

    ejectActive.sweep(0, [&](std::size_t ni) -> bool {
        const topo::NodeId n = static_cast<topo::NodeId>(ni);
        const auto &locals = routers[n].localIvcs;
        const std::size_t nloc = locals.size();
        // Rotated candidate order over the eject-routed VCs only: the
        // per-node mask replaces a scan of every local VC (most are
        // not eject-routed, and skipping one is side-effect free).
        // Splitting the mask at the rotated start position and
        // scanning each half ascending reproduces the original
        // p0, p0+1, ..., nloc-1, 0, ..., p0-1 visiting order exactly.
        const std::size_t p0 = rotStart[nloc];
        const std::uint64_t mask = fab.ejectMask[n];
        const std::uint64_t low = (std::uint64_t{1} << p0) - 1;
        std::uint64_t ranges[2] = {mask & ~low, mask & low};
        bool granted = false;
        for (std::uint64_t m : ranges) {
            while (m && !granted) {
                const auto p = static_cast<std::size_t>(
                    std::countr_zero(m));
                m &= m - 1;
                const std::size_t idx = locals[p];
                InputVc &vc = fab.ivcs[idx];
                if (vc.buf.empty() || vc.buf.front().arrival >= cycle)
                    continue;
                if (portUsedStamp[portOf(vc)] == cycle) {
                    ++routers[vc.atNode].stalls.switchLost;
                    continue;
                }
                const Flit flit = fab.popFlit(idx, vc, cycle);
                portUsedStamp[portOf(vc)] = cycle;
                --fab.flitsInFlight;
                ++fab.flitMoves;
                moved = true;
                if (flit.tail) {
                    vc.routed = false;
                    vc.eject = false;
                    vc.curPkt = topo::kInvalidId;
                    --fab.ejectPending[n];
                    fab.ejectMask[n] &=
                        ~(std::uint64_t{1} << vc.localPos);
                    if (!vc.buf.empty())
                        allocActive.schedule(idx);
                    PacketRec &pkt = fab.packets[flit.pkt];
                    ++stats.packetsEjected;
                    if (stats.inMeasurementWindow)
                        ++stats.measuredEjectedFlits;
                    if (pkt.measured) {
                        const auto latency = cycle - pkt.genCycle;
                        stats.latencyHist.add(latency);
                        stats.latencyStat.add(
                            static_cast<double>(latency));
                        stats.hopsStat.add(
                            static_cast<double>(pkt.hops));
                        --stats.measuredInFlight;
                    }
                    if (proto) {
                        if (pkt.msgClass == 0)
                            proto->onRequestDelivered(n, pkt, cycle);
                        else
                            proto->onReplyDelivered(n);
                    }
                    // Tail gone, stats recorded: the slot can host
                    // the next generated packet.
                    fab.freePacket(flit.pkt);
                } else if (stats.inMeasurementWindow) {
                    ++stats.measuredEjectedFlits;
                }
                granted = true; // one ejected flit per node per cycle
            }
            if (granted)
                break;
        }
        return fab.ejectPending[n] > 0;
    });
    return moved;
}

} // namespace ebda::sim
