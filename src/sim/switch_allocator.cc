#include "sim/switch_allocator.hh"

namespace ebda::sim {

bool
SwitchAllocator::headMayAdvance(SwitchingMode switching,
                                int packet_length, const InputVc &vc,
                                int space_at_out)
{
    switch (switching) {
      case SwitchingMode::Wormhole:
        return true;
      case SwitchingMode::VirtualCutThrough:
        // The downstream buffer must be able to accept the entire
        // packet so a blocked packet never straddles routers.
        return space_at_out >= packet_length;
      case SwitchingMode::StoreAndForward:
        // Additionally the whole packet must already be buffered here.
        if (space_at_out < packet_length)
            return false;
        if (vc.buf.size() < static_cast<std::size_t>(packet_length))
            return false;
        {
            const Flit &last =
                vc.buf[static_cast<std::size_t>(packet_length) - 1];
            return last.tail && last.pkt == vc.buf.front().pkt;
        }
    }
    return true;
}

bool
SwitchAllocator::traverse(std::uint64_t cycle, ActiveSet &linkActive,
                          ActiveSet &allocActive,
                          std::vector<Router> &routers)
{
    bool moved = false;
    ++swArbOffset;

    linkActive.sweep(
        swArbOffset % fab.net.numLinks(), [&](std::size_t li) -> bool {
            const topo::LinkId l = static_cast<topo::LinkId>(li);
            const int nvc = fab.net.vcsOnLink(l);
            for (int vi = 0; vi < nvc; ++vi) {
                const int v =
                    (vi + static_cast<int>(swArbOffset)) % nvc;
                const topo::ChannelId out = fab.net.channel(l, v);
                const std::uint32_t holder = fab.owner[out];
                if (holder == topo::kInvalidId)
                    continue;
                InputVc &vc = fab.ivcs[holder];
                if (vc.buf.empty() || vc.buf.front().arrival >= cycle)
                    continue; // nothing movable yet: not a stall
                const int space = fab.cfg.vcDepth
                    - static_cast<int>(fab.ivcs[out].buf.size());
                if (space <= 0) {
                    ++routers[vc.atNode].stalls.creditStarved;
                    continue;
                }
                if (vc.buf.front().head
                    && !headMayAdvance(fab.cfg.switching,
                                       fab.cfg.packetLength, vc, space)) {
                    ++routers[vc.atNode].stalls.creditStarved;
                    continue;
                }
                if (portUsedStamp[portOf(vc)] == cycle) {
                    ++routers[vc.atNode].stalls.switchLost;
                    continue;
                }

                Flit flit = fab.popFlit(holder, cycle);
                portUsedStamp[portOf(vc)] = cycle;
                // The flit becomes movable routerLatency cycles after
                // the hop (pipeline depth).
                flit.arrival = cycle
                    + static_cast<std::uint64_t>(fab.cfg.routerLatency
                                                 - 1);
                fab.pushFlit(out, flit, cycle);
                ++fab.channelLoad[out];
                if (flit.head)
                    ++fab.packets[flit.pkt].hops;
                if (flit.tail) {
                    fab.owner[out] = topo::kInvalidId;
                    --fab.ownedOnLink[l];
                    vc.routed = false;
                    vc.out = topo::kInvalidId;
                    vc.curPkt = topo::kInvalidId;
                    // The next packet's head (if any) needs an output.
                    if (!vc.buf.empty())
                        allocActive.schedule(holder);
                }
                // The moved flit may be a head waiting for allocation
                // downstream.
                if (!fab.ivcs[out].routed)
                    allocActive.schedule(out);
                moved = true;
                break; // one flit per output link per cycle
            }
            return fab.ownedOnLink[l] > 0;
        });
    return moved;
}

bool
SwitchAllocator::eject(std::uint64_t cycle, ActiveSet &ejectActive,
                       ActiveSet &allocActive,
                       std::vector<Router> &routers, EjectStats &stats)
{
    bool moved = false;

    ejectActive.sweep(0, [&](std::size_t ni) -> bool {
        const topo::NodeId n = static_cast<topo::NodeId>(ni);
        const auto &locals = routers[n].localIvcs;
        for (std::size_t k = 0; k < locals.size(); ++k) {
            const std::size_t idx =
                locals[(k + swArbOffset) % locals.size()];
            InputVc &vc = fab.ivcs[idx];
            if (!vc.routed || !vc.eject || vc.buf.empty()
                || vc.buf.front().arrival >= cycle) {
                continue;
            }
            if (portUsedStamp[portOf(vc)] == cycle) {
                ++routers[vc.atNode].stalls.switchLost;
                continue;
            }
            const Flit flit = fab.popFlit(idx, cycle);
            portUsedStamp[portOf(vc)] = cycle;
            --fab.flitsInFlight;
            moved = true;
            if (flit.tail) {
                vc.routed = false;
                vc.eject = false;
                vc.curPkt = topo::kInvalidId;
                --fab.ejectPending[n];
                if (!vc.buf.empty())
                    allocActive.schedule(idx);
                PacketRec &pkt = fab.packets[flit.pkt];
                ++stats.packetsEjected;
                if (stats.inMeasurementWindow)
                    ++stats.measuredEjectedFlits;
                if (pkt.measured) {
                    const auto latency = cycle - pkt.genCycle;
                    stats.latencyHist.add(latency);
                    stats.latencyStat.add(static_cast<double>(latency));
                    stats.hopsStat.add(static_cast<double>(pkt.hops));
                    --stats.measuredInFlight;
                }
            } else if (stats.inMeasurementWindow) {
                ++stats.measuredEjectedFlits;
            }
            break; // one ejected flit per node per cycle
        }
        return fab.ejectPending[n] > 0;
    });
    return moved;
}

} // namespace ebda::sim
