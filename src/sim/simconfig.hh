/**
 * @file
 * Simulation parameters and results — the value types shared by the
 * pipeline stages (router.hh, vc_allocator.hh, switch_allocator.hh),
 * the orchestrating Simulator, the JSON wire format (sim_json.hh) and
 * the sweep engine. Split out of simulator.hh so a stage object can be
 * built and unit-tested without the whole simulator.
 */

#ifndef EBDA_SIM_SIMCONFIG_HH
#define EBDA_SIM_SIMCONFIG_HH

#include <cstdint>
#include <vector>

#include "sim/scheduler.hh"

namespace ebda::sim {

/** Packet switching technique (Section 1 of the paper; Assumption 1:
 *  EbDa covers all three). */
enum class SwitchingMode : std::uint8_t
{
    /** Pipelined flits; buffers may be smaller than packets. */
    Wormhole,
    /** Head advances only when the downstream buffer can hold the
     *  whole packet (requires vcDepth >= packetLength). */
    VirtualCutThrough,
    /** Head advances only after the whole packet is buffered locally
     *  (requires vcDepth >= packetLength). */
    StoreAndForward,
};

/**
 * Output-selection policy: how a router picks among the (several)
 * legal candidates an adaptive routing relation offers. DyXY-style
 * congestion awareness is MaxCredits (pick the least congested
 * downstream buffer); the others serve as ablation baselines.
 */
enum class SelectionPolicy : std::uint8_t
{
    /** Most free downstream space (congestion-aware, default). */
    MaxCredits,
    /** Rotate deterministically across candidates. */
    RoundRobin,
    /** Uniform random choice (per-node deterministic stream). */
    Random,
    /** Always the first legal candidate (relation order). */
    FirstCandidate,
};

/** One scheduled fault: a unidirectional link or a whole router dying
 *  at a given cycle. */
struct FaultEvent
{
    /** Cycle the fault takes effect (start of cycle, before routing). */
    std::uint64_t cycle = 0;
    /** True: router fault (kills `node` and every adjacent link).
     *  False: link fault (kills the src -> dst link). */
    bool router = false;
    /** Failing router (router faults). */
    std::uint32_t node = 0;
    /** Endpoints of the failing link (link faults). */
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
};

/**
 * Deterministic fault schedule plus the recovery policy knobs. Part of
 * SimConfig (and of the sweep cache identity): identical seed +
 * FaultPlan replays bit-identically.
 *
 * Faults are either listed explicitly in `events` or derived from
 * `seed`: `randomLinkFaults` physical links (both directions) and
 * `randomRouterFaults` routers, scheduled at `firstCycle`,
 * `firstCycle + spacing`, ... The derivation uses its own SplitMix64 /
 * xoshiro substream, so it never perturbs the traffic streams.
 */
struct FaultPlan
{
    /** Explicit fault events (applied in cycle order). */
    std::vector<FaultEvent> events;
    /** Randomly drawn physical link faults (both directions die). */
    int randomLinkFaults = 0;
    /** Randomly drawn whole-router faults. */
    int randomRouterFaults = 0;
    /** Seed of the random fault schedule (independent of cfg.seed). */
    std::uint64_t seed = 1;
    /** Cycle of the first random fault. */
    std::uint64_t firstCycle = 1000;
    /** Cycles between consecutive random faults. */
    std::uint64_t spacing = 500;
    /** Watchdog-escalation drain-and-reroute passes before a run is
     *  declared wedged. */
    int maxRecoveryAttempts = 3;
    /** Source-retransmit attempts per packet before it is lost. */
    int maxRetransmits = 8;
    /** Base retransmit backoff in cycles; doubles per retry. */
    std::uint64_t retransmitBackoff = 16;
    /** Backoff ceiling in cycles. */
    std::uint64_t retransmitBackoffCap = 1024;
    /** Re-check the degraded relation against the Dally relation-CDG
     *  oracle after every applied fault event. */
    bool checkDegradedCdg = true;

    /** True when the plan schedules no fault at all (the simulator then
     *  runs the exact pre-fault code path, bit for bit). */
    bool
    empty() const
    {
        return events.empty() && randomLinkFaults == 0
               && randomRouterFaults == 0;
    }
};

/**
 * Request–reply protocol layer (sim/protocol.hh). When enabled, every
 * generated packet is a *request*; its delivery consumes a slot in the
 * destination endpoint's finite reply buffer and, after a service
 * latency, spawns a *reply* packet back to the requester. A full
 * endpoint refuses ejection, so endpoint backpressure propagates into
 * the fabric — which makes message-dependency (protocol) deadlock
 * reachable even on channel-level deadlock-free topologies
 * (arXiv:2101.06015). Part of the sweep cache identity; a disabled
 * layer is never serialized, so legacy configs keep their keys.
 */
struct ProtocolConfig
{
    /** Master switch: request–reply traffic instead of one-way. */
    bool requestReply = false;
    /** Per-endpoint reply/reassembly buffer in packets. A delivered
     *  request holds one slot until its reply has fully entered an
     *  injection VC. */
    int replyBufferDepth = 4;
    /** Cycles between request delivery and the reply becoming ready. */
    std::uint64_t serviceLatency = 8;
    /** Extra uniform service jitter in [0, serviceJitter] cycles,
     *  drawn from a dedicated per-endpoint RNG substream (never
     *  perturbs the per-router traffic streams). */
    std::uint64_t serviceJitter = 0;
    /** Message-class VC partitioning: 1 shares every VC between
     *  requests and replies (protocol deadlock reachable); 2 carves a
     *  dedicated reply class out of each link's (and each node's
     *  injection) VCs — the standard prevention: replies always sink,
     *  so the request→reply dependency cycle cannot close. */
    int messageClasses = 1;
    /** Buffer-reservation alternative: a node only generates a request
     *  when it can reserve a slot in its *own* reply buffer for the
     *  eventual reply (end-to-end credit). Bounds outstanding requests
     *  per node by the buffer depth — a throttle, not a proof. */
    bool reserveReplyBuffer = false;

    bool enabled() const { return requestReply; }
};

/** Simulation parameters. */
struct SimConfig
{
    std::uint64_t seed = 12345;
    /** Flits per VC buffer. */
    int vcDepth = 4;
    /** Flits per packet. */
    int packetLength = 4;
    /** Switching technique. */
    SwitchingMode switching = SwitchingMode::Wormhole;
    /** Router pipeline depth in cycles per hop (>= 1). The default of
     *  1 models a single-stage router; 3-4 approximates the classic
     *  RC/VA/SA/ST pipeline, shifting latency curves by a constant
     *  factor of the hop count. */
    int routerLatency = 1;
    /** Output-selection policy among legal adaptive candidates. */
    SelectionPolicy selection = SelectionPolicy::MaxCredits;
    /** Offered load in flits/node/cycle. */
    double injectionRate = 0.1;
    /** Injection-port VC buffers per node. */
    int injectionVcs = 2;
    /** Duato-safe atomic VC allocation (one packet per buffer). */
    bool atomicVcAllocation = false;
    std::uint64_t warmupCycles = 2000;
    std::uint64_t measureCycles = 10000;
    /** Post-measurement cap while waiting for measured packets. */
    std::uint64_t drainCycles = 100000;
    /** No-progress window that declares deadlock. */
    std::uint64_t watchdogCycles = 5000;
    /** Compile the routing relation into a flat route table so
     *  steady-state route compute is allocation-free array indexing
     *  (routing/route_table.hh). Off forces the virtual relation. */
    bool routeTable = true;
    /** Route-table size cap in bytes; a table that would exceed it
     *  falls back to the virtual relation. */
    std::uint64_t routeTableBudget = 64ull << 20;
    /** Scheduling backend (sim/scheduler.hh). Auto resolves per run
     *  via EBDA_SCHED_MODE / the injection-rate heuristic; both
     *  backends produce trace-equivalent results, so the resolved
     *  choice is an execution detail, not part of the cache identity
     *  (Auto is never serialized). */
    SchedMode schedMode = SchedMode::Auto;
    /** Spatial shard count for the multi-core cycle backend
     *  (sim/shard_sched.hh). 0 = Auto: engage sharding only on fabrics
     *  at or above the node-count cutoff, with a shard count derived
     *  from the fabric size alone — never from the machine — so a
     *  result stays a pure function of its config (worker threads are
     *  the hardware-adaptive knob and never change results). 1 forces
     *  the classic single-threaded CycleScheduler (bit-identical to
     *  the golden rows); >1 forces that many shards. Values other
     *  than 0 are serialized and therefore part of the sweep cache
     *  identity: a sharded run arbitrates per shard domain, so its
     *  results legitimately differ from the single-shard run. */
    int shards = 0;
    /** Request–reply protocol layer (disabled by default: the exact
     *  one-way code path runs, bit for bit). */
    ProtocolConfig protocol;
    /** Runtime fault schedule (empty by default: no fault path runs). */
    FaultPlan faults;
};

/** Aggregate results of one run. */
struct SimResult
{
    /** Generation-to-ejection latency of measured packets (cycles). */
    double avgLatency = 0.0;
    std::uint64_t p50Latency = 0;
    std::uint64_t p99Latency = 0;
    std::uint64_t maxLatency = 0;
    /** Average hop count of measured packets. */
    double avgHops = 0.0;
    /** Ejected flits per node per cycle during the measurement window. */
    double acceptedRate = 0.0;
    /** Generated flits per node per cycle (sanity echo of the config). */
    double offeredRate = 0.0;
    std::uint64_t packetsMeasured = 0;
    std::uint64_t packetsEjected = 0;
    /** True when the watchdog fired. */
    bool deadlocked = false;
    /** False when the drain cap expired with measured packets stuck. */
    bool drained = true;
    std::uint64_t cycles = 0;

    /** @name Channel-load distribution (flits forwarded per channel,
     *  network channels only) — backs the paper's claim that EbDa
     *  spreads traffic better than escape-channel designs.
     *  @{ */
    double channelLoadMean = 0.0;
    /** Coefficient of variation (stddev / mean); lower = more even. */
    double channelLoadCv = 0.0;
    /** Max / mean load ratio. */
    double channelLoadMaxRatio = 0.0;
    /** Fraction of channels that carried no flit at all. */
    double channelsUnused = 0.0;
    /** @} */

    /** @name Stall attribution (stall-cycles summed over all routers,
     *  whole run) — which pipeline stage refused flits, and where.
     *  @{ */
    std::uint64_t stallRouteCompute = 0;
    std::uint64_t stallVcStarved = 0;
    std::uint64_t stallCreditStarved = 0;
    std::uint64_t stallSwitchLost = 0;
    /** Node with the most stall-cycles and its count. */
    std::uint32_t hottestRouter = 0;
    std::uint64_t hottestRouterStalls = 0;
    /** @} */

    /** @name Channel occupancy (time-weighted, network channels)
     *  @{ */
    /** Mean over channels of the per-channel mean buffered flits. */
    double channelOccupancyMean = 0.0;
    /** Largest per-channel peak (saturates at vcDepth). */
    std::uint64_t channelOccupancyPeak = 0;
    /** @} */

    /** @name Deadlock forensics (empty / false unless deadlocked)
     *  The concrete wait-for cycle among channels extracted from the
     *  frozen fabric, and whether every one of its edges is a
     *  dependency of the Dally relation-CDG (it must be: the runtime
     *  witness is an instance of the statically predicted cycle).
     *  @{ */
    std::vector<std::uint32_t> deadlockCycle;
    bool deadlockCycleInCdg = false;
    /** @} */

    /** @name Fault injection and graceful degradation (all zero / true
     *  when the FaultPlan is empty)
     *  @{ */
    /** Fault events actually applied before the run ended. */
    std::uint64_t faultEventsApplied = 0;
    /** Packets purged from the fabric by faults / recovery passes. */
    std::uint64_t packetsDropped = 0;
    /** Source retransmissions scheduled for dropped packets. */
    std::uint64_t packetsRetransmitted = 0;
    /** Packets permanently lost (dead endpoint, unroutable, or retry
     *  budget exhausted). */
    std::uint64_t packetsLost = 0;
    /** Watchdog-escalation drain-and-reroute passes taken. */
    std::uint64_t recoveryPasses = 0;
    /** Degraded-relation CDG oracle runs (one per applied event). */
    std::uint64_t faultChecks = 0;
    /** ... of which found the degraded CDG still acyclic. */
    std::uint64_t faultChecksClean = 0;
    /** Measured packets delivered / measured packets generated. */
    double deliveredFraction = 1.0;
    /** True when the run ended without wedging: every watchdog event
     *  (if any) was absorbed by a recovery pass. */
    bool degradedGracefully = true;
    /** Aborted by an external budget / interrupt hook (sweep engine
     *  job budgets); results are partial. */
    bool aborted = false;
    /** @} */

    /** @name Route-compute accounting (routing/route_table.hh)
     *  @{ */
    /** Route-compute queries answered during the run (table or
     *  virtual fallback; identical either way, so sweeps stay
     *  bit-comparable across the two modes). */
    std::uint64_t routeComputeCalls = 0;
    /** True when queries were served from a compiled table. */
    bool routeTableCompiled = false;
    /** True when the table was widened to per-source rows. */
    bool routeTablePerSource = false;
    /** Compiled table size (rows + candidate pool). */
    std::uint64_t routeTableBytes = 0;
    /** Wall-clock nanoseconds spent compiling the table. NOT part of
     *  the JSON wire format: it varies run to run, and serialized
     *  results must be byte-identical across serial/parallel/cached
     *  sweeps. bench_route_compute reports real compile timings. */
    std::uint64_t routeTableCompileNanos = 0;
    /** @} */

    /** @name Request–reply protocol layer (sim/protocol.hh). All
     *  zero / false when the layer is disabled, and then omitted from
     *  the JSON wire format so pre-protocol results stay byte-identical.
     *  @{ */
    /** True when the run used the request–reply protocol layer. */
    bool protocolEnabled = false;
    /** Requests delivered into endpoint reply buffers. */
    std::uint64_t protocolRequestsDelivered = 0;
    /** Replies injected into the fabric. */
    std::uint64_t protocolRepliesInjected = 0;
    /** Replies delivered back to their requesters. */
    std::uint64_t protocolRepliesDelivered = 0;
    /** Head-of-line attempts refused because the destination endpoint
     *  buffer was full (endpoint backpressure into the fabric). */
    std::uint64_t protocolEndpointStalls = 0;
    /** Requests discarded at generation because no reply-buffer slot
     *  could be reserved (reserveReplyBuffer mode only). */
    std::uint64_t protocolThrottled = 0;
    /** Largest endpoint-buffer occupancy seen anywhere. */
    std::uint64_t protocolPeakOccupancy = 0;
    /** True when the watchdog wedge was a *protocol* (message-
     *  dependency) deadlock: the wait-for cycle crosses an endpoint or
     *  injection vertex, invisible to the channel-level CDG. */
    bool protocolDeadlock = false;
    /** @} */

    /** @name Scheduling backend (sim/scheduler.hh)
     *  Execution metadata, appended after every other field in the
     *  JSON wire format: equivalence tests strip exactly these two
     *  when diffing cycle- against event-mode results.
     *  @{ */
    /** The resolved backend that produced this result (never Auto). */
    SchedMode schedMode = SchedMode::Cycle;
    /** Cycles the backend actually executed. Equals `cycles` (+1) in
     *  cycle mode; far fewer in event mode at low load. */
    std::uint64_t wakeups = 0;
    /** @} */
};

} // namespace ebda::sim

#endif // EBDA_SIM_SIMCONFIG_HH
