/**
 * @file
 * Simulation parameters and results — the value types shared by the
 * pipeline stages (router.hh, vc_allocator.hh, switch_allocator.hh),
 * the orchestrating Simulator, the JSON wire format (sim_json.hh) and
 * the sweep engine. Split out of simulator.hh so a stage object can be
 * built and unit-tested without the whole simulator.
 */

#ifndef EBDA_SIM_SIMCONFIG_HH
#define EBDA_SIM_SIMCONFIG_HH

#include <cstdint>
#include <vector>

namespace ebda::sim {

/** Packet switching technique (Section 1 of the paper; Assumption 1:
 *  EbDa covers all three). */
enum class SwitchingMode : std::uint8_t
{
    /** Pipelined flits; buffers may be smaller than packets. */
    Wormhole,
    /** Head advances only when the downstream buffer can hold the
     *  whole packet (requires vcDepth >= packetLength). */
    VirtualCutThrough,
    /** Head advances only after the whole packet is buffered locally
     *  (requires vcDepth >= packetLength). */
    StoreAndForward,
};

/**
 * Output-selection policy: how a router picks among the (several)
 * legal candidates an adaptive routing relation offers. DyXY-style
 * congestion awareness is MaxCredits (pick the least congested
 * downstream buffer); the others serve as ablation baselines.
 */
enum class SelectionPolicy : std::uint8_t
{
    /** Most free downstream space (congestion-aware, default). */
    MaxCredits,
    /** Rotate deterministically across candidates. */
    RoundRobin,
    /** Uniform random choice (per-node deterministic stream). */
    Random,
    /** Always the first legal candidate (relation order). */
    FirstCandidate,
};

/** Simulation parameters. */
struct SimConfig
{
    std::uint64_t seed = 12345;
    /** Flits per VC buffer. */
    int vcDepth = 4;
    /** Flits per packet. */
    int packetLength = 4;
    /** Switching technique. */
    SwitchingMode switching = SwitchingMode::Wormhole;
    /** Router pipeline depth in cycles per hop (>= 1). The default of
     *  1 models a single-stage router; 3-4 approximates the classic
     *  RC/VA/SA/ST pipeline, shifting latency curves by a constant
     *  factor of the hop count. */
    int routerLatency = 1;
    /** Output-selection policy among legal adaptive candidates. */
    SelectionPolicy selection = SelectionPolicy::MaxCredits;
    /** Offered load in flits/node/cycle. */
    double injectionRate = 0.1;
    /** Injection-port VC buffers per node. */
    int injectionVcs = 2;
    /** Duato-safe atomic VC allocation (one packet per buffer). */
    bool atomicVcAllocation = false;
    std::uint64_t warmupCycles = 2000;
    std::uint64_t measureCycles = 10000;
    /** Post-measurement cap while waiting for measured packets. */
    std::uint64_t drainCycles = 100000;
    /** No-progress window that declares deadlock. */
    std::uint64_t watchdogCycles = 5000;
};

/** Aggregate results of one run. */
struct SimResult
{
    /** Generation-to-ejection latency of measured packets (cycles). */
    double avgLatency = 0.0;
    std::uint64_t p50Latency = 0;
    std::uint64_t p99Latency = 0;
    std::uint64_t maxLatency = 0;
    /** Average hop count of measured packets. */
    double avgHops = 0.0;
    /** Ejected flits per node per cycle during the measurement window. */
    double acceptedRate = 0.0;
    /** Generated flits per node per cycle (sanity echo of the config). */
    double offeredRate = 0.0;
    std::uint64_t packetsMeasured = 0;
    std::uint64_t packetsEjected = 0;
    /** True when the watchdog fired. */
    bool deadlocked = false;
    /** False when the drain cap expired with measured packets stuck. */
    bool drained = true;
    std::uint64_t cycles = 0;

    /** @name Channel-load distribution (flits forwarded per channel,
     *  network channels only) — backs the paper's claim that EbDa
     *  spreads traffic better than escape-channel designs.
     *  @{ */
    double channelLoadMean = 0.0;
    /** Coefficient of variation (stddev / mean); lower = more even. */
    double channelLoadCv = 0.0;
    /** Max / mean load ratio. */
    double channelLoadMaxRatio = 0.0;
    /** Fraction of channels that carried no flit at all. */
    double channelsUnused = 0.0;
    /** @} */

    /** @name Stall attribution (stall-cycles summed over all routers,
     *  whole run) — which pipeline stage refused flits, and where.
     *  @{ */
    std::uint64_t stallRouteCompute = 0;
    std::uint64_t stallVcStarved = 0;
    std::uint64_t stallCreditStarved = 0;
    std::uint64_t stallSwitchLost = 0;
    /** Node with the most stall-cycles and its count. */
    std::uint32_t hottestRouter = 0;
    std::uint64_t hottestRouterStalls = 0;
    /** @} */

    /** @name Channel occupancy (time-weighted, network channels)
     *  @{ */
    /** Mean over channels of the per-channel mean buffered flits. */
    double channelOccupancyMean = 0.0;
    /** Largest per-channel peak (saturates at vcDepth). */
    std::uint64_t channelOccupancyPeak = 0;
    /** @} */

    /** @name Deadlock forensics (empty / false unless deadlocked)
     *  The concrete wait-for cycle among channels extracted from the
     *  frozen fabric, and whether every one of its edges is a
     *  dependency of the Dally relation-CDG (it must be: the runtime
     *  witness is an instance of the statically predicted cycle).
     *  @{ */
    std::vector<std::uint32_t> deadlockCycle;
    bool deadlockCycleInCdg = false;
    /** @} */
};

} // namespace ebda::sim

#endif // EBDA_SIM_SIMCONFIG_HH
