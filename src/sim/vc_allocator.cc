#include "sim/vc_allocator.hh"

namespace ebda::sim {

topo::ChannelId
VcAllocator::selectOutput(SelectionPolicy policy,
                          const std::vector<topo::ChannelId> &free,
                          const std::vector<InputVc> &ivcs, int vc_depth,
                          std::size_t rotation, Rng &rng)
{
    topo::ChannelId best = topo::kInvalidId;
    switch (policy) {
      case SelectionPolicy::MaxCredits: {
          int best_space = -1;
          for (topo::ChannelId c : free) {
              const int space =
                  vc_depth - static_cast<int>(ivcs[c].buf.size());
              if (space > best_space) {
                  best_space = space;
                  best = c;
              }
          }
          break;
      }
      case SelectionPolicy::RoundRobin:
        best = free[rotation % free.size()];
        break;
      case SelectionPolicy::Random:
        best = free[rng.nextBounded(free.size())];
        break;
      case SelectionPolicy::FirstCandidate:
        best = free.front();
        break;
    }
    return best;
}

void
VcAllocator::allocate(ActiveSet &active, std::vector<Router> &routers,
                      ActiveSet &linkActive, ActiveSet &ejectActive)
{
    const std::size_t count = fab.ivcs.size();
    vcArbOffset = (vcArbOffset + 1) % count;

    active.sweep(vcArbOffset, [&](std::size_t i) -> bool {
        InputVc &vc = fab.ivcs[i];
        if (vc.routed || vc.buf.empty())
            return false; // stale: re-scheduled on the next transition
        if (!vc.buf.front().head)
            return true; // mid-packet front; wait for the head
        const PacketRec &pkt = fab.packets[vc.buf.front().pkt];
        Router &rtr = routers[vc.atNode];

        if (vc.atNode == pkt.dest) {
            vc.eject = true;
            vc.routed = true;
            vc.curPkt = vc.buf.front().pkt;
            if (fab.ejectPending[vc.atNode]++ == 0)
                ejectActive.schedule(vc.atNode);
            return false;
        }

        // Collect the free legal candidates, then apply the selection
        // policy.
        free.clear();
        bool any_candidate = false;
        for (topo::ChannelId c :
             route.candidatesView(vc.self, vc.atNode, pkt.src, pkt.dest,
                                  scratch)) {
            any_candidate = true;
            if (fab.owner[c] != topo::kInvalidId)
                continue;
            if (fab.cfg.atomicVcAllocation && !fab.ivcs[c].buf.empty())
                continue;
            free.push_back(c);
        }
        if (free.empty()) {
            if (any_candidate) {
                ++rtr.stalls.vcStarved;
            } else {
                ++rtr.stalls.routeCompute;
                if (collectStranded)
                    stranded.push_back(i);
            }
            return true; // keep waiting for an output VC
        }

        const topo::ChannelId best =
            selectOutput(fab.cfg.selection, free, fab.ivcs,
                         fab.cfg.vcDepth, vcArbOffset, rtr.rng);
        vc.out = best;
        vc.eject = false;
        vc.routed = true;
        vc.curPkt = vc.buf.front().pkt;
        fab.owner[best] = static_cast<std::uint32_t>(i);
        const topo::LinkId l = fab.net.linkOf(best);
        if (fab.ownedOnLink[l]++ == 0)
            linkActive.schedule(l);
        return false;
    });
}

} // namespace ebda::sim
