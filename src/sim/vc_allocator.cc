#include "sim/vc_allocator.hh"

#include "sim/protocol.hh"

namespace ebda::sim {

void
VcAllocator::allocate(ActiveSet &active, std::vector<Router> &routers,
                      ActiveSet &linkActive, ActiveSet &ejectActive)
{
    const std::size_t count = fab.ivcs.size();
    vcArbOffset = (vcArbOffset + 1) % count;

    active.sweep(vcArbOffset, [&](std::size_t i) -> bool {
        InputVc &vc = fab.ivcs[i];
        if (vc.routed || vc.buf.empty())
            return false; // stale: re-scheduled on the next transition
        if (!vc.buf.front().head)
            return true; // mid-packet front; wait for the head
        const PacketRec &pkt = fab.packets[vc.buf.front().pkt];
        Router &rtr = routers[vc.atNode];

        if (vc.atNode == pkt.dest) {
            if (proto && pkt.msgClass == 0 && !proto->canAccept(vc.atNode)) {
                // Endpoint reply buffer full: the request head keeps
                // its VC and waits — this refusal is how endpoint
                // backpressure reaches the fabric.
                ++rtr.stalls.creditStarved;
                ++proto->endpointStalls;
                return true;
            }
            if (proto && pkt.msgClass == 0)
                proto->reserveDelivery(vc.atNode);
            vc.eject = true;
            vc.routed = true;
            vc.curPkt = vc.buf.front().pkt;
            fab.ejectMask[vc.atNode] |= std::uint64_t{1} << vc.localPos;
            if (fab.ejectPending[vc.atNode]++ == 0)
                ejectActive.schedule(vc.atNode);
            return false;
        }

        // Collect the free legal candidates, then apply the selection
        // policy.
        free.clear();
        bool any_candidate = false;
        for (topo::ChannelId c :
             route.candidatesView(vc.self, vc.atNode, pkt.src, pkt.dest,
                                  scratch)) {
            any_candidate = true;
            if (proto && !proto->channelAllowed(c, pkt.msgClass))
                continue;
            if (fab.chan[c].owner != topo::kInvalidId)
                continue;
            if (fab.cfg.atomicVcAllocation && !fab.ivcs[c].buf.empty())
                continue;
            free.push_back(c);
        }
        if (free.empty()) {
            if (any_candidate) {
                ++rtr.stalls.vcStarved;
            } else {
                ++rtr.stalls.routeCompute;
                if (collectStranded)
                    stranded.push_back(i);
            }
            return true; // keep waiting for an output VC
        }

        const topo::ChannelId best =
            selectOutput(fab.cfg.selection, free, fab.ivcs,
                         fab.cfg.vcDepth, vcArbOffset, rtr.rng);
        vc.out = best;
        vc.eject = false;
        vc.routed = true;
        vc.curPkt = vc.buf.front().pkt;
        fab.chan[best].owner = static_cast<std::uint32_t>(i);
        const topo::LinkId l = fab.net.linkOf(best);
        if (fab.ownedOnLink[l]++ == 0)
            linkActive.schedule(l);
        return false;
    });
}

} // namespace ebda::sim
