/**
 * @file
 * JSON (de)serialization of SimConfig and SimResult — the wire format
 * shared by the sweep engine's result cache, the ebda_sweep results
 * JSONL, ebda_tool --json, and the benches' machine-readable dumps.
 *
 * Doubles are emitted with 17 significant digits so every IEEE-754
 * value round-trips exactly: a cache hit reproduces the stored result
 * bit-for-bit, and serial/parallel sweep outputs are byte-comparable.
 */

#ifndef EBDA_SIM_SIM_JSON_HH
#define EBDA_SIM_SIM_JSON_HH

#include <optional>
#include <string>

#include "sim/simconfig.hh"
#include "util/json.hh"

namespace ebda::sim {

/** Enum names ("wormhole"/"vct"/"saf", "max-credits"/...). */
std::string toString(SwitchingMode m);
std::optional<SwitchingMode> switchingFromString(const std::string &s);
std::string toString(SelectionPolicy p);
std::optional<SelectionPolicy> selectionFromString(const std::string &s);

/** Append the struct's fields to the writer's currently open object
 *  (declaration order; stable across runs). */
void jsonFields(JsonWriter &w, const SimConfig &c);
void jsonFields(JsonWriter &w, const SimResult &r);
void jsonFields(JsonWriter &w, const FaultPlan &p);
void jsonFields(JsonWriter &w, const ProtocolConfig &p);

/** Rebuild a FaultPlan from its JSON object (the "faults" member of a
 *  config). Errors name the full key path ("faults.events[2].kind"). */
std::optional<FaultPlan> faultPlanFromJson(const JsonValue &v,
                                           std::string *error = nullptr);

/** Rebuild a ProtocolConfig from its JSON object (the "protocol"
 *  member of a config). Errors name the full key path
 *  ("protocol.replyBufferDepth"). */
std::optional<ProtocolConfig>
protocolConfigFromJson(const JsonValue &v, std::string *error = nullptr);

/** Whole-object convenience wrappers. */
std::string toJson(const SimConfig &c);
std::string toJson(const SimResult &r);

/**
 * Rebuild a SimConfig from a parsed JSON object. Missing fields keep
 * their defaults; unknown keys and type mismatches are errors (they
 * would silently change what a sweep measures).
 */
std::optional<SimConfig> configFromJson(const JsonValue &v,
                                        std::string *error = nullptr);

/** Rebuild a SimResult (cache load). Unknown keys are ignored so the
 *  cache survives additive schema growth. */
std::optional<SimResult> resultFromJson(const JsonValue &v,
                                        std::string *error = nullptr);

} // namespace ebda::sim

#endif // EBDA_SIM_SIM_JSON_HH
