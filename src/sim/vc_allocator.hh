/**
 * @file
 * The route-compute + VC-allocation pipeline stage, extracted from the
 * monolithic simulator.
 *
 * A head flit at the front of an unrouted input VC asks the routing
 * relation for candidate output channels, keeps those whose output VC
 * is unowned (and empty, in atomic mode), and applies the configured
 * selection policy. Rotating priority across input VCs approximates a
 * separable round-robin allocator; the rotation offset advances by one
 * every cycle, exactly as the monolithic scan did, so arbitration is
 * bit-identical.
 *
 * The stage sweeps only the active set of VCs that hold flits and lack
 * an output (every skipped VC is a provable no-op for the original
 * scan), charges failed allocations to the owning router's stall
 * counters, and activates the downstream link / ejection sets for the
 * switch stage.
 */

#ifndef EBDA_SIM_VC_ALLOCATOR_HH
#define EBDA_SIM_VC_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "routing/route_table.hh"
#include "sim/active_set.hh"
#include "sim/router.hh"

namespace ebda::sim {

class ProtocolState;

/** Route computation and output-VC allocation. */
class VcAllocator
{
  public:
    /** `route` is the compiled table over the simulator's effective
     *  relation — zero-allocation candidate lookup in steady state. */
    VcAllocator(Fabric &fab, const routing::RouteTable &route)
        : fab(fab), route(route)
    {
    }

    /**
     * One allocation pass over the scheduled input VCs. Newly routed
     * VCs activate their output link (or their node's ejection port)
     * for the switch stage; VCs that fail stay scheduled and charge a
     * stall to their router.
     */
    void allocate(ActiveSet &active, std::vector<Router> &routers,
                  ActiveSet &linkActive, ActiveSet &ejectActive);

    /**
     * Pure selection-policy kernel: pick one of the free candidates.
     * `free` must be non-empty; `rotation` is the allocator's rotating
     * offset (RoundRobin), `rng` the node's stream (Random). Inline:
     * called for every successful head allocation every cycle.
     */
    static topo::ChannelId
    selectOutput(SelectionPolicy policy,
                 const std::vector<topo::ChannelId> &free,
                 const std::vector<InputVc> &ivcs, int vc_depth,
                 std::size_t rotation, Rng &rng)
    {
        topo::ChannelId best = topo::kInvalidId;
        switch (policy) {
          case SelectionPolicy::MaxCredits: {
              int best_space = -1;
              for (topo::ChannelId c : free) {
                  const int space =
                      vc_depth - static_cast<int>(ivcs[c].buf.size());
                  if (space > best_space) {
                      best_space = space;
                      best = c;
                  }
              }
              break;
          }
          case SelectionPolicy::RoundRobin:
            best = free[rotation % free.size()];
            break;
          case SelectionPolicy::Random:
            best = free[rng.nextBounded(free.size())];
            break;
          case SelectionPolicy::FirstCandidate:
            best = free.front();
            break;
        }
        return best;
    }

    /** Current rotating-priority offset (advanced at each allocate). */
    std::size_t offset() const { return vcArbOffset; }

    /** Re-derive the rotating offset after skipped cycles. allocate()
     *  advances the offset unconditionally, so it is a pure function
     *  of the cycle count: before executing the iteration for `cycle`
     *  the offset must be `cycle % numVcs` (allocate then advances it
     *  to the (cycle+1) value, exactly as if every skipped cycle had
     *  run). The event scheduler calls this after each idle jump. */
    void
    resyncOffset(std::uint64_t cycle)
    {
        vcArbOffset = static_cast<std::size_t>(
            cycle % static_cast<std::uint64_t>(fab.ivcs.size()));
    }

    /** @name Stranded-packet reporting (fault path)
     *  With `collectStranded` set, every swept VC whose head found no
     *  route candidate at all (a dead end of the degraded relation, not
     *  mere congestion) is appended to `stranded` for the simulator to
     *  purge the same cycle. Off by default: fault-free runs take the
     *  exact pre-fault code path.
     *  @{ */
    bool collectStranded = false;
    std::vector<std::size_t> stranded;
    /** @} */

    /** Request–reply protocol layer (sim/protocol.hh), or nullptr.
     *  When set, heads at their destination only eject-route while the
     *  endpoint reply buffer has space (endpoint backpressure), and
     *  the candidate sweep filters channels by message class. */
    ProtocolState *proto = nullptr;

  private:
    Fabric &fab;
    const routing::RouteTable &route;
    std::size_t vcArbOffset = 0;
    /** Fallback-path buffer for candidatesView (unused when the table
     *  is compiled: views then point straight into it). */
    std::vector<topo::ChannelId> scratch;
    /** Free legal candidates of the VC under allocation. A member so
     *  its capacity persists across cycles (steady-state allocate()
     *  performs no heap allocation). */
    std::vector<topo::ChannelId> free;
};

} // namespace ebda::sim

#endif // EBDA_SIM_VC_ALLOCATOR_HH
