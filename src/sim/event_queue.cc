/**
 * @file
 * EventScheduler implementation: mode resolution, the block-batched
 * injection draw engine, and the jump-capable event loop.
 * See event_queue.hh for the model and the equivalence argument.
 */

#include "sim/event_queue.hh"

#include <cmath>
#include <cstdlib>
#include <optional>

#include "sim/simulator.hh"
#include "util/logging.hh"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace ebda::sim {

SchedMode
resolveSchedMode(SchedMode requested, double injectionRate,
                 std::size_t numNodes)
{
    if (requested != SchedMode::Auto)
        return requested;
    if (const char *env = std::getenv("EBDA_SCHED_MODE")) {
        if (const auto m = schedModeFromString(env);
            m && *m != SchedMode::Auto)
            return *m;
    }
    // Scale the per-node cutoff so it tracks the fabric-wide arrival
    // rate: above the reference size the cutoff shrinks by
    // refNodes/numNodes (at or below it, the calibrated value holds —
    // every pre-existing Auto resolution is unchanged).
    double cutoff = kEventModeRateThreshold;
    if (numNodes > kEventModeRefNodes)
        cutoff *= static_cast<double>(kEventModeRefNodes)
            / static_cast<double>(numNodes);
    return injectionRate < cutoff ? SchedMode::Event
                                  : SchedMode::Cycle;
}

namespace {

/**
 * Four xoshiro256** streams in structure-of-arrays form: state word w
 * of lane i at s[w][i], so one aligned 256-bit load fetches word w of
 * all four lanes. One Lanes4 covers nodes [4g, 4g+4) of group g.
 */
struct alignas(32) Lanes4
{
    std::uint64_t s[4][4];
};

int
detectSimdPath()
{
#if defined(__x86_64__)
    // The kernels need AVX512F (rol, unsigned compare-to-mask) plus
    // AVX512DQ (64-bit mullo); avx2 covers the 256-bit fallback.
    if (__builtin_cpu_supports("avx512f")
        && __builtin_cpu_supports("avx512dq"))
        return 2;
    if (__builtin_cpu_supports("avx2"))
        return 1;
#endif
    return 0;
}

/** Draws per block pass. One block advances every lane 64 steps. */
constexpr int kBlockCycles = 64;

/**
 * Scalar block pass: advance the four lanes kBlockCycles draws through
 * the scalar Rng itself (the reference recurrence by definition) and
 * report which lanes saw at least one sub-threshold draw.
 */
unsigned
passGroupScalar(Lanes4 &g, std::uint64_t thr)
{
    unsigned lane_hits = 0;
    for (int i = 0; i < 4; ++i) {
        Rng rng(0);
        rng.setState({g.s[0][i], g.s[1][i], g.s[2][i], g.s[3][i]});
        for (int b = 0; b < kBlockCycles; ++b)
            if ((rng.next() >> 11) < thr)
                lane_hits |= 1u << i;
        const auto st = rng.state();
        for (int w = 0; w < 4; ++w)
            g.s[w][i] = st[w];
    }
    return lane_hits;
}

#if defined(__x86_64__)

/**
 * AVX2 block pass over one group (4 lanes). The vector recurrence is
 * the exact xoshiro256** step — rotl(s1*5,7)*9 with the multiplies
 * strength-reduced to shift+add (AVX2 has no 64-bit mullo) — so lane
 * streams match Rng::next() bit for bit. Signed cmpgt is safe: draws
 * are pre-shifted to 53 bits and thr <= 2^53, both far below 2^63.
 */
__attribute__((target("avx2"))) unsigned
passGroupAvx2(Lanes4 &g, std::uint64_t thr)
{
    __m256i s0 = _mm256_load_si256(reinterpret_cast<__m256i *>(g.s[0]));
    __m256i s1 = _mm256_load_si256(reinterpret_cast<__m256i *>(g.s[1]));
    __m256i s2 = _mm256_load_si256(reinterpret_cast<__m256i *>(g.s[2]));
    __m256i s3 = _mm256_load_si256(reinterpret_cast<__m256i *>(g.s[3]));
    const __m256i vthr =
        _mm256_set1_epi64x(static_cast<long long>(thr));
    unsigned lane_hits = 0;
    for (int b = 0; b < kBlockCycles; ++b) {
        const __m256i x5 =
            _mm256_add_epi64(s1, _mm256_slli_epi64(s1, 2));
        const __m256i r = _mm256_or_si256(_mm256_slli_epi64(x5, 7),
                                          _mm256_srli_epi64(x5, 57));
        const __m256i res =
            _mm256_add_epi64(r, _mm256_slli_epi64(r, 3));
        const __m256i t = _mm256_slli_epi64(s1, 17);
        s2 = _mm256_xor_si256(s2, s0);
        s3 = _mm256_xor_si256(s3, s1);
        s1 = _mm256_xor_si256(s1, s2);
        s0 = _mm256_xor_si256(s0, s3);
        s2 = _mm256_xor_si256(s2, t);
        s3 = _mm256_or_si256(_mm256_slli_epi64(s3, 45),
                             _mm256_srli_epi64(s3, 19));
        const __m256i k = _mm256_srli_epi64(res, 11);
        const __m256i hit = _mm256_cmpgt_epi64(vthr, k);
        lane_hits |= static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(hit)));
    }
    _mm256_store_si256(reinterpret_cast<__m256i *>(g.s[0]), s0);
    _mm256_store_si256(reinterpret_cast<__m256i *>(g.s[1]), s1);
    _mm256_store_si256(reinterpret_cast<__m256i *>(g.s[2]), s2);
    _mm256_store_si256(reinterpret_cast<__m256i *>(g.s[3]), s3);
    return lane_hits;
}

/**
 * AVX-512 block pass over two groups (8 lanes packed per register,
 * group a in the low 256 bits). Returns the 8-bit lane-hit mask:
 * bits 0-3 group a, bits 4-7 group b.
 */
__attribute__((target("avx512f,avx512dq"))) unsigned
passPairAvx512(Lanes4 &a, Lanes4 &b, std::uint64_t thr)
{
    // No lambda helpers: a lambda is its own function and does not
    // inherit this function's target attribute (the 256-bit loads
    // would fail to inline under the default ISA).
#define EBDA_PACK512(lo, hi)                                          \
    _mm512_inserti64x4(                                               \
        _mm512_castsi256_si512(                                       \
            _mm256_load_si256(reinterpret_cast<__m256i *>(lo))),      \
        _mm256_load_si256(reinterpret_cast<__m256i *>(hi)), 1)
    __m512i s0 = EBDA_PACK512(a.s[0], b.s[0]);
    __m512i s1 = EBDA_PACK512(a.s[1], b.s[1]);
    __m512i s2 = EBDA_PACK512(a.s[2], b.s[2]);
    __m512i s3 = EBDA_PACK512(a.s[3], b.s[3]);
#undef EBDA_PACK512
    const __m512i five = _mm512_set1_epi64(5);
    const __m512i nine = _mm512_set1_epi64(9);
    const __m512i vthr =
        _mm512_set1_epi64(static_cast<long long>(thr));
    __mmask8 lane_hits = 0;
    for (int b_i = 0; b_i < kBlockCycles; ++b_i) {
        const __m512i res = _mm512_mullo_epi64(
            _mm512_rol_epi64(_mm512_mullo_epi64(s1, five), 7), nine);
        const __m512i t = _mm512_slli_epi64(s1, 17);
        s2 = _mm512_xor_si512(s2, s0);
        s3 = _mm512_xor_si512(s3, s1);
        s1 = _mm512_xor_si512(s1, s2);
        s0 = _mm512_xor_si512(s0, s3);
        s2 = _mm512_xor_si512(s2, t);
        s3 = _mm512_rol_epi64(s3, 45);
        lane_hits = _kor_mask8(
            lane_hits,
            _mm512_cmplt_epu64_mask(_mm512_srli_epi64(res, 11), vthr));
    }
#define EBDA_UNPACK512(z, lo, hi)                                     \
    _mm256_store_si256(reinterpret_cast<__m256i *>(lo),               \
                       _mm512_castsi512_si256(z));                    \
    _mm256_store_si256(reinterpret_cast<__m256i *>(hi),               \
                       _mm512_extracti64x4_epi64(z, 1))
    EBDA_UNPACK512(s0, a.s[0], b.s[0]);
    EBDA_UNPACK512(s1, a.s[1], b.s[1]);
    EBDA_UNPACK512(s2, a.s[2], b.s[2]);
    EBDA_UNPACK512(s3, a.s[3], b.s[3]);
#undef EBDA_UNPACK512
    return static_cast<unsigned>(lane_hits);
}

#endif // __x86_64__

/**
 * The injection timer source: advances every node's RNG stream in
 * 64-cycle blocks, 4 (AVX2/scalar) or 8 (AVX-512) streams in lockstep,
 * and materializes the rare sub-threshold draws as (cycle, node, dest)
 * hit records. The vector pass only *detects* lanes with a hit; any
 * such lane is re-played through the scalar Rng from a pre-block state
 * snapshot so the interleaved TrafficGenerator::dest draws land in the
 * exact positions the cycle loop would have given them, and the
 * replayed state overwrites the vector lane. A no-hit vector lane
 * consumed exactly one draw per cycle, so by induction every lane
 * state at every block boundary equals the true stream's.
 *
 * The engine owns the streams for the whole run: the fast path has no
 * other RNG consumer (injection is the only draw site when faults are
 * off and selection is not Random), so the live per-router Rng objects
 * are left untouched at their seed state.
 */
class InjectionEngine
{
  public:
    /**
     * @param routers     per-node routers; their rng states seed the
     *                    lanes (the objects are not modified)
     * @param traffic     destination generator for replayed hits
     * @param packet_rate per-cycle Bernoulli probability, in (0, 1)
     * @param horizon     no hits are sought at or beyond this cycle
     */
    InjectionEngine(const std::vector<Router> &routers,
                    const TrafficGenerator &traffic, double packet_rate,
                    std::uint64_t horizon)
        : traffic(traffic), horizon(horizon),
          numNodes(static_cast<std::uint32_t>(routers.size())),
          path(detectSimdPath())
    {
        // nextDouble() < p  <=>  (next() >> 11) < ceil(p * 2^53):
        // p * 2^53 is exact in a double (the product only shifts the
        // exponent), so the integer threshold reproduces the Bernoulli
        // comparison bit for bit.
        thr = static_cast<std::uint64_t>(
            std::ceil(packet_rate * 9007199254740992.0));
        // Pad to a whole, even number of groups so the AVX-512 path
        // can always take pairs; padding lanes draw from throwaway
        // streams and can never become hits (node id out of range).
        const std::size_t groups = (routers.size() + 3) / 4;
        lanes.resize(groups + (groups & 1));
        SplitMix64 filler(0x9e3779b97f4a7c15ULL);
        for (std::size_t g = 0; g < lanes.size(); ++g) {
            for (int i = 0; i < 4; ++i) {
                const std::size_t node = g * 4
                    + static_cast<std::size_t>(i);
                if (node < routers.size()) {
                    const auto st = routers[node].rng.state();
                    for (int w = 0; w < 4; ++w)
                        lanes[g].s[w][i] = st[w];
                } else {
                    for (int w = 0; w < 4; ++w)
                        lanes[g].s[w][i] = filler.next();
                }
            }
        }
    }

    /**
     * Cycle of the earliest pending hit, generating blocks on demand;
     * std::nullopt when no stream hits again before the horizon.
     */
    std::optional<std::uint64_t>
    nextHitCycle()
    {
        while (hitHead >= hits.size()) {
            if (frontier >= horizon)
                return std::nullopt;
            runBlock();
        }
        return hits[hitHead].cycle;
    }

    /**
     * Apply every hit landing exactly at `cycle` (non-decreasing
     * between calls), in ascending node order — the order the cycle
     * loop's per-node generation scan allocates packets in.
     */
    template <typename Fn>
    void
    consumeHits(std::uint64_t cycle, Fn &&apply)
    {
        while (frontier <= cycle)
            runBlock();
        EBDA_ASSERT(hitHead >= hits.size()
                        || hits[hitHead].cycle >= cycle,
                    "injection hit skipped by the event loop");
        while (hitHead < hits.size() && hits[hitHead].cycle == cycle) {
            apply(hits[hitHead].node, hits[hitHead].dest);
            ++hitHead;
        }
    }

  private:
    struct Hit
    {
        std::uint64_t cycle;
        std::uint32_t node;
        std::uint32_t dest;
    };

    void
    runBlock()
    {
        if (hitHead == hits.size()) {
            hits.clear();
            hitHead = 0;
        }
        const std::uint64_t base = frontier;
        const std::size_t first_new = hits.size();
        std::size_t g = 0;
#if defined(__x86_64__)
        if (path == 2) {
            for (; g < lanes.size(); g += 2) {
                const Lanes4 snap_a = lanes[g];
                const Lanes4 snap_b = lanes[g + 1];
                const unsigned m =
                    passPairAvx512(lanes[g], lanes[g + 1], thr);
                if (m & 0x0fu)
                    replayGroup(g, m & 0x0fu, snap_a, base);
                if (m & 0xf0u)
                    replayGroup(g + 1, (m >> 4) & 0x0fu, snap_b, base);
            }
        } else if (path == 1) {
            for (; g < lanes.size(); ++g) {
                const Lanes4 snap = lanes[g];
                const unsigned m = passGroupAvx2(lanes[g], thr);
                if (m)
                    replayGroup(g, m, snap, base);
            }
        }
#endif
        for (; g < lanes.size(); ++g) {
            const Lanes4 snap = lanes[g];
            const unsigned m = passGroupScalar(lanes[g], thr);
            if (m)
                replayGroup(g, m, snap, base);
        }
        frontier += kBlockCycles;
        // Lanes appended their hits lane-by-lane; the consumer needs
        // global (cycle, node) order. Blocks are disjoint cycle
        // ranges, so sorting the new tail suffices.
        std::sort(hits.begin() + static_cast<std::ptrdiff_t>(first_new),
                  hits.end(), [](const Hit &a, const Hit &b) {
                      return a.cycle != b.cycle ? a.cycle < b.cycle
                                                : a.node < b.node;
                  });
    }

    /** Authoritative scalar replay of the flagged lanes of one group
     *  over the block starting at `base` (see class comment). */
    void
    replayGroup(std::size_t g, unsigned lane_mask, const Lanes4 &snap,
                std::uint64_t base)
    {
        for (int i = 0; i < 4; ++i) {
            if (!(lane_mask & (1u << i)))
                continue;
            const std::size_t node = g * 4 + static_cast<std::size_t>(i);
            if (node >= numNodes)
                continue;
            Rng rng(0);
            rng.setState({snap.s[0][i], snap.s[1][i], snap.s[2][i],
                          snap.s[3][i]});
            for (int b = 0; b < kBlockCycles; ++b) {
                if ((rng.next() >> 11) >= thr)
                    continue;
                // Self-addressed destinations consume their draws but
                // produce no packet, exactly like the cycle loop.
                const auto d = traffic.dest(
                    static_cast<topo::NodeId>(node), rng);
                if (d)
                    hits.push_back(
                        {base + static_cast<std::uint64_t>(b),
                         static_cast<std::uint32_t>(node), *d});
            }
            const auto st = rng.state();
            for (int w = 0; w < 4; ++w)
                lanes[g].s[w][i] = st[w];
        }
    }

    const TrafficGenerator &traffic;
    std::uint64_t thr = 0;
    std::uint64_t horizon;
    /** Cycles [0, frontier) have been drawn for every lane. */
    std::uint64_t frontier = 0;
    std::uint32_t numNodes;
    int path;
    std::vector<Lanes4> lanes;
    std::vector<Hit> hits;
    std::size_t hitHead = 0;
};

} // namespace

const char *
injectionEngineSimdPath()
{
    switch (detectSimdPath()) {
      case 2:
        return "avx512";
      case 1:
        return "avx2";
      default:
        return "scalar";
    }
}

std::uint64_t
EventScheduler::run(Simulator &sim, SimResult &result)
{
    const std::uint64_t measure_start = sim.cfg.warmupCycles;
    const std::uint64_t measure_end =
        measure_start + sim.cfg.measureCycles;
    const std::uint64_t hard_stop = measure_end + sim.cfg.drainCycles;

    const double packet_rate = sim.cfg.injectionRate
        / static_cast<double>(sim.cfg.packetLength);
    if (sim.injector.enabled() || sim.cfg.protocol.enabled()
        || sim.cfg.selection == SelectionPolicy::Random
        || !(packet_rate > 0.0) || packet_rate >= 1.0) {
        // Cycle-granular fallback (see event_queue.hh): fault plans,
        // protocol endpoints (service timers and reply injection fire
        // off the injection-draw schedule), allocation-interleaved
        // Random draws and degenerate rates make (almost) every cycle
        // a potential event, so the cycle loop IS the event loop there
        // — results identical by construction, wakeups == cycles.
        CycleScheduler dense;
        const std::uint64_t end = dense.run(sim, result);
        wakeups = dense.wakeups;
        return end;
    }

    InjectionEngine engine(sim.routerTable, sim.traffic, packet_rate,
                           hard_stop);
    EventQueue deadlines;
    deadlines.push(measure_start, EventKind::MeasureStart);
    deadlines.push(measure_end, EventKind::MeasureEnd);
    if (sim.cycleLimit && sim.cycleLimit < hard_stop)
        deadlines.push(sim.cycleLimit, EventKind::CycleLimit);
    if (sim.abortCheck)
        deadlines.push(0, EventKind::AbortPoll);

    const bool phase_hooks =
        sim.measureStartHook || sim.measureEndHook;
    std::uint64_t last_progress = 0;
    std::uint64_t cycle = 0;
    while (cycle < hard_stop) {
        if (sim.fab.flitsInFlight == 0
            && sim.injectActive.size() == 0) {
            // The fabric is empty and no packet awaits injection (the
            // injection set tracks exactly the nodes with non-empty
            // source queues after each executed cycle), so every cycle
            // until the next deadline is a provable no-op. Retire the
            // deadlines that already fired — re-arming the abort
            // poller at its next 1024-cycle boundary — and jump.
            while (!deadlines.empty()
                   && deadlines.top().cycle < cycle) {
                const SchedEvent ev = deadlines.pop();
                if (ev.kind == EventKind::AbortPoll)
                    deadlines.push((cycle + 1023)
                                       & ~std::uint64_t{1023},
                                   EventKind::AbortPoll);
            }
            if (const auto hit = engine.nextHitCycle())
                deadlines.push(*hit, EventKind::Injection);
            std::uint64_t target = hard_stop;
            if (!deadlines.empty())
                target = std::min(target, deadlines.top().cycle);
            if (target > cycle) {
                // Each skipped iteration has exactly three side
                // effects, reproduced in closed form: the genCycles
                // tick, and the two unconditional arbiter-rotation
                // advances (resyncOffset re-derives both from the
                // cycle count). The watchdog saw progress throughout
                // (an empty fabric resets it every cycle).
                sim.genCycles += target - cycle;
                sim.vcAlloc.resyncOffset(target);
                sim.swAlloc.resyncOffset(target);
                last_progress = target - 1;
                cycle = target;
                if (cycle >= hard_stop)
                    break;
            }
        }

        ++wakeups;
        if (phase_hooks) {
            if (cycle == measure_start && sim.measureStartHook)
                sim.measureStartHook();
            if (cycle == measure_end && sim.measureEndHook)
                sim.measureEndHook();
        }
        if (sim.cycleLimit && cycle >= sim.cycleLimit) {
            sim.abortedFlag = true;
            break;
        }
        if (sim.abortCheck && (cycle & 1023u) == 0
            && sim.abortCheck()) {
            sim.abortedFlag = true;
            break;
        }
        const bool measuring =
            cycle >= measure_start && cycle < measure_end;
        // The engine stands in for Simulator::generate: identical
        // draws, identical packet-allocation order (ascending node
        // within the cycle).
        engine.consumeHits(
            cycle, [&](std::uint32_t node, std::uint32_t dst) {
                PacketRec rec;
                rec.src = static_cast<topo::NodeId>(node);
                rec.dest = static_cast<topo::NodeId>(dst);
                rec.genCycle = cycle;
                rec.measured = measuring;
                sim.sourceQueues[node].push_back(
                    sim.fab.allocPacket(rec));
                sim.injectActive.schedule(node);
                sim.generatedFlits +=
                    static_cast<std::uint64_t>(sim.cfg.packetLength);
                if (measuring) {
                    ++sim.measuredInFlight;
                    ++sim.measuredGenerated;
                }
            });
        ++sim.genCycles;
        sim.fillInjectionVcs(cycle);
        sim.vcAlloc.allocate(sim.allocActive, sim.routerTable,
                             sim.linkActive, sim.ejectActive);
        bool moved = sim.swAlloc.traverse(cycle, sim.linkActive,
                                          sim.allocActive,
                                          sim.routerTable);
        EjectStats stats{sim.latencyHist,
                         sim.latencyStat,
                         sim.hopsStat,
                         sim.packetsEjectedCount,
                         sim.measuredEjectedFlits,
                         sim.measuredInFlight,
                         measuring};
        moved |= sim.swAlloc.eject(cycle, sim.ejectActive,
                                   sim.allocActive, sim.routerTable,
                                   stats);
        if (moved || sim.fab.flitsInFlight == 0)
            last_progress = cycle;
        if (cycle - last_progress > sim.cfg.watchdogCycles) {
            // Fault-free run: no recovery escalation to try (the
            // fallback above owns every faulted run).
            result.deadlocked = true;
            sim.forensicsDump =
                buildForensics(sim.fab, sim.table, cycle);
            result.deadlockCycle.assign(
                sim.forensicsDump.waitCycle.begin(),
                sim.forensicsDump.waitCycle.end());
            result.deadlockCycleInCdg =
                sim.forensicsDump.cycleInRelationCdg;
            break;
        }
        if (cycle >= measure_end && sim.measuredInFlight == 0)
            break;
        ++cycle;
    }
    return cycle;
}

} // namespace ebda::sim
