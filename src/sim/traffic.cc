#include "traffic.hh"

#include <bit>

#include "util/logging.hh"

namespace ebda::sim {

std::string
toString(TrafficPattern p)
{
    switch (p) {
      case TrafficPattern::Uniform:
        return "uniform";
      case TrafficPattern::Transpose:
        return "transpose";
      case TrafficPattern::BitComplement:
        return "bitcomp";
      case TrafficPattern::BitReverse:
        return "bitrev";
      case TrafficPattern::Shuffle:
        return "shuffle";
      case TrafficPattern::Tornado:
        return "tornado";
      case TrafficPattern::Neighbor:
        return "neighbor";
      case TrafficPattern::Hotspot:
        return "hotspot";
    }
    return "?";
}

std::optional<TrafficPattern>
patternFromString(const std::string &s)
{
    for (const auto p :
         {TrafficPattern::Uniform, TrafficPattern::Transpose,
          TrafficPattern::BitComplement, TrafficPattern::BitReverse,
          TrafficPattern::Shuffle, TrafficPattern::Tornado,
          TrafficPattern::Neighbor, TrafficPattern::Hotspot})
        if (toString(p) == s)
            return p;
    return std::nullopt;
}

TrafficGenerator::TrafficGenerator(const topo::Network &network,
                                   TrafficPattern pattern,
                                   topo::NodeId hotspot_node,
                                   int hotspot_percent)
    : net(network), patternKind(pattern), hotspotNode(hotspot_node),
      hotspotPercent(hotspot_percent)
{
    const std::size_t n = net.numNodes();
    addressBits = std::has_single_bit(n)
        ? std::countr_zero(n)
        : -1;
    const bool needs_bits = pattern == TrafficPattern::BitComplement
        || pattern == TrafficPattern::BitReverse
        || pattern == TrafficPattern::Shuffle;
    EBDA_ASSERT(!needs_bits || addressBits > 0,
                "bit permutation patterns need a power-of-two node count");
    EBDA_ASSERT(hotspot_node < net.numNodes(), "hotspot out of range");
    EBDA_ASSERT(hotspot_percent >= 0 && hotspot_percent <= 100,
                "hotspot percentage out of range");
}

topo::NodeId
TrafficGenerator::permute(topo::NodeId src) const
{
    switch (patternKind) {
      case TrafficPattern::Transpose: {
          // Reverse the coordinate vector (matrix transpose in 2D).
          const topo::Coord c = net.coord(src);
          topo::Coord t(c.rbegin(), c.rend());
          // Requires matching radices for the reversed assignment.
          for (std::size_t d = 0; d < t.size(); ++d) {
              EBDA_ASSERT(t[d] < net.dims()[d],
                          "transpose needs equal radices per dimension");
          }
          return net.node(t);
      }
      case TrafficPattern::BitComplement: {
          const std::uint32_t mask = (1u << addressBits) - 1;
          return (~src) & mask;
      }
      case TrafficPattern::BitReverse: {
          std::uint32_t r = 0;
          for (int b = 0; b < addressBits; ++b)
              if (src & (1u << b))
                  r |= 1u << (addressBits - 1 - b);
          return r;
      }
      case TrafficPattern::Shuffle: {
          const std::uint32_t mask = (1u << addressBits) - 1;
          return ((src << 1) | (src >> (addressBits - 1))) & mask;
      }
      case TrafficPattern::Tornado: {
          // Half-way (minus one) around each dimension.
          topo::Coord c = net.coord(src);
          for (std::size_t d = 0; d < c.size(); ++d) {
              const int k = net.dims()[d];
              c[d] = (c[d] + (k + 1) / 2 - 1) % k;
          }
          return net.node(c);
      }
      case TrafficPattern::Neighbor: {
          topo::Coord c = net.coord(src);
          for (std::size_t d = 0; d < c.size(); ++d)
              c[d] = (c[d] + 1) % net.dims()[d];
          return net.node(c);
      }
      default:
        EBDA_PANIC("permute called for a random pattern");
    }
}

std::optional<topo::NodeId>
TrafficGenerator::dest(topo::NodeId src, Rng &rng) const
{
    topo::NodeId d = src;
    switch (patternKind) {
      case TrafficPattern::Uniform:
        d = static_cast<topo::NodeId>(rng.nextBounded(net.numNodes()));
        break;
      case TrafficPattern::Hotspot:
        if (rng.nextBounded(100)
            < static_cast<std::uint64_t>(hotspotPercent)) {
            d = hotspotNode;
        } else {
            d = static_cast<topo::NodeId>(
                rng.nextBounded(net.numNodes()));
        }
        break;
      default:
        d = permute(src);
        break;
    }
    if (d == src)
        return std::nullopt;
    return d;
}

} // namespace ebda::sim
