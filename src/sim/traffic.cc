#include "traffic.hh"

#include <bit>
#include <stdexcept>

#include "util/logging.hh"

namespace ebda::sim {

std::string
toString(TrafficPattern p)
{
    switch (p) {
      case TrafficPattern::Uniform:
        return "uniform";
      case TrafficPattern::Transpose:
        return "transpose";
      case TrafficPattern::BitComplement:
        return "bitcomp";
      case TrafficPattern::BitReverse:
        return "bitrev";
      case TrafficPattern::Shuffle:
        return "shuffle";
      case TrafficPattern::Tornado:
        return "tornado";
      case TrafficPattern::Neighbor:
        return "neighbor";
      case TrafficPattern::Hotspot:
        return "hotspot";
    }
    return "?";
}

std::optional<TrafficPattern>
patternFromString(const std::string &s)
{
    for (const auto p :
         {TrafficPattern::Uniform, TrafficPattern::Transpose,
          TrafficPattern::BitComplement, TrafficPattern::BitReverse,
          TrafficPattern::Shuffle, TrafficPattern::Tornado,
          TrafficPattern::Neighbor, TrafficPattern::Hotspot})
        if (toString(p) == s)
            return p;
    return std::nullopt;
}

TrafficGenerator::TrafficGenerator(const topo::Network &network,
                                   TrafficPattern pattern,
                                   topo::NodeId hotspot_node,
                                   int hotspot_percent)
    : net(network), patternKind(pattern), hotspotNode(hotspot_node),
      hotspotPercent(hotspot_percent)
{
    const std::size_t n = net.numNodes();
    addressBits = std::has_single_bit(n)
        ? std::countr_zero(n)
        : -1;
    // Routability guards, enforced at construction so a sweep spec
    // pairing a pattern with a network it is undefined on fails the
    // job cleanly (std::invalid_argument reaches the runner's
    // per-job catch) instead of asserting mid-simulation.
    const bool needs_bits = pattern == TrafficPattern::BitComplement
        || pattern == TrafficPattern::BitReverse
        || pattern == TrafficPattern::Shuffle;
    if (needs_bits && addressBits <= 0)
        throw std::invalid_argument(
            toString(pattern)
            + " traffic needs a power-of-two node count, got "
            + std::to_string(n) + " nodes");
    if (pattern == TrafficPattern::Transpose) {
        // Reversing a coordinate vector stays in range iff the radix
        // vector is a palindrome (e.g. 4x4 or 2x8x2, not 2x8).
        const topo::Coord &dims = net.dims();
        for (std::size_t d = 0; d < dims.size(); ++d) {
            if (dims[d] != dims[dims.size() - 1 - d])
                throw std::invalid_argument(
                    "transpose traffic needs a palindromic radix "
                    "vector (dimension " + std::to_string(d)
                    + " has radix " + std::to_string(dims[d])
                    + ", its mirror "
                    + std::to_string(dims[dims.size() - 1 - d]) + ")");
        }
    }
    EBDA_ASSERT(hotspot_node < net.numNodes(), "hotspot out of range");
    EBDA_ASSERT(hotspot_percent >= 0 && hotspot_percent <= 100,
                "hotspot percentage out of range");
}

topo::NodeId
TrafficGenerator::permute(topo::NodeId src) const
{
    switch (patternKind) {
      case TrafficPattern::Transpose: {
          // Reverse the coordinate vector (matrix transpose in 2D).
          // In range by the constructor's palindromic-radix guard.
          const topo::Coord c = net.coord(src);
          topo::Coord t(c.rbegin(), c.rend());
          return net.node(t);
      }
      case TrafficPattern::BitComplement: {
          const std::uint32_t mask = (1u << addressBits) - 1;
          return (~src) & mask;
      }
      case TrafficPattern::BitReverse: {
          std::uint32_t r = 0;
          for (int b = 0; b < addressBits; ++b)
              if (src & (1u << b))
                  r |= 1u << (addressBits - 1 - b);
          return r;
      }
      case TrafficPattern::Shuffle: {
          const std::uint32_t mask = (1u << addressBits) - 1;
          return ((src << 1) | (src >> (addressBits - 1))) & mask;
      }
      case TrafficPattern::Tornado: {
          // Half-way (minus one) around each dimension.
          topo::Coord c = net.coord(src);
          for (std::size_t d = 0; d < c.size(); ++d) {
              const int k = net.dims()[d];
              c[d] = (c[d] + (k + 1) / 2 - 1) % k;
          }
          return net.node(c);
      }
      case TrafficPattern::Neighbor: {
          topo::Coord c = net.coord(src);
          for (std::size_t d = 0; d < c.size(); ++d)
              c[d] = (c[d] + 1) % net.dims()[d];
          return net.node(c);
      }
      default:
        EBDA_PANIC("permute called for a random pattern");
    }
}

std::optional<topo::NodeId>
TrafficGenerator::partner(topo::NodeId src) const
{
    if (patternKind == TrafficPattern::Uniform
        || patternKind == TrafficPattern::Hotspot)
        return std::nullopt;
    const topo::NodeId d = permute(src);
    if (d == src)
        return std::nullopt;
    return d;
}

std::optional<topo::NodeId>
TrafficGenerator::dest(topo::NodeId src, Rng &rng) const
{
    topo::NodeId d = src;
    switch (patternKind) {
      case TrafficPattern::Uniform:
        d = static_cast<topo::NodeId>(rng.nextBounded(net.numNodes()));
        break;
      case TrafficPattern::Hotspot:
        if (rng.nextBounded(100)
            < static_cast<std::uint64_t>(hotspotPercent)) {
            d = hotspotNode;
        } else {
            d = static_cast<topo::NodeId>(
                rng.nextBounded(net.numNodes()));
        }
        break;
      default:
        d = permute(src);
        break;
    }
    if (d == src)
        return std::nullopt;
    return d;
}

} // namespace ebda::sim
