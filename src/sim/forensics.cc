#include "sim/forensics.hh"

#include <algorithm>
#include <sstream>

#include "cdg/relation_cdg.hh"
#include "graph/cycles.hh"
#include "sim/protocol.hh"

namespace ebda::sim {

DeadlockForensics
buildForensics(const Fabric &fab, const routing::RouteTable &route,
               std::uint64_t cycle, const ProtocolState *proto)
{
    DeadlockForensics out;
    out.frozenAtCycle = cycle;
    out.frozenFlits = fab.flitsInFlight;

    // Wait-for graph over input VC indices. Channel buffers use their
    // channel id as vertex; injection buffers follow (they can start a
    // wait chain but, without the protocol layer, nothing waits on
    // them, so they never cycle). Protocol runs append one endpoint
    // vertex per node: that is where the cross-message edges meet.
    const std::size_t endpoint_base = fab.ivcs.size();
    graph::Digraph waits(
        endpoint_base + (proto ? fab.net.numNodes() : 0));
    if (proto) {
        out.protocolRun = true;
        out.numChannels = fab.net.numChannels();
        out.endpointVertexBase =
            static_cast<std::uint32_t>(endpoint_base);
        out.injectionVcs =
            static_cast<std::uint32_t>(fab.cfg.injectionVcs);
    }
    for (std::size_t i = 0; i < fab.ivcs.size(); ++i) {
        const InputVc &vc = fab.ivcs[i];
        if (vc.buf.empty())
            continue;
        if (vc.routed && vc.eject)
            continue; // ejection has no backpressure: drains eventually

        BlockedVc rec;
        rec.channel = vc.self;
        rec.node = vc.atNode;
        rec.packet = vc.buf.front().pkt;
        rec.routed = vc.routed;
        rec.bufferedFlits = static_cast<std::uint32_t>(vc.buf.size());
        if (vc.routed) {
            rec.waitingOn.push_back(vc.out);
        } else if (vc.buf.front().head) {
            const PacketRec &pkt = fab.packets[vc.buf.front().pkt];
            if (proto && pkt.msgClass == 0 && vc.atNode == pkt.dest
                && !proto->canAccept(vc.atNode)) {
                // Request head refused ejection: it waits on the full
                // endpoint, not on any channel.
                rec.waitsOnEndpoint = true;
                waits.addEdge(static_cast<graph::NodeId>(i),
                              static_cast<graph::NodeId>(endpoint_base
                                                         + vc.atNode));
            } else {
                route.candidatesInto(vc.self, vc.atNode, pkt.src,
                                     pkt.dest, rec.waitingOn);
                // The class partition narrows the wait set to the
                // channels this message may legally allocate.
                if (proto)
                    rec.waitingOn.erase(
                        std::remove_if(
                            rec.waitingOn.begin(), rec.waitingOn.end(),
                            [&](topo::ChannelId c) {
                                return !proto->channelAllowed(
                                    c, pkt.msgClass);
                            }),
                        rec.waitingOn.end());
            }
        }
        for (topo::ChannelId w : rec.waitingOn)
            waits.addEdge(static_cast<graph::NodeId>(i), w);
        out.blocked.push_back(std::move(rec));
    }

    // Spawned-message edges: an endpoint with serviced replies pending
    // waits on its reply-band injection VCs — its slots free only once
    // a reply has fully entered one of them.
    if (proto) {
        for (topo::NodeId n = 0; n < fab.net.numNodes(); ++n) {
            if (proto->endpointsView()[n].pending.empty())
                continue;
            for (int k = proto->replyInjVcBegin();
                 k < fab.cfg.injectionVcs; ++k)
                waits.addEdge(
                    static_cast<graph::NodeId>(endpoint_base + n),
                    static_cast<graph::NodeId>(fab.injIndex(n, k)));
        }
        // reserveReplyBuffer mode adds the requester-side half of the
        // round trip: a reserved slot at node n frees only when n's
        // own outstanding exchange completes, so endpoint@n waits on
        // every buffer holding one of n's requests (outbound) or
        // replies to n (inbound), and on the server endpoint whose
        // pending queue holds the not-yet-injected reply. Edges from
        // endpoints that are not actually full are harmless: nothing
        // points *into* an endpoint unless it refused an ejection.
        if (proto->reservationMode()) {
            const auto owner_edge = [&](std::uint32_t pid,
                                        std::size_t vertex) {
                const PacketRec &pkt = fab.packets[pid];
                const topo::NodeId owner =
                    pkt.msgClass == 0 ? pkt.src : pkt.dest;
                waits.addEdge(
                    static_cast<graph::NodeId>(endpoint_base + owner),
                    static_cast<graph::NodeId>(vertex));
            };
            for (std::size_t i = 0; i < fab.ivcs.size(); ++i) {
                const InputVc &vc = fab.ivcs[i];
                std::uint32_t last = topo::kInvalidId;
                for (std::size_t k = 0; k < vc.buf.size(); ++k) {
                    if (vc.buf[k].pkt == last)
                        continue; // one edge per packet per buffer
                    last = vc.buf[k].pkt;
                    owner_edge(last, i);
                }
            }
            for (topo::NodeId n = 0; n < fab.net.numNodes(); ++n) {
                const auto &pending = proto->endpointsView()[n].pending;
                for (std::size_t k = 0; k < pending.size(); ++k)
                    waits.addEdge(
                        static_cast<graph::NodeId>(endpoint_base
                                                   + pending[k].dest),
                        static_cast<graph::NodeId>(endpoint_base + n));
            }
        }
        // The verifier-blind-spot cross-check: on a genuine protocol
        // wedge the channel-level Dally oracle still certifies the
        // relation clean.
        out.channelOracleClean =
            cdg::checkDeadlockFree(route.relation()).deadlockFree;
    }

    const graph::CycleReport cyc = graph::findCycle(waits);
    if (cyc.acyclic)
        return out;
    out.waitCycle.assign(cyc.cycle.begin(), cyc.cycle.end());
    if (proto)
        out.protocolDeadlock = std::any_of(
            out.waitCycle.begin(), out.waitCycle.end(),
            [&](topo::ChannelId v) {
                return v >= fab.net.numChannels();
            });

    // Cross-reference: every wait edge between channels must be a
    // dependency the static Dally verifier already knows about.
    const graph::Digraph cdgGraph =
        cdg::buildRelationCdg(route.relation());
    out.cycleInRelationCdg = true;
    for (std::size_t k = 0; k < out.waitCycle.size(); ++k) {
        const topo::ChannelId from = out.waitCycle[k];
        const topo::ChannelId to =
            out.waitCycle[(k + 1) % out.waitCycle.size()];
        if (from >= fab.net.numChannels() || to >= fab.net.numChannels()
            || !cdgGraph.hasEdge(from, to)) {
            out.cycleInRelationCdg = false;
            break;
        }
    }
    return out;
}

std::string
DeadlockForensics::describe(const topo::Network &net) const
{
    // Vertex naming: channels by their network name; in protocol runs
    // the appended injection and endpoint vertices get synthetic names.
    // Channel-only dumps render byte-identically to the pre-protocol
    // format (tests/test_golden_sim.cc pins them).
    const auto vname = [&](topo::ChannelId v) -> std::string {
        if (!protocolRun || v < numChannels)
            return net.channelName(v);
        if (v < endpointVertexBase) {
            const std::uint32_t rel = v - numChannels;
            return "injection@node" + std::to_string(rel / injectionVcs)
                + ".vc" + std::to_string(rel % injectionVcs);
        }
        return "endpoint@node"
            + std::to_string(v - endpointVertexBase);
    };
    std::ostringstream os;
    os << "deadlock forensics: frozen at cycle " << frozenAtCycle
       << ", " << frozenFlits << " flits stuck, " << blocked.size()
       << " blocked buffers\n";
    for (const BlockedVc &b : blocked) {
        os << "  ";
        if (b.channel == cdg::kInjectionChannel)
            os << "injection@node" << b.node;
        else
            os << net.channelName(b.channel);
        os << ": pkt " << b.packet << ", " << b.bufferedFlits
           << " flits, ";
        if (b.waitsOnEndpoint) {
            os << "unrouted, waits on full [endpoint@node" << b.node
               << "]";
        } else {
            os << (b.routed ? "holds output, waits on"
                            : "unrouted, candidates:");
            for (topo::ChannelId w : b.waitingOn)
                os << " [" << net.channelName(w) << "]";
        }
        os << "\n";
    }
    if (waitCycle.empty()) {
        os << "  no wait-for cycle found (livelock or starvation, not "
              "hold-and-wait)\n";
    } else {
        os << "  wait-for cycle (" << waitCycle.size()
           << (protocolRun ? " vertices):\n" : " channels):\n");
        for (topo::ChannelId c : waitCycle)
            os << "    " << vname(c) << "\n";
        if (protocolDeadlock) {
            // The cycle crosses endpoint/injection vertices, which the
            // channel CDG cannot represent — its absence there is the
            // point, not a verifier gap.
            os << "  every edge in static relation CDG: n/a (cycle "
                  "crosses message-dependency edges)\n";
        } else {
            os << "  every edge in static relation CDG: "
               << (cycleInRelationCdg ? "yes" : "NO (verifier gap!)")
               << "\n";
        }
    }
    if (protocolRun) {
        os << "  classification: "
           << (protocolDeadlock
                   ? "protocol (message-dependency) deadlock"
                   : "channel deadlock")
           << "\n";
        os << "  channel-level Dally oracle on the relation: "
           << (channelOracleClean ? "clean" : "cyclic") << "\n";
    }
    return os.str();
}

} // namespace ebda::sim
