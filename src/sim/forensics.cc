#include "sim/forensics.hh"

#include <sstream>

#include "cdg/relation_cdg.hh"
#include "graph/cycles.hh"

namespace ebda::sim {

DeadlockForensics
buildForensics(const Fabric &fab, const routing::RouteTable &route,
               std::uint64_t cycle)
{
    DeadlockForensics out;
    out.frozenAtCycle = cycle;
    out.frozenFlits = fab.flitsInFlight;

    // Wait-for graph over input VC indices. Channel buffers use their
    // channel id as vertex; injection buffers follow (they can start a
    // wait chain but nothing waits on them, so they never cycle).
    graph::Digraph waits(fab.ivcs.size());
    for (std::size_t i = 0; i < fab.ivcs.size(); ++i) {
        const InputVc &vc = fab.ivcs[i];
        if (vc.buf.empty())
            continue;
        if (vc.routed && vc.eject)
            continue; // ejection has no backpressure: drains eventually

        BlockedVc rec;
        rec.channel = vc.self;
        rec.node = vc.atNode;
        rec.packet = vc.buf.front().pkt;
        rec.routed = vc.routed;
        rec.bufferedFlits = static_cast<std::uint32_t>(vc.buf.size());
        if (vc.routed) {
            rec.waitingOn.push_back(vc.out);
        } else if (vc.buf.front().head) {
            const PacketRec &pkt = fab.packets[vc.buf.front().pkt];
            route.candidatesInto(vc.self, vc.atNode, pkt.src, pkt.dest,
                                 rec.waitingOn);
        }
        for (topo::ChannelId w : rec.waitingOn)
            waits.addEdge(static_cast<graph::NodeId>(i), w);
        out.blocked.push_back(std::move(rec));
    }

    const graph::CycleReport cyc = graph::findCycle(waits);
    if (cyc.acyclic)
        return out;
    out.waitCycle.assign(cyc.cycle.begin(), cyc.cycle.end());

    // Cross-reference: every wait edge between channels must be a
    // dependency the static Dally verifier already knows about.
    const graph::Digraph cdgGraph =
        cdg::buildRelationCdg(route.relation());
    out.cycleInRelationCdg = true;
    for (std::size_t k = 0; k < out.waitCycle.size(); ++k) {
        const topo::ChannelId from = out.waitCycle[k];
        const topo::ChannelId to =
            out.waitCycle[(k + 1) % out.waitCycle.size()];
        if (from >= fab.net.numChannels() || to >= fab.net.numChannels()
            || !cdgGraph.hasEdge(from, to)) {
            out.cycleInRelationCdg = false;
            break;
        }
    }
    return out;
}

std::string
DeadlockForensics::describe(const topo::Network &net) const
{
    std::ostringstream os;
    os << "deadlock forensics: frozen at cycle " << frozenAtCycle
       << ", " << frozenFlits << " flits stuck, " << blocked.size()
       << " blocked buffers\n";
    for (const BlockedVc &b : blocked) {
        os << "  ";
        if (b.channel == cdg::kInjectionChannel)
            os << "injection@node" << b.node;
        else
            os << net.channelName(b.channel);
        os << ": pkt " << b.packet << ", " << b.bufferedFlits
           << " flits, "
           << (b.routed ? "holds output, waits on"
                        : "unrouted, candidates:");
        for (topo::ChannelId w : b.waitingOn)
            os << " [" << net.channelName(w) << "]";
        os << "\n";
    }
    if (waitCycle.empty()) {
        os << "  no wait-for cycle found (livelock or starvation, not "
              "hold-and-wait)\n";
    } else {
        os << "  wait-for cycle (" << waitCycle.size() << " channels):\n";
        for (topo::ChannelId c : waitCycle)
            os << "    " << net.channelName(c) << "\n";
        os << "  every edge in static relation CDG: "
           << (cycleInRelationCdg ? "yes" : "NO (verifier gap!)") << "\n";
    }
    return os.str();
}

} // namespace ebda::sim
