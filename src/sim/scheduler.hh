/**
 * @file
 * The scheduler seam: how simulated time advances.
 *
 * The simulator's per-cycle phase code (inject, route/VC-alloc,
 * switch-alloc + traversal, eject, watchdog, fault events) is
 * scheduler-agnostic — it operates on active sets and takes the
 * current cycle as a parameter. A SchedulerBackend decides WHICH
 * cycles to execute:
 *
 *  - CycleScheduler executes every cycle in order: the classic
 *    cycle-driven loop, bit-identical to the pre-seam simulator
 *    (tests/test_golden_sim.cc pins this).
 *  - EventScheduler (sim/event_queue.hh) executes only cycles on which
 *    something can happen. Injection timers are precomputed from the
 *    per-node RNG streams by a block-batched draw engine, and spans
 *    where the fabric is empty and no timer is due are skipped in one
 *    jump; while flits are in flight every cycle is executed, because
 *    in this single-cycle-per-hop model every in-flight flit is
 *    eligible to move each cycle. Both backends consume identical
 *    per-router RNG streams, so results are trace-equivalent
 *    (tests/test_sched_equiv.cc diffs the full result JSON).
 *
 * Mode selection: SimConfig::schedMode is a tri-state. Auto defers to
 * the EBDA_SCHED_MODE environment variable if set ("cycle"/"event"),
 * otherwise to the load heuristic in resolveSchedMode — event mode
 * pays off exactly where most cycles are empty, i.e. at low injection
 * rates; near saturation the cycle loop's linear scan wins. An
 * explicit Cycle/Event setting always wins (so equivalence tests stay
 * meaningful under a CI-wide EBDA_SCHED_MODE override).
 */

#ifndef EBDA_SIM_SCHEDULER_HH
#define EBDA_SIM_SCHEDULER_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace ebda::sim {

class Simulator;
struct SimResult;

/** How simulated time advances (SimConfig::schedMode). */
enum class SchedMode : std::uint8_t
{
    /** Resolve via EBDA_SCHED_MODE, else the injection-rate
     *  heuristic. The default: existing configs keep their exact
     *  serialized form (Auto is never emitted to JSON). */
    Auto,
    /** Execute every cycle (the pre-seam loop, bit for bit). */
    Cycle,
    /** Skip provably idle cycles via the event queue. */
    Event,
};

std::string toString(SchedMode mode);
std::optional<SchedMode> schedModeFromString(const std::string &text);

/**
 * Resolve Auto to a concrete backend for a run at the given injection
 * rate: the EBDA_SCHED_MODE environment variable ("cycle" / "event")
 * wins when set; otherwise event mode below the load heuristic's
 * cutoff, cycle mode at or above it. Explicit Cycle/Event pass through
 * untouched. The sweep runner calls this per job (after cache-key
 * computation, so both modes share cache entries); Simulator::run
 * calls it for direct users.
 *
 * `numNodes` scales the cutoff to the fabric: what makes a cycle worth
 * skipping is the *fabric-wide* arrival rate (rate x nodes), so on
 * fabrics larger than the reference the cutoff shrinks proportionally
 * — a 0.005 rate that leaves a 64-node mesh mostly idle keeps a
 * 4096-node dragonfly busy every cycle. At or below the reference
 * size (and with numNodes 0, the legacy form) the cutoff is exactly
 * kEventModeRateThreshold, so existing resolutions are unchanged.
 */
SchedMode resolveSchedMode(SchedMode requested, double injectionRate,
                           std::size_t numNodes = 0);

/** Auto picks event mode strictly below this injection rate
 *  (flits/node/cycle) at the reference fabric size. At 0.01 on the
 *  benchmarked 16x16 mesh the cycle loop already spends most of its
 *  time on empty cycles. */
inline constexpr double kEventModeRateThreshold = 0.01;

/** Fabric size the rate threshold was calibrated on (16x16 mesh).
 *  Larger fabrics scale the cutoff down by refNodes/numNodes. */
inline constexpr std::size_t kEventModeRefNodes = 256;

/**
 * A scheduling backend: drives the warmup / measurement / drain phases
 * over the simulator's phase code and returns the final cycle (the
 * value the cycle counter held when the loop ended). Termination
 * verdicts (deadlock, abort) are written into `result`; the caller
 * fills in everything derivable from post-run state.
 */
class SchedulerBackend
{
  public:
    virtual ~SchedulerBackend() = default;

    virtual std::uint64_t run(Simulator &sim, SimResult &result) = 0;

    /** Cycles the backend actually executed (== cycles for the cycle
     *  loop; typically far fewer for the event loop at low load). */
    std::uint64_t wakeups = 0;
};

/** The cycle-driven backend: every cycle, in order. */
class CycleScheduler final : public SchedulerBackend
{
  public:
    std::uint64_t run(Simulator &sim, SimResult &result) override;
};

} // namespace ebda::sim

#endif // EBDA_SIM_SCHEDULER_HH
