/**
 * @file
 * Synthetic traffic patterns for the wormhole simulator — the standard
 * Booksim set: uniform random, transpose, bit-complement, bit-reverse,
 * shuffle, tornado, nearest-neighbor and hotspot.
 *
 * Permutation patterns are defined over the node-id bit string (for
 * power-of-two networks) or coordinates, following Dally & Towles.
 * Sources whose pattern destination equals the source generate no
 * traffic (standard practice).
 */

#ifndef EBDA_SIM_TRAFFIC_HH
#define EBDA_SIM_TRAFFIC_HH

#include <optional>
#include <string>
#include <vector>

#include "topo/network.hh"
#include "util/random.hh"

namespace ebda::sim {

/** The supported synthetic patterns. */
enum class TrafficPattern : std::uint8_t
{
    Uniform,
    Transpose,
    BitComplement,
    BitReverse,
    Shuffle,
    Tornado,
    Neighbor,
    Hotspot,
};

/** Parse/format pattern names ("uniform", "transpose", ...). */
std::string toString(TrafficPattern p);
std::optional<TrafficPattern> patternFromString(const std::string &s);

/**
 * Destination generator for one pattern on one network.
 */
class TrafficGenerator
{
  public:
    /**
     * @param net             target network
     * @param pattern         pattern selector
     * @param hotspot_node    hotspot destination (Hotspot pattern)
     * @param hotspot_percent probability (%) a packet targets the
     *                        hotspot; the rest are uniform
     */
    TrafficGenerator(const topo::Network &net, TrafficPattern pattern,
                     topo::NodeId hotspot_node = 0,
                     int hotspot_percent = 10);

    /**
     * Destination for a packet from src; std::nullopt when the pattern
     * maps src to itself (no traffic from that source).
     */
    std::optional<topo::NodeId> dest(topo::NodeId src, Rng &rng) const;

    /**
     * The fixed communication partner of src, when the pattern is a
     * permutation (transpose, bitcomp, ...): the node every request
     * from src targets and therefore the only endpoint whose reply
     * buffer can throttle src under the request–reply protocol layer
     * (sim/protocol.hh). std::nullopt for randomized patterns
     * (uniform, hotspot) and for sources the permutation maps to
     * themselves.
     */
    std::optional<topo::NodeId> partner(topo::NodeId src) const;

    TrafficPattern pattern() const { return patternKind; }

  private:
    topo::NodeId permute(topo::NodeId src) const;

    const topo::Network &net;
    TrafficPattern patternKind;
    topo::NodeId hotspotNode;
    int hotspotPercent;
    /** log2(numNodes) when the node count is a power of two. */
    int addressBits;
};

} // namespace ebda::sim

#endif // EBDA_SIM_TRAFFIC_HH
