/**
 * @file
 * The active-set scheduler: a lazily-sorted index set that lets the
 * simulator visit only components with pending work (input VCs holding
 * flits, links with owned output VCs, nodes with pending ejections)
 * instead of rescanning the whole fabric every cycle.
 *
 * Bit-identity contract: a sweep visits the scheduled indices in
 * exactly the rotated ascending order the monolithic simulator used to
 * scan the full range in — `offset, offset+1, ..., N-1, 0, ...,
 * offset-1` restricted to members — so as long as the skipped indices
 * would have been no-ops (the scheduling invariant each caller
 * maintains), every arbitration decision is unchanged.
 *
 * Membership is idempotent; items scheduled during a sweep of the SAME
 * set are not visited until the next sweep (callers never need that —
 * activations during a stage always target a different set). Removal
 * is decided by the visitor's return value and applied after the
 * sweep, so iteration never invalidates itself.
 */

#ifndef EBDA_SIM_ACTIVE_SET_HH
#define EBDA_SIM_ACTIVE_SET_HH

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ebda::sim {

/** Sorted index set with O(1) idempotent insertion and rotated sweeps. */
class ActiveSet
{
  public:
    explicit ActiveSet(std::size_t universe) : member(universe, 0) {}

    /** Add index i (no-op when already scheduled). */
    void
    schedule(std::size_t i)
    {
        if (!member[i]) {
            member[i] = 1;
            items.push_back(i);
            dirty = true;
        }
    }

    bool contains(std::size_t i) const { return member[i] != 0; }

    /** Scheduled indices (after the next sweep's sort when dirty). */
    std::size_t size() const { return items.size(); }

    std::size_t universe() const { return member.size(); }

    /**
     * Visit every member in rotated ascending order starting at the
     * first member >= offset. The visitor returns true to keep the
     * index scheduled, false to drop it. Dropped indices may be
     * re-scheduled later; indices scheduled mid-sweep (necessarily into
     * a different region of the array than the visitor is deciding
     * about) are visited from the next sweep on.
     */
    template <typename Fn>
    void
    sweep(std::size_t offset, Fn &&fn)
    {
        if (dirty) {
            std::sort(items.begin(), items.end());
            dirty = false;
        }
        // Freeze the member count: mid-sweep schedules (which would
        // reallocate `items`) join from the next sweep. Iterate by
        // position so push_back can never invalidate the traversal.
        const std::size_t frozen = items.size();
        const std::size_t pivot = static_cast<std::size_t>(
            std::lower_bound(items.begin(),
                             items.begin()
                                 + static_cast<std::ptrdiff_t>(frozen),
                             offset)
            - items.begin());
        bool removed = false;
        const auto visit = [&](std::size_t pos) {
            const std::size_t i = items[pos];
            if (!fn(i)) {
                member[i] = 0;
                removed = true;
            }
        };
        for (std::size_t p = pivot; p < frozen; ++p)
            visit(p);
        for (std::size_t p = 0; p < pivot; ++p)
            visit(p);
        if (removed) {
            items.erase(std::remove_if(items.begin(), items.end(),
                                       [&](std::size_t i) {
                                           return member[i] == 0;
                                       }),
                        items.end());
        }
    }

  private:
    /** Membership flags over the universe. */
    std::vector<std::uint8_t> member;
    /** Scheduled indices; sorted unless dirty. */
    std::vector<std::size_t> items;
    bool dirty = false;
};

} // namespace ebda::sim

#endif // EBDA_SIM_ACTIVE_SET_HH
