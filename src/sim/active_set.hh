/**
 * @file
 * The active-set scheduler: an index set over a fixed universe that
 * lets the simulator visit only components with pending work (input
 * VCs holding flits, links with owned output VCs, nodes with pending
 * ejections) instead of rescanning the whole fabric every cycle.
 *
 * Bit-identity contract: a sweep visits the scheduled indices in
 * exactly the rotated ascending order the monolithic simulator used to
 * scan the full range in — `offset, offset+1, ..., N-1, 0, ...,
 * offset-1` restricted to members — so as long as the skipped indices
 * would have been no-ops (the scheduling invariant each caller
 * maintains), every arbitration decision is unchanged.
 *
 * Representation: one bit per universe index, swept word-at-a-time
 * with count-trailing-zeros. Rotated ascending order falls out of the
 * scan for free, membership insert/test/drop are O(1) bit ops, and a
 * sweep costs O(universe/64 + members) with no sorting and no heap
 * traffic — the previous sorted-vector representation re-sorted and
 * compacted its index list almost every sweep, which profiling showed
 * as a fixed per-cycle tax rivalling the switch allocator itself.
 *
 * Membership is idempotent; items scheduled during a sweep of the SAME
 * set are parked in a pending list and join when that sweep finishes
 * (callers never need same-sweep visibility — activations during a
 * stage always target a different set). Removal is decided by the
 * visitor's return value; each index is visited at most once per sweep
 * because the word's bits are snapshotted before visiting it.
 */

#ifndef EBDA_SIM_ACTIVE_SET_HH
#define EBDA_SIM_ACTIVE_SET_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace ebda::sim {

/** Bitmap index set with O(1) idempotent insertion and rotated
 *  word-scan sweeps. */
class ActiveSet
{
  public:
    explicit ActiveSet(std::size_t universe)
        : words((universe + 63) / 64, 0), n(universe)
    {
        pending.reserve(16);
    }

    /** Add index i (no-op when already scheduled). Inside a sweep of
     *  this same set the index is parked and joins afterwards. */
    void
    schedule(std::size_t i)
    {
        if (sweeping) {
            pending.push_back(i);
            return;
        }
        set(i);
    }

    bool
    contains(std::size_t i) const
    {
        return (words[i >> 6] >> (i & 63)) & 1;
    }

    /** Number of scheduled indices. */
    std::size_t size() const { return cnt; }

    std::size_t universe() const { return n; }

    /**
     * Visit every member in rotated ascending order starting at the
     * first member >= offset. The visitor returns true to keep the
     * index scheduled, false to drop it. Dropped indices may be
     * re-scheduled later; indices scheduled mid-sweep are visited from
     * the next sweep on.
     */
    template <typename Fn>
    void
    sweep(std::size_t offset, Fn &&fn)
    {
        sweeping = true;
        scanRange(offset, n, fn);
        scanRange(0, std::min(offset, n), fn);
        sweeping = false;
        for (const std::size_t i : pending)
            set(i);
        pending.clear();
    }

  private:
    void
    set(std::size_t i)
    {
        std::uint64_t &w = words[i >> 6];
        const std::uint64_t bit = std::uint64_t{1} << (i & 63);
        if (!(w & bit)) {
            w |= bit;
            ++cnt;
        }
    }

    /** Visit members in [lo, hi) in ascending order. */
    template <typename Fn>
    void
    scanRange(std::size_t lo, std::size_t hi, Fn &fn)
    {
        if (lo >= hi)
            return;
        std::size_t w = lo >> 6;
        const std::size_t last = (hi - 1) >> 6;
        std::uint64_t bits =
            words[w] & (~std::uint64_t{0} << (lo & 63));
        for (;;) {
            if (w == last && (hi & 63))
                bits &= ~std::uint64_t{0} >> (64 - (hi & 63));
            while (bits) {
                const std::size_t i = (w << 6)
                    + static_cast<std::size_t>(std::countr_zero(bits));
                bits &= bits - 1;
                if (!fn(i)) {
                    words[w] &= ~(std::uint64_t{1} << (i & 63));
                    --cnt;
                }
            }
            if (w == last)
                break;
            bits = words[++w];
        }
    }

    /** Membership bits over the universe. */
    std::vector<std::uint64_t> words;
    /** Indices scheduled during a sweep of this set (flushed after). */
    std::vector<std::size_t> pending;
    std::size_t n;
    /** Set bits in `words` (pending excluded until flushed). */
    std::size_t cnt = 0;
    bool sweeping = false;
};

} // namespace ebda::sim

#endif // EBDA_SIM_ACTIVE_SET_HH
