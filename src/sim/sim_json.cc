#include "sim_json.hh"

namespace ebda::sim {

namespace {

/** Significant digits that round-trip any double exactly. */
constexpr int kExact = 17;

} // namespace

std::string
toString(SwitchingMode m)
{
    switch (m) {
      case SwitchingMode::Wormhole:
        return "wormhole";
      case SwitchingMode::VirtualCutThrough:
        return "vct";
      case SwitchingMode::StoreAndForward:
        return "saf";
    }
    return "?";
}

std::optional<SwitchingMode>
switchingFromString(const std::string &s)
{
    if (s == "wormhole")
        return SwitchingMode::Wormhole;
    if (s == "vct")
        return SwitchingMode::VirtualCutThrough;
    if (s == "saf")
        return SwitchingMode::StoreAndForward;
    return std::nullopt;
}

std::string
toString(SelectionPolicy p)
{
    switch (p) {
      case SelectionPolicy::MaxCredits:
        return "max-credits";
      case SelectionPolicy::RoundRobin:
        return "round-robin";
      case SelectionPolicy::Random:
        return "random";
      case SelectionPolicy::FirstCandidate:
        return "first";
    }
    return "?";
}

std::optional<SelectionPolicy>
selectionFromString(const std::string &s)
{
    if (s == "max-credits")
        return SelectionPolicy::MaxCredits;
    if (s == "round-robin")
        return SelectionPolicy::RoundRobin;
    if (s == "random")
        return SelectionPolicy::Random;
    if (s == "first")
        return SelectionPolicy::FirstCandidate;
    return std::nullopt;
}

std::string
toString(SchedMode m)
{
    switch (m) {
      case SchedMode::Auto:
        return "auto";
      case SchedMode::Cycle:
        return "cycle";
      case SchedMode::Event:
        return "event";
    }
    return "?";
}

std::optional<SchedMode>
schedModeFromString(const std::string &s)
{
    if (s == "auto")
        return SchedMode::Auto;
    if (s == "cycle")
        return SchedMode::Cycle;
    if (s == "event")
        return SchedMode::Event;
    return std::nullopt;
}

void
jsonFields(JsonWriter &w, const SimConfig &c)
{
    w.field("seed", c.seed);
    w.field("vcDepth", c.vcDepth);
    w.field("packetLength", c.packetLength);
    w.field("switching", toString(c.switching));
    w.field("routerLatency", c.routerLatency);
    w.field("selection", toString(c.selection));
    w.field("injectionRate", c.injectionRate, kExact);
    w.field("injectionVcs", c.injectionVcs);
    w.field("atomicVcAllocation", c.atomicVcAllocation);
    w.field("warmupCycles", c.warmupCycles);
    w.field("measureCycles", c.measureCycles);
    w.field("drainCycles", c.drainCycles);
    w.field("watchdogCycles", c.watchdogCycles);
    w.field("routeTable", c.routeTable);
    w.field("routeTableBudget", c.routeTableBudget);
    // Only when explicitly pinned: the Auto default is omitted so
    // every pre-existing spec keeps its byte-identical canonical form
    // (and with it its sweep cache key), and an Auto run stays
    // cache-compatible with both resolutions — legitimate because the
    // two backends are trace-equivalent.
    if (c.schedMode != SchedMode::Auto)
        w.field("schedMode", toString(c.schedMode));
    // Omitted at the Auto default (0), like schedMode, so every
    // pre-sharding spec keeps its byte-identical cache key. Explicit
    // values — including the forcing-classic 1 — are emitted: a
    // forced shard count changes the per-shard arbitration domains
    // and must therefore be distinguishable from Auto in the cache
    // identity (Auto resolves from the fabric size, which is itself
    // part of the canonical job config, so Auto results stay pure).
    if (c.shards != 0)
        w.field("shards", c.shards);
    // Omitted when disabled (the default), like schedMode: every
    // pre-protocol spec keeps its byte-identical canonical form and
    // sweep cache key.
    if (c.protocol.enabled()) {
        w.beginObject("protocol");
        jsonFields(w, c.protocol);
        w.end();
    }
    // Always emitted (even when empty) so the canonical form — and
    // with it every sweep cache key — is stable.
    w.beginObject("faults");
    jsonFields(w, c.faults);
    w.end();
}

void
jsonFields(JsonWriter &w, const ProtocolConfig &p)
{
    w.field("requestReply", p.requestReply);
    w.field("replyBufferDepth", p.replyBufferDepth);
    w.field("serviceLatency", p.serviceLatency);
    w.field("serviceJitter", p.serviceJitter);
    w.field("messageClasses", p.messageClasses);
    w.field("reserveReplyBuffer", p.reserveReplyBuffer);
}

void
jsonFields(JsonWriter &w, const FaultPlan &p)
{
    w.field("seed", p.seed);
    w.field("randomLinkFaults", p.randomLinkFaults);
    w.field("randomRouterFaults", p.randomRouterFaults);
    w.field("firstCycle", p.firstCycle);
    w.field("spacing", p.spacing);
    w.field("maxRecoveryAttempts", p.maxRecoveryAttempts);
    w.field("maxRetransmits", p.maxRetransmits);
    w.field("retransmitBackoff", p.retransmitBackoff);
    w.field("retransmitBackoffCap", p.retransmitBackoffCap);
    w.field("checkDegradedCdg", p.checkDegradedCdg);
    w.beginArray("events");
    for (const FaultEvent &e : p.events) {
        w.beginObject();
        w.field("cycle", e.cycle);
        w.field("kind", e.router ? "router" : "link");
        if (e.router) {
            w.field("node", static_cast<std::uint64_t>(e.node));
        } else {
            w.field("src", static_cast<std::uint64_t>(e.src));
            w.field("dst", static_cast<std::uint64_t>(e.dst));
        }
        w.end();
    }
    w.end();
}

void
jsonFields(JsonWriter &w, const SimResult &r)
{
    w.field("avgLatency", r.avgLatency, kExact);
    w.field("p50Latency", r.p50Latency);
    w.field("p99Latency", r.p99Latency);
    w.field("maxLatency", r.maxLatency);
    w.field("avgHops", r.avgHops, kExact);
    w.field("acceptedRate", r.acceptedRate, kExact);
    w.field("offeredRate", r.offeredRate, kExact);
    w.field("packetsMeasured", r.packetsMeasured);
    w.field("packetsEjected", r.packetsEjected);
    w.field("deadlocked", r.deadlocked);
    w.field("drained", r.drained);
    w.field("cycles", r.cycles);
    w.field("channelLoadMean", r.channelLoadMean, kExact);
    w.field("channelLoadCv", r.channelLoadCv, kExact);
    w.field("channelLoadMaxRatio", r.channelLoadMaxRatio, kExact);
    w.field("channelsUnused", r.channelsUnused, kExact);
    w.field("stallRouteCompute", r.stallRouteCompute);
    w.field("stallVcStarved", r.stallVcStarved);
    w.field("stallCreditStarved", r.stallCreditStarved);
    w.field("stallSwitchLost", r.stallSwitchLost);
    w.field("hottestRouter", static_cast<std::uint64_t>(r.hottestRouter));
    w.field("hottestRouterStalls", r.hottestRouterStalls);
    w.field("channelOccupancyMean", r.channelOccupancyMean, kExact);
    w.field("channelOccupancyPeak", r.channelOccupancyPeak);
    w.beginArray("deadlockCycle");
    for (std::uint32_t c : r.deadlockCycle)
        w.value(static_cast<std::uint64_t>(c));
    w.end();
    w.field("deadlockCycleInCdg", r.deadlockCycleInCdg);
    w.field("faultEventsApplied", r.faultEventsApplied);
    w.field("packetsDropped", r.packetsDropped);
    w.field("packetsRetransmitted", r.packetsRetransmitted);
    w.field("packetsLost", r.packetsLost);
    w.field("recoveryPasses", r.recoveryPasses);
    w.field("faultChecks", r.faultChecks);
    w.field("faultChecksClean", r.faultChecksClean);
    w.field("deliveredFraction", r.deliveredFraction, kExact);
    w.field("degradedGracefully", r.degradedGracefully);
    w.field("aborted", r.aborted);
    // routeTableCompileNanos is deliberately absent: wall-clock noise
    // would break the byte-identity of serial/parallel/cached sweeps.
    w.field("routeComputeCalls", r.routeComputeCalls);
    w.field("routeTableCompiled", r.routeTableCompiled);
    w.field("routeTablePerSource", r.routeTablePerSource);
    w.field("routeTableBytes", r.routeTableBytes);
    // Protocol counters only for protocol runs: non-protocol results
    // stay byte-identical to the pre-protocol schema.
    if (r.protocolEnabled) {
        w.field("protocolEnabled", r.protocolEnabled);
        w.field("protocolRequestsDelivered",
                r.protocolRequestsDelivered);
        w.field("protocolRepliesInjected", r.protocolRepliesInjected);
        w.field("protocolRepliesDelivered", r.protocolRepliesDelivered);
        w.field("protocolEndpointStalls", r.protocolEndpointStalls);
        w.field("protocolThrottled", r.protocolThrottled);
        w.field("protocolPeakOccupancy", r.protocolPeakOccupancy);
        w.field("protocolDeadlock", r.protocolDeadlock);
    }
    // Scheduling metadata last: equivalence checks strip exactly this
    // tail when diffing cycle- against event-mode result JSON.
    w.field("schedMode", toString(r.schedMode));
    w.field("wakeups", r.wakeups);
}

std::string
toJson(const SimConfig &c)
{
    JsonWriter w;
    w.beginObject();
    jsonFields(w, c);
    w.end();
    return w.str();
}

std::string
toJson(const SimResult &r)
{
    JsonWriter w;
    w.beginObject();
    jsonFields(w, r);
    w.end();
    return w.str();
}

namespace {

/** Shared field-by-field reader with error accumulation. */
struct Reader
{
    const JsonValue &v;
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what;
        return false;
    }

    template <typename Fn>
    bool
    number(const std::string &key, Fn &&set)
    {
        const auto *f = v.find(key);
        if (!f)
            return true;
        if (!f->isNumber())
            return fail("'" + key + "' must be a number");
        set(*f);
        return true;
    }

    bool
    boolean(const std::string &key, bool &out)
    {
        const auto *f = v.find(key);
        if (!f)
            return true;
        if (!f->isBool())
            return fail("'" + key + "' must be a bool");
        out = f->asBool();
        return true;
    }
};

} // namespace

std::optional<FaultPlan>
faultPlanFromJson(const JsonValue &v, std::string *error)
{
    auto fail = [&](const std::string &what) -> std::optional<FaultPlan> {
        if (error)
            *error = what;
        return std::nullopt;
    };
    if (!v.isObject())
        return fail("faults must be a JSON object");

    static const char *known[] = {
        "seed",          "randomLinkFaults",
        "randomRouterFaults", "firstCycle",
        "spacing",       "maxRecoveryAttempts",
        "maxRetransmits", "retransmitBackoff",
        "retransmitBackoffCap", "checkDegradedCdg",
        "events"};
    for (const auto &[key, val] : v.members()) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            return fail("unknown key 'faults." + key + "'");
    }

    FaultPlan p;
    Reader r{v, {}};
    const bool ok =
        r.number("seed", [&](const JsonValue &f) { p.seed = f.asU64(); })
        && r.number("randomLinkFaults",
                    [&](const JsonValue &f) {
                        p.randomLinkFaults = f.asInt();
                    })
        && r.number("randomRouterFaults",
                    [&](const JsonValue &f) {
                        p.randomRouterFaults = f.asInt();
                    })
        && r.number("firstCycle",
                    [&](const JsonValue &f) { p.firstCycle = f.asU64(); })
        && r.number("spacing",
                    [&](const JsonValue &f) { p.spacing = f.asU64(); })
        && r.number("maxRecoveryAttempts",
                    [&](const JsonValue &f) {
                        p.maxRecoveryAttempts = f.asInt();
                    })
        && r.number("maxRetransmits",
                    [&](const JsonValue &f) {
                        p.maxRetransmits = f.asInt();
                    })
        && r.number("retransmitBackoff",
                    [&](const JsonValue &f) {
                        p.retransmitBackoff = f.asU64();
                    })
        && r.number("retransmitBackoffCap",
                    [&](const JsonValue &f) {
                        p.retransmitBackoffCap = f.asU64();
                    })
        && r.boolean("checkDegradedCdg", p.checkDegradedCdg);
    // Reader errors read "'seed' must be a number"; re-anchor the key
    // at its full path: "'faults.seed' must be a number".
    if (!ok)
        return fail("'faults." + r.err.substr(1));

    if (const auto *events = v.find("events")) {
        if (!events->isArray())
            return fail("'faults.events' must be an array");
        std::size_t i = 0;
        for (const JsonValue &e : events->elements()) {
            const std::string at =
                "faults.events[" + std::to_string(i) + "]";
            if (!e.isObject())
                return fail("'" + at + "' must be an object");
            const auto *kind = e.find("kind");
            if (!kind || !kind->isString()
                || (kind->asString() != "link"
                    && kind->asString() != "router")) {
                return fail("'" + at
                            + ".kind' must be \"link\" or \"router\"");
            }
            FaultEvent ev;
            ev.router = kind->asString() == "router";
            const auto u32field = [&](const char *name,
                                      std::uint32_t &out) -> bool {
                const auto *f = e.find(name);
                if (!f || !f->isNumber())
                    return false;
                out = static_cast<std::uint32_t>(f->asU64());
                return true;
            };
            if (const auto *c = e.find("cycle");
                c && c->isNumber()) {
                ev.cycle = c->asU64();
            } else {
                return fail("'" + at + ".cycle' must be a number");
            }
            if (ev.router) {
                if (!u32field("node", ev.node))
                    return fail("'" + at + ".node' must be a number");
            } else {
                if (!u32field("src", ev.src)
                    || !u32field("dst", ev.dst))
                    return fail("'" + at
                                + "' needs numeric 'src' and 'dst'");
            }
            for (const auto &[key, val] : e.members()) {
                if (key != "cycle" && key != "kind" && key != "node"
                    && key != "src" && key != "dst")
                    return fail("unknown key '" + at + "." + key + "'");
            }
            p.events.push_back(ev);
            ++i;
        }
    }
    return p;
}

std::optional<ProtocolConfig>
protocolConfigFromJson(const JsonValue &v, std::string *error)
{
    auto fail =
        [&](const std::string &what) -> std::optional<ProtocolConfig> {
        if (error)
            *error = what;
        return std::nullopt;
    };
    if (!v.isObject())
        return fail("protocol must be a JSON object");

    static const char *known[] = {
        "requestReply",   "replyBufferDepth",   "serviceLatency",
        "serviceJitter",  "messageClasses",     "reserveReplyBuffer"};
    for (const auto &[key, val] : v.members()) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            return fail("unknown key 'protocol." + key + "'");
    }

    ProtocolConfig p;
    Reader r{v, {}};
    const bool ok =
        r.boolean("requestReply", p.requestReply)
        && r.number("replyBufferDepth",
                    [&](const JsonValue &f) {
                        p.replyBufferDepth = f.asInt();
                    })
        && r.number("serviceLatency",
                    [&](const JsonValue &f) {
                        p.serviceLatency = f.asU64();
                    })
        && r.number("serviceJitter",
                    [&](const JsonValue &f) {
                        p.serviceJitter = f.asU64();
                    })
        && r.number("messageClasses",
                    [&](const JsonValue &f) {
                        p.messageClasses = f.asInt();
                    })
        && r.boolean("reserveReplyBuffer", p.reserveReplyBuffer);
    // Re-anchor the key at its full path, as for faults.
    if (!ok)
        return fail("'protocol." + r.err.substr(1));
    return p;
}

std::optional<SimConfig>
configFromJson(const JsonValue &v, std::string *error)
{
    if (!v.isObject()) {
        if (error)
            *error = "config must be a JSON object";
        return std::nullopt;
    }

    static const char *known[] = {
        "seed",          "vcDepth",       "packetLength",
        "switching",     "routerLatency", "selection",
        "injectionRate", "injectionVcs",  "atomicVcAllocation",
        "warmupCycles",  "measureCycles", "drainCycles",
        "watchdogCycles", "routeTable",   "routeTableBudget",
        "schedMode",     "shards",        "protocol",
        "faults"};
    for (const auto &[key, val] : v.members()) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok) {
            if (error)
                *error = "unknown config key '" + key + "'";
            return std::nullopt;
        }
    }

    SimConfig c;
    Reader r{v, {}};
    bool ok =
        r.number("seed", [&](const JsonValue &f) { c.seed = f.asU64(); })
        && r.number("vcDepth",
                    [&](const JsonValue &f) { c.vcDepth = f.asInt(); })
        && r.number("packetLength",
                    [&](const JsonValue &f) { c.packetLength = f.asInt(); })
        && r.number("routerLatency",
                    [&](const JsonValue &f) {
                        c.routerLatency = f.asInt();
                    })
        && r.number("injectionRate",
                    [&](const JsonValue &f) {
                        c.injectionRate = f.asDouble();
                    })
        && r.number("injectionVcs",
                    [&](const JsonValue &f) { c.injectionVcs = f.asInt(); })
        && r.boolean("atomicVcAllocation", c.atomicVcAllocation)
        && r.number("warmupCycles",
                    [&](const JsonValue &f) { c.warmupCycles = f.asU64(); })
        && r.number("measureCycles",
                    [&](const JsonValue &f) {
                        c.measureCycles = f.asU64();
                    })
        && r.number("drainCycles",
                    [&](const JsonValue &f) { c.drainCycles = f.asU64(); })
        && r.number("watchdogCycles",
                    [&](const JsonValue &f) {
                        c.watchdogCycles = f.asU64();
                    })
        && r.boolean("routeTable", c.routeTable)
        && r.number("routeTableBudget", [&](const JsonValue &f) {
               c.routeTableBudget = f.asU64();
           })
        && r.number("shards",
                    [&](const JsonValue &f) { c.shards = f.asInt(); });
    if (ok) {
        if (const auto *f = v.find("switching")) {
            const auto m = f->isString()
                               ? switchingFromString(f->asString())
                               : std::nullopt;
            if (!m)
                ok = r.fail("bad 'switching' value");
            else
                c.switching = *m;
        }
    }
    if (ok) {
        if (const auto *f = v.find("selection")) {
            const auto p = f->isString()
                               ? selectionFromString(f->asString())
                               : std::nullopt;
            if (!p)
                ok = r.fail("bad 'selection' value");
            else
                c.selection = *p;
        }
    }
    if (ok) {
        if (const auto *f = v.find("schedMode")) {
            const auto m = f->isString()
                               ? schedModeFromString(f->asString())
                               : std::nullopt;
            if (!m)
                ok = r.fail("bad 'schedMode' value");
            else
                c.schedMode = *m;
        }
    }
    if (ok) {
        if (const auto *f = v.find("protocol")) {
            std::string perr;
            const auto p = protocolConfigFromJson(*f, &perr);
            if (!p)
                ok = r.fail(perr);
            else
                c.protocol = *p;
        }
    }
    if (ok) {
        if (const auto *f = v.find("faults")) {
            std::string ferr;
            const auto p = faultPlanFromJson(*f, &ferr);
            if (!p)
                ok = r.fail(ferr);
            else
                c.faults = *p;
        }
    }
    if (!ok) {
        if (error)
            *error = r.err;
        return std::nullopt;
    }
    return c;
}

std::optional<SimResult>
resultFromJson(const JsonValue &v, std::string *error)
{
    if (!v.isObject()) {
        if (error)
            *error = "result must be a JSON object";
        return std::nullopt;
    }
    SimResult res;
    Reader r{v, {}};
    const bool ok =
        r.number("avgLatency",
                 [&](const JsonValue &f) { res.avgLatency = f.asDouble(); })
        && r.number("p50Latency",
                    [&](const JsonValue &f) { res.p50Latency = f.asU64(); })
        && r.number("p99Latency",
                    [&](const JsonValue &f) { res.p99Latency = f.asU64(); })
        && r.number("maxLatency",
                    [&](const JsonValue &f) { res.maxLatency = f.asU64(); })
        && r.number("avgHops",
                    [&](const JsonValue &f) { res.avgHops = f.asDouble(); })
        && r.number("acceptedRate",
                    [&](const JsonValue &f) {
                        res.acceptedRate = f.asDouble();
                    })
        && r.number("offeredRate",
                    [&](const JsonValue &f) {
                        res.offeredRate = f.asDouble();
                    })
        && r.number("packetsMeasured",
                    [&](const JsonValue &f) {
                        res.packetsMeasured = f.asU64();
                    })
        && r.number("packetsEjected",
                    [&](const JsonValue &f) {
                        res.packetsEjected = f.asU64();
                    })
        && r.boolean("deadlocked", res.deadlocked)
        && r.boolean("drained", res.drained)
        && r.number("cycles",
                    [&](const JsonValue &f) { res.cycles = f.asU64(); })
        && r.number("channelLoadMean",
                    [&](const JsonValue &f) {
                        res.channelLoadMean = f.asDouble();
                    })
        && r.number("channelLoadCv",
                    [&](const JsonValue &f) {
                        res.channelLoadCv = f.asDouble();
                    })
        && r.number("channelLoadMaxRatio",
                    [&](const JsonValue &f) {
                        res.channelLoadMaxRatio = f.asDouble();
                    })
        && r.number("channelsUnused",
                    [&](const JsonValue &f) {
                        res.channelsUnused = f.asDouble();
                    })
        && r.number("stallRouteCompute",
                    [&](const JsonValue &f) {
                        res.stallRouteCompute = f.asU64();
                    })
        && r.number("stallVcStarved",
                    [&](const JsonValue &f) {
                        res.stallVcStarved = f.asU64();
                    })
        && r.number("stallCreditStarved",
                    [&](const JsonValue &f) {
                        res.stallCreditStarved = f.asU64();
                    })
        && r.number("stallSwitchLost",
                    [&](const JsonValue &f) {
                        res.stallSwitchLost = f.asU64();
                    })
        && r.number("hottestRouter",
                    [&](const JsonValue &f) {
                        res.hottestRouter =
                            static_cast<std::uint32_t>(f.asU64());
                    })
        && r.number("hottestRouterStalls",
                    [&](const JsonValue &f) {
                        res.hottestRouterStalls = f.asU64();
                    })
        && r.number("channelOccupancyMean",
                    [&](const JsonValue &f) {
                        res.channelOccupancyMean = f.asDouble();
                    })
        && r.number("channelOccupancyPeak",
                    [&](const JsonValue &f) {
                        res.channelOccupancyPeak = f.asU64();
                    })
        && r.boolean("deadlockCycleInCdg", res.deadlockCycleInCdg)
        && r.number("faultEventsApplied",
                    [&](const JsonValue &f) {
                        res.faultEventsApplied = f.asU64();
                    })
        && r.number("packetsDropped",
                    [&](const JsonValue &f) {
                        res.packetsDropped = f.asU64();
                    })
        && r.number("packetsRetransmitted",
                    [&](const JsonValue &f) {
                        res.packetsRetransmitted = f.asU64();
                    })
        && r.number("packetsLost",
                    [&](const JsonValue &f) {
                        res.packetsLost = f.asU64();
                    })
        && r.number("recoveryPasses",
                    [&](const JsonValue &f) {
                        res.recoveryPasses = f.asU64();
                    })
        && r.number("faultChecks",
                    [&](const JsonValue &f) {
                        res.faultChecks = f.asU64();
                    })
        && r.number("faultChecksClean",
                    [&](const JsonValue &f) {
                        res.faultChecksClean = f.asU64();
                    })
        && r.number("deliveredFraction",
                    [&](const JsonValue &f) {
                        res.deliveredFraction = f.asDouble();
                    })
        && r.boolean("degradedGracefully", res.degradedGracefully)
        && r.boolean("aborted", res.aborted)
        && r.number("routeComputeCalls",
                    [&](const JsonValue &f) {
                        res.routeComputeCalls = f.asU64();
                    })
        && r.boolean("routeTableCompiled", res.routeTableCompiled)
        && r.boolean("routeTablePerSource", res.routeTablePerSource)
        && r.number("routeTableBytes",
                    [&](const JsonValue &f) {
                        res.routeTableBytes = f.asU64();
                    })
        // Absent in non-protocol results: the defaults stand.
        && r.boolean("protocolEnabled", res.protocolEnabled)
        && r.number("protocolRequestsDelivered",
                    [&](const JsonValue &f) {
                        res.protocolRequestsDelivered = f.asU64();
                    })
        && r.number("protocolRepliesInjected",
                    [&](const JsonValue &f) {
                        res.protocolRepliesInjected = f.asU64();
                    })
        && r.number("protocolRepliesDelivered",
                    [&](const JsonValue &f) {
                        res.protocolRepliesDelivered = f.asU64();
                    })
        && r.number("protocolEndpointStalls",
                    [&](const JsonValue &f) {
                        res.protocolEndpointStalls = f.asU64();
                    })
        && r.number("protocolThrottled",
                    [&](const JsonValue &f) {
                        res.protocolThrottled = f.asU64();
                    })
        && r.number("protocolPeakOccupancy",
                    [&](const JsonValue &f) {
                        res.protocolPeakOccupancy = f.asU64();
                    })
        && r.boolean("protocolDeadlock", res.protocolDeadlock)
        // Absent in pre-schedMode cache entries: the defaults stand.
        && r.number("wakeups", [&](const JsonValue &f) {
               res.wakeups = f.asU64();
           });
    if (ok) {
        if (const auto *f = v.find("schedMode")) {
            const auto m = f->isString()
                               ? schedModeFromString(f->asString())
                               : std::nullopt;
            if (!m) {
                if (error)
                    *error = "bad 'schedMode' value";
                return std::nullopt;
            }
            res.schedMode = *m;
        }
    }
    if (ok) {
        if (const auto *f = v.find("deadlockCycle")) {
            if (!f->isArray()) {
                if (error)
                    *error = "'deadlockCycle' must be an array";
                return std::nullopt;
            }
            for (const JsonValue &e : f->elements())
                res.deadlockCycle.push_back(
                    static_cast<std::uint32_t>(e.asU64()));
        }
    }
    if (!ok) {
        if (error)
            *error = r.err;
        return std::nullopt;
    }
    return res;
}

} // namespace ebda::sim
