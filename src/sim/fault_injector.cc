#include "sim/fault_injector.hh"

#include <algorithm>
#include <optional>

#include "util/random.hh"

namespace ebda::sim {

namespace {

/** Substream tag of the random fault schedule — never collides with
 *  the per-node traffic substreams (those use the node id). */
constexpr std::uint64_t kFaultSubstream = 0xebdaf417dead1117ULL;

/** The link src -> dst, if present. */
std::optional<topo::LinkId>
findLink(const topo::Network &net, topo::NodeId src, topo::NodeId dst)
{
    if (src >= net.numNodes() || dst >= net.numNodes())
        return std::nullopt;
    for (const topo::LinkId l : net.outLinks(src))
        if (net.link(l).dst == dst)
            return l;
    return std::nullopt;
}

} // namespace

FaultInjector::FaultInjector(const topo::Network &net,
                             const FaultPlan &plan)
    : net(net), thePlan(plan), enabledFlag(!plan.empty()),
      nodeDeadMask(net.numNodes(), 0), linkDeadMask(net.numLinks(), 0),
      chanDeadMask(net.numChannels(), 0)
{
    if (!enabledFlag)
        return;

    // Explicit events, validated against the network.
    for (const FaultEvent &ev : plan.events) {
        if (ev.router) {
            if (ev.node < net.numNodes())
                events.push_back(ev);
        } else if (findLink(net, ev.src, ev.dst)) {
            events.push_back(ev);
        }
    }

    // Random events from the plan's own substream. A random link fault
    // kills the physical link — both directions — matching the static
    // fault model of bench_fault_tolerance.
    Rng rng(plan.seed, kFaultSubstream);
    std::vector<std::uint8_t> linkPicked(net.numLinks(), 0);
    std::vector<std::uint8_t> nodePicked(net.numNodes(), 0);
    std::uint64_t when = plan.firstCycle;
    int placed = 0;
    for (int attempts = 0;
         placed < plan.randomLinkFaults
         && attempts < 64 * plan.randomLinkFaults && net.numLinks() > 0;
         ++attempts) {
        const auto l = static_cast<topo::LinkId>(
            rng.nextBounded(net.numLinks()));
        if (linkPicked[l])
            continue;
        const topo::Link &lk = net.link(l);
        FaultEvent ev;
        ev.cycle = when;
        ev.src = lk.src;
        ev.dst = lk.dst;
        events.push_back(ev);
        linkPicked[l] = 1;
        if (const auto rev = findLink(net, lk.dst, lk.src)) {
            ev.src = lk.dst;
            ev.dst = lk.src;
            events.push_back(ev);
            linkPicked[*rev] = 1;
        }
        when += plan.spacing;
        ++placed;
    }
    placed = 0;
    for (int attempts = 0;
         placed < plan.randomRouterFaults
         && attempts < 64 * plan.randomRouterFaults
         && net.numNodes() > 0;
         ++attempts) {
        const auto n = static_cast<topo::NodeId>(
            rng.nextBounded(net.numNodes()));
        if (nodePicked[n])
            continue;
        FaultEvent ev;
        ev.cycle = when;
        ev.router = true;
        ev.node = n;
        events.push_back(ev);
        nodePicked[n] = 1;
        when += plan.spacing;
        ++placed;
    }

    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.cycle < b.cycle;
                     });
}

void
FaultInjector::markLinkDead(topo::LinkId l)
{
    if (linkDeadMask[l])
        return;
    linkDeadMask[l] = 1;
    ++deadLinks;
    for (int v = 0; v < net.vcsOnLink(l); ++v) {
        const topo::ChannelId c = net.channel(l, v);
        if (!chanDeadMask[c]) {
            chanDeadMask[c] = 1;
            newlyDead.push_back(c);
        }
    }
}

void
FaultInjector::killLink(topo::NodeId src, topo::NodeId dst)
{
    if (const auto l = findLink(net, src, dst))
        markLinkDead(*l);
}

void
FaultInjector::killNode(topo::NodeId n)
{
    if (nodeDeadMask[n])
        return;
    nodeDeadMask[n] = 1;
    ++deadNodes;
    for (const topo::LinkId l : net.outLinks(n))
        markLinkDead(l);
    for (const topo::LinkId l : net.inLinks(n))
        markLinkDead(l);
}

bool
FaultInjector::deadIvc(const Fabric &fab, std::size_t idx) const
{
    if (fab.isChannelVc(idx))
        return chanDeadMask[idx] != 0;
    return nodeDeadMask[fab.ivcs[idx].atNode] != 0;
}

std::vector<std::uint32_t>
FaultInjector::apply(std::uint64_t cycle, Fabric &fab,
                     ActiveSet &allocActive)
{
    bool any = false;
    while (nextIdx < events.size() && events[nextIdx].cycle <= cycle) {
        const FaultEvent &ev = events[nextIdx++];
        if (ev.router)
            killNode(ev.node);
        else
            killLink(ev.src, ev.dst);
        any = true;
    }
    if (!any)
        return {};

    // A packet dies when any flit of it sits in a dead buffer, when its
    // destination died, or when its held allocation crosses a dead
    // channel (a wormhole body cannot be spliced). The masks are
    // cumulative but the scan is idempotent: survivors of earlier
    // events never touch dead elements again.
    std::vector<std::uint8_t> kill(fab.packets.size(), 0);
    for (std::size_t i = 0; i < fab.ivcs.size(); ++i) {
        const InputVc &vc = fab.ivcs[i];
        const bool dead_here = deadIvc(fab, i);
        for (const Flit &f : vc.buf) {
            if (dead_here || nodeDeadMask[fab.packets[f.pkt].dest]
                || nodeDeadMask[vc.atNode])
                kill[f.pkt] = 1;
        }
        if (vc.routed && vc.curPkt != topo::kInvalidId
            && (dead_here || nodeDeadMask[vc.atNode]
                || nodeDeadMask[fab.packets[vc.curPkt].dest]
                || (!vc.eject && chanDeadMask[vc.out]))) {
            kill[vc.curPkt] = 1;
        }
    }
    return purge(fab, allocActive, kill, cycle);
}

std::vector<std::uint32_t>
FaultInjector::purge(Fabric &fab, ActiveSet &allocActive,
                     const std::vector<std::uint8_t> &kill,
                     std::uint64_t cycle)
{
    std::vector<std::uint32_t> purged;
    for (std::size_t p = 0; p < kill.size(); ++p)
        if (kill[p])
            purged.push_back(static_cast<std::uint32_t>(p));
    if (purged.empty())
        return purged;
    // Packet slots are freelist-recycled, so ascending slot id no
    // longer equals generation order — but the retransmit path does
    // depend on it (same-cycle retries re-queue in purge order).
    // Sorting by the generation sequence number reproduces the exact
    // order the pre-freelist fabric produced.
    std::sort(purged.begin(), purged.end(),
              [&fab](std::uint32_t a, std::uint32_t b) {
                  return fab.packets[a].seq < fab.packets[b].seq;
              });

    for (std::size_t i = 0; i < fab.ivcs.size(); ++i) {
        InputVc &vc = fab.ivcs[i];
        bool touched = false;
        if (!vc.buf.empty()) {
            const std::size_t removed =
                fab.eraseFlits(i, cycle, [&](const Flit &f) {
                    return kill[f.pkt] != 0;
                });
            if (removed) {
                fab.flitsInFlight -= removed;
                touched = true;
            }
        }
        if (vc.routed) {
            const bool owner_killed = vc.curPkt != topo::kInvalidId
                && kill[vc.curPkt];
            const bool out_dead =
                !vc.eject && chanDeadMask[vc.out] != 0;
            if (owner_killed || out_dead) {
                if (vc.eject) {
                    --fab.ejectPending[vc.atNode];
                    fab.ejectMask[vc.atNode] &=
                        ~(std::uint64_t{1} << vc.localPos);
                } else {
                    fab.chan[vc.out].owner = topo::kInvalidId;
                    --fab.ownedOnLink[fab.net.linkOf(vc.out)];
                }
                vc.routed = false;
                vc.eject = false;
                vc.out = topo::kInvalidId;
                vc.curPkt = topo::kInvalidId;
                touched = true;
            }
        }
        // Anything still buffered here needs (re-)allocation against
        // the degraded view. Scheduling is idempotent; stale entries
        // are tolerated by the sweep.
        if (touched && !vc.buf.empty() && !vc.routed
            && !deadIvc(fab, i)) {
            allocActive.schedule(i);
        }
    }
    return purged;
}

} // namespace ebda::sim
