/**
 * @file
 * A Booksim-style cycle-level wormhole network simulator, decomposed
 * into per-router pipeline stages over a shared buffer fabric.
 *
 * Model (one cycle minimum per hop, credit-equivalent backpressure):
 *  - Every concrete channel (link x VC) is an input VC buffer of
 *    `vcDepth` flits at the link's downstream router; injection ports
 *    add `injectionVcs` buffers per node (sim/router.hh).
 *  - Route computation + VC allocation (sim/vc_allocator.hh): a head
 *    flit at the front of an unrouted input VC asks the routing
 *    relation for candidate output channels, keeps those whose output
 *    VC is unowned (wormhole: a VC is owned from head allocation until
 *    the tail is sent into it), and takes the one with most free
 *    downstream space. Rotating priority across input VCs approximates
 *    a separable round-robin allocator.
 *  - Switch allocation (sim/switch_allocator.hh): one flit per output
 *    link per cycle, one flit per input link per cycle, one ejected
 *    flit per node per cycle, granted round-robin; a flit moves only
 *    if the downstream buffer has space.
 *  - Wormhole, non-atomic buffers by default: a freed output VC may be
 *    reallocated while earlier packets still drain downstream, so a
 *    buffer can hold flits of several packets — the operating mode
 *    EbDa's theorems cover and Duato's Assumption 3 forbids. With
 *    `atomicVcAllocation` a VC is only allocated when its downstream
 *    buffer is empty (Duato-safe mode).
 *  - Progress watchdog: if no flit moves for `watchdogCycles` while
 *    flits are in flight, the run is declared deadlocked, the frozen
 *    fabric is walked for a concrete wait-for cycle, and the witness
 *    is cross-referenced against the Dally relation-CDG
 *    (sim/forensics.hh) — the runtime complement to the CDG verifier.
 *
 * Scheduling: the stages sweep *active sets* (sim/active_set.hh) — the
 * input VCs that hold flits and lack an output, the links with owned
 * output VCs, the nodes with pending ejections — instead of rescanning
 * the whole fabric each cycle, visiting members in exactly the rotated
 * order the monolithic scan used. Results are bit-identical to the
 * original single-loop simulator (tests/test_golden_sim.cc pins this
 * against captured pre-refactor outputs); per-cycle cost scales with
 * traffic in flight rather than fabric size.
 *
 * Simplifications vs. a full Booksim: single-stage router pipeline (no
 * extra RC/VA/SA latency cycles) and instantaneous credit return. Both
 * shift latency curves by a constant; saturation ordering and deadlock
 * behaviour — what the benches compare — are unaffected.
 */

#ifndef EBDA_SIM_SIMULATOR_HH
#define EBDA_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include <memory>

#include "sim/active_set.hh"
#include "sim/fault_injector.hh"
#include "sim/forensics.hh"
#include "sim/protocol.hh"
#include "sim/router.hh"
#include "sim/scheduler.hh"
#include "sim/simconfig.hh"
#include "sim/switch_allocator.hh"
#include "sim/traffic.hh"
#include "sim/vc_allocator.hh"
#include "util/ring_queue.hh"
#include "util/stats.hh"

namespace ebda::sim {

class EventScheduler;

/**
 * The simulator: holds the fabric, the pipeline stages and the
 * per-run bookkeeping; a SchedulerBackend (sim/scheduler.hh) decides
 * which cycles to execute. Construct once per run.
 */
class Simulator
{
  public:
    Simulator(const topo::Network &net,
              const cdg::RoutingRelation &routing,
              const TrafficGenerator &traffic, const SimConfig &config);

    /** Execute warmup, measurement and drain under the backend
     *  resolved from cfg.schedMode; return the results. */
    SimResult run();

    /** @name Cooperative abort hooks (sweep job budgets)
     *  Must be set before run(). The callback is polled every 1024
     *  cycles; returning true marks the result aborted and stops the
     *  run. A cycle limit of 0 means unlimited.
     *  @{ */
    void setAbortCheck(std::function<bool()> cb)
    {
        abortCheck = std::move(cb);
    }
    void setCycleLimit(std::uint64_t limit) { cycleLimit = limit; }
    /** @} */

    /** @name Measurement-phase hooks (perf instrumentation)
     *  Invoked at the top of the first measurement cycle and at the
     *  top of the first post-measurement cycle respectively.
     *  bench_cycle_rate brackets its allocation-count and wall-clock
     *  window with these to time exactly the steady-state loop —
     *  construction, warmup and drain excluded. Unset by default (the
     *  hot loop skips the checks entirely).
     *  @{ */
    void
    setMeasurePhaseHooks(std::function<void()> onStart,
                         std::function<void()> onEnd)
    {
        measureStartHook = std::move(onStart);
        measureEndHook = std::move(onEnd);
    }
    /** @} */

    /** @name Post-run observability
     *  Valid after run() returns.
     *  @{ */

    /** Per-router state (stall attribution lives here). */
    const std::vector<Router> &routers() const { return routerTable; }

    /** Per-channel time-weighted occupancy over the whole run. */
    std::vector<ChannelOccupancy>
    channelOccupancy() const
    {
        return fab.channelOccupancy(finalCycle);
    }

    /** Forensic dump of the frozen fabric; meaningful only when the
     *  run deadlocked. */
    const DeadlockForensics &forensics() const { return forensicsDump; }

    /** The fault injector (schedule, liveness masks). */
    const FaultInjector &faults() const { return injector; }

    /** The compiled route table (valid from construction). */
    const routing::RouteTable &routeTable() const { return table; }

    /** The shared buffer fabric (arena, packet table, flit-move
     *  counter). Valid from construction. */
    const Fabric &fabric() const { return fab; }

    /** The request–reply protocol state, or nullptr when the layer is
     *  disabled. Valid from construction. */
    const ProtocolState *protocol() const { return proto.get(); }

    /** @} */

  private:
    /** The scheduling backends drive the private phase code directly:
     *  CycleScheduler is the classic loop (simulator.cc),
     *  EventScheduler the queue-driven one (event_queue.cc),
     *  ShardedCycleScheduler the multi-core cycle loop
     *  (shard_sched.cc). */
    friend class CycleScheduler;
    friend class EventScheduler;
    friend class ShardedCycleScheduler;

    void generate(std::uint64_t cycle, bool measuring);
    void fillInjectionVcs(std::uint64_t cycle);

    /** @name Request–reply protocol path (no-ops when disabled)
     *  @{ */
    /** Inject ready replies into (reply-class) injection VCs, freeing
     *  their endpoint slots. Runs between generate() and the request
     *  injection fill each cycle. */
    void injectReplies(std::uint64_t cycle, bool measuring);
    /** Watchdog escalation for protocol runs: abort-and-retransmit the
     *  oldest in-fabric request through the fault-recovery backoff
     *  machinery (falls back to the kill-all drain when no request is
     *  in flight). */
    void recoverProtocolWedge(std::uint64_t cycle);
    /** injector.purge plus endpoint-slot release for eject-reserved
     *  victims — every purge site goes through this so protocol runs
     *  never leak reply-buffer slots. */
    std::vector<std::uint32_t>
    purgePackets(const std::vector<std::uint8_t> &kill,
                 std::uint64_t cycle);
    /** injector.apply with endpoint-slot release for any eject-reserved
     *  request the event purged (the injector picks its own victims,
     *  so the reservations are snapshotted pre-purge). */
    std::vector<std::uint32_t> applyFaultEvents(std::uint64_t cycle);
    /** @} */

    /** @name Fault path (all no-ops when the FaultPlan is empty)
     *  @{ */
    /** Classify purged packets: schedule a source retransmit with
     *  capped exponential backoff, or declare them lost. */
    void handleDropped(const std::vector<std::uint32_t> &purged,
                       std::uint64_t cycle);
    /** Move due retry-queue packets back into their source queues. */
    void releaseRetries(std::uint64_t cycle);
    /** Drop queued packets whose source or destination died. */
    void dropDeadQueuedPackets();
    /** Purge packets whose head waits on an empty degraded candidate
     *  set (they can never move again; without this the drain phase
     *  would hang on them). */
    void strandedScan(std::uint64_t cycle);
    /** Watchdog escalation: drain-and-reroute recovery pass. */
    void recoverWedged(std::uint64_t cycle);
    /** Count the loss and recycle the packet's table slot. */
    void losePacket(std::uint32_t id);
    /** @} */

    const topo::Network &net;
    const cdg::RoutingRelation &routing;
    const TrafficGenerator &traffic;
    SimConfig cfg;

    FaultInjector injector;
    FaultedRelationView faultedView;
    /** The relation the pipeline routes through: the degraded view
     *  when a FaultPlan is present, the base relation otherwise. */
    const cdg::RoutingRelation &effective;

    /** Compiled route table over `effective` — every route-compute
     *  call site queries this. Fault events filter its rows in place,
     *  keeping it exactly equal to the degraded virtual view. */
    routing::RouteTable table;

    Fabric fab;
    std::vector<Router> routerTable;
    VcAllocator vcAlloc;
    SwitchAllocator swAlloc;

    /** Request–reply endpoint state (sim/protocol.hh); nullptr when
     *  the layer is disabled, so the one-way hot path never tests
     *  more than a pointer. */
    std::unique_ptr<ProtocolState> proto;

    /** @name Active sets
     *  @{ */
    /** Input VCs holding flits without an output allocation. */
    ActiveSet allocActive;
    /** Links with at least one owned output VC. */
    ActiveSet linkActive;
    /** Nodes with at least one eject-routed VC. */
    ActiveSet ejectActive;
    /** Nodes with queued packets awaiting an injection VC — the
     *  injection fill visits these instead of scanning every node
     *  every cycle. */
    ActiveSet injectActive;
    /** @} */

    /** Per-node queues of generated packets awaiting injection VCs.
     *  Ring queues: steady-state push/pop/erase never allocates (a
     *  deque's chunked storage would, at every chunk boundary). */
    std::vector<RingQueue<std::uint32_t>> sourceQueues;

    std::uint64_t measuredInFlight = 0;
    std::uint64_t generatedFlits = 0;
    std::uint64_t genCycles = 0;
    std::uint64_t measuredEjectedFlits = 0;

    /** @name Fault-path state
     *  @{ */
    /** A dropped packet awaiting its backoff deadline. */
    struct RetryEntry
    {
        std::uint32_t pkt;
        std::uint64_t ready;
        /** Fault events applied when the retry was scheduled. The
         *  liveness masks are immutable between events, so release
         *  skips the dead/routable re-check while the epoch is
         *  unchanged — handleDropped already computed it. */
        std::size_t epoch;
    };
    std::vector<RetryEntry> retryQueue;
    std::uint64_t measuredGenerated = 0;
    std::uint64_t packetsDroppedCount = 0;
    std::uint64_t packetsLostCount = 0;
    std::uint64_t retransmitCount = 0;
    std::uint64_t recoveryPassCount = 0;
    std::uint64_t faultCheckCount = 0;
    std::uint64_t faultCheckCleanCount = 0;
    /** Stranded-packet scan cadence (cycles). */
    std::uint64_t strandedPeriod = 0;
    /** @} */

    std::function<bool()> abortCheck;
    std::uint64_t cycleLimit = 0;
    bool abortedFlag = false;

    /** Measurement-phase boundary hooks (see setMeasurePhaseHooks). */
    std::function<void()> measureStartHook;
    std::function<void()> measureEndHook;

    /** Fallback buffer for the simulator's own candidatesView calls
     *  (injection routability checks, stranded scans). */
    std::vector<topo::ChannelId> routeScratch;

    Histogram latencyHist;
    StatAccumulator latencyStat;
    StatAccumulator hopsStat;
    std::uint64_t packetsEjectedCount = 0;

    std::uint64_t finalCycle = 0;
    DeadlockForensics forensicsDump;
};

/**
 * Convenience: run one simulation with the given parameters.
 */
SimResult runSimulation(const topo::Network &net,
                        const cdg::RoutingRelation &routing,
                        const TrafficGenerator &traffic,
                        const SimConfig &config);

} // namespace ebda::sim

#endif // EBDA_SIM_SIMULATOR_HH
