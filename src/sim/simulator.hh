/**
 * @file
 * A Booksim-style cycle-level wormhole network simulator.
 *
 * Model (one cycle minimum per hop, credit-equivalent backpressure):
 *  - Every concrete channel (link x VC) is an input VC buffer of
 *    `vcDepth` flits at the link's downstream router; injection ports
 *    add `injectionVcs` buffers per node.
 *  - Route computation + VC allocation: a head flit at the front of an
 *    unrouted input VC asks the routing relation for candidate output
 *    channels, keeps those whose output VC is unowned (wormhole: a VC is
 *    owned from head allocation until the tail is sent into it), and
 *    takes the one with most free downstream space. Rotating priority
 *    across input VCs approximates a separable round-robin allocator.
 *  - Switch allocation: one flit per output link per cycle, one flit per
 *    input link per cycle, one ejected flit per node per cycle, granted
 *    round-robin; a flit moves only if the downstream buffer has space.
 *  - Wormhole, non-atomic buffers by default: a freed output VC may be
 *    reallocated while earlier packets still drain downstream, so a
 *    buffer can hold flits of several packets — the operating mode
 *    EbDa's theorems cover and Duato's Assumption 3 forbids. With
 *    `atomicVcAllocation` a VC is only allocated when its downstream
 *    buffer is empty (Duato-safe mode).
 *  - Progress watchdog: if no flit moves for `watchdogCycles` while
 *    flits are in flight, the run is declared deadlocked — the runtime
 *    complement to the CDG verifier.
 *
 * Simplifications vs. a full Booksim: single-stage router pipeline (no
 * extra RC/VA/SA latency cycles) and instantaneous credit return. Both
 * shift latency curves by a constant; saturation ordering and deadlock
 * behaviour — what the benches compare — are unaffected.
 */

#ifndef EBDA_SIM_SIMULATOR_HH
#define EBDA_SIM_SIMULATOR_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "cdg/routing_relation.hh"
#include "sim/traffic.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace ebda::sim {

/** Packet switching technique (Section 1 of the paper; Assumption 1:
 *  EbDa covers all three). */
enum class SwitchingMode : std::uint8_t
{
    /** Pipelined flits; buffers may be smaller than packets. */
    Wormhole,
    /** Head advances only when the downstream buffer can hold the
     *  whole packet (requires vcDepth >= packetLength). */
    VirtualCutThrough,
    /** Head advances only after the whole packet is buffered locally
     *  (requires vcDepth >= packetLength). */
    StoreAndForward,
};

/**
 * Output-selection policy: how a router picks among the (several)
 * legal candidates an adaptive routing relation offers. DyXY-style
 * congestion awareness is MaxCredits (pick the least congested
 * downstream buffer); the others serve as ablation baselines.
 */
enum class SelectionPolicy : std::uint8_t
{
    /** Most free downstream space (congestion-aware, default). */
    MaxCredits,
    /** Rotate deterministically across candidates. */
    RoundRobin,
    /** Uniform random choice (per-node deterministic stream). */
    Random,
    /** Always the first legal candidate (relation order). */
    FirstCandidate,
};

/** Simulation parameters. */
struct SimConfig
{
    std::uint64_t seed = 12345;
    /** Flits per VC buffer. */
    int vcDepth = 4;
    /** Flits per packet. */
    int packetLength = 4;
    /** Switching technique. */
    SwitchingMode switching = SwitchingMode::Wormhole;
    /** Router pipeline depth in cycles per hop (>= 1). The default of
     *  1 models a single-stage router; 3-4 approximates the classic
     *  RC/VA/SA/ST pipeline, shifting latency curves by a constant
     *  factor of the hop count. */
    int routerLatency = 1;
    /** Output-selection policy among legal adaptive candidates. */
    SelectionPolicy selection = SelectionPolicy::MaxCredits;
    /** Offered load in flits/node/cycle. */
    double injectionRate = 0.1;
    /** Injection-port VC buffers per node. */
    int injectionVcs = 2;
    /** Duato-safe atomic VC allocation (one packet per buffer). */
    bool atomicVcAllocation = false;
    std::uint64_t warmupCycles = 2000;
    std::uint64_t measureCycles = 10000;
    /** Post-measurement cap while waiting for measured packets. */
    std::uint64_t drainCycles = 100000;
    /** No-progress window that declares deadlock. */
    std::uint64_t watchdogCycles = 5000;
};

/** Aggregate results of one run. */
struct SimResult
{
    /** Generation-to-ejection latency of measured packets (cycles). */
    double avgLatency = 0.0;
    std::uint64_t p50Latency = 0;
    std::uint64_t p99Latency = 0;
    std::uint64_t maxLatency = 0;
    /** Average hop count of measured packets. */
    double avgHops = 0.0;
    /** Ejected flits per node per cycle during the measurement window. */
    double acceptedRate = 0.0;
    /** Generated flits per node per cycle (sanity echo of the config). */
    double offeredRate = 0.0;
    std::uint64_t packetsMeasured = 0;
    std::uint64_t packetsEjected = 0;
    /** True when the watchdog fired. */
    bool deadlocked = false;
    /** False when the drain cap expired with measured packets stuck. */
    bool drained = true;
    std::uint64_t cycles = 0;

    /** @name Channel-load distribution (flits forwarded per channel,
     *  network channels only) — backs the paper's claim that EbDa
     *  spreads traffic better than escape-channel designs.
     *  @{ */
    double channelLoadMean = 0.0;
    /** Coefficient of variation (stddev / mean); lower = more even. */
    double channelLoadCv = 0.0;
    /** Max / mean load ratio. */
    double channelLoadMaxRatio = 0.0;
    /** Fraction of channels that carried no flit at all. */
    double channelsUnused = 0.0;
    /** @} */
};

/**
 * The simulator. Construct once per run.
 */
class Simulator
{
  public:
    Simulator(const topo::Network &net,
              const cdg::RoutingRelation &routing,
              const TrafficGenerator &traffic, const SimConfig &config);

    /** Execute warmup, measurement and drain; return the results. */
    SimResult run();

  private:
    struct Flit
    {
        std::uint32_t pkt;
        bool head;
        bool tail;
        /** Cycle the flit entered its current buffer. */
        std::uint64_t arrival;
    };

    struct PacketRec
    {
        topo::NodeId src;
        topo::NodeId dest;
        std::uint64_t genCycle;
        std::uint16_t hops = 0;
        bool measured = false;
    };

    /** One input VC buffer (a channel's downstream buffer, or an
     *  injection-port buffer). */
    struct InputVc
    {
        std::deque<Flit> buf;
        /** Channel this VC represents (kInjectionChannel for injection
         *  buffers). */
        topo::ChannelId self = 0;
        /** Router this VC feeds. */
        topo::NodeId atNode = 0;
        /** Allocated output channel; kInvalidId when unrouted. */
        topo::ChannelId out = topo::kInvalidId;
        bool eject = false;
        bool routed = false;
    };

    void generate(std::uint64_t cycle, bool measuring);
    void fillInjectionVcs(std::uint64_t cycle);
    void allocateVcs(std::uint64_t cycle);
    bool traverse(std::uint64_t cycle);

    /** Switching-mode gate for moving a head flit out of vc into the
     *  output channel with the given free space. */
    bool headMayAdvance(const InputVc &vc, int space_at_out) const;

    /** Index of the injection VC k of a node in `ivcs`. */
    std::size_t injIndex(topo::NodeId n, int k) const;

    const topo::Network &net;
    const cdg::RoutingRelation &routing;
    const TrafficGenerator &traffic;
    SimConfig cfg;

    std::vector<InputVc> ivcs;
    /** Output VC ownership: index into ivcs, or kInvalidId when free. */
    std::vector<std::uint32_t> owner;
    std::vector<PacketRec> packets;
    /** Per-node queues of generated packets awaiting injection VCs. */
    std::vector<std::deque<std::uint32_t>> sourceQueues;
    std::vector<Rng> nodeRng;

    /** Flits forwarded per network channel (load distribution). */
    std::vector<std::uint64_t> channelLoad;

    /** Flits currently buffered anywhere. */
    std::uint64_t flitsInFlight = 0;
    std::uint64_t measuredInFlight = 0;
    std::uint64_t generatedFlits = 0;
    std::uint64_t genCycles = 0;
    std::uint64_t measuredEjectedFlits = 0;

    Histogram latencyHist;
    StatAccumulator latencyStat;
    StatAccumulator hopsStat;
    std::uint64_t packetsEjectedCount = 0;

    /** Rotating arbitration offsets. */
    std::size_t vcArbOffset = 0;
    std::size_t swArbOffset = 0;

    /** Input-port usage stamps (one flit per port per cycle). */
    std::vector<std::uint64_t> portUsedStamp;
    /** Per-node list of input VC indices (ejection arbitration). */
    std::vector<std::vector<std::size_t>> nodeIvcLists;
    /** True while the measurement window is open. */
    bool inMeasurementWindow = false;
};

/**
 * Convenience: run one simulation with the given parameters.
 */
SimResult runSimulation(const topo::Network &net,
                        const cdg::RoutingRelation &routing,
                        const TrafficGenerator &traffic,
                        const SimConfig &config);

} // namespace ebda::sim

#endif // EBDA_SIM_SIMULATOR_HH
