#include "sim/shard_sched.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "sim/shard_partition.hh"
#include "sim/simulator.hh"

namespace ebda::sim {

namespace {

#if defined(__x86_64__) || defined(__i386__)
inline void
cpuRelax()
{
    __builtin_ia32_pause();
}
#elif defined(__aarch64__)
inline void
cpuRelax()
{
    asm volatile("yield" ::: "memory");
}
#else
inline void
cpuRelax()
{
    std::this_thread::yield();
}
#endif

/**
 * Sense-reversing spin barrier. The last arriver runs the completion
 * hook single-threaded while everyone else spins, then releases the
 * generation counter: the release/acquire pair on `gen` (and the
 * acq_rel chain on `arrived`) is what publishes every shard's
 * pre-barrier writes to every other shard — the only synchronisation
 * in the whole scheduler. Spinners yield periodically so
 * oversubscribed runs (more threads than cores, e.g. the determinism
 * tests on one-core CI) make progress.
 */
class SpinBarrier
{
  public:
    void init(unsigned participants) { total = participants; }

    template <typename Hook>
    void
    arrive(Hook &&hook)
    {
        const std::uint64_t my = gen.load(std::memory_order_acquire);
        if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1
            == total) {
            hook();
            arrived.store(0, std::memory_order_relaxed);
            gen.store(my + 1, std::memory_order_release);
            return;
        }
        unsigned spins = 0;
        while (gen.load(std::memory_order_acquire) == my) {
            if (++spins >= 64) {
                std::this_thread::yield();
                spins = 0;
            } else {
                cpuRelax();
            }
        }
    }

  private:
    std::atomic<std::uint64_t> gen{0};
    std::atomic<unsigned> arrived{0};
    unsigned total = 1;
};

/** One flit crossing a cut link: the channel it was sent into plus the
 *  flit itself (arrival already stamped by the sender). */
struct FlitMsg
{
    topo::ChannelId chan;
    Flit flit;
};

/**
 * Double-buffered message queue for one ordered shard pair: flits for
 * cut links producer -> consumer, credits for cut links the other way.
 * The producer appends to parity (cycle & 1) during its cycle; the
 * consumer drains the opposite parity at the top of its next cycle —
 * so a buffer is never touched by two shards in the same inter-barrier
 * window, whatever order the shards execute in.
 */
struct Mailbox
{
    std::uint16_t producer = 0;
    std::uint16_t consumer = 0;
    std::vector<FlitMsg> flits[2];
    std::vector<topo::ChannelId> credits[2];
};

/** Per-link probe record (mirrors SwitchAllocator::LinkProbe). */
struct LinkProbe
{
    topo::ChannelId base;
    std::uint32_t nvc;
};

/**
 * Everything one shard owns. Arbitration offsets are maintained with
 * the exact increments the classic stages use, so each is the same
 * pure function of the cycle count; stats and counters accumulate
 * locally and are folded into the simulator in ascending shard order
 * after the workers join. alignas keeps neighbouring shards' hot
 * counters off each other's cache lines.
 */
struct alignas(64) Shard
{
    Shard(std::size_t n_ivcs, std::size_t n_links, std::size_t n_nodes,
          std::size_t rot_size)
        : allocActive(n_ivcs), linkActive(n_links),
          ejectActive(n_nodes), injectActive(n_nodes),
          portUsedStamp(n_links + n_nodes, UINT64_MAX),
          rotStart(rot_size, 0), latencyHist(4096)
    {
    }

    /** Nodes this shard owns, ascending. */
    std::vector<topo::NodeId> nodes;
    /** Inbound mailbox indices, ascending by producer shard. */
    std::vector<std::uint32_t> inbox;

    /** Per-shard active sets over the full universes; membership only
     *  ever covers shard-owned indices (the bitmap cost of the unused
     *  range is negligible and keeps indexing global). */
    ActiveSet allocActive;
    ActiveSet linkActive;
    ActiveSet ejectActive;
    ActiveSet injectActive;

    std::vector<std::uint64_t> portUsedStamp;
    std::vector<std::uint32_t> rotStart;
    std::size_t vcArbOffset = 0;
    std::size_t swArbOffset = 0;

    std::vector<topo::ChannelId> scratch;
    std::vector<topo::ChannelId> free;

    /** Packet slots this shard may allocate from; refilled to at least
     *  one slot per owned node by the barrier hook. */
    std::vector<std::uint32_t> pktPool;

    Histogram latencyHist;
    StatAccumulator latencyStat;
    StatAccumulator hopsStat;
    std::uint64_t packetsEjected = 0;
    std::uint64_t measuredEjectedFlits = 0;
    std::uint64_t generatedFlits = 0;
    std::uint64_t measuredGenerated = 0;
    std::uint64_t routeCalls = 0;
    std::uint64_t flitMoves = 0;
    /** Signed in-flight deltas: injection adds, ejection subtracts,
     *  cut transfers touch neither side — each flit is counted once by
     *  its injector shard and released once by its ejector shard, so
     *  the sum over shards is the exact global count (flits sitting in
     *  a mailbox included). */
    std::int64_t inFlightDelta = 0;
    std::int64_t measuredDelta = 0;
    bool movedThisCycle = false;
};

/**
 * The whole run: shared read-only tables, the shard array, the
 * mailboxes, and the barrier-hook control state. Built by
 * ShardedCycleScheduler::run (the Simulator friend) from the
 * simulator's internals; the worker kernels below only ever touch
 * state through this struct.
 */
struct ShardRun
{
    const topo::Network &net;
    const SimConfig &cfg;
    Fabric &fab;
    const routing::RouteTable &table;
    const TrafficGenerator &traffic;
    std::vector<Router> &routers;
    std::vector<RingQueue<std::uint32_t>> &queues;

    std::vector<std::uint16_t> shardOf;
    std::vector<LinkProbe> linkInfo;
    /** Per-channel outbound mailbox (cut channels only, -1 local):
     *  sendBoxOf for the flit direction, creditBoxOf for the credit
     *  return the other way. */
    std::vector<std::int32_t> sendBoxOf;
    std::vector<std::int32_t> creditBoxOf;
    /** Sender-side credit counters per channel; only the cut channels'
     *  entries are ever read, each by exactly one shard. */
    std::vector<std::int32_t> credits;
    std::vector<Mailbox> mailboxes;

    std::vector<std::unique_ptr<Shard>> shards;
    /** Static shard -> worker-thread assignment (results never depend
     *  on it; it only divides the work). */
    std::vector<std::vector<std::uint16_t>> threadShards;
    SpinBarrier barrier;

    std::uint64_t measureStart = 0;
    std::uint64_t measureEnd = 0;
    std::uint64_t hardStop = 0;
    std::uint64_t watchdogCycles = 0;
    std::uint64_t cycleLimit = 0;
    const std::function<void()> *startHookFn = nullptr;
    const std::function<void()> *endHookFn = nullptr;
    const std::function<bool()> *abortCheckFn = nullptr;

    /** Written only by the barrier hook, read by workers after the
     *  barrier releases them — the barrier's release/acquire pair is
     *  the publication. */
    struct
    {
        bool stop = false;
        bool measuring = false;
    } ctrl;

    std::uint64_t lastProgress = 0;
    std::uint64_t executedCycles = 0;
    std::uint64_t finalCycle = 0;
    std::uint64_t wakeups = 0;
    bool deadlocked = false;
    bool aborted = false;

    std::size_t numNodes = 0;
    std::size_t numChannels = 0;

    bool isCut(topo::ChannelId c) const { return sendBoxOf[c] >= 0; }

    // --- setup -----------------------------------------------------

    void
    build(int shard_count)
    {
        numNodes = net.numNodes();
        numChannels = net.numChannels();
        shardOf = partitionNodes(net, shard_count);

        linkInfo.reserve(net.numLinks());
        std::size_t max_rot = 1;
        for (topo::LinkId l = 0; l < net.numLinks(); ++l) {
            const int nvc = net.vcsOnLink(l);
            linkInfo.push_back({net.linkChannelBase(l),
                                static_cast<std::uint32_t>(nvc)});
            max_rot =
                std::max(max_rot, static_cast<std::size_t>(nvc));
        }
        for (topo::NodeId v = 0; v < numNodes; ++v)
            max_rot = std::max(max_rot, routers[v].localIvcs.size());

        shards.reserve(static_cast<std::size_t>(shard_count));
        for (int s = 0; s < shard_count; ++s)
            shards.push_back(std::make_unique<Shard>(
                fab.ivcs.size(), net.numLinks(), numNodes,
                max_rot + 1));
        for (topo::NodeId v = 0; v < numNodes; ++v)
            shards[shardOf[v]]->nodes.push_back(v);

        // Mailboxes: one per ordered shard pair joined by a cut link,
        // preallocated to the per-cycle message bound — at most one
        // flit per cut link (the traverse stage moves one flit per
        // output link per cycle) and one credit per cut link (every VC
        // of a link shares its input port, so at most one pop/cycle).
        sendBoxOf.assign(numChannels, -1);
        creditBoxOf.assign(numChannels, -1);
        credits.assign(numChannels, cfg.vcDepth);
        std::map<std::pair<int, int>, std::uint32_t> boxIndex;
        auto box = [&](int from, int to) -> std::uint32_t {
            const auto key = std::make_pair(from, to);
            const auto it = boxIndex.find(key);
            if (it != boxIndex.end())
                return it->second;
            const auto idx =
                static_cast<std::uint32_t>(mailboxes.size());
            boxIndex.emplace(key, idx);
            mailboxes.push_back(Mailbox{
                static_cast<std::uint16_t>(from),
                static_cast<std::uint16_t>(to),
                {},
                {}});
            return idx;
        };
        std::vector<std::size_t> flitCap, creditCap;
        for (topo::LinkId l = 0; l < net.numLinks(); ++l) {
            const int a = shardOf[net.link(l).src];
            const int b = shardOf[net.link(l).dst];
            if (a == b)
                continue;
            const std::uint32_t fwd = box(a, b);
            const std::uint32_t rev = box(b, a);
            flitCap.resize(mailboxes.size(), 0);
            creditCap.resize(mailboxes.size(), 0);
            ++flitCap[fwd];
            ++creditCap[rev];
            const int nvc = net.vcsOnLink(l);
            const topo::ChannelId base = net.linkChannelBase(l);
            for (int v = 0; v < nvc; ++v) {
                sendBoxOf[base + static_cast<topo::ChannelId>(v)] =
                    static_cast<std::int32_t>(fwd);
                creditBoxOf[base + static_cast<topo::ChannelId>(v)] =
                    static_cast<std::int32_t>(rev);
            }
        }
        flitCap.resize(mailboxes.size(), 0);
        creditCap.resize(mailboxes.size(), 0);
        for (std::size_t m = 0; m < mailboxes.size(); ++m) {
            for (int p = 0; p < 2; ++p) {
                mailboxes[m].flits[p].reserve(flitCap[m]);
                mailboxes[m].credits[p].reserve(creditCap[m]);
            }
            shards[mailboxes[m].consumer]->inbox.push_back(
                static_cast<std::uint32_t>(m));
        }
        // Drain order must be deterministic: ascending producer.
        for (auto &sp : shards) {
            std::sort(sp->inbox.begin(), sp->inbox.end(),
                      [&](std::uint32_t x, std::uint32_t y) {
                          return mailboxes[x].producer
                              < mailboxes[y].producer;
                      });
        }
    }

    /** Keep every shard's packet pool at one slot per owned node (the
     *  per-cycle generation bound) and return hoarded excess — slots
     *  migrate from ejector shards back to injector shards here, while
     *  the workers are parked, so fab.packets may safely grow. */
    void
    refillPools()
    {
        for (auto &sp : shards) {
            const std::size_t target = sp->nodes.size();
            auto &pool = sp->pktPool;
            while (pool.size() > 2 * target) {
                fab.pktFreelist.push_back(pool.back());
                pool.pop_back();
            }
            while (pool.size() < target) {
                if (!fab.pktFreelist.empty()) {
                    pool.push_back(fab.pktFreelist.back());
                    fab.pktFreelist.pop_back();
                } else {
                    pool.push_back(static_cast<std::uint32_t>(
                        fab.packets.size()));
                    fab.packets.emplace_back();
                }
            }
        }
    }

    // --- per-shard kernels (classic stages, shard-restricted) -------

    /** Return the freed buffer slot of input VC `idx` to the upstream
     *  shard when the channel is cut (pops of local channels need no
     *  message — the owner reads the buffer directly). */
    void
    creditReturn(std::size_t idx, std::uint64_t cycle)
    {
        if (idx >= numChannels)
            return;
        const std::int32_t b =
            creditBoxOf[static_cast<topo::ChannelId>(idx)];
        if (b >= 0)
            mailboxes[static_cast<std::size_t>(b)]
                .credits[cycle & 1]
                .push_back(static_cast<topo::ChannelId>(idx));
    }

    void
    drainInbound(Shard &sh, std::uint64_t cycle)
    {
        const std::size_t parity = (cycle + 1) & 1;
        for (const std::uint32_t m : sh.inbox) {
            Mailbox &mb = mailboxes[m];
            for (const FlitMsg &msg : mb.flits[parity]) {
                InputVc &down = fab.ivcs[msg.chan];
                fab.pushFlit(msg.chan, down, msg.flit, cycle,
                             sh.flitMoves);
                if (!down.routed)
                    sh.allocActive.schedule(msg.chan);
            }
            mb.flits[parity].clear();
            for (const topo::ChannelId c : mb.credits[parity])
                ++credits[c];
            mb.credits[parity].clear();
        }
    }

    void
    generate(Shard &sh, std::uint64_t cycle, bool measuring)
    {
        const double packet_rate = cfg.injectionRate
            / static_cast<double>(cfg.packetLength);
        for (const topo::NodeId n : sh.nodes) {
            Rng &rng = routers[n].rng;
            if (!rng.nextBool(packet_rate))
                continue;
            const auto dest = traffic.dest(n, rng);
            if (!dest)
                continue;
            // Slot from the shard pool (non-empty by the refill
            // invariant); seq derived from (cycle, node) — unique and
            // deterministic without a shared counter.
            const std::uint32_t id = sh.pktPool.back();
            sh.pktPool.pop_back();
            PacketRec rec;
            rec.src = n;
            rec.dest = *dest;
            rec.genCycle = cycle;
            rec.measured = measuring;
            rec.seq = cycle * numNodes + n;
            fab.packets[id] = rec;
            queues[n].push_back(id);
            sh.injectActive.schedule(n);
            sh.generatedFlits +=
                static_cast<std::uint64_t>(cfg.packetLength);
            if (measuring) {
                ++sh.measuredDelta;
                ++sh.measuredGenerated;
            }
        }
    }

    void
    fillInjectionVcs(Shard &sh, std::uint64_t cycle)
    {
        sh.injectActive.sweep(0, [&](std::size_t ni) -> bool {
            const auto n = static_cast<topo::NodeId>(ni);
            if (queues[n].empty())
                return false;
            for (int k = 0;
                 k < cfg.injectionVcs && !queues[n].empty(); ++k) {
                const std::size_t idx = fab.injIndex(n, k);
                InputVc &vc = fab.ivcs[idx];
                if (!vc.buf.empty() || vc.routed)
                    continue;
                const std::uint32_t pkt = queues[n].front();
                queues[n].pop_front();
                for (int f = 0; f < cfg.packetLength; ++f) {
                    fab.pushFlit(idx, vc,
                                 Flit{pkt, f == 0,
                                      f == cfg.packetLength - 1,
                                      cycle},
                                 cycle, sh.flitMoves);
                }
                sh.inFlightDelta +=
                    static_cast<std::int64_t>(cfg.packetLength);
                sh.allocActive.schedule(idx);
            }
            return !queues[n].empty();
        });
    }

    /** Downstream space as this shard may observe it: the live buffer
     *  for local channels, the (one-cycle-lagged) credit counter for
     *  cut channels. */
    int
    spaceAt(topo::ChannelId c) const
    {
        if (isCut(c))
            return credits[c];
        return cfg.vcDepth - static_cast<int>(fab.ivcs[c].buf.size());
    }

    void
    vcAllocate(Shard &sh, std::uint64_t /*cycle*/)
    {
        const std::size_t count = fab.ivcs.size();
        sh.vcArbOffset = (sh.vcArbOffset + 1) % count;

        sh.allocActive.sweep(sh.vcArbOffset, [&](std::size_t i) -> bool {
            InputVc &vc = fab.ivcs[i];
            if (vc.routed || vc.buf.empty())
                return false;
            if (!vc.buf.front().head)
                return true;
            const PacketRec &pkt = fab.packets[vc.buf.front().pkt];
            Router &rtr = routers[vc.atNode];

            if (vc.atNode == pkt.dest) {
                vc.eject = true;
                vc.routed = true;
                vc.curPkt = vc.buf.front().pkt;
                fab.ejectMask[vc.atNode] |= std::uint64_t{1}
                    << vc.localPos;
                if (fab.ejectPending[vc.atNode]++ == 0)
                    sh.ejectActive.schedule(vc.atNode);
                return false;
            }

            sh.free.clear();
            bool any_candidate = false;
            ++sh.routeCalls;
            for (topo::ChannelId c : table.candidatesViewUncounted(
                     vc.self, vc.atNode, pkt.src, pkt.dest,
                     sh.scratch)) {
                any_candidate = true;
                if (fab.chan[c].owner != topo::kInvalidId)
                    continue;
                if (cfg.atomicVcAllocation) {
                    // Atomic mode wants an empty downstream buffer;
                    // for a cut channel "all credits home" is the
                    // sender-side equivalent (conservative by up to
                    // the one-cycle credit lag).
                    const bool empty = isCut(c)
                        ? credits[c] == cfg.vcDepth
                        : fab.ivcs[c].buf.empty();
                    if (!empty)
                        continue;
                }
                sh.free.push_back(c);
            }
            if (sh.free.empty()) {
                if (any_candidate)
                    ++rtr.stalls.vcStarved;
                else
                    ++rtr.stalls.routeCompute;
                return true;
            }

            topo::ChannelId best = topo::kInvalidId;
            switch (cfg.selection) {
              case SelectionPolicy::MaxCredits: {
                  int best_space = -1;
                  for (const topo::ChannelId c : sh.free) {
                      const int space = spaceAt(c);
                      if (space > best_space) {
                          best_space = space;
                          best = c;
                      }
                  }
                  break;
              }
              case SelectionPolicy::RoundRobin:
                best = sh.free[sh.vcArbOffset % sh.free.size()];
                break;
              case SelectionPolicy::Random:
                best = sh.free[rtr.rng.nextBounded(sh.free.size())];
                break;
              case SelectionPolicy::FirstCandidate:
                best = sh.free.front();
                break;
            }

            vc.out = best;
            vc.eject = false;
            vc.routed = true;
            vc.curPkt = vc.buf.front().pkt;
            fab.chan[best].owner = static_cast<std::uint32_t>(i);
            const topo::LinkId l = fab.net.linkOf(best);
            if (fab.ownedOnLink[l]++ == 0)
                sh.linkActive.schedule(l);
            return false;
        });
    }

    void
    traverse(Shard &sh, std::uint64_t cycle)
    {
        ++sh.swArbOffset;
        const SwitchingMode switching = cfg.switching;
        const int packet_length = cfg.packetLength;
        const std::uint64_t pipe_extra =
            static_cast<std::uint64_t>(cfg.routerLatency - 1);
        for (std::size_t n = 1; n < sh.rotStart.size(); ++n) {
            if (++sh.rotStart[n] >= n)
                sh.rotStart[n] = 0;
        }

        sh.linkActive.sweep(
            sh.swArbOffset % net.numLinks(),
            [&](std::size_t li) -> bool {
                const auto l = static_cast<topo::LinkId>(li);
                const LinkProbe lp = linkInfo[li];
                const int nvc = static_cast<int>(lp.nvc);
                int v = static_cast<int>(sh.rotStart[lp.nvc]);
                for (int vi = 0; vi < nvc; ++vi, ++v) {
                    if (v >= nvc)
                        v -= nvc;
                    const topo::ChannelId out =
                        lp.base + static_cast<topo::ChannelId>(v);
                    ChannelState &cs = fab.chan[out];
                    const std::uint32_t holder = cs.owner;
                    if (holder == topo::kInvalidId)
                        continue;
                    InputVc &vc = fab.ivcs[holder];
                    if (vc.buf.empty()
                        || vc.buf.front().arrival >= cycle)
                        continue;
                    const bool cut = isCut(out);
                    const int space = spaceAt(out);
                    if (space <= 0) {
                        ++routers[vc.atNode].stalls.creditStarved;
                        continue;
                    }
                    if (vc.buf.front().head
                        && !SwitchAllocator::headMayAdvance(
                            switching, packet_length, vc, space)) {
                        ++routers[vc.atNode].stalls.creditStarved;
                        continue;
                    }
                    if (sh.portUsedStamp[vc.port] == cycle) {
                        ++routers[vc.atNode].stalls.switchLost;
                        continue;
                    }

                    Flit flit = fab.popFlit(holder, vc, cycle);
                    creditReturn(holder, cycle);
                    sh.portUsedStamp[vc.port] = cycle;
                    flit.arrival = cycle + pipe_extra;
                    if (cut) {
                        // The receiver pushes (and counts the move)
                        // when it drains the mailbox next cycle; the
                        // credit is spent now so this shard's space
                        // view stays conservative.
                        --credits[out];
                        mailboxes[static_cast<std::size_t>(
                                      sendBoxOf[out])]
                            .flits[cycle & 1]
                            .push_back(FlitMsg{out, flit});
                    } else {
                        fab.pushFlit(out, fab.ivcs[out], flit, cycle,
                                     sh.flitMoves);
                    }
                    ++cs.load;
                    if (flit.head)
                        ++fab.packets[flit.pkt].hops;
                    if (flit.tail) {
                        cs.owner = topo::kInvalidId;
                        --fab.ownedOnLink[l];
                        vc.routed = false;
                        vc.out = topo::kInvalidId;
                        vc.curPkt = topo::kInvalidId;
                        if (!vc.buf.empty())
                            sh.allocActive.schedule(holder);
                    }
                    if (!cut && !fab.ivcs[out].routed)
                        sh.allocActive.schedule(out);
                    sh.movedThisCycle = true;
                    break; // one flit per output link per cycle
                }
                return fab.ownedOnLink[l] > 0;
            });
    }

    void
    eject(Shard &sh, std::uint64_t cycle, bool measuring)
    {
        sh.ejectActive.sweep(0, [&](std::size_t ni) -> bool {
            const auto n = static_cast<topo::NodeId>(ni);
            const auto &locals = routers[n].localIvcs;
            const std::size_t nloc = locals.size();
            const std::size_t p0 = sh.rotStart[nloc];
            const std::uint64_t mask = fab.ejectMask[n];
            const std::uint64_t low = (std::uint64_t{1} << p0) - 1;
            std::uint64_t ranges[2] = {mask & ~low, mask & low};
            bool granted = false;
            for (std::uint64_t m : ranges) {
                while (m && !granted) {
                    const auto p = static_cast<std::size_t>(
                        std::countr_zero(m));
                    m &= m - 1;
                    const std::size_t idx = locals[p];
                    InputVc &vc = fab.ivcs[idx];
                    if (vc.buf.empty()
                        || vc.buf.front().arrival >= cycle)
                        continue;
                    if (sh.portUsedStamp[vc.port] == cycle) {
                        ++routers[vc.atNode].stalls.switchLost;
                        continue;
                    }
                    const Flit flit = fab.popFlit(idx, vc, cycle);
                    creditReturn(idx, cycle);
                    sh.portUsedStamp[vc.port] = cycle;
                    --sh.inFlightDelta;
                    ++sh.flitMoves;
                    sh.movedThisCycle = true;
                    if (flit.tail) {
                        vc.routed = false;
                        vc.eject = false;
                        vc.curPkt = topo::kInvalidId;
                        --fab.ejectPending[n];
                        fab.ejectMask[n] &=
                            ~(std::uint64_t{1} << vc.localPos);
                        if (!vc.buf.empty())
                            sh.allocActive.schedule(idx);
                        PacketRec &pkt = fab.packets[flit.pkt];
                        ++sh.packetsEjected;
                        if (measuring)
                            ++sh.measuredEjectedFlits;
                        if (pkt.measured) {
                            const auto latency =
                                cycle - pkt.genCycle;
                            sh.latencyHist.add(latency);
                            sh.latencyStat.add(
                                static_cast<double>(latency));
                            sh.hopsStat.add(
                                static_cast<double>(pkt.hops));
                            --sh.measuredDelta;
                        }
                        sh.pktPool.push_back(flit.pkt);
                    } else if (measuring) {
                        ++sh.measuredEjectedFlits;
                    }
                    granted = true;
                }
                if (granted)
                    break;
            }
            return fab.ejectPending[n] > 0;
        });
    }

    void
    step(Shard &sh, std::uint64_t cycle, bool measuring)
    {
        drainInbound(sh, cycle);
        generate(sh, cycle, measuring);
        fillInjectionVcs(sh, cycle);
        vcAllocate(sh, cycle);
        traverse(sh, cycle);
        eject(sh, cycle, measuring);
    }

    // --- barrier completion hook (single-threaded) -------------------

    void
    stopAfterCycle(std::uint64_t c)
    {
        finalCycle = c;
        wakeups = executedCycles;
        ctrl.stop = true;
    }

    /** Runs once per cycle, by the last barrier arriver, while every
     *  worker is parked: global reductions, watchdog, termination,
     *  packet-pool upkeep — everything the classic loop did with
     *  whole-fabric state. Mirrors the classic loop's top-of-cycle
     *  bookkeeping for cycle c+1 so counters stay comparable. */
    void
    hook(std::uint64_t c)
    {
        ++executedCycles;
        bool moved = false;
        std::int64_t in_flight = 0;
        std::int64_t measured = 0;
        for (auto &sp : shards) {
            moved |= sp->movedThisCycle;
            sp->movedThisCycle = false;
            in_flight += sp->inFlightDelta;
            measured += sp->measuredDelta;
        }
        if (moved || in_flight == 0)
            lastProgress = c;
        refillPools();
        if (c - lastProgress > watchdogCycles) {
            // Nothing moved for the whole window, so no mailbox has
            // held a message for that long either: the frozen fabric
            // the forensics walk after the join is complete.
            deadlocked = true;
            stopAfterCycle(c);
            return;
        }
        if (c >= measureEnd && measured == 0) {
            stopAfterCycle(c);
            return;
        }
        const std::uint64_t next = c + 1;
        if (next >= hardStop) {
            finalCycle = hardStop;
            wakeups = executedCycles;
            ctrl.stop = true;
            return;
        }
        if (startHookFn && next == measureStart)
            (*startHookFn)();
        if (endHookFn && next == measureEnd)
            (*endHookFn)();
        if (cycleLimit && next >= cycleLimit) {
            aborted = true;
            finalCycle = next;
            wakeups = executedCycles + 1;
            ctrl.stop = true;
            return;
        }
        if (abortCheckFn && (next & 1023u) == 0 && (*abortCheckFn)()) {
            aborted = true;
            finalCycle = next;
            wakeups = executedCycles + 1;
            ctrl.stop = true;
            return;
        }
        ctrl.measuring = next >= measureStart && next < measureEnd;
    }

    void
    workerLoop(unsigned tid)
    {
        const auto &mine = threadShards[tid];
        for (std::uint64_t cycle = 0;; ++cycle) {
            const bool measuring = ctrl.measuring;
            for (const std::uint16_t s : mine)
                step(*shards[s], cycle, measuring);
            barrier.arrive([this, cycle] { hook(cycle); });
            if (ctrl.stop)
                break;
        }
    }
};

} // namespace

std::uint64_t
ShardedCycleScheduler::run(Simulator &sim, SimResult &result)
{
    ShardRun R{sim.net,         sim.cfg,         sim.fab,
               sim.table,       sim.traffic,     sim.routerTable,
               sim.sourceQueues};
    R.measureStart = sim.cfg.warmupCycles;
    R.measureEnd = R.measureStart + sim.cfg.measureCycles;
    R.hardStop = R.measureEnd + sim.cfg.drainCycles;
    R.watchdogCycles = sim.cfg.watchdogCycles;
    R.cycleLimit = sim.cycleLimit;
    if (sim.measureStartHook)
        R.startHookFn = &sim.measureStartHook;
    if (sim.measureEndHook)
        R.endHookFn = &sim.measureEndHook;
    if (sim.abortCheck)
        R.abortCheckFn = &sim.abortCheck;

    if (R.hardStop == 0) {
        wakeups = 0;
        return 0;
    }
    // Top-of-cycle-0 bookkeeping the barrier hook handles for every
    // later cycle (the classic loop does this inside the iteration).
    if (R.startHookFn && R.measureStart == 0)
        (*R.startHookFn)();
    if (R.endHookFn && R.measureEnd == 0)
        (*R.endHookFn)();
    if (R.abortCheckFn && (*R.abortCheckFn)()) {
        sim.abortedFlag = true;
        result.aborted = true;
        wakeups = 1;
        return 0;
    }
    R.ctrl.measuring = R.measureStart == 0 && R.measureEnd > 0;

    R.build(shardCount);
    R.refillPools();

    const unsigned threads = shardWorkerThreads(shardCount);
    R.barrier.init(threads);
    R.threadShards.resize(threads);
    for (int s = 0; s < shardCount; ++s) {
        // Contiguous static assignment: thread t runs shards
        // [t*S/T, (t+1)*S/T) — neighbouring shards, which exchange the
        // most mailbox traffic, share a thread when oversubscribed.
        const auto t = static_cast<std::size_t>(s)
            * static_cast<std::size_t>(threads)
            / static_cast<std::size_t>(shardCount);
        R.threadShards[t].push_back(static_cast<std::uint16_t>(s));
    }

    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t)
        pool.emplace_back([&R, t] { R.workerLoop(t); });
    R.workerLoop(0);
    for (std::thread &t : pool)
        t.join();

    // Fold the per-shard state back into the simulator, in ascending
    // shard order so the merged results are deterministic. From here
    // Simulator::run assembles the SimResult exactly as it does for
    // the classic backend.
    std::int64_t in_flight = 0;
    std::int64_t measured = 0;
    for (auto &sp : R.shards) {
        sim.latencyHist.merge(sp->latencyHist);
        sim.latencyStat.merge(sp->latencyStat);
        sim.hopsStat.merge(sp->hopsStat);
        sim.packetsEjectedCount += sp->packetsEjected;
        sim.measuredEjectedFlits += sp->measuredEjectedFlits;
        sim.generatedFlits += sp->generatedFlits;
        sim.measuredGenerated += sp->measuredGenerated;
        sim.fab.flitMoves += sp->flitMoves;
        sim.table.addCalls(sp->routeCalls);
        in_flight += sp->inFlightDelta;
        measured += sp->measuredDelta;
        for (const std::uint32_t id : sp->pktPool)
            sim.fab.pktFreelist.push_back(id);
        sp->pktPool.clear();
    }
    sim.fab.flitsInFlight = static_cast<std::uint64_t>(in_flight);
    sim.measuredInFlight = static_cast<std::uint64_t>(measured);
    sim.genCycles = R.executedCycles;
    sim.fab.nextPacketSeq = std::max(
        sim.fab.nextPacketSeq,
        (R.finalCycle + 1) * static_cast<std::uint64_t>(R.numNodes));

    if (R.aborted) {
        sim.abortedFlag = true;
        result.aborted = true;
    }
    if (R.deadlocked) {
        result.deadlocked = true;
        sim.forensicsDump = buildForensics(sim.fab, sim.table,
                                           R.finalCycle, nullptr);
        result.deadlockCycle.assign(
            sim.forensicsDump.waitCycle.begin(),
            sim.forensicsDump.waitCycle.end());
        result.deadlockCycleInCdg =
            sim.forensicsDump.cycleInRelationCdg;
    }
    wakeups = R.wakeups;
    return R.finalCycle;
}

} // namespace ebda::sim
