/**
 * @file
 * The decomposed router model: a `Router` object per network node
 * (local input VCs, stall attribution, the node's RNG substream) over a
 * shared `Fabric` holding the flat buffer arrays.
 *
 * The buffer arrays stay flat and globally indexed — input VC `c` IS
 * concrete channel `c`, injection VCs follow — for two reasons: the
 * rotating-priority allocators arbitrate across the whole fabric (so
 * any per-router split would have to reconstruct the global order to
 * stay bit-identical with the original monolithic scan), and the flat
 * layout is what makes the hot loops cache-friendly. Routers therefore
 * hold *indices into* the fabric, not copies of it.
 *
 * The Fabric also maintains the observability state: per-channel
 * forwarded-flit loads, exact time-weighted occupancy integrals
 * (updated O(1) per flit move, so the active-set scheduler's work
 * bound is preserved), and the per-link/per-node pending-work counters
 * that drive active-set membership.
 */

#ifndef EBDA_SIM_ROUTER_HH
#define EBDA_SIM_ROUTER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/flit.hh"
#include "sim/simconfig.hh"
#include "util/random.hh"

namespace ebda::sim {

/** Time-weighted buffer statistics of one concrete channel. */
struct ChannelOccupancy
{
    /** Mean buffered flits over the run (exact integral / cycles). */
    double mean = 0.0;
    /** Peak buffered flits. */
    std::uint32_t peak = 0;
};

/**
 * Per-node router state: which fabric VCs terminate here, the node's
 * deterministic RNG substream, and the stall attribution counters the
 * pipeline stages charge to this router.
 */
class Router
{
  public:
    Router(topo::NodeId node, std::uint64_t seed)
        : node(node), rng(seed, node)
    {
    }

    topo::NodeId node;
    /** Fabric indices of the input VCs at this node, ascending — the
     *  ejection arbitration domain. */
    std::vector<std::size_t> localIvcs;
    /** Stall-cycles charged to this router, by pipeline stage. */
    StallCounters stalls;
    /** Per-node xoshiro substream (injection + Random selection). */
    Rng rng;
};

/**
 * The shared buffer fabric the pipeline stages operate on.
 */
struct Fabric
{
    Fabric(const topo::Network &net, const SimConfig &cfg);

    const topo::Network &net;
    const SimConfig &cfg;

    /** Input VC buffers: [0, numChannels) are channel buffers indexed
     *  by ChannelId, then injectionVcs buffers per node. */
    std::vector<InputVc> ivcs;
    /** Output VC ownership: index into ivcs, or kInvalidId when free. */
    std::vector<std::uint32_t> owner;
    /** Owned output VCs per link — drives the link active set. */
    std::vector<std::uint32_t> ownedOnLink;
    /** Eject-routed local VCs per node — drives the ejection set. */
    std::vector<std::uint32_t> ejectPending;
    std::vector<PacketRec> packets;

    /** Flits forwarded per network channel (load distribution). */
    std::vector<std::uint64_t> channelLoad;
    /** @name Exact per-channel occupancy history
     *  integral(c) = sum over cycles of buffered flits; updated lazily
     *  at each push/pop so tracking stays O(1) per flit move.
     *  @{ */
    std::vector<double> occIntegral;
    std::vector<std::uint64_t> occStamp;
    std::vector<std::uint32_t> occPeak;
    /** @} */

    /** Flits currently buffered anywhere. */
    std::uint64_t flitsInFlight = 0;

    /** Index of the injection VC k of node n in `ivcs`. */
    std::size_t
    injIndex(topo::NodeId n, int k) const
    {
        return net.numChannels()
            + static_cast<std::size_t>(n)
                * static_cast<std::size_t>(cfg.injectionVcs)
            + static_cast<std::size_t>(k);
    }

    /** True when ivcs[idx] is a channel buffer (occupancy-tracked). */
    bool
    isChannelVc(std::size_t idx) const
    {
        return idx < net.numChannels();
    }

    /** Append a flit to ivcs[idx], maintaining occupancy integrals. */
    void
    pushFlit(std::size_t idx, const Flit &flit, std::uint64_t cycle)
    {
        InputVc &vc = ivcs[idx];
        if (isChannelVc(idx)) {
            touchOccupancy(static_cast<topo::ChannelId>(idx),
                           vc.buf.size(), cycle);
            const auto depth =
                static_cast<std::uint32_t>(vc.buf.size() + 1);
            if (depth > occPeak[idx])
                occPeak[idx] = depth;
        }
        vc.buf.push_back(flit);
    }

    /** Pop the front flit of ivcs[idx], maintaining occupancy. */
    Flit
    popFlit(std::size_t idx, std::uint64_t cycle)
    {
        InputVc &vc = ivcs[idx];
        if (isChannelVc(idx))
            touchOccupancy(static_cast<topo::ChannelId>(idx),
                           vc.buf.size(), cycle);
        const Flit flit = vc.buf.front();
        vc.buf.pop_front();
        return flit;
    }

    /** Remove every flit of ivcs[idx] matching `pred`, maintaining the
     *  occupancy integral (fault-injection purge). Returns the number
     *  of flits removed; the caller adjusts flitsInFlight. */
    template <typename Pred>
    std::size_t
    eraseFlits(std::size_t idx, std::uint64_t cycle, Pred &&pred)
    {
        InputVc &vc = ivcs[idx];
        if (isChannelVc(idx))
            touchOccupancy(static_cast<topo::ChannelId>(idx),
                           vc.buf.size(), cycle);
        const std::size_t before = vc.buf.size();
        vc.buf.erase(
            std::remove_if(vc.buf.begin(), vc.buf.end(), pred),
            vc.buf.end());
        return before - vc.buf.size();
    }

    /** Per-channel occupancy statistics with integrals flushed to
     *  `horizon` (the final cycle count of the run). */
    std::vector<ChannelOccupancy> channelOccupancy(
        std::uint64_t horizon) const;

  private:
    void
    touchOccupancy(topo::ChannelId c, std::size_t size_now,
                   std::uint64_t cycle)
    {
        occIntegral[c] += static_cast<double>(size_now)
            * static_cast<double>(cycle - occStamp[c]);
        occStamp[c] = cycle;
    }
};

} // namespace ebda::sim

#endif // EBDA_SIM_ROUTER_HH
