/**
 * @file
 * The decomposed router model: a `Router` object per network node
 * (local input VCs, stall attribution, the node's RNG substream) over a
 * shared `Fabric` holding the flat buffer arrays.
 *
 * The buffer arrays stay flat and globally indexed — input VC `c` IS
 * concrete channel `c`, injection VCs follow — for two reasons: the
 * rotating-priority allocators arbitrate across the whole fabric (so
 * any per-router split would have to reconstruct the global order to
 * stay bit-identical with the original monolithic scan), and the flat
 * layout is what makes the hot loops cache-friendly. Routers therefore
 * hold *indices into* the fabric, not copies of it.
 *
 * The Fabric also maintains the observability state: per-channel
 * forwarded-flit loads, exact time-weighted occupancy integrals
 * (updated O(1) per flit move, so the active-set scheduler's work
 * bound is preserved), and the per-link/per-node pending-work counters
 * that drive active-set membership.
 *
 * Memory layout: every flit buffer is a fixed-capacity FlitRing view
 * into ONE contiguous arena (`flitSlab`) allocated at construction —
 * VC i owns slab slots [i*stride, (i+1)*stride) where the uniform
 * stride is max(vcDepth, packetLength) (an injection buffer holds at
 * most one whole packet). Nothing in the flit path allocates after the
 * constructor returns, and the per-cycle working set is contiguous.
 * The packet table likewise stops growing once warm: ejected and lost
 * PacketRec slots recycle through `pktFreelist`.
 */

#ifndef EBDA_SIM_ROUTER_HH
#define EBDA_SIM_ROUTER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/flit.hh"
#include "sim/simconfig.hh"
#include "util/random.hh"

namespace ebda::sim {

/** Time-weighted buffer statistics of one concrete channel. */
struct ChannelOccupancy
{
    /** Mean buffered flits over the run (exact integral / cycles). */
    double mean = 0.0;
    /** Peak buffered flits. */
    std::uint32_t peak = 0;
};

/**
 * Per-node router state: which fabric VCs terminate here, the node's
 * deterministic RNG substream, and the stall attribution counters the
 * pipeline stages charge to this router.
 */
class Router
{
  public:
    Router(topo::NodeId node, std::uint64_t seed)
        : node(node), rng(seed, node)
    {
    }

    topo::NodeId node;
    /** Fabric indices of the input VCs at this node, ascending — the
     *  ejection arbitration domain. */
    std::vector<std::size_t> localIvcs;
    /** Stall-cycles charged to this router, by pipeline stage. */
    StallCounters stalls;
    /** Per-node xoshiro substream (injection + Random selection). */
    Rng rng;
};

/**
 * Per-channel bookkeeping, packed so one flit event touches a single
 * record (32 bytes, two channels per cache line) instead of parallel
 * arrays: output-VC ownership, forwarded-flit load, and the exact
 * time-weighted occupancy integral, updated lazily at each push/pop so
 * tracking stays O(1) per flit move.
 */
struct ChannelState
{
    /** integral(c) = sum over cycles of buffered flits, flushed up to
     *  `occStamp`. */
    double occIntegral = 0.0;
    /** Cycle the integral was last flushed to. */
    std::uint64_t occStamp = 0;
    /** Flits forwarded over the channel (load distribution). */
    std::uint64_t load = 0;
    /** Peak buffered flits. */
    std::uint32_t occPeak = 0;
    /** Owning input VC (index into ivcs), kInvalidId when free. */
    std::uint32_t owner = topo::kInvalidId;
};

/**
 * The shared buffer fabric the pipeline stages operate on.
 */
struct Fabric
{
    Fabric(const topo::Network &net, const SimConfig &cfg);

    const topo::Network &net;
    const SimConfig &cfg;

    /** The flit arena: one contiguous slab backing every VC's ring
     *  buffer. Never resized after construction (the rings hold raw
     *  pointers into it). */
    std::vector<Flit> flitSlab;
    /** Slab slots per VC: max(vcDepth, packetLength). */
    std::uint32_t vcStride = 0;

    /** Input VC buffers: [0, numChannels) are channel buffers indexed
     *  by ChannelId, then injectionVcs buffers per node. */
    std::vector<InputVc> ivcs;
    /** Per-channel bookkeeping indexed by ChannelId (`chan`). One flit
     *  move reads/writes the channel's ownership, load and occupancy
     *  together, so they share one 32-byte record — one cache line
     *  covers two channels instead of five scattered arrays. */
    std::vector<ChannelState> chan;
    /** Owned output VCs per link — drives the link active set. */
    std::vector<std::uint32_t> ownedOnLink;
    /** Eject-routed local VCs per node — drives the ejection set. */
    std::vector<std::uint32_t> ejectPending;
    /** Per-node bitmask of eject-routed local VCs, bit = the VC's
     *  localPos. The ejection stage scans only these candidates
     *  instead of every VC at the node; must mirror the
     *  routed-and-eject flag pair exactly (set by VC allocation,
     *  cleared by tail ejection and by the fault purge). */
    std::vector<std::uint64_t> ejectMask;
    /** Packet table. Slots of ejected/lost packets are recycled via
     *  `pktFreelist`, so size() is the live high-water mark, not the
     *  total generated count; PacketRec::seq keeps generation order. */
    std::vector<PacketRec> packets;
    /** Recyclable packet slots (LIFO). */
    std::vector<std::uint32_t> pktFreelist;
    /** Next PacketRec::seq to assign. */
    std::uint64_t nextPacketSeq = 0;

    /** Flits currently buffered anywhere. */
    std::uint64_t flitsInFlight = 0;
    /** Flit movements over the run: every buffer push (injection or
     *  hop) plus every ejection pop — the numerator of the
     *  flit-moves/s figure bench_cycle_rate reports. */
    std::uint64_t flitMoves = 0;

    /** Index of the injection VC k of node n in `ivcs`. */
    std::size_t
    injIndex(topo::NodeId n, int k) const
    {
        return net.numChannels()
            + static_cast<std::size_t>(n)
                * static_cast<std::size_t>(cfg.injectionVcs)
            + static_cast<std::size_t>(k);
    }

    /** True when ivcs[idx] is a channel buffer (occupancy-tracked). */
    bool
    isChannelVc(std::size_t idx) const
    {
        return idx < net.numChannels();
    }

    /** Append a flit to `vc` (== ivcs[idx], hoisted by the caller),
     *  maintaining occupancy integrals. The move is charged to
     *  `moves` — the fabric-wide counter for the classic backends, a
     *  per-shard counter for the sharded one (shard workers must not
     *  contend on one shared scalar; the scheduler sums the shard
     *  counters into `flitMoves` after the run). */
    void
    pushFlit(std::size_t idx, InputVc &vc, const Flit &flit,
             std::uint64_t cycle, std::uint64_t &moves)
    {
        if (isChannelVc(idx)) {
            ChannelState &cs = chan[idx];
            cs.occIntegral += static_cast<double>(vc.buf.size())
                * static_cast<double>(cycle - cs.occStamp);
            cs.occStamp = cycle;
            const auto depth =
                static_cast<std::uint32_t>(vc.buf.size() + 1);
            if (depth > cs.occPeak)
                cs.occPeak = depth;
        }
        vc.buf.push_back(flit);
        ++moves;
    }

    /** Append a flit to `vc`, charging the fabric-wide move counter. */
    void
    pushFlit(std::size_t idx, InputVc &vc, const Flit &flit,
             std::uint64_t cycle)
    {
        pushFlit(idx, vc, flit, cycle, flitMoves);
    }

    /** Append a flit to ivcs[idx], maintaining occupancy integrals. */
    void
    pushFlit(std::size_t idx, const Flit &flit, std::uint64_t cycle)
    {
        pushFlit(idx, ivcs[idx], flit, cycle);
    }

    /** Pop the front flit of `vc` (== ivcs[idx], hoisted by the
     *  caller), maintaining occupancy. */
    Flit
    popFlit(std::size_t idx, InputVc &vc, std::uint64_t cycle)
    {
        if (isChannelVc(idx))
            touchOccupancy(static_cast<topo::ChannelId>(idx),
                           vc.buf.size(), cycle);
        const Flit flit = vc.buf.front();
        vc.buf.pop_front();
        return flit;
    }

    /** Pop the front flit of ivcs[idx], maintaining occupancy. */
    Flit
    popFlit(std::size_t idx, std::uint64_t cycle)
    {
        return popFlit(idx, ivcs[idx], cycle);
    }

    /** Remove every flit of ivcs[idx] matching `pred`, maintaining the
     *  occupancy integral (fault-injection purge). Wrap-aware in-place
     *  compaction, order-preserving. Returns the number of flits
     *  removed; the caller adjusts flitsInFlight. */
    template <typename Pred>
    std::size_t
    eraseFlits(std::size_t idx, std::uint64_t cycle, Pred &&pred)
    {
        InputVc &vc = ivcs[idx];
        if (isChannelVc(idx))
            touchOccupancy(static_cast<topo::ChannelId>(idx),
                           vc.buf.size(), cycle);
        return vc.buf.eraseIf(pred);
    }

    /** Claim a packet slot (recycling freed slots) and stamp the
     *  generation sequence number. Returns the slot id. */
    std::uint32_t
    allocPacket(const PacketRec &rec)
    {
        std::uint32_t id;
        if (!pktFreelist.empty()) {
            id = pktFreelist.back();
            pktFreelist.pop_back();
            packets[id] = rec;
        } else {
            id = static_cast<std::uint32_t>(packets.size());
            packets.push_back(rec);
        }
        packets[id].seq = nextPacketSeq++;
        return id;
    }

    /** Release a packet slot for reuse. Only call once the packet has
     *  fully left the system (tail ejected, or declared lost with no
     *  flit, queue entry or retry entry referencing it). */
    void
    freePacket(std::uint32_t id)
    {
        pktFreelist.push_back(id);
    }

    /** Per-channel occupancy statistics with integrals flushed to
     *  `horizon` (the final cycle count of the run). */
    std::vector<ChannelOccupancy> channelOccupancy(
        std::uint64_t horizon) const;

  private:
    void
    touchOccupancy(topo::ChannelId c, std::size_t size_now,
                   std::uint64_t cycle)
    {
        ChannelState &cs = chan[c];
        cs.occIntegral += static_cast<double>(size_now)
            * static_cast<double>(cycle - cs.occStamp);
        cs.occStamp = cycle;
    }
};

} // namespace ebda::sim

#endif // EBDA_SIM_ROUTER_HH
