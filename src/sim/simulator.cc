#include "simulator.hh"

namespace ebda::sim {

Simulator::Simulator(const topo::Network &network,
                     const cdg::RoutingRelation &routing_relation,
                     const TrafficGenerator &traffic_gen,
                     const SimConfig &config)
    : net(network), routing(routing_relation), traffic(traffic_gen),
      cfg(config), fab(network, cfg), vcAlloc(fab, routing_relation),
      swAlloc(fab), allocActive(fab.ivcs.size()),
      linkActive(net.numLinks()), ejectActive(net.numNodes()),
      latencyHist(4096)
{
    sourceQueues.resize(net.numNodes());
    routerTable.reserve(net.numNodes());
    for (topo::NodeId n = 0; n < net.numNodes(); ++n)
        routerTable.emplace_back(n, cfg.seed);
    // The input VCs local to each node (ejection arbitration domain).
    for (std::size_t i = 0; i < fab.ivcs.size(); ++i)
        routerTable[fab.ivcs[i].atNode].localIvcs.push_back(i);
}

void
Simulator::generate(std::uint64_t cycle, bool measuring)
{
    const double packet_rate =
        cfg.injectionRate / static_cast<double>(cfg.packetLength);
    for (topo::NodeId n = 0; n < net.numNodes(); ++n) {
        Rng &rng = routerTable[n].rng;
        if (!rng.nextBool(packet_rate))
            continue;
        const auto dest = traffic.dest(n, rng);
        if (!dest)
            continue;
        PacketRec rec;
        rec.src = n;
        rec.dest = *dest;
        rec.genCycle = cycle;
        rec.measured = measuring;
        fab.packets.push_back(rec);
        sourceQueues[n].push_back(
            static_cast<std::uint32_t>(fab.packets.size() - 1));
        generatedFlits += static_cast<std::uint64_t>(cfg.packetLength);
        if (measuring)
            ++measuredInFlight;
    }
    ++genCycles;
}

void
Simulator::fillInjectionVcs(std::uint64_t cycle)
{
    for (topo::NodeId n = 0; n < net.numNodes(); ++n) {
        if (sourceQueues[n].empty())
            continue;
        for (int k = 0; k < cfg.injectionVcs && !sourceQueues[n].empty();
             ++k) {
            const std::size_t idx = fab.injIndex(n, k);
            InputVc &vc = fab.ivcs[idx];
            if (!vc.buf.empty() || vc.routed)
                continue;
            const std::uint32_t pkt = sourceQueues[n].front();
            sourceQueues[n].pop_front();
            for (int f = 0; f < cfg.packetLength; ++f) {
                fab.pushFlit(idx,
                             Flit{pkt, f == 0,
                                  f == cfg.packetLength - 1, cycle},
                             cycle);
            }
            fab.flitsInFlight +=
                static_cast<std::uint64_t>(cfg.packetLength);
            allocActive.schedule(idx);
        }
    }
}

SimResult
Simulator::run()
{
    SimResult result;
    const std::uint64_t measure_start = cfg.warmupCycles;
    const std::uint64_t measure_end = measure_start + cfg.measureCycles;
    const std::uint64_t hard_stop = measure_end + cfg.drainCycles;

    std::uint64_t last_progress = 0;
    std::uint64_t cycle = 0;
    for (; cycle < hard_stop; ++cycle) {
        const bool measuring =
            cycle >= measure_start && cycle < measure_end;

        generate(cycle, measuring);
        fillInjectionVcs(cycle);
        vcAlloc.allocate(allocActive, routerTable, linkActive,
                         ejectActive);
        bool moved =
            swAlloc.traverse(cycle, linkActive, allocActive, routerTable);
        EjectStats stats{latencyHist,
                         latencyStat,
                         hopsStat,
                         packetsEjectedCount,
                         measuredEjectedFlits,
                         measuredInFlight,
                         measuring};
        moved |= swAlloc.eject(cycle, ejectActive, allocActive,
                               routerTable, stats);

        if (moved || fab.flitsInFlight == 0)
            last_progress = cycle;
        if (cycle - last_progress > cfg.watchdogCycles) {
            result.deadlocked = true;
            forensicsDump = buildForensics(fab, routing, cycle);
            result.deadlockCycle.assign(forensicsDump.waitCycle.begin(),
                                        forensicsDump.waitCycle.end());
            result.deadlockCycleInCdg = forensicsDump.cycleInRelationCdg;
            break;
        }
        if (cycle >= measure_end && measuredInFlight == 0)
            break;
    }
    finalCycle = cycle;

    result.cycles = cycle;
    result.drained = !result.deadlocked && measuredInFlight == 0;
    result.packetsMeasured = latencyStat.count();
    result.packetsEjected = packetsEjectedCount;
    result.avgLatency = latencyStat.mean();
    result.p50Latency = latencyHist.percentile(0.50);
    result.p99Latency = latencyHist.percentile(0.99);
    result.maxLatency = latencyHist.max();
    result.avgHops = hopsStat.mean();
    result.offeredRate = genCycles
        ? static_cast<double>(generatedFlits)
            / (static_cast<double>(net.numNodes())
               * static_cast<double>(genCycles))
        : 0.0;
    result.acceptedRate = cfg.measureCycles
        ? static_cast<double>(measuredEjectedFlits)
            / (static_cast<double>(net.numNodes())
               * static_cast<double>(cfg.measureCycles))
        : 0.0;

    // Channel-load distribution over network channels.
    if (!fab.channelLoad.empty()) {
        StatAccumulator load;
        std::size_t unused = 0;
        for (std::uint64_t flits : fab.channelLoad) {
            load.add(static_cast<double>(flits));
            if (flits == 0)
                ++unused;
        }
        result.channelLoadMean = load.mean();
        if (load.mean() > 0) {
            result.channelLoadCv = load.stddev() / load.mean();
            result.channelLoadMaxRatio = load.max() / load.mean();
        }
        result.channelsUnused = static_cast<double>(unused)
            / static_cast<double>(fab.channelLoad.size());
    }

    // Stall attribution over routers.
    std::uint64_t hottest = 0;
    for (const Router &r : routerTable) {
        result.stallRouteCompute += r.stalls.routeCompute;
        result.stallVcStarved += r.stalls.vcStarved;
        result.stallCreditStarved += r.stalls.creditStarved;
        result.stallSwitchLost += r.stalls.switchLost;
        const std::uint64_t total = r.stalls.total();
        if (total > hottest) {
            hottest = total;
            result.hottestRouter = r.node;
        }
    }
    result.hottestRouterStalls = hottest;

    // Time-weighted channel occupancy over network channels.
    const auto occ = fab.channelOccupancy(finalCycle);
    if (!occ.empty()) {
        double mean_sum = 0.0;
        std::uint64_t peak = 0;
        for (const ChannelOccupancy &c : occ) {
            mean_sum += c.mean;
            if (c.peak > peak)
                peak = c.peak;
        }
        result.channelOccupancyMean =
            mean_sum / static_cast<double>(occ.size());
        result.channelOccupancyPeak = peak;
    }
    return result;
}

SimResult
runSimulation(const topo::Network &net,
              const cdg::RoutingRelation &routing,
              const TrafficGenerator &traffic, const SimConfig &config)
{
    Simulator sim(net, routing, traffic, config);
    return sim.run();
}

} // namespace ebda::sim
