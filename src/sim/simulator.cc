#include "simulator.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ebda::sim {

Simulator::Simulator(const topo::Network &network,
                     const cdg::RoutingRelation &routing_relation,
                     const TrafficGenerator &traffic_gen,
                     const SimConfig &config)
    : net(network), routing(routing_relation), traffic(traffic_gen),
      cfg(config), latencyHist(4096)
{
    EBDA_ASSERT(cfg.vcDepth >= 1, "vcDepth must be positive");
    EBDA_ASSERT(cfg.packetLength >= 1, "packetLength must be positive");
    EBDA_ASSERT(cfg.injectionVcs >= 1, "need at least one injection VC");
    EBDA_ASSERT(cfg.routerLatency >= 1, "routerLatency must be >= 1");

    const std::size_t channels = net.numChannels();
    ivcs.resize(channels
                + net.numNodes()
                    * static_cast<std::size_t>(cfg.injectionVcs));
    for (topo::ChannelId c = 0; c < channels; ++c) {
        ivcs[c].self = c;
        ivcs[c].atNode = net.link(net.linkOf(c)).dst;
    }
    for (topo::NodeId n = 0; n < net.numNodes(); ++n) {
        for (int k = 0; k < cfg.injectionVcs; ++k) {
            InputVc &vc = ivcs[injIndex(n, k)];
            vc.self = cdg::kInjectionChannel;
            vc.atNode = n;
        }
    }
    if (cfg.switching != SwitchingMode::Wormhole) {
        EBDA_ASSERT(cfg.vcDepth >= cfg.packetLength,
                    "VCT/SAF need vcDepth >= packetLength (",
                    cfg.vcDepth, " < ", cfg.packetLength, ")");
    }

    owner.assign(channels, topo::kInvalidId);
    channelLoad.assign(channels, 0);
    sourceQueues.resize(net.numNodes());
    nodeRng.reserve(net.numNodes());
    for (topo::NodeId n = 0; n < net.numNodes(); ++n)
        nodeRng.emplace_back(cfg.seed, n);
}

std::size_t
Simulator::injIndex(topo::NodeId n, int k) const
{
    return net.numChannels()
        + static_cast<std::size_t>(n)
            * static_cast<std::size_t>(cfg.injectionVcs)
        + static_cast<std::size_t>(k);
}

void
Simulator::generate(std::uint64_t cycle, bool measuring)
{
    const double packet_rate =
        cfg.injectionRate / static_cast<double>(cfg.packetLength);
    for (topo::NodeId n = 0; n < net.numNodes(); ++n) {
        if (!nodeRng[n].nextBool(packet_rate))
            continue;
        const auto dest = traffic.dest(n, nodeRng[n]);
        if (!dest)
            continue;
        PacketRec rec;
        rec.src = n;
        rec.dest = *dest;
        rec.genCycle = cycle;
        rec.measured = measuring;
        packets.push_back(rec);
        sourceQueues[n].push_back(
            static_cast<std::uint32_t>(packets.size() - 1));
        generatedFlits += static_cast<std::uint64_t>(cfg.packetLength);
        if (measuring)
            ++measuredInFlight;
    }
    ++genCycles;
}

void
Simulator::fillInjectionVcs(std::uint64_t cycle)
{
    for (topo::NodeId n = 0; n < net.numNodes(); ++n) {
        if (sourceQueues[n].empty())
            continue;
        for (int k = 0; k < cfg.injectionVcs && !sourceQueues[n].empty();
             ++k) {
            InputVc &vc = ivcs[injIndex(n, k)];
            if (!vc.buf.empty() || vc.routed)
                continue;
            const std::uint32_t pkt = sourceQueues[n].front();
            sourceQueues[n].pop_front();
            for (int f = 0; f < cfg.packetLength; ++f) {
                vc.buf.push_back(Flit{pkt, f == 0,
                                      f == cfg.packetLength - 1, cycle});
            }
            flitsInFlight += static_cast<std::uint64_t>(cfg.packetLength);
        }
    }
}

void
Simulator::allocateVcs(std::uint64_t cycle)
{
    (void)cycle;
    const std::size_t count = ivcs.size();
    vcArbOffset = (vcArbOffset + 1) % count;
    for (std::size_t i = 0; i < count; ++i) {
        InputVc &vc = ivcs[(i + vcArbOffset) % count];
        if (vc.routed || vc.buf.empty() || !vc.buf.front().head)
            continue;
        const PacketRec &pkt = packets[vc.buf.front().pkt];

        if (vc.atNode == pkt.dest) {
            vc.eject = true;
            vc.routed = true;
            continue;
        }

        // Collect the free legal candidates, then apply the selection
        // policy.
        std::vector<topo::ChannelId> free;
        for (topo::ChannelId c :
             routing.candidates(vc.self, vc.atNode, pkt.src, pkt.dest)) {
            if (owner[c] != topo::kInvalidId)
                continue;
            if (cfg.atomicVcAllocation && !ivcs[c].buf.empty())
                continue;
            free.push_back(c);
        }

        topo::ChannelId best = topo::kInvalidId;
        if (!free.empty()) {
            switch (cfg.selection) {
              case SelectionPolicy::MaxCredits: {
                  int best_space = -1;
                  for (topo::ChannelId c : free) {
                      const int space = cfg.vcDepth
                          - static_cast<int>(ivcs[c].buf.size());
                      if (space > best_space) {
                          best_space = space;
                          best = c;
                      }
                  }
                  break;
              }
              case SelectionPolicy::RoundRobin:
                best = free[vcArbOffset % free.size()];
                break;
              case SelectionPolicy::Random:
                best = free[nodeRng[vc.atNode].nextBounded(free.size())];
                break;
              case SelectionPolicy::FirstCandidate:
                best = free.front();
                break;
            }
        }
        if (best != topo::kInvalidId) {
            vc.out = best;
            vc.eject = false;
            vc.routed = true;
            owner[best] = static_cast<std::uint32_t>(
                (i + vcArbOffset) % count);
        }
    }
}

bool
Simulator::headMayAdvance(const InputVc &vc, int space_at_out) const
{
    switch (cfg.switching) {
      case SwitchingMode::Wormhole:
        return true;
      case SwitchingMode::VirtualCutThrough:
        // The downstream buffer must be able to accept the entire
        // packet so a blocked packet never straddles routers.
        return space_at_out >= cfg.packetLength;
      case SwitchingMode::StoreAndForward:
        // Additionally the whole packet must already be buffered here.
        if (space_at_out < cfg.packetLength)
            return false;
        if (vc.buf.size() < static_cast<std::size_t>(cfg.packetLength))
            return false;
        {
            const Flit &last =
                vc.buf[static_cast<std::size_t>(cfg.packetLength) - 1];
            return last.tail && last.pkt == vc.buf.front().pkt;
        }
    }
    return true;
}

bool
Simulator::traverse(std::uint64_t cycle)
{
    bool moved = false;

    // One flit per input port per cycle: ports are network links plus
    // one injection port per node.
    std::vector<std::uint64_t> &port_used = portUsedStamp;
    if (port_used.size() != net.numLinks() + net.numNodes())
        port_used.assign(net.numLinks() + net.numNodes(), UINT64_MAX);
    auto port_of = [&](const InputVc &vc) -> std::size_t {
        return vc.self == cdg::kInjectionChannel
            ? net.numLinks() + vc.atNode
            : net.linkOf(vc.self);
    };

    // Network traversal: one flit per output link.
    ++swArbOffset;
    for (std::size_t li = 0; li < net.numLinks(); ++li) {
        const topo::LinkId l = static_cast<topo::LinkId>(
            (li + swArbOffset) % net.numLinks());
        const int nvc = net.vcsOnLink(l);
        for (int vi = 0; vi < nvc; ++vi) {
            const int v = (vi + static_cast<int>(swArbOffset)) % nvc;
            const topo::ChannelId out = net.channel(l, v);
            const std::uint32_t holder = owner[out];
            if (holder == topo::kInvalidId)
                continue;
            InputVc &vc = ivcs[holder];
            if (vc.buf.empty() || vc.buf.front().arrival >= cycle)
                continue;
            const int space = cfg.vcDepth
                - static_cast<int>(ivcs[out].buf.size());
            if (space <= 0)
                continue;
            if (vc.buf.front().head && !headMayAdvance(vc, space))
                continue;
            if (port_used[port_of(vc)] == cycle)
                continue;

            Flit flit = vc.buf.front();
            vc.buf.pop_front();
            port_used[port_of(vc)] = cycle;
            // The flit becomes movable routerLatency cycles after the
            // hop (pipeline depth).
            flit.arrival =
                cycle + static_cast<std::uint64_t>(cfg.routerLatency - 1);
            ivcs[out].buf.push_back(flit);
            ++channelLoad[out];
            if (flit.head)
                ++packets[flit.pkt].hops;
            if (flit.tail) {
                owner[out] = topo::kInvalidId;
                vc.routed = false;
                vc.out = topo::kInvalidId;
            }
            moved = true;
            break; // one flit per output link per cycle
        }
    }

    // Ejection: one flit per node per cycle.
    for (topo::NodeId n = 0; n < net.numNodes(); ++n) {
        const auto &locals = nodeIvcLists[n];
        for (std::size_t k = 0; k < locals.size(); ++k) {
            InputVc &vc =
                ivcs[locals[(k + swArbOffset) % locals.size()]];
            if (!vc.routed || !vc.eject || vc.buf.empty()
                || vc.buf.front().arrival >= cycle
                || port_used[port_of(vc)] == cycle) {
                continue;
            }
            const Flit flit = vc.buf.front();
            vc.buf.pop_front();
            port_used[port_of(vc)] = cycle;
            --flitsInFlight;
            moved = true;
            if (flit.tail) {
                vc.routed = false;
                vc.eject = false;
                PacketRec &pkt = packets[flit.pkt];
                ++packetsEjectedCount;
                if (inMeasurementWindow)
                    ++measuredEjectedFlits;
                if (pkt.measured) {
                    const auto latency = cycle - pkt.genCycle;
                    latencyHist.add(latency);
                    latencyStat.add(static_cast<double>(latency));
                    hopsStat.add(static_cast<double>(pkt.hops));
                    --measuredInFlight;
                }
            } else if (inMeasurementWindow) {
                ++measuredEjectedFlits;
            }
            break; // one ejected flit per node per cycle
        }
    }
    return moved;
}

SimResult
Simulator::run()
{
    // Precompute the input VCs local to each node (for ejection arb).
    nodeIvcLists.assign(net.numNodes(), {});
    for (std::size_t i = 0; i < ivcs.size(); ++i)
        nodeIvcLists[ivcs[i].atNode].push_back(i);

    SimResult result;
    const std::uint64_t measure_start = cfg.warmupCycles;
    const std::uint64_t measure_end = measure_start + cfg.measureCycles;
    const std::uint64_t hard_stop = measure_end + cfg.drainCycles;

    std::uint64_t last_progress = 0;
    std::uint64_t cycle = 0;
    for (; cycle < hard_stop; ++cycle) {
        const bool measuring =
            cycle >= measure_start && cycle < measure_end;
        inMeasurementWindow = measuring;

        generate(cycle, measuring);
        fillInjectionVcs(cycle);
        allocateVcs(cycle);
        const bool moved = traverse(cycle);

        if (moved || flitsInFlight == 0)
            last_progress = cycle;
        if (cycle - last_progress > cfg.watchdogCycles) {
            result.deadlocked = true;
            break;
        }
        if (cycle >= measure_end && measuredInFlight == 0)
            break;
    }

    result.cycles = cycle;
    result.drained = !result.deadlocked && measuredInFlight == 0;
    result.packetsMeasured = latencyStat.count();
    result.packetsEjected = packetsEjectedCount;
    result.avgLatency = latencyStat.mean();
    result.p50Latency = latencyHist.percentile(0.50);
    result.p99Latency = latencyHist.percentile(0.99);
    result.maxLatency = latencyHist.max();
    result.avgHops = hopsStat.mean();
    result.offeredRate = genCycles
        ? static_cast<double>(generatedFlits)
            / (static_cast<double>(net.numNodes())
               * static_cast<double>(genCycles))
        : 0.0;
    result.acceptedRate = cfg.measureCycles
        ? static_cast<double>(measuredEjectedFlits)
            / (static_cast<double>(net.numNodes())
               * static_cast<double>(cfg.measureCycles))
        : 0.0;

    // Channel-load distribution over network channels.
    if (!channelLoad.empty()) {
        StatAccumulator load;
        std::size_t unused = 0;
        for (std::uint64_t flits : channelLoad) {
            load.add(static_cast<double>(flits));
            if (flits == 0)
                ++unused;
        }
        result.channelLoadMean = load.mean();
        if (load.mean() > 0) {
            result.channelLoadCv = load.stddev() / load.mean();
            result.channelLoadMaxRatio = load.max() / load.mean();
        }
        result.channelsUnused = static_cast<double>(unused)
            / static_cast<double>(channelLoad.size());
    }
    return result;
}

SimResult
runSimulation(const topo::Network &net,
              const cdg::RoutingRelation &routing,
              const TrafficGenerator &traffic, const SimConfig &config)
{
    Simulator sim(net, routing, traffic, config);
    return sim.run();
}

} // namespace ebda::sim
