#include "simulator.hh"

#include <algorithm>

#include "cdg/relation_cdg.hh"
#include "sim/event_queue.hh"
#include "sim/shard_partition.hh"
#include "sim/shard_sched.hh"

namespace ebda::sim {

Simulator::Simulator(const topo::Network &network,
                     const cdg::RoutingRelation &routing_relation,
                     const TrafficGenerator &traffic_gen,
                     const SimConfig &config)
    : net(network), routing(routing_relation), traffic(traffic_gen),
      cfg(config), injector(network, cfg.faults),
      faultedView(routing_relation, injector),
      effective(injector.enabled()
                    ? static_cast<const cdg::RoutingRelation &>(
                          faultedView)
                    : routing_relation),
      // Compiled before the first event fires, so the pre-event view
      // is transparent; per-event row filtering keeps it in sync.
      table(effective, routing::RouteTable::Options{
                           cfg.routeTable, cfg.routeTableBudget}),
      fab(network, cfg), vcAlloc(fab, table), swAlloc(fab),
      allocActive(fab.ivcs.size()), linkActive(net.numLinks()),
      ejectActive(net.numNodes()), injectActive(net.numNodes()),
      latencyHist(4096)
{
    sourceQueues.resize(net.numNodes());
    // Pre-size every queue so a node's first-ever enqueue during the
    // measurement window cannot be the one push that allocates.
    for (auto &q : sourceQueues)
        q.reserve(16);
    routerTable.reserve(net.numNodes());
    for (topo::NodeId n = 0; n < net.numNodes(); ++n)
        routerTable.emplace_back(n, cfg.seed);
    // The input VCs local to each node (ejection arbitration domain).
    for (std::size_t i = 0; i < fab.ivcs.size(); ++i)
        routerTable[fab.ivcs[i].atNode].localIvcs.push_back(i);
    strandedPeriod = std::max<std::uint64_t>(1, cfg.watchdogCycles / 4);
    if (cfg.protocol.enabled()) {
        proto = std::make_unique<ProtocolState>(net, cfg);
        vcAlloc.proto = proto.get();
        swAlloc.proto = proto.get();
    }
}

void
Simulator::generate(std::uint64_t cycle, bool measuring)
{
    const bool faults_on = injector.enabled();
    const double packet_rate =
        cfg.injectionRate / static_cast<double>(cfg.packetLength);
    const topo::NodeId nodes = net.numNodes();
    for (topo::NodeId n = 0; n < nodes; ++n) {
        // A dead router neither injects nor draws from its substream;
        // every other node's stream is untouched by the fault.
        if (faults_on && injector.nodeDead(n))
            continue;
        Rng &rng = routerTable[n].rng;
        if (!rng.nextBool(packet_rate))
            continue;
        const auto dest = traffic.dest(n, rng);
        if (!dest)
            continue;
        // The draw is consumed either way; a dead destination just
        // discards the packet (nobody to deliver to).
        if (faults_on && injector.nodeDead(*dest))
            continue;
        // End-to-end credit: no local slot for the eventual reply means
        // no request this cycle (the draw is still consumed, keeping
        // the stream aligned with unreserved runs).
        if (proto && proto->reservationMode()
            && !proto->tryReserveRequest(n))
            continue;
        PacketRec rec;
        rec.src = n;
        rec.dest = *dest;
        rec.genCycle = cycle;
        rec.measured = measuring;
        sourceQueues[n].push_back(fab.allocPacket(rec));
        injectActive.schedule(n);
        generatedFlits += static_cast<std::uint64_t>(cfg.packetLength);
        if (measuring) {
            ++measuredInFlight;
            ++measuredGenerated;
        }
    }
    ++genCycles;
}

void
Simulator::losePacket(std::uint32_t id)
{
    ++packetsLostCount;
    if (proto)
        proto->onPacketLost(fab.packets[id]);
    if (fab.packets[id].measured)
        --measuredInFlight;
    // A lost packet has no flit, source-queue entry or retry entry
    // left anywhere — its slot can host the next generated packet.
    fab.freePacket(id);
}

void
Simulator::handleDropped(const std::vector<std::uint32_t> &purged,
                         std::uint64_t cycle)
{
    for (const std::uint32_t id : purged) {
        ++packetsDroppedCount;
        PacketRec &pkt = fab.packets[id];
        // Replies are never retransmitted: the server-side slot is
        // already free and the requester's recovery path is a request
        // retransmit, not a duplicate reply.
        if (proto && pkt.msgClass != 0) {
            losePacket(id);
            continue;
        }
        const bool endpoint_dead = injector.nodeDead(pkt.src)
            || injector.nodeDead(pkt.dest);
        const bool budget_spent = pkt.retries == 0xff
            || static_cast<int>(pkt.retries)
                >= cfg.faults.maxRetransmits;
        if (endpoint_dead || budget_spent
            || table
                   .candidatesView(cdg::kInjectionChannel, pkt.src,
                                   pkt.src, pkt.dest, routeScratch)
                   .empty()) {
            losePacket(id);
            continue;
        }
        ++pkt.retries;
        ++retransmitCount;
        // Capped exponential backoff on the injection queue.
        const unsigned shift = static_cast<unsigned>(pkt.retries - 1);
        std::uint64_t backoff = shift > 40
            ? cfg.faults.retransmitBackoffCap
            : cfg.faults.retransmitBackoff << shift;
        backoff = std::max<std::uint64_t>(
            1, std::min(backoff, cfg.faults.retransmitBackoffCap));
        retryQueue.push_back(
            RetryEntry{id, cycle + backoff, injector.eventsApplied()});
    }
}

void
Simulator::releaseRetries(std::uint64_t cycle)
{
    if (retryQueue.empty())
        return;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < retryQueue.size(); ++i) {
        const RetryEntry entry = retryQueue[i];
        if (entry.ready > cycle) {
            retryQueue[keep++] = entry;
            continue;
        }
        PacketRec &pkt = fab.packets[entry.pkt];
        // The masks only grow at fault events. If none fired since the
        // retry was scheduled, handleDropped's routability check still
        // stands — don't recompute the same injection route.
        if (injector.eventsApplied() != entry.epoch
            && (injector.nodeDead(pkt.src) || injector.nodeDead(pkt.dest)
                || table
                       .candidatesView(cdg::kInjectionChannel, pkt.src,
                                       pkt.src, pkt.dest, routeScratch)
                       .empty())) {
            losePacket(entry.pkt);
            continue;
        }
        pkt.hops = 0; // fresh attempt; latency keeps the original birth
        sourceQueues[pkt.src].push_back(entry.pkt);
        injectActive.schedule(pkt.src);
    }
    retryQueue.resize(keep);
}

void
Simulator::dropDeadQueuedPackets()
{
    if (injector.deadNodeCount() == 0)
        return;
    for (topo::NodeId n = 0; n < net.numNodes(); ++n) {
        auto &queue = sourceQueues[n];
        if (queue.empty())
            continue;
        if (injector.nodeDead(n)) {
            for (std::size_t k = 0; k < queue.size(); ++k) {
                ++packetsDroppedCount;
                losePacket(queue[k]);
            }
            queue.clear();
            continue;
        }
        // In-place compaction: no survivors copy, no allocation.
        queue.eraseIf([&](std::uint32_t id) {
            if (!injector.nodeDead(fab.packets[id].dest))
                return false;
            ++packetsDroppedCount;
            losePacket(id);
            return true;
        });
    }
}

void
Simulator::strandedScan(std::uint64_t cycle)
{
    std::vector<std::uint8_t> kill;
    for (std::size_t i = 0; i < fab.ivcs.size(); ++i) {
        const InputVc &vc = fab.ivcs[i];
        if (vc.routed || vc.buf.empty() || !vc.buf.front().head)
            continue;
        const std::uint32_t id = vc.buf.front().pkt;
        const PacketRec &pkt = fab.packets[id];
        if (vc.atNode == pkt.dest)
            continue;
        if (!table
                 .candidatesView(vc.self, vc.atNode, pkt.src, pkt.dest,
                                 routeScratch)
                 .empty())
            continue;
        if (kill.empty())
            kill.assign(fab.packets.size(), 0);
        kill[id] = 1;
    }
    if (!kill.empty())
        handleDropped(purgePackets(kill, cycle), cycle);
}

void
Simulator::recoverWedged(std::uint64_t cycle)
{
    // Drain-and-reroute: purge every packet frozen in the fabric and
    // hand the routable ones back to their sources. Queued packets are
    // untouched — they will inject into the emptied fabric.
    std::vector<std::uint8_t> kill(fab.packets.size(), 0);
    for (const InputVc &vc : fab.ivcs) {
        for (const Flit &f : vc.buf)
            kill[f.pkt] = 1;
        if (vc.routed && vc.curPkt != topo::kInvalidId)
            kill[vc.curPkt] = 1;
    }
    handleDropped(purgePackets(kill, cycle), cycle);
}

std::vector<std::uint32_t>
Simulator::purgePackets(const std::vector<std::uint8_t> &kill,
                        std::uint64_t cycle)
{
    // Release endpoint-slot reservations from the pre-purge view: the
    // purge clears the eject-routed VC state that records them.
    if (proto)
        proto->releaseEjectReservations(fab, kill);
    return injector.purge(fab, allocActive, kill, cycle);
}

std::vector<std::uint32_t>
Simulator::applyFaultEvents(std::uint64_t cycle)
{
    if (!proto)
        return injector.apply(cycle, fab, allocActive);
    // The injector picks its own victims, so snapshot the eject-routed
    // reservations first and release the ones whose packet it purged.
    std::vector<std::pair<topo::NodeId, std::uint32_t>> reserved;
    for (const InputVc &vc : fab.ivcs) {
        if (vc.routed && vc.eject && vc.curPkt != topo::kInvalidId
            && fab.packets[vc.curPkt].msgClass == 0)
            reserved.emplace_back(vc.atNode, vc.curPkt);
    }
    const auto purged = injector.apply(cycle, fab, allocActive);
    for (const auto &[node, pkt] : reserved) {
        // purge() reports victims in ascending id order.
        if (std::binary_search(purged.begin(), purged.end(), pkt))
            proto->releaseDeliverySlot(node);
    }
    return purged;
}

void
Simulator::injectReplies(std::uint64_t cycle, bool measuring)
{
    ProtocolState &ps = *proto;
    const bool faults_on = injector.enabled();
    ps.replyActive.sweep(0, [&](std::size_t ni) -> bool {
        const auto n = static_cast<topo::NodeId>(ni);
        ProtocolState::Endpoint &ep = ps.endpoint(n);
        while (!ep.pending.empty()
               && ep.pending.front().ready <= cycle) {
            const topo::NodeId requester = ep.pending.front().dest;
            // A reply to a requester that died since the request was
            // serviced has nowhere to go; drop it and free the slot.
            if (faults_on && injector.nodeDead(requester)) {
                ep.pending.pop_front();
                ps.releaseDeliverySlot(n);
                continue;
            }
            // Claim a free injection VC in the reply band. None free
            // means the endpoint stays blocked this cycle — exactly
            // the wait the protocol wait-for graph edges model.
            bool placed = false;
            for (int k = ps.replyInjVcBegin(); k < cfg.injectionVcs;
                 ++k) {
                const std::size_t idx = fab.injIndex(n, k);
                InputVc &vc = fab.ivcs[idx];
                if (!vc.buf.empty() || vc.routed)
                    continue;
                PacketRec rec;
                rec.src = n;
                rec.dest = requester;
                rec.genCycle = cycle;
                rec.measured = measuring;
                rec.msgClass = 1;
                const std::uint32_t id = fab.allocPacket(rec);
                for (int f = 0; f < cfg.packetLength; ++f) {
                    fab.pushFlit(idx,
                                 Flit{id, f == 0,
                                      f == cfg.packetLength - 1,
                                      cycle},
                                 cycle);
                }
                fab.flitsInFlight +=
                    static_cast<std::uint64_t>(cfg.packetLength);
                allocActive.schedule(idx);
                // The slot is held until here: reply fully in a VC.
                ep.pending.pop_front();
                ps.releaseDeliverySlot(n);
                ++ps.repliesInjected;
                if (measuring) {
                    ++measuredInFlight;
                    ++measuredGenerated;
                }
                placed = true;
                break;
            }
            if (!placed)
                break;
        }
        return !ep.pending.empty();
    });
}

void
Simulator::recoverProtocolWedge(std::uint64_t cycle)
{
    // Abort-and-retransmit the oldest in-fabric request: the eldest
    // holder anchors the wait cycle, killing it frees its channel
    // chain, and the retransmit backoff keeps the retry out of the
    // congestion that wedged. Replies keep draining on their own.
    std::uint32_t victim = topo::kInvalidId;
    std::uint64_t best_seq = ~std::uint64_t{0};
    auto consider = [&](std::uint32_t id) {
        const PacketRec &pkt = fab.packets[id];
        if (pkt.msgClass != 0)
            return;
        if (pkt.seq < best_seq) {
            best_seq = pkt.seq;
            victim = id;
        }
    };
    for (const InputVc &vc : fab.ivcs) {
        for (const Flit &f : vc.buf)
            consider(f.pkt);
        if (vc.routed && vc.curPkt != topo::kInvalidId)
            consider(vc.curPkt);
    }
    if (victim == topo::kInvalidId) {
        // No request in flight (pure reply gridlock, or faults): fall
        // back to the kill-all drain.
        recoverWedged(cycle);
        return;
    }
    std::vector<std::uint8_t> kill(fab.packets.size(), 0);
    kill[victim] = 1;
    handleDropped(purgePackets(kill, cycle), cycle);
}

void
Simulator::fillInjectionVcs(std::uint64_t cycle)
{
    // Visit only nodes with queued packets (ascending, matching the
    // original full scan: a node with an empty queue is a provable
    // no-op). A node stays scheduled while its queue is non-empty;
    // fault-path queue purges leave stale entries that drop here.
    injectActive.sweep(0, [&](std::size_t ni) -> bool {
        const auto n = static_cast<topo::NodeId>(ni);
        if (sourceQueues[n].empty())
            return false;
        for (int k = 0; k < cfg.injectionVcs && !sourceQueues[n].empty();
             ++k) {
            // Generated packets are requests: keep them out of the
            // reply injection band when the classes are partitioned.
            if (proto && !proto->requestInjVcAllowed(k))
                continue;
            const std::size_t idx = fab.injIndex(n, k);
            InputVc &vc = fab.ivcs[idx];
            if (!vc.buf.empty() || vc.routed)
                continue;
            const std::uint32_t pkt = sourceQueues[n].front();
            sourceQueues[n].pop_front();
            for (int f = 0; f < cfg.packetLength; ++f) {
                fab.pushFlit(idx,
                             Flit{pkt, f == 0,
                                  f == cfg.packetLength - 1, cycle},
                             cycle);
            }
            fab.flitsInFlight +=
                static_cast<std::uint64_t>(cfg.packetLength);
            allocActive.schedule(idx);
        }
        return !sourceQueues[n].empty();
    });
}

std::uint64_t
CycleScheduler::run(Simulator &sim, SimResult &result)
{
    const std::uint64_t measure_start = sim.cfg.warmupCycles;
    const std::uint64_t measure_end =
        measure_start + sim.cfg.measureCycles;
    const std::uint64_t hard_stop = measure_end + sim.cfg.drainCycles;

    const bool faults_on = sim.injector.enabled();
    const bool proto_on = sim.proto != nullptr;
    const bool phase_hooks =
        sim.measureStartHook || sim.measureEndHook;
    std::uint64_t last_progress = 0;
    std::uint64_t cycle = 0;
    for (; cycle < hard_stop; ++cycle) {
        ++wakeups;
        if (phase_hooks) {
            if (cycle == measure_start && sim.measureStartHook)
                sim.measureStartHook();
            if (cycle == measure_end && sim.measureEndHook)
                sim.measureEndHook();
        }
        if (sim.cycleLimit && cycle >= sim.cycleLimit) {
            sim.abortedFlag = true;
            break;
        }
        if (sim.abortCheck && (cycle & 1023u) == 0
            && sim.abortCheck()) {
            sim.abortedFlag = true;
            break;
        }
        if (faults_on) {
            if (sim.injector.nextEventCycle() <= cycle) {
                const auto purged = sim.applyFaultEvents(cycle);
                // Sync the compiled table with the grown masks before
                // any route query (handleDropped checks injection
                // routability): only rows touching the newly dead
                // channels are rewritten.
                for (const topo::ChannelId c :
                     sim.injector.takeNewlyDeadChannels())
                    sim.table.filterDeadChannel(c);
                sim.handleDropped(purged, cycle);
                sim.dropDeadQueuedPackets();
                // From here on route compute reports dead ends for
                // same-cycle purging (a stranded head would otherwise
                // block its VC until the periodic scan).
                sim.vcAlloc.collectStranded = true;
                // Machine check of the Theorem-2 claim: the degraded
                // relation must still pass the Dally oracle.
                if (sim.cfg.faults.checkDegradedCdg) {
                    ++sim.faultCheckCount;
                    if (cdg::checkDeadlockFree(sim.effective)
                            .deadlockFree)
                        ++sim.faultCheckCleanCount;
                }
                // Fresh progress window after the fabric surgery.
                last_progress = cycle;
            }
            sim.releaseRetries(cycle);
            if (sim.injector.eventsApplied() > 0
                && cycle % sim.strandedPeriod == 0)
                sim.strandedScan(cycle);
        } else if (proto_on) {
            // Protocol recovery reuses the retransmit backoff queue.
            sim.releaseRetries(cycle);
        }
        const bool measuring =
            cycle >= measure_start && cycle < measure_end;

        sim.generate(cycle, measuring);
        if (proto_on)
            sim.injectReplies(cycle, measuring);
        sim.fillInjectionVcs(cycle);
        sim.vcAlloc.allocate(sim.allocActive, sim.routerTable,
                             sim.linkActive, sim.ejectActive);
        if (faults_on && !sim.vcAlloc.stranded.empty()) {
            std::vector<std::uint8_t> kill(sim.fab.packets.size(), 0);
            bool any = false;
            for (const std::size_t idx : sim.vcAlloc.stranded) {
                const InputVc &vc = sim.fab.ivcs[idx];
                if (vc.routed || vc.buf.empty()
                    || !vc.buf.front().head)
                    continue;
                kill[vc.buf.front().pkt] = 1;
                any = true;
            }
            sim.vcAlloc.stranded.clear();
            if (any)
                sim.handleDropped(
                    sim.injector.purge(sim.fab, sim.allocActive, kill,
                                       cycle),
                    cycle);
        }
        bool moved = sim.swAlloc.traverse(cycle, sim.linkActive,
                                          sim.allocActive,
                                          sim.routerTable);
        EjectStats stats{sim.latencyHist,
                         sim.latencyStat,
                         sim.hopsStat,
                         sim.packetsEjectedCount,
                         sim.measuredEjectedFlits,
                         sim.measuredInFlight,
                         measuring};
        moved |= sim.swAlloc.eject(cycle, sim.ejectActive,
                                   sim.allocActive, sim.routerTable,
                                   stats);

        if (moved || sim.fab.flitsInFlight == 0)
            last_progress = cycle;
        if (cycle - last_progress > sim.cfg.watchdogCycles) {
            if ((faults_on || proto_on)
                && sim.recoveryPassCount
                    < static_cast<std::uint64_t>(std::max(
                        0, sim.cfg.faults.maxRecoveryAttempts))) {
                // Escalation instead of giving up: protocol wedges
                // abort the oldest request (targeted), fault wedges
                // drain-and-reroute everything.
                ++sim.recoveryPassCount;
                if (proto_on && !faults_on)
                    sim.recoverProtocolWedge(cycle);
                else
                    sim.recoverWedged(cycle);
                last_progress = cycle;
            } else {
                result.deadlocked = true;
                sim.forensicsDump =
                    buildForensics(sim.fab, sim.table, cycle,
                                   sim.proto.get());
                result.deadlockCycle.assign(
                    sim.forensicsDump.waitCycle.begin(),
                    sim.forensicsDump.waitCycle.end());
                result.deadlockCycleInCdg =
                    sim.forensicsDump.cycleInRelationCdg;
                break;
            }
        }
        if (cycle >= measure_end && sim.measuredInFlight == 0)
            break;
    }
    return cycle;
}

SimResult
Simulator::run()
{
    SimResult result;
    const SchedMode mode =
        resolveSchedMode(cfg.schedMode, cfg.injectionRate,
                         net.numNodes());
    std::uint64_t cycle;
    if (mode == SchedMode::Event) {
        EventScheduler sched;
        cycle = sched.run(*this, result);
        result.wakeups = sched.wakeups;
    } else if (const int shards = resolveShardCount(
                   cfg.shards, net.numNodes(), table.compiled(),
                   injector.enabled(), proto != nullptr);
               shards > 1) {
        ShardedCycleScheduler sched(shards);
        cycle = sched.run(*this, result);
        result.wakeups = sched.wakeups;
    } else {
        CycleScheduler sched;
        cycle = sched.run(*this, result);
        result.wakeups = sched.wakeups;
    }
    result.schedMode = mode;
    finalCycle = cycle;

    result.cycles = cycle;
    result.drained = !result.deadlocked && measuredInFlight == 0;
    result.aborted = abortedFlag;
    result.faultEventsApplied = injector.eventsApplied();
    result.packetsDropped = packetsDroppedCount;
    result.packetsRetransmitted = retransmitCount;
    result.packetsLost = packetsLostCount;
    result.recoveryPasses = recoveryPassCount;
    result.faultChecks = faultCheckCount;
    result.faultChecksClean = faultCheckCleanCount;
    result.deliveredFraction = measuredGenerated
        ? static_cast<double>(latencyStat.count())
            / static_cast<double>(measuredGenerated)
        : 1.0;
    result.degradedGracefully = !result.deadlocked;
    if (proto) {
        result.protocolEnabled = true;
        result.protocolRequestsDelivered = proto->requestsDelivered;
        result.protocolRepliesInjected = proto->repliesInjected;
        result.protocolRepliesDelivered = proto->repliesDelivered;
        result.protocolEndpointStalls = proto->endpointStalls;
        result.protocolThrottled = proto->throttled;
        result.protocolPeakOccupancy = proto->peakOccupancy;
        result.protocolDeadlock = forensicsDump.protocolDeadlock;
    }
    result.routeComputeCalls = table.calls();
    result.routeTableCompiled = table.compiled();
    result.routeTablePerSource = table.perSource();
    result.routeTableBytes = table.tableBytes();
    result.routeTableCompileNanos = table.compileNanos();
    result.packetsMeasured = latencyStat.count();
    result.packetsEjected = packetsEjectedCount;
    result.avgLatency = latencyStat.mean();
    result.p50Latency = latencyHist.percentile(0.50);
    result.p99Latency = latencyHist.percentile(0.99);
    result.maxLatency = latencyHist.max();
    result.avgHops = hopsStat.mean();
    result.offeredRate = genCycles
        ? static_cast<double>(generatedFlits)
            / (static_cast<double>(net.numNodes())
               * static_cast<double>(genCycles))
        : 0.0;
    result.acceptedRate = cfg.measureCycles
        ? static_cast<double>(measuredEjectedFlits)
            / (static_cast<double>(net.numNodes())
               * static_cast<double>(cfg.measureCycles))
        : 0.0;

    // Channel-load distribution over network channels.
    if (!fab.chan.empty()) {
        StatAccumulator load;
        std::size_t unused = 0;
        for (const ChannelState &cs : fab.chan) {
            load.add(static_cast<double>(cs.load));
            if (cs.load == 0)
                ++unused;
        }
        result.channelLoadMean = load.mean();
        if (load.mean() > 0) {
            result.channelLoadCv = load.stddev() / load.mean();
            result.channelLoadMaxRatio = load.max() / load.mean();
        }
        result.channelsUnused = static_cast<double>(unused)
            / static_cast<double>(fab.chan.size());
    }

    // Stall attribution over routers.
    std::uint64_t hottest = 0;
    for (const Router &r : routerTable) {
        result.stallRouteCompute += r.stalls.routeCompute;
        result.stallVcStarved += r.stalls.vcStarved;
        result.stallCreditStarved += r.stalls.creditStarved;
        result.stallSwitchLost += r.stalls.switchLost;
        const std::uint64_t total = r.stalls.total();
        if (total > hottest) {
            hottest = total;
            result.hottestRouter = r.node;
        }
    }
    result.hottestRouterStalls = hottest;

    // Time-weighted channel occupancy over network channels.
    const auto occ = fab.channelOccupancy(finalCycle);
    if (!occ.empty()) {
        double mean_sum = 0.0;
        std::uint64_t peak = 0;
        for (const ChannelOccupancy &c : occ) {
            mean_sum += c.mean;
            if (c.peak > peak)
                peak = c.peak;
        }
        result.channelOccupancyMean =
            mean_sum / static_cast<double>(occ.size());
        result.channelOccupancyPeak = peak;
    }
    return result;
}

SimResult
runSimulation(const topo::Network &net,
              const cdg::RoutingRelation &routing,
              const TrafficGenerator &traffic, const SimConfig &config)
{
    Simulator sim(net, routing, traffic, config);
    return sim.run();
}

} // namespace ebda::sim
