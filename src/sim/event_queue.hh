/**
 * @file
 * The event-driven scheduling backend (sim/scheduler.hh seam).
 *
 * Model: in this single-cycle-per-hop simulator every in-flight flit
 * is eligible to move every cycle, so while the fabric holds flits
 * the event loop must execute every cycle — there it is the cycle
 * loop with different bookkeeping. The win is elsewhere: at low
 * injection rates almost all cycles are *empty* (no flits in flight,
 * no queued packets), and an empty cycle's only side effects are
 *  - one Bernoulli draw per live node (the injection coin),
 *  - the unconditional advance of the two arbiter rotations,
 *  - the genCycles counter.
 * All three are reproducible out of band: the injection draws by
 * running the per-node xoshiro256** streams forward in a block-batched
 * engine (below), the rotations by closed-form resync
 * (VcAllocator::resyncOffset / SwitchAllocator::resyncOffset), and the
 * counter by adding the span length. So the scheduler sits on a
 * timestamp-ordered EventQueue of deadlines — injection timers from
 * the draw engine, measurement-phase boundaries, the abort-poll
 * cadence, the cycle limit — and when the fabric is empty it jumps
 * straight to the earliest one. Idle routers are never touched.
 *
 * Trace equivalence (tests/test_sched_equiv.cc): both backends consume
 * identical per-router RNG streams and execute identical phase code on
 * every non-empty cycle, so every SimResult field except the trailing
 * schedMode/wakeups pair is identical by construction. The injection
 * engine guarantees the stream part: its vectorized pass is the exact
 * xoshiro256** recurrence (any divergence from interleaved destination
 * draws is impossible because a lane that hits is re-played through
 * the scalar Rng — including TrafficGenerator::dest — from a
 * pre-block state snapshot, and the replayed state is written back).
 * By induction over blocks the engine's streams equal the streams the
 * cycle loop would have produced.
 *
 * Runs the event loop cannot accelerate fall back to cycle-granular
 * stepping via CycleScheduler (wakeups == cycles, results again
 * identical by construction): fault plans (fault events, retry
 * deadlines and stranded scans make almost every cycle a potential
 * event), the Random selection policy (draws interleave with
 * allocation, so streams cannot be precomputed), and degenerate
 * injection rates (p <= 0 or p >= 1 per-flit packet rate).
 */

#ifndef EBDA_SIM_EVENT_QUEUE_HH
#define EBDA_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/scheduler.hh"

namespace ebda::sim {

/** What a queued deadline means (tie-break order at equal cycles). */
enum class EventKind : std::uint8_t
{
    /** First measurement cycle: hooks fire, generation turns measured. */
    MeasureStart,
    /** First post-measurement cycle: hooks fire, drain accounting. */
    MeasureEnd,
    /** Cooperative-abort poll cadence (every 1024 cycles). */
    AbortPoll,
    /** setCycleLimit deadline: the run aborts at this cycle. */
    CycleLimit,
    /** Next cycle on which some node's injection coin lands. */
    Injection,
};

/** A deadline: execute the cycle it names. */
struct SchedEvent
{
    std::uint64_t cycle;
    EventKind kind;
};

/**
 * Timestamp-ordered deadline queue: a binary min-heap over
 * (cycle, kind). Deadlines are sparse — a handful live at any time —
 * so a flat heap beats anything fancier.
 */
class EventQueue
{
  public:
    void
    push(std::uint64_t cycle, EventKind kind)
    {
        heap.push_back({cycle, kind});
        std::push_heap(heap.begin(), heap.end(), later);
    }

    bool empty() const { return heap.empty(); }

    /** Earliest deadline; queue must be non-empty. */
    const SchedEvent &top() const { return heap.front(); }

    /** Remove and return the earliest deadline. */
    SchedEvent
    pop()
    {
        std::pop_heap(heap.begin(), heap.end(), later);
        const SchedEvent ev = heap.back();
        heap.pop_back();
        return ev;
    }

  private:
    static bool
    later(const SchedEvent &a, const SchedEvent &b)
    {
        if (a.cycle != b.cycle)
            return a.cycle > b.cycle;
        return a.kind > b.kind;
    }

    std::vector<SchedEvent> heap;
};

/** The event-driven backend. */
class EventScheduler final : public SchedulerBackend
{
  public:
    std::uint64_t run(Simulator &sim, SimResult &result) override;
};

/** The SIMD path the injection draw engine dispatched to on this
 *  machine: "avx512", "avx2" or "scalar" (bench_sched_mode prints it
 *  so perf numbers are interpretable across hosts). */
const char *injectionEngineSimdPath();

} // namespace ebda::sim

#endif // EBDA_SIM_EVENT_QUEUE_HH
