/**
 * @file
 * Spatial domain decomposition for the sharded cycle scheduler
 * (sim/shard_sched.hh): split a network's nodes into contiguous
 * shards, and resolve a SimConfig::shards request to a concrete shard
 * count for one run.
 *
 * Partitions are pure functions of the topology and the shard count —
 * never of the machine — so a sharded run's results are reproducible
 * for a given (config, shard count) pair regardless of how many worker
 * threads execute the shards (sim/shard_sched.cc pins this, and
 * tests/test_shard_equiv.cc verifies it under oversubscription).
 *
 * Partition shapes, chosen to minimise cut links (every cut link costs
 * one mailbox message per boundary flit per cycle):
 *  - grid topologies (mesh / torus / partial 3D mesh): slabs along the
 *    largest dimension when its radix covers the shard count — the
 *    classic 1-D domain decomposition, cutting only the (D-1)-dimensional
 *    boundary links;
 *  - dragonfly: group-aligned slabs (node id = group * a + router, so
 *    contiguous id ranges are whole groups) — intra-group full-mesh
 *    links, the dense majority, never cross a cut;
 *  - anything else (full mesh, custom graphs): balanced contiguous
 *    chunks over a BFS order from node 0, which keeps graph
 *    neighbourhoods together without topology knowledge.
 */

#ifndef EBDA_SIM_SHARD_PARTITION_HH
#define EBDA_SIM_SHARD_PARTITION_HH

#include <cstdint>
#include <vector>

#include "topo/network.hh"

namespace ebda::sim {

/** Fabrics below this node count never shard under Auto (shards = 0):
 *  the per-cycle barrier costs more than the parallel work saves. */
inline constexpr std::size_t kAutoShardNodeCutoff = 1024;

/** Hard cap on the shard count (mailbox tables are O(shards^2) in the
 *  worst case; past this, more shards only add barrier latency). */
inline constexpr int kMaxShards = 256;

/**
 * Resolve a SimConfig::shards request to the shard count one run will
 * actually use. Returns 1 (the classic single-threaded CycleScheduler)
 * whenever the sharded backend cannot run the configuration in v1:
 * fault plans and the request-reply protocol layer mutate global state
 * the shard workers do not partition, and an uncompiled route table
 * falls back to the virtual relation, which memoises internally and is
 * not safe to share across threads.
 *
 * Otherwise: an explicit request (>= 1) is clamped to
 * [1, min(numNodes, kMaxShards)]; Auto (0) engages sharding only on
 * fabrics of at least kAutoShardNodeCutoff nodes, with a count derived
 * from the fabric size alone — never from the machine — so Auto runs
 * stay pure functions of the config.
 */
int resolveShardCount(int requested, std::size_t num_nodes,
                      bool route_table_compiled, bool faults_enabled,
                      bool protocol_enabled);

/**
 * Worker threads for a run with the given shard count: the
 * EBDA_SHARD_THREADS environment variable when set, else
 * std::thread::hardware_concurrency(), clamped to [1, shards]. The
 * thread count never affects results — only how the fixed shard list
 * is divided among executors.
 */
unsigned shardWorkerThreads(int shards);

/**
 * Assign every node to a shard in [0, shards). Deterministic, every
 * shard non-empty (callers guarantee shards <= numNodes), and shard
 * node sets are contiguous in the partition order described above.
 */
std::vector<std::uint16_t> partitionNodes(const topo::Network &net,
                                          int shards);

} // namespace ebda::sim

#endif // EBDA_SIM_SHARD_PARTITION_HH
