/**
 * @file
 * The request–reply protocol layer: per-node endpoints with a finite
 * reply/reassembly buffer, a service latency, and the message-class VC
 * partition.
 *
 * Model (ProtocolConfig in simconfig.hh): every generated packet is a
 * *request* (msgClass 0). Delivering a request consumes one slot of
 * the destination endpoint's reply buffer — the slot is reserved the
 * moment the head is eject-routed, so concurrent arrivals can never
 * overfill it — and after `serviceLatency` (+ jitter from a dedicated
 * per-endpoint RNG substream) the endpoint enqueues a *reply*
 * (msgClass 1) back to the requester. The slot is held until the reply
 * has fully entered an injection VC. A full endpoint refuses to
 * eject-route further requests, which is exactly how endpoint
 * backpressure propagates into the fabric: the refused head keeps its
 * VC, upstream credits dry up, and the classic message-dependency
 * cycle — endpoint waits on reply injection, the reply waits on a
 * channel owned by a request, the request waits on a full endpoint —
 * becomes reachable even when the channel-level CDG is provably
 * acyclic (arXiv:2101.06015).
 *
 * Prevention knobs:
 *  - `messageClasses = 2` splits every link's VCs (and every node's
 *    injection VCs) into a request band and a reply band. Replies then
 *    never wait behind requests, always reach their requester (replies
 *    sink unconditionally), so endpoint slots always free and the
 *    dependency cycle cannot close — the standard virtual-network
 *    escape. The underlying routing relation must be deadlock-free
 *    within each band (e.g. DOR on a mesh with >= 2 VCs per link).
 *  - `reserveReplyBuffer` is the end-to-end-credit alternative: a node
 *    only generates a request when it can reserve a slot in its own
 *    reply buffer for the eventual reply, bounding outstanding
 *    requests per node by the buffer depth (a throttle that keeps the
 *    fabric below the congestion the wedge needs, not a proof).
 *
 * Detection and recovery live with the rest of the watchdog machinery:
 * forensics.cc extends the wait-for graph across endpoint and
 * injection vertices (the Verbeek & Schmaltz wait-for-graph
 * discipline, arXiv:1110.4677), and the simulator's watchdog
 * escalation aborts-and-retransmits the oldest in-fabric request with
 * the fault-recovery backoff machinery before declaring a wedge.
 *
 * Everything is deterministic and allocation-free in steady state:
 * endpoint rings are reserved to the buffer depth at construction, and
 * endpoint RNG streams are substreams of the master seed keyed by node
 * id on a dedicated stream tag, so enabling the layer never perturbs
 * the per-router traffic streams (replay bit-identity).
 */

#ifndef EBDA_SIM_PROTOCOL_HH
#define EBDA_SIM_PROTOCOL_HH

#include <cstdint>
#include <vector>

#include "sim/active_set.hh"
#include "sim/router.hh"
#include "util/random.hh"
#include "util/ring_queue.hh"

namespace ebda::sim {

/** Runtime state of the request–reply layer for one simulation. */
class ProtocolState
{
  public:
    /** Validates the config against the network (path-named
     *  std::invalid_argument, same contract as the topology
     *  factories) and pre-sizes every endpoint. */
    ProtocolState(const topo::Network &net, const SimConfig &cfg);

    /** A serviced request waiting to be injected as a reply. */
    struct PendingReply
    {
        /** First cycle the reply may inject (delivery + service). */
        std::uint64_t ready = 0;
        /** The requester (the original packet's source). */
        topo::NodeId dest = 0;
    };

    /** One node's protocol endpoint. */
    struct Endpoint
    {
        /** Reply-buffer slots in use: eject-reserved + delivered
         *  requests whose reply has not yet injected, plus local
         *  request reservations in reserveReplyBuffer mode. */
        int occupied = 0;
        /** Serviced requests awaiting reply injection (bounded by the
         *  buffer depth — every entry holds a slot). */
        RingQueue<PendingReply> pending;
        /** Dedicated service-jitter substream. */
        Rng rng;

        explicit Endpoint(Rng r) : rng(r) { }
    };

    /** @name Endpoint buffer accounting
     *  @{ */
    /** Can the endpoint at `n` accept one more request? */
    bool
    canAccept(topo::NodeId n) const
    {
        return endpoints[n].occupied < depth;
    }

    /** Reserve a slot for a request whose head was just eject-routed
     *  at `n` (caller checked canAccept). */
    void
    reserveDelivery(topo::NodeId n)
    {
        noteOccupancy(++endpoints[n].occupied);
    }

    /** Tail of a request ejected at `n`: convert its reserved slot
     *  into a pending reply due after the service delay. */
    void onRequestDelivered(topo::NodeId n, const PacketRec &pkt,
                            std::uint64_t cycle);

    /** Tail of a reply ejected at its requester `n`. */
    void
    onReplyDelivered(topo::NodeId n)
    {
        ++repliesDelivered;
        if (reserve)
            releaseSlot(n);
    }

    /** reserveReplyBuffer mode: try to reserve a local slot for the
     *  eventual reply before generating a request at `n`. */
    bool
    tryReserveRequest(topo::NodeId n)
    {
        if (endpoints[n].occupied >= depth) {
            ++throttled;
            return false;
        }
        noteOccupancy(++endpoints[n].occupied);
        return true;
    }

    /** A packet was permanently lost: release the requester-side
     *  reservation it held (reserveReplyBuffer mode). */
    void
    onPacketLost(const PacketRec &pkt)
    {
        if (reserve)
            releaseSlot(pkt.msgClass == 0 ? pkt.src : pkt.dest);
    }

    /** Release the eject-time slot reservations of packets about to be
     *  purged (`kill[pkt] != 0`) — the recovery passes and fault purges
     *  must not leak endpoint slots. */
    void releaseEjectReservations(const Fabric &fab,
                                  const std::vector<std::uint8_t> &kill);
    /** @} */

    /** @name Message-class VC partition
     *  @{ */
    /** May a packet of `msgClass` allocate network channel `c`? */
    bool
    channelAllowed(topo::ChannelId c, std::uint8_t msgClass) const
    {
        return classes == 1 || chanClass[c] == msgClass;
    }

    /** May a request fill injection VC `k` of its node? */
    bool
    requestInjVcAllowed(int k) const
    {
        return classes == 1 || k < requestInjVcs;
    }

    /** First injection VC of the reply band (0 when unpartitioned). */
    int replyInjVcBegin() const { return classes == 1 ? 0 : requestInjVcs; }
    /** @} */

    /** Service delay for a request delivered at `n` (advances only the
     *  endpoint's own substream). */
    std::uint64_t serviceDelay(topo::NodeId n);

    const std::vector<Endpoint> &endpointsView() const { return endpoints; }

    /** Mutable endpoint access for the simulator's reply-injection
     *  phase (pop pending, advance the jitter stream). */
    Endpoint &endpoint(topo::NodeId n) { return endpoints[n]; }

    /** Release one reply-buffer slot at `n` (reply fully injected, or
     *  an eject-reserved request was purged). Guarded: never
     *  underflows. */
    void releaseDeliverySlot(topo::NodeId n) { releaseSlot(n); }

    /** Message classes after validation (1 or 2). */
    int messageClasses() const { return classes; }
    /** Reply-buffer depth in packets. */
    int bufferDepth() const { return depth; }
    /** reserveReplyBuffer mode. */
    bool reservationMode() const { return reserve; }

    /** Nodes with pending replies; swept by the simulator's reply
     *  injection phase each cycle. */
    ActiveSet replyActive;

    /** @name Run counters (copied into SimResult)
     *  @{ */
    std::uint64_t requestsDelivered = 0;
    std::uint64_t repliesInjected = 0;
    std::uint64_t repliesDelivered = 0;
    std::uint64_t endpointStalls = 0;
    std::uint64_t throttled = 0;
    std::uint64_t peakOccupancy = 0;
    /** @} */

    /** Per-endpoint service latency/jitter knobs (from the config). */
    std::uint64_t serviceLatency;
    std::uint64_t serviceJitter;

  private:
    void
    noteOccupancy(int occ)
    {
        if (static_cast<std::uint64_t>(occ) > peakOccupancy)
            peakOccupancy = static_cast<std::uint64_t>(occ);
    }

    void
    releaseSlot(topo::NodeId n)
    {
        if (endpoints[n].occupied > 0)
            --endpoints[n].occupied;
    }

    int depth;
    int classes;
    bool reserve;
    /** Injection VCs of the request band (classes == 2). */
    int requestInjVcs;
    /** Message class per network channel (empty when classes == 1):
     *  the low VCs of every link carry requests, the high VCs replies. */
    std::vector<std::uint8_t> chanClass;
    std::vector<Endpoint> endpoints;
};

} // namespace ebda::sim

#endif // EBDA_SIM_PROTOCOL_HH
