/**
 * @file
 * The flit-level data model shared by the router pipeline stages
 * (vc_allocator.hh, switch_allocator.hh), the fabric state (router.hh)
 * and the deadlock forensics (forensics.hh).
 *
 * These used to be private members of the monolithic Simulator; the
 * pipeline decomposition makes them the vocabulary the stage objects
 * exchange, so they live in their own header.
 */

#ifndef EBDA_SIM_FLIT_HH
#define EBDA_SIM_FLIT_HH

#include <cstdint>
#include <deque>

#include "cdg/routing_relation.hh"
#include "topo/network.hh"

namespace ebda::sim {

/** One flow-control unit of a packet. */
struct Flit
{
    /** Index into the packet table. */
    std::uint32_t pkt;
    bool head;
    bool tail;
    /** Cycle the flit entered its current buffer (a flit becomes
     *  movable `routerLatency` cycles after the hop). */
    std::uint64_t arrival;
};

/** Bookkeeping for one generated packet. */
struct PacketRec
{
    topo::NodeId src;
    topo::NodeId dest;
    std::uint64_t genCycle;
    std::uint16_t hops = 0;
    /** Generated inside the measurement window. */
    bool measured = false;
    /** Source retransmissions so far (fault recovery). */
    std::uint8_t retries = 0;
};

/** One input VC buffer (a channel's downstream buffer, or an
 *  injection-port buffer). */
struct InputVc
{
    std::deque<Flit> buf;
    /** Channel this VC represents (kInjectionChannel for injection
     *  buffers). */
    topo::ChannelId self = 0;
    /** Router this VC feeds. */
    topo::NodeId atNode = 0;
    /** Allocated output channel; kInvalidId when unrouted. */
    topo::ChannelId out = topo::kInvalidId;
    /** Routed to the local ejection port. */
    bool eject = false;
    /** Output allocation held (from head allocation to tail send). */
    bool routed = false;
    /** Packet the held allocation belongs to (kInvalidId when
     *  unrouted). Needed by the fault injector to release allocations
     *  whose flits are momentarily all up- or downstream. */
    std::uint32_t curPkt = topo::kInvalidId;
};

/**
 * Per-router stall attribution, counted in stall-cycles: each counter
 * advances by one for every cycle a flit at this router wanted to move
 * through a pipeline stage and could not, bucketed by the stage that
 * refused it.
 */
struct StallCounters
{
    /** Route computation returned no legal candidate at all (e.g. a
     *  faulted or disconnected relation). */
    std::uint64_t routeCompute = 0;
    /** Legal candidates existed but every output VC was owned (or
     *  non-empty in atomic mode): VC allocation starved. */
    std::uint64_t vcStarved = 0;
    /** Output VC held but the downstream buffer had no space (or the
     *  VCT/SAF switching gate refused the head). */
    std::uint64_t creditStarved = 0;
    /** Flit was movable but lost switch arbitration (input port already
     *  granted this cycle). */
    std::uint64_t switchLost = 0;

    std::uint64_t
    total() const
    {
        return routeCompute + vcStarved + creditStarved + switchLost;
    }
};

} // namespace ebda::sim

#endif // EBDA_SIM_FLIT_HH
