/**
 * @file
 * The flit-level data model shared by the router pipeline stages
 * (vc_allocator.hh, switch_allocator.hh), the fabric state (router.hh)
 * and the deadlock forensics (forensics.hh).
 *
 * These used to be private members of the monolithic Simulator; the
 * pipeline decomposition makes them the vocabulary the stage objects
 * exchange, so they live in their own header.
 */

#ifndef EBDA_SIM_FLIT_HH
#define EBDA_SIM_FLIT_HH

#include <cassert>
#include <cstdint>
#include <iterator>

#include "cdg/routing_relation.hh"
#include "topo/network.hh"

namespace ebda::sim {

/** One flow-control unit of a packet. */
struct Flit
{
    /** Index into the packet table. */
    std::uint32_t pkt;
    bool head;
    bool tail;
    /** Cycle the flit entered its current buffer (a flit becomes
     *  movable `routerLatency` cycles after the hop). */
    std::uint64_t arrival;
};

/** Bookkeeping for one generated packet. */
struct PacketRec
{
    topo::NodeId src;
    topo::NodeId dest;
    std::uint64_t genCycle;
    /** Generation order, monotonic over the run. Slot indices are
     *  recycled through the fabric's freelist, so fault-path code that
     *  needs the pre-freelist "ascending packet id" order (the purge /
     *  retransmit queues) sorts by this instead. */
    std::uint64_t seq = 0;
    std::uint16_t hops = 0;
    /** Generated inside the measurement window. */
    bool measured = false;
    /** Source retransmissions so far (fault recovery). */
    std::uint8_t retries = 0;
    /** Message class for the request–reply protocol layer
     *  (sim/protocol.hh): 0 = request (and plain one-way traffic),
     *  1 = reply. Drives the message-class VC partition and the
     *  endpoint delivery/backpressure rules; always 0 when the layer
     *  is disabled. Fits the PacketRec padding, so the record stays
     *  32 bytes. */
    std::uint8_t msgClass = 0;
};

/**
 * Fixed-capacity ring of flits over externally owned storage — the
 * per-VC view into the fabric's contiguous flit arena (router.hh).
 *
 * VC depth is bounded by construction (`cfg.vcDepth`, and
 * `cfg.packetLength` for injection buffers that hold exactly one
 * packet), so the ring never grows: push/pop/indexing are O(1) pointer
 * arithmetic into the slab and the steady-state simulation loop
 * performs no heap allocation. Invariants: `head < cap`,
 * `count <= cap`; element k lives at `slab[(head + k) % cap]` with the
 * modulo folded into one conditional subtract.
 */
class FlitRing
{
  public:
    /** Attach the ring to its arena slice. Only the owning Fabric (or
     *  a test fixture) calls this; rebinding resets the ring. */
    void
    bind(Flit *storage, std::uint32_t capacity)
    {
        slab = storage;
        cap = capacity;
        head = 0;
        count = 0;
    }

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return cap; }

    const Flit &front() const { return slab[head]; }
    Flit &front() { return slab[head]; }

    /** Wrap-aware random access (k < size()); the Store-and-Forward
     *  gate reads the would-be tail at k = packetLength - 1. */
    const Flit &
    operator[](std::size_t k) const
    {
        return slab[wrap(head + static_cast<std::uint32_t>(k))];
    }

    void
    push_back(const Flit &f)
    {
        assert(count < cap && "FlitRing overflow");
        slab[wrap(head + count)] = f;
        ++count;
    }

    void
    pop_front()
    {
        assert(count > 0 && "FlitRing underflow");
        head = wrap(head + 1);
        --count;
    }

    void
    pop_back()
    {
        assert(count > 0 && "FlitRing underflow");
        --count;
    }

    /** Remove every flit matching `pred`, preserving order (the
     *  fault-injection purge). Compacts in place, wrap-aware; the head
     *  slot is unchanged. Returns the number of flits removed. */
    template <typename Pred>
    std::size_t
    eraseIf(Pred &&pred)
    {
        std::uint32_t write = 0;
        for (std::uint32_t read = 0; read < count; ++read) {
            const Flit &f = slab[wrap(head + read)];
            if (pred(static_cast<const Flit &>(f)))
                continue;
            if (write != read)
                slab[wrap(head + write)] = f;
            ++write;
        }
        const std::size_t removed = count - write;
        count = write;
        return removed;
    }

    /** Forward iteration in queue order (wrap-aware). */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = Flit;
        using difference_type = std::ptrdiff_t;
        using pointer = const Flit *;
        using reference = const Flit &;

        const_iterator(const FlitRing *r, std::uint32_t pos)
            : ring(r), pos(pos)
        {
        }

        reference operator*() const { return (*ring)[pos]; }
        pointer operator->() const { return &(*ring)[pos]; }

        const_iterator &
        operator++()
        {
            ++pos;
            return *this;
        }

        bool
        operator==(const const_iterator &o) const
        {
            return pos == o.pos;
        }
        bool
        operator!=(const const_iterator &o) const
        {
            return pos != o.pos;
        }

      private:
        const FlitRing *ring;
        std::uint32_t pos;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, count}; }

  private:
    std::uint32_t
    wrap(std::uint32_t i) const
    {
        return i >= cap ? i - cap : i;
    }

    Flit *slab = nullptr;
    std::uint32_t cap = 0;
    std::uint32_t head = 0;
    std::uint32_t count = 0;
};

/** One input VC buffer (a channel's downstream buffer, or an
 *  injection-port buffer). */
struct InputVc
{
    /** Ring view into the fabric's flit arena (bound at Fabric
     *  construction). */
    FlitRing buf;
    /** Channel this VC represents (kInjectionChannel for injection
     *  buffers). */
    topo::ChannelId self = 0;
    /** Router this VC feeds. */
    topo::NodeId atNode = 0;
    /** Input port for the one-flit-per-port switch constraint: the
     *  VC's link id, or numLinks + node for injection VCs. Precomputed
     *  at Fabric construction so the switch stage needs no per-move
     *  link lookup. */
    std::uint32_t port = 0;
    /** Position of this VC in its node's ascending local-VC list (the
     *  ejection arbitration domain) — the bit this VC occupies in the
     *  fabric's per-node eject-candidate mask. Precomputed at Fabric
     *  construction. */
    std::uint8_t localPos = 0;
    /** Allocated output channel; kInvalidId when unrouted. */
    topo::ChannelId out = topo::kInvalidId;
    /** Routed to the local ejection port. */
    bool eject = false;
    /** Output allocation held (from head allocation to tail send). */
    bool routed = false;
    /** Packet the held allocation belongs to (kInvalidId when
     *  unrouted). Needed by the fault injector to release allocations
     *  whose flits are momentarily all up- or downstream. */
    std::uint32_t curPkt = topo::kInvalidId;
};

/**
 * Per-router stall attribution, counted in stall-cycles: each counter
 * advances by one for every cycle a flit at this router wanted to move
 * through a pipeline stage and could not, bucketed by the stage that
 * refused it.
 */
struct StallCounters
{
    /** Route computation returned no legal candidate at all (e.g. a
     *  faulted or disconnected relation). */
    std::uint64_t routeCompute = 0;
    /** Legal candidates existed but every output VC was owned (or
     *  non-empty in atomic mode): VC allocation starved. */
    std::uint64_t vcStarved = 0;
    /** Output VC held but the downstream buffer had no space (or the
     *  VCT/SAF switching gate refused the head). */
    std::uint64_t creditStarved = 0;
    /** Flit was movable but lost switch arbitration (input port already
     *  granted this cycle). */
    std::uint64_t switchLost = 0;

    std::uint64_t
    total() const
    {
        return routeCompute + vcStarved + creditStarved + switchLost;
    }
};

} // namespace ebda::sim

#endif // EBDA_SIM_FLIT_HH
