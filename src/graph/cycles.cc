#include "cycles.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ebda::graph {

namespace {

enum class Color : std::uint8_t { White, Gray, Black };

} // namespace

CycleReport
findCycle(const Digraph &g)
{
    const std::size_t n = g.numNodes();
    std::vector<Color> color(n, Color::White);

    // Explicit DFS stack: (node, next successor index to visit).
    struct Frame
    {
        NodeId node;
        std::size_t next;
    };
    std::vector<Frame> stack;

    for (NodeId root = 0; root < n; ++root) {
        if (color[root] != Color::White)
            continue;
        color[root] = Color::Gray;
        stack.push_back({root, 0});
        while (!stack.empty()) {
            Frame &f = stack.back();
            const auto &succ = g.successors(f.node);
            if (f.next < succ.size()) {
                const NodeId v = succ[f.next++];
                if (color[v] == Color::White) {
                    color[v] = Color::Gray;
                    stack.push_back({v, 0});
                } else if (color[v] == Color::Gray) {
                    // Back edge: the cycle is v ... stack.back().node.
                    CycleReport report;
                    report.acyclic = false;
                    auto it = std::find_if(
                        stack.begin(), stack.end(),
                        [v](const Frame &fr) { return fr.node == v; });
                    EBDA_ASSERT(it != stack.end(),
                                "gray node missing from DFS stack");
                    for (; it != stack.end(); ++it)
                        report.cycle.push_back(it->node);
                    return report;
                }
            } else {
                color[f.node] = Color::Black;
                stack.pop_back();
            }
        }
    }
    return CycleReport{};
}

bool
isAcyclic(const Digraph &g)
{
    return findCycle(g).acyclic;
}

std::vector<std::uint32_t>
stronglyConnectedComponents(const Digraph &g, std::uint32_t *num_components)
{
    const std::size_t n = g.numNodes();
    constexpr std::uint32_t kUnvisited = 0xffffffffu;

    std::vector<std::uint32_t> index(n, kUnvisited);
    std::vector<std::uint32_t> lowlink(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<NodeId> sccStack;
    std::vector<std::uint32_t> comp(n, kUnvisited);
    std::uint32_t nextIndex = 0;
    std::uint32_t nextComp = 0;

    struct Frame
    {
        NodeId node;
        std::size_t next;
    };
    std::vector<Frame> stack;

    for (NodeId root = 0; root < n; ++root) {
        if (index[root] != kUnvisited)
            continue;
        stack.push_back({root, 0});
        index[root] = lowlink[root] = nextIndex++;
        sccStack.push_back(root);
        onStack[root] = true;

        while (!stack.empty()) {
            Frame &f = stack.back();
            const auto &succ = g.successors(f.node);
            if (f.next < succ.size()) {
                const NodeId v = succ[f.next++];
                if (index[v] == kUnvisited) {
                    index[v] = lowlink[v] = nextIndex++;
                    sccStack.push_back(v);
                    onStack[v] = true;
                    stack.push_back({v, 0});
                } else if (onStack[v]) {
                    lowlink[f.node] = std::min(lowlink[f.node], index[v]);
                }
            } else {
                const NodeId u = f.node;
                stack.pop_back();
                if (!stack.empty()) {
                    NodeId parent = stack.back().node;
                    lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
                }
                if (lowlink[u] == index[u]) {
                    // u is the root of an SCC.
                    while (true) {
                        const NodeId w = sccStack.back();
                        sccStack.pop_back();
                        onStack[w] = false;
                        comp[w] = nextComp;
                        if (w == u)
                            break;
                    }
                    ++nextComp;
                }
            }
        }
    }
    if (num_components)
        *num_components = nextComp;
    return comp;
}

std::optional<std::vector<NodeId>>
topologicalSort(const Digraph &g)
{
    const std::size_t n = g.numNodes();
    std::vector<std::uint32_t> indeg(n, 0);
    for (NodeId u = 0; u < n; ++u)
        for (NodeId v : g.successors(u))
            ++indeg[v];

    std::vector<NodeId> order;
    order.reserve(n);
    std::vector<NodeId> queue;
    for (NodeId u = 0; u < n; ++u)
        if (indeg[u] == 0)
            queue.push_back(u);

    while (!queue.empty()) {
        const NodeId u = queue.back();
        queue.pop_back();
        order.push_back(u);
        for (NodeId v : g.successors(u))
            if (--indeg[v] == 0)
                queue.push_back(v);
    }
    if (order.size() != n)
        return std::nullopt;
    return order;
}

std::size_t
numNodesOnCycles(const Digraph &g)
{
    std::uint32_t num_comps = 0;
    const auto comp = stronglyConnectedComponents(g, &num_comps);
    std::vector<std::uint32_t> size(num_comps, 0);
    for (auto c : comp)
        ++size[c];

    std::size_t result = 0;
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        if (size[comp[u]] > 1 || g.hasEdge(u, u))
            ++result;
    }
    return result;
}

} // namespace ebda::graph
