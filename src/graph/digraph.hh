/**
 * @file
 * A compact directed-graph container used for channel dependency graphs.
 *
 * Nodes are dense integer ids [0, numNodes). Edges are stored in
 * adjacency lists. The container supports incremental edge insertion with
 * optional de-duplication, which matters because a routing relation
 * typically induces the same channel dependency from many destinations.
 */

#ifndef EBDA_GRAPH_DIGRAPH_HH
#define EBDA_GRAPH_DIGRAPH_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace ebda::graph {

/** Dense node identifier. */
using NodeId = std::uint32_t;

/**
 * Directed graph over dense integer node ids.
 */
class Digraph
{
  public:
    /** Construct with a fixed node count (may be grown later). */
    explicit Digraph(std::size_t num_nodes = 0);

    /** Number of nodes. */
    std::size_t numNodes() const { return adj.size(); }

    /** Number of (distinct, if deduplicated) edges. */
    std::size_t numEdges() const { return edgeCount; }

    /** Grow the node set to at least n nodes. */
    void resize(std::size_t n);

    /** Append a new node, returning its id. */
    NodeId addNode();

    /**
     * Insert edge u -> v. Duplicate insertions are ignored (the graph
     * stays simple), which keeps cycle detection linear in distinct
     * dependencies no matter how many destinations induce each one.
     * Self-loops are allowed and count as cycles.
     */
    void addEdge(NodeId u, NodeId v);

    /** True if edge u -> v is present. */
    bool hasEdge(NodeId u, NodeId v) const;

    /** Successors of u. */
    const std::vector<NodeId> &successors(NodeId u) const;

    /** Out-degree of u. */
    std::size_t outDegree(NodeId u) const { return successors(u).size(); }

  private:
    std::vector<std::vector<NodeId>> adj;
    /** Hash set of packed (u,v) pairs for O(1) duplicate rejection. */
    std::unordered_set<std::uint64_t> edgeSet;
    std::size_t edgeCount = 0;

    static std::uint64_t
    pack(NodeId u, NodeId v)
    {
        return (static_cast<std::uint64_t>(u) << 32) | v;
    }
};

} // namespace ebda::graph

#endif // EBDA_GRAPH_DIGRAPH_HH
