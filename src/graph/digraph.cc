#include "digraph.hh"

#include "util/logging.hh"

namespace ebda::graph {

Digraph::Digraph(std::size_t num_nodes) : adj(num_nodes) {}

void
Digraph::resize(std::size_t n)
{
    if (n > adj.size())
        adj.resize(n);
}

NodeId
Digraph::addNode()
{
    adj.emplace_back();
    return static_cast<NodeId>(adj.size() - 1);
}

void
Digraph::addEdge(NodeId u, NodeId v)
{
    EBDA_ASSERT(u < adj.size() && v < adj.size(),
                "edge (", u, ",", v, ") out of range for ", adj.size(),
                " nodes");
    if (!edgeSet.insert(pack(u, v)).second)
        return;
    adj[u].push_back(v);
    ++edgeCount;
}

bool
Digraph::hasEdge(NodeId u, NodeId v) const
{
    return edgeSet.count(pack(u, v)) != 0;
}

const std::vector<NodeId> &
Digraph::successors(NodeId u) const
{
    EBDA_ASSERT(u < adj.size(), "node ", u, " out of range");
    return adj[u];
}

} // namespace ebda::graph
