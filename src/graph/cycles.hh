/**
 * @file
 * Cycle analysis over Digraph: acyclicity testing with witness
 * extraction, Tarjan strongly-connected components, and topological sort.
 *
 * These are the oracle primitives behind Dally's criterion: a routing
 * relation is deadlock-free iff its channel dependency graph is acyclic.
 * All traversals are iterative so million-channel graphs cannot overflow
 * the call stack.
 */

#ifndef EBDA_GRAPH_CYCLES_HH
#define EBDA_GRAPH_CYCLES_HH

#include <optional>
#include <vector>

#include "graph/digraph.hh"

namespace ebda::graph {

/** Result of an acyclicity test with an optional witness. */
struct CycleReport
{
    /** True when no directed cycle exists. */
    bool acyclic = true;
    /**
     * When cyclic: a witness cycle as a node sequence c0, c1, ..., ck-1
     * where each ci -> c(i+1 mod k) is an edge. Empty when acyclic.
     */
    std::vector<NodeId> cycle;
};

/**
 * Test acyclicity via iterative three-color DFS; on failure extract one
 * witness cycle from the DFS stack.
 */
CycleReport findCycle(const Digraph &g);

/** Convenience wrapper for findCycle().acyclic. */
bool isAcyclic(const Digraph &g);

/**
 * Tarjan's strongly connected components (iterative).
 *
 * @return component id per node; ids are in reverse topological order of
 *         the condensation (standard Tarjan numbering).
 */
std::vector<std::uint32_t> stronglyConnectedComponents(
    const Digraph &g, std::uint32_t *num_components = nullptr);

/**
 * Kahn topological sort.
 *
 * @return node order when the graph is acyclic, std::nullopt otherwise.
 */
std::optional<std::vector<NodeId>> topologicalSort(const Digraph &g);

/**
 * Count nodes that participate in at least one cycle (nodes whose SCC has
 * size > 1 or which carry a self-loop). Useful for reporting how much of
 * a dependency graph is "poisoned" by a bad turn set.
 */
std::size_t numNodesOnCycles(const Digraph &g);

} // namespace ebda::graph

#endif // EBDA_GRAPH_CYCLES_HH
