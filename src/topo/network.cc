#include "network.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace ebda::topo {

using core::Sign;

namespace {

std::size_t
product(const std::vector<int> &dims)
{
    std::size_t p = 1;
    for (int d : dims) {
        EBDA_ASSERT(d >= 1, "radix must be positive");
        p *= static_cast<std::size_t>(d);
    }
    return p;
}

} // namespace

Network
Network::mesh(const std::vector<int> &dims, const std::vector<int> &vcs)
{
    EBDA_ASSERT(dims.size() == vcs.size(),
                "dims/vcs size mismatch: ", dims.size(), " vs ",
                vcs.size());
    Network net;
    net.radix = dims;
    net.vcsPerDim = vcs;
    net.nodeCount = product(dims);
    net.stride.resize(dims.size());
    std::size_t s = 1;
    for (std::size_t d = 0; d < dims.size(); ++d) {
        net.stride[d] = s;
        s *= static_cast<std::size_t>(dims[d]);
    }

    std::vector<Link> links;
    for (NodeId n = 0; n < net.nodeCount; ++n) {
        const Coord c = net.coord(n);
        for (std::uint8_t d = 0; d < dims.size(); ++d) {
            if (c[d] + 1 < dims[d]) {
                Coord next = c;
                ++next[d];
                links.push_back(Link{n, net.node(next), d, Sign::Pos,
                                     Sign::Pos, false});
                links.push_back(Link{net.node(next), n, d, Sign::Neg,
                                     Sign::Neg, false});
            }
        }
    }
    net.buildFromLinks(std::move(links));
    return net;
}

Network
Network::torus(const std::vector<int> &dims, const std::vector<int> &vcs,
               WrapClassification wrap_class)
{
    Network net = mesh(dims, vcs);
    net.torusNet = true;

    std::vector<Link> links = net.linkTable;
    for (NodeId n = 0; n < net.nodeCount; ++n) {
        const Coord c = net.coord(n);
        for (std::uint8_t d = 0; d < dims.size(); ++d) {
            if (dims[d] < 3)
                continue; // radix-2 rings would duplicate mesh links
            if (c[d] == dims[d] - 1) {
                Coord home = c;
                home[d] = 0;
                const NodeId wrap_dst = net.node(home);
                const Sign pos_cls =
                    wrap_class == WrapClassification::OppositeOfTravel
                        ? Sign::Neg
                        : Sign::Pos;
                const Sign neg_cls =
                    wrap_class == WrapClassification::OppositeOfTravel
                        ? Sign::Pos
                        : Sign::Neg;
                // Travelling + across the edge; coordinate jumps down.
                links.push_back(Link{n, wrap_dst, d, Sign::Pos, pos_cls,
                                     true});
                // Travelling - across the edge; coordinate jumps up.
                links.push_back(Link{wrap_dst, n, d, Sign::Neg, neg_cls,
                                     true});
            }
        }
    }
    net.buildFromLinks(std::move(links));
    return net;
}

Network
Network::partialMesh3d(const std::vector<int> &dims,
                       const std::vector<int> &vcs,
                       const std::vector<std::pair<int, int>> &elevators)
{
    EBDA_ASSERT(dims.size() == 3, "partialMesh3d needs 3 dimensions");
    EBDA_ASSERT(!elevators.empty(),
                "at least one elevator column is required");
    Network net = mesh(dims, vcs);

    auto is_elevator = [&](int x, int y) {
        return std::find(elevators.begin(), elevators.end(),
                         std::make_pair(x, y))
            != elevators.end();
    };

    std::vector<Link> links;
    for (const Link &l : net.linkTable) {
        if (l.dim == 2) {
            const Coord c = net.coord(l.src);
            if (!is_elevator(c[0], c[1]))
                continue;
        }
        links.push_back(l);
    }
    net.buildFromLinks(std::move(links));
    return net;
}

Network
Network::withoutLinks(
    const std::vector<std::pair<NodeId, NodeId>> &failed) const
{
    Network net = *this;
    std::vector<Link> links;
    links.reserve(linkTable.size());
    for (const Link &l : linkTable) {
        const bool is_failed =
            std::find(failed.begin(), failed.end(),
                      std::make_pair(l.src, l.dst))
            != failed.end();
        if (!is_failed)
            links.push_back(l);
    }
    net.buildFromLinks(std::move(links));
    return net;
}

void
Network::buildFromLinks(std::vector<Link> links)
{
    linkTable = std::move(links);
    outAdj.assign(nodeCount, {});
    inAdj.assign(nodeCount, {});
    for (LinkId l = 0; l < linkTable.size(); ++l) {
        outAdj[linkTable[l].src].push_back(l);
        inAdj[linkTable[l].dst].push_back(l);
    }

    channelLink.clear();
    channelVc.clear();
    linkFirstChannel.assign(linkTable.size(), 0);
    for (LinkId l = 0; l < linkTable.size(); ++l) {
        linkFirstChannel[l] = static_cast<ChannelId>(channelLink.size());
        const int nvc = vcsPerDim[linkTable[l].dim];
        EBDA_ASSERT(nvc >= 1, "dimension ", linkTable[l].dim,
                    " has no VCs but carries links");
        for (int v = 0; v < nvc; ++v) {
            channelLink.push_back(l);
            channelVc.push_back(static_cast<std::uint8_t>(v));
        }
    }
}

Coord
Network::coord(NodeId n) const
{
    EBDA_ASSERT(n < nodeCount, "node ", n, " out of range");
    Coord c(radix.size());
    for (std::size_t d = 0; d < radix.size(); ++d)
        c[d] = static_cast<int>((n / stride[d])
                                % static_cast<std::size_t>(radix[d]));
    return c;
}

NodeId
Network::node(const Coord &c) const
{
    EBDA_ASSERT(c.size() == radix.size(), "coordinate arity mismatch");
    std::size_t n = 0;
    for (std::size_t d = 0; d < radix.size(); ++d) {
        EBDA_ASSERT(c[d] >= 0 && c[d] < radix[d], "coordinate ", c[d],
                    " out of range in dim ", d);
        n += static_cast<std::size_t>(c[d]) * stride[d];
    }
    return static_cast<NodeId>(n);
}

int
Network::coordAlong(NodeId n, std::uint8_t d) const
{
    return static_cast<int>((n / stride[d])
                            % static_cast<std::size_t>(radix[d]));
}

int
Network::minimalOffset(NodeId a, NodeId b, std::uint8_t d) const
{
    const int ca = coordAlong(a, d);
    const int cb = coordAlong(b, d);
    int off = cb - ca;
    if (torusNet && radix[d] >= 3) {
        const int k = radix[d];
        // Fold into (-k/2, k/2]; ties go positive.
        if (off > k / 2)
            off -= k;
        else if (off < -(k - 1) / 2)
            off += k;
    }
    return off;
}

int
Network::distance(NodeId a, NodeId b) const
{
    int dist = 0;
    for (std::uint8_t d = 0; d < radix.size(); ++d)
        dist += std::abs(minimalOffset(a, b, d));
    return dist;
}

std::optional<LinkId>
Network::linkFrom(NodeId n, std::uint8_t dim, Sign travel) const
{
    for (LinkId l : outAdj[n]) {
        const Link &lk = linkTable[l];
        if (lk.dim == dim && lk.travelSign == travel)
            return l;
    }
    return std::nullopt;
}

ChannelId
Network::channel(LinkId l, int vc) const
{
    EBDA_ASSERT(l < linkTable.size(), "link out of range");
    EBDA_ASSERT(vc >= 0 && vc < vcsOnLink(l), "vc ", vc,
                " out of range on link ", l);
    return linkFirstChannel[l] + static_cast<ChannelId>(vc);
}

std::vector<ChannelId>
Network::outChannels(NodeId n) const
{
    std::vector<ChannelId> out;
    for (LinkId l : outAdj[n])
        for (int v = 0; v < vcsOnLink(l); ++v)
            out.push_back(channel(l, v));
    return out;
}

bool
Network::channelInClass(ChannelId ch, const core::ChannelClass &cls) const
{
    const Link &lk = linkTable[channelLink[ch]];
    if (lk.dim != cls.dim || lk.classSign != cls.sign
        || channelVc[ch] != cls.vc) {
        return false;
    }
    if (cls.parity == core::Parity::Any)
        return true;
    const int coord_val = coordAlong(lk.src, cls.parityAxis);
    const bool even = coord_val % 2 == 0;
    return cls.parity == core::Parity::Even ? even : !even;
}

std::string
Network::channelName(ChannelId c) const
{
    const Link &lk = linkTable[channelLink[c]];
    auto coord_str = [&](NodeId n) {
        const Coord co = coord(n);
        std::ostringstream os;
        os << '(';
        for (std::size_t d = 0; d < co.size(); ++d) {
            if (d)
                os << ',';
            os << co[d];
        }
        os << ')';
        return os.str();
    };
    std::ostringstream os;
    os << coord_str(lk.src) << "->" << coord_str(lk.dst) << ' '
       << core::dimLetter(lk.dim)
       << (lk.classSign == Sign::Pos ? '+' : '-') << " vc"
       << static_cast<int>(channelVc[c]);
    if (lk.wrap)
        os << " (wrap)";
    return os.str();
}

} // namespace ebda::topo
