#include "network.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/logging.hh"

namespace ebda::topo {

using core::Sign;

namespace {

/** Factory-parameter validation: throw a path-named error, matching the
 *  strict SweepSpec style ("mesh.dims[1]: radix must be >= 2 (got 1)"). */
void
require(bool ok, const std::string &msg)
{
    if (!ok)
        throw std::invalid_argument(msg);
}

void
requireDimsVcs(const std::string &path, const std::vector<int> &dims,
               const std::vector<int> &vcs)
{
    require(!dims.empty(), path + ".dims: must not be empty");
    require(dims.size() == vcs.size(),
            path + ".dims/vcs: size mismatch (" + std::to_string(dims.size())
                + " dims vs " + std::to_string(vcs.size()) + " vcs)");
    for (std::size_t d = 0; d < dims.size(); ++d) {
        require(dims[d] >= 2,
                path + ".dims[" + std::to_string(d)
                    + "]: radix must be >= 2 (got " + std::to_string(dims[d])
                    + ")");
        require(vcs[d] >= 1,
                path + ".vcs[" + std::to_string(d) + "]: must be >= 1 (got "
                    + std::to_string(vcs[d]) + ")");
    }
}

std::size_t
product(const std::vector<int> &dims)
{
    std::size_t p = 1;
    for (int d : dims)
        p *= static_cast<std::size_t>(d);
    return p;
}

} // namespace

Network
Network::mesh(const std::vector<int> &dims, const std::vector<int> &vcs)
{
    requireDimsVcs("mesh", dims, vcs);
    Network net;
    net.topoKind = TopologyKind::Mesh;
    net.radix = dims;
    net.vcsPerDim = vcs;
    net.nodeCount = product(dims);
    net.stride.resize(dims.size());
    std::size_t s = 1;
    for (std::size_t d = 0; d < dims.size(); ++d) {
        net.stride[d] = s;
        s *= static_cast<std::size_t>(dims[d]);
    }

    std::vector<Link> links;
    for (NodeId n = 0; n < net.nodeCount; ++n) {
        const Coord c = net.coord(n);
        for (std::uint8_t d = 0; d < dims.size(); ++d) {
            if (c[d] + 1 < dims[d]) {
                Coord next = c;
                ++next[d];
                links.push_back(Link{n, net.node(next), d, Sign::Pos,
                                     Sign::Pos, false, vcs[d]});
                links.push_back(Link{net.node(next), n, d, Sign::Neg,
                                     Sign::Neg, false, vcs[d]});
            }
        }
    }
    net.buildFromLinks(std::move(links));
    return net;
}

Network
Network::torus(const std::vector<int> &dims, const std::vector<int> &vcs,
               WrapClassification wrap_class)
{
    requireDimsVcs("torus", dims, vcs);
    Network net = mesh(dims, vcs);
    net.topoKind = TopologyKind::Torus;

    std::vector<Link> links = net.linkTable;
    for (NodeId n = 0; n < net.nodeCount; ++n) {
        const Coord c = net.coord(n);
        for (std::uint8_t d = 0; d < dims.size(); ++d) {
            if (dims[d] < 3)
                continue; // radix-2 rings would duplicate mesh links
            if (c[d] == dims[d] - 1) {
                Coord home = c;
                home[d] = 0;
                const NodeId wrap_dst = net.node(home);
                const Sign pos_cls =
                    wrap_class == WrapClassification::OppositeOfTravel
                        ? Sign::Neg
                        : Sign::Pos;
                const Sign neg_cls =
                    wrap_class == WrapClassification::OppositeOfTravel
                        ? Sign::Pos
                        : Sign::Neg;
                // Travelling + across the edge; coordinate jumps down.
                links.push_back(Link{n, wrap_dst, d, Sign::Pos, pos_cls,
                                     true, vcs[d]});
                // Travelling - across the edge; coordinate jumps up.
                links.push_back(Link{wrap_dst, n, d, Sign::Neg, neg_cls,
                                     true, vcs[d]});
            }
        }
    }
    net.buildFromLinks(std::move(links));
    return net;
}

Network
Network::partialMesh3d(const std::vector<int> &dims,
                       const std::vector<int> &vcs,
                       const std::vector<std::pair<int, int>> &elevators)
{
    require(dims.size() == 3,
            "partialMesh3d.dims: need exactly 3 dimensions (got "
                + std::to_string(dims.size()) + ")");
    requireDimsVcs("partialMesh3d", dims, vcs);
    require(!elevators.empty(),
            "partialMesh3d.elevators: at least one elevator column is "
            "required");
    for (std::size_t i = 0; i < elevators.size(); ++i) {
        const auto &[x, y] = elevators[i];
        require(x >= 0 && x < dims[0] && y >= 0 && y < dims[1],
                "partialMesh3d.elevators[" + std::to_string(i) + "]: ("
                    + std::to_string(x) + "," + std::to_string(y)
                    + ") outside the " + std::to_string(dims[0]) + "x"
                    + std::to_string(dims[1]) + " layer");
    }
    Network net = mesh(dims, vcs);
    net.topoKind = TopologyKind::PartialMesh3d;

    auto is_elevator = [&](int x, int y) {
        return std::find(elevators.begin(), elevators.end(),
                         std::make_pair(x, y))
            != elevators.end();
    };

    std::vector<Link> links;
    for (const Link &l : net.linkTable) {
        if (l.dim == 2) {
            const Coord c = net.coord(l.src);
            if (!is_elevator(c[0], c[1]))
                continue;
        }
        links.push_back(l);
    }
    net.buildFromLinks(std::move(links));
    return net;
}

Network
Network::dragonfly(int a, int p, int h, int local_vcs, int global_vcs)
{
    require(a >= 2, "dragonfly.a: routers per group must be >= 2 (got "
                        + std::to_string(a) + ")");
    require(p >= 1, "dragonfly.p: terminals per router must be >= 1 (got "
                        + std::to_string(p) + ")");
    require(h >= 1, "dragonfly.h: global links per router must be >= 1 "
                    "(got "
                        + std::to_string(h) + ")");
    require(local_vcs >= 1, "dragonfly.localVcs: must be >= 1 (got "
                                + std::to_string(local_vcs) + ")");
    require(global_vcs >= 1, "dragonfly.globalVcs: must be >= 1 (got "
                                 + std::to_string(global_vcs) + ")");

    const int groups = a * h + 1;
    Network net;
    net.topoKind = TopologyKind::Dragonfly;
    net.dfShape = DragonflyShape{a, p, h, groups};
    net.nodeCount = static_cast<std::size_t>(groups) * a;
    // Node id = group * a + router, i.e. coordinates {router, group}.
    net.radix = {a, groups};
    net.stride = {1, static_cast<std::size_t>(a)};
    net.vcsPerDim = {local_vcs, global_vcs};

    std::vector<Link> links;
    for (int g = 0; g < groups; ++g) {
        const NodeId base = static_cast<NodeId>(g) * a;
        // Intra-group full mesh (dimension 0).
        for (int r1 = 0; r1 < a; ++r1)
            for (int r2 = 0; r2 < a; ++r2) {
                if (r1 == r2)
                    continue;
                const Sign s = r2 > r1 ? Sign::Pos : Sign::Neg;
                links.push_back(Link{base + r1, base + r2, 0, s, s, false,
                                     local_vcs});
            }
        // Global links (dimension 1): port k of group g, owned by router
        // k / h, reaches group (g + k + 1) mod groups and lands on the
        // peer port that points back here.
        for (int k = 0; k < a * h; ++k) {
            const int target = (g + k + 1) % groups;
            const int back = ((g - target - 1) % groups + groups) % groups;
            const NodeId src = base + static_cast<NodeId>(k / h);
            const NodeId dst =
                static_cast<NodeId>(target) * a
                + static_cast<NodeId>(back / h);
            const Sign s = target > g ? Sign::Pos : Sign::Neg;
            links.push_back(Link{src, dst, 1, s, s, false, global_vcs});
        }
    }
    net.buildFromLinks(std::move(links));
    return net;
}

Network
Network::fullMesh(int n, int vcs)
{
    require(n >= 2, "fullMesh.n: node count must be >= 2 (got "
                        + std::to_string(n) + ")");
    require(vcs >= 1,
            "fullMesh.vcs: must be >= 1 (got " + std::to_string(vcs) + ")");
    Network net;
    net.topoKind = TopologyKind::FullMesh;
    net.nodeCount = static_cast<std::size_t>(n);
    net.radix = {n};
    net.stride = {1};
    net.vcsPerDim = {vcs};

    std::vector<Link> links;
    for (NodeId u = 0; u < net.nodeCount; ++u)
        for (NodeId v = 0; v < net.nodeCount; ++v) {
            if (u == v)
                continue;
            const Sign s = v > u ? Sign::Pos : Sign::Neg;
            links.push_back(Link{u, v, 0, s, s, false, vcs});
        }
    net.buildFromLinks(std::move(links));
    return net;
}

Network
Network::fromGraph(std::size_t num_nodes, std::vector<Link> links,
                   std::vector<std::string> names,
                   std::vector<Coord> coords)
{
    require(num_nodes >= 1, "fromGraph.numNodes: must be >= 1");
    for (std::size_t i = 0; i < links.size(); ++i) {
        const Link &l = links[i];
        const std::string path = "fromGraph.links[" + std::to_string(i) + "]";
        require(l.src < num_nodes,
                path + ".src: node " + std::to_string(l.src)
                    + " out of range (" + std::to_string(num_nodes)
                    + " nodes)");
        require(l.dst < num_nodes,
                path + ".dst: node " + std::to_string(l.dst)
                    + " out of range (" + std::to_string(num_nodes)
                    + " nodes)");
        require(l.src != l.dst, path + ": self-links are not allowed");
        require(l.vcs >= 1,
                path + ".vcs: must be >= 1 (got " + std::to_string(l.vcs)
                    + ")");
    }
    require(names.empty() || names.size() == num_nodes,
            "fromGraph.names: size mismatch (" + std::to_string(names.size())
                + " names vs " + std::to_string(num_nodes) + " nodes)");
    require(coords.empty() || coords.size() == num_nodes,
            "fromGraph.coords: size mismatch ("
                + std::to_string(coords.size()) + " coords vs "
                + std::to_string(num_nodes) + " nodes)");
    if (!coords.empty()) {
        for (std::size_t n = 1; n < coords.size(); ++n)
            require(coords[n].size() == coords[0].size(),
                    "fromGraph.coords[" + std::to_string(n)
                        + "]: arity mismatch");
    }
    if (!names.empty()) {
        auto sorted = names;
        std::sort(sorted.begin(), sorted.end());
        require(std::adjacent_find(sorted.begin(), sorted.end())
                    == sorted.end(),
                "fromGraph.names: duplicate node name");
    }

    Network net;
    net.topoKind = TopologyKind::Custom;
    net.nodeCount = num_nodes;
    net.nodeNames = std::move(names);
    net.nodeCoords = std::move(coords);
    // Per-dimension VC summary over classified links (max per dim).
    for (const Link &l : links) {
        if (l.dim == kUnclassifiedDim)
            continue;
        if (net.vcsPerDim.size() <= l.dim)
            net.vcsPerDim.resize(l.dim + 1, 0);
        net.vcsPerDim[l.dim] = std::max(net.vcsPerDim[l.dim], l.vcs);
    }
    net.buildFromLinks(std::move(links));
    return net;
}

Network
Network::withoutLinks(
    const std::vector<std::pair<NodeId, NodeId>> &failed) const
{
    Network net = *this;
    std::vector<Link> links;
    links.reserve(linkTable.size());
    for (const Link &l : linkTable) {
        const bool is_failed =
            std::find(failed.begin(), failed.end(),
                      std::make_pair(l.src, l.dst))
            != failed.end();
        if (!is_failed)
            links.push_back(l);
    }
    net.buildFromLinks(std::move(links));
    return net;
}

void
Network::buildFromLinks(std::vector<Link> links)
{
    linkTable = std::move(links);
    outAdj.assign(nodeCount, {});
    inAdj.assign(nodeCount, {});
    for (LinkId l = 0; l < linkTable.size(); ++l) {
        outAdj[linkTable[l].src].push_back(l);
        inAdj[linkTable[l].dst].push_back(l);
    }

    channelLink.clear();
    channelVc.clear();
    linkFirstChannel.assign(linkTable.size(), 0);
    for (LinkId l = 0; l < linkTable.size(); ++l) {
        linkFirstChannel[l] = static_cast<ChannelId>(channelLink.size());
        const int nvc = linkTable[l].vcs;
        EBDA_ASSERT(nvc >= 1, "link ", l, " has no VCs");
        for (int v = 0; v < nvc; ++v) {
            channelLink.push_back(l);
            channelVc.push_back(static_cast<std::uint8_t>(v));
        }
    }

    if (!hasGrid())
        computeHopDistances();
}

void
Network::computeHopDistances()
{
    constexpr std::uint16_t kUnreached = 0xffff;
    hopDist.assign(nodeCount * nodeCount, kUnreached);
    std::vector<NodeId> queue;
    queue.reserve(nodeCount);
    for (NodeId s = 0; s < nodeCount; ++s) {
        std::uint16_t *row = hopDist.data() + s * nodeCount;
        row[s] = 0;
        queue.clear();
        queue.push_back(s);
        for (std::size_t head = 0; head < queue.size(); ++head) {
            const NodeId u = queue[head];
            for (LinkId l : outAdj[u]) {
                const NodeId v = linkTable[l].dst;
                if (row[v] == kUnreached) {
                    row[v] = static_cast<std::uint16_t>(row[u] + 1);
                    queue.push_back(v);
                }
            }
        }
    }
}

Coord
Network::coord(NodeId n) const
{
    EBDA_ASSERT(n < nodeCount, "node ", n, " out of range");
    if (stride.empty()) {
        if (!nodeCoords.empty())
            return nodeCoords[n];
        return {};
    }
    Coord c(radix.size());
    for (std::size_t d = 0; d < radix.size(); ++d)
        c[d] = static_cast<int>((n / stride[d])
                                % static_cast<std::size_t>(radix[d]));
    return c;
}

NodeId
Network::node(const Coord &c) const
{
    if (stride.empty()) {
        for (NodeId n = 0; n < nodeCoords.size(); ++n)
            if (nodeCoords[n] == c)
                return n;
        EBDA_PANIC("no node at the given coordinates");
    }
    EBDA_ASSERT(c.size() == radix.size(), "coordinate arity mismatch");
    std::size_t n = 0;
    for (std::size_t d = 0; d < radix.size(); ++d) {
        EBDA_ASSERT(c[d] >= 0 && c[d] < radix[d], "coordinate ", c[d],
                    " out of range in dim ", d);
        n += static_cast<std::size_t>(c[d]) * stride[d];
    }
    return static_cast<NodeId>(n);
}

int
Network::coordAlong(NodeId n, std::uint8_t d) const
{
    if (stride.empty()) {
        EBDA_ASSERT(!nodeCoords.empty() && d < nodeCoords[n].size(),
                    "node ", n, " has no coordinate along dim ",
                    static_cast<int>(d));
        return nodeCoords[n][d];
    }
    return static_cast<int>((n / stride[d])
                            % static_cast<std::size_t>(radix[d]));
}

int
Network::minimalOffset(NodeId a, NodeId b, std::uint8_t d) const
{
    EBDA_ASSERT(hasGrid(),
                "minimalOffset needs grid coordinate arithmetic");
    const int ca = coordAlong(a, d);
    const int cb = coordAlong(b, d);
    int off = cb - ca;
    if (isTorus() && radix[d] >= 3) {
        const int k = radix[d];
        // Fold into (-k/2, k/2]; ties go positive.
        if (off > k / 2)
            off -= k;
        else if (off < -(k - 1) / 2)
            off += k;
    }
    return off;
}

int
Network::distance(NodeId a, NodeId b) const
{
    if (!hasGrid()) {
        EBDA_ASSERT(!hopDist.empty(), "hop distances not computed");
        const std::uint16_t d = hopDist[a * nodeCount + b];
        return d == 0xffff ? -1 : static_cast<int>(d);
    }
    int dist = 0;
    for (std::uint8_t d = 0; d < radix.size(); ++d)
        dist += std::abs(minimalOffset(a, b, d));
    return dist;
}

std::string
Network::nodeName(NodeId n) const
{
    if (!nodeNames.empty())
        return nodeNames[n];
    if (!stride.empty() || !nodeCoords.empty()) {
        const Coord co = coord(n);
        std::ostringstream os;
        os << '(';
        for (std::size_t d = 0; d < co.size(); ++d) {
            if (d)
                os << ',';
            os << co[d];
        }
        os << ')';
        return os.str();
    }
    return "n" + std::to_string(n);
}

std::optional<NodeId>
Network::findNode(const std::string &name) const
{
    for (NodeId n = 0; n < nodeNames.size(); ++n)
        if (nodeNames[n] == name)
            return n;
    return std::nullopt;
}

std::optional<LinkId>
Network::linkFrom(NodeId n, std::uint8_t dim, Sign travel) const
{
    for (LinkId l : outAdj[n]) {
        const Link &lk = linkTable[l];
        if (lk.dim == dim && lk.travelSign == travel)
            return l;
    }
    return std::nullopt;
}

std::optional<LinkId>
Network::linkBetween(NodeId src, NodeId dst) const
{
    for (LinkId l : outAdj[src])
        if (linkTable[l].dst == dst)
            return l;
    return std::nullopt;
}

ChannelId
Network::channel(LinkId l, int vc) const
{
    EBDA_ASSERT(l < linkTable.size(), "link out of range");
    EBDA_ASSERT(vc >= 0 && vc < vcsOnLink(l), "vc ", vc,
                " out of range on link ", l);
    return linkFirstChannel[l] + static_cast<ChannelId>(vc);
}

std::vector<ChannelId>
Network::outChannels(NodeId n) const
{
    std::vector<ChannelId> out;
    for (LinkId l : outAdj[n])
        for (int v = 0; v < vcsOnLink(l); ++v)
            out.push_back(channel(l, v));
    return out;
}

bool
Network::channelInClass(ChannelId ch, const core::ChannelClass &cls) const
{
    const Link &lk = linkTable[channelLink[ch]];
    if (lk.dim == kUnclassifiedDim)
        return false;
    if (lk.dim != cls.dim || lk.classSign != cls.sign
        || channelVc[ch] != cls.vc) {
        return false;
    }
    if (cls.parity == core::Parity::Any)
        return true;
    const int coord_val = coordAlong(lk.src, cls.parityAxis);
    const bool even = coord_val % 2 == 0;
    return cls.parity == core::Parity::Even ? even : !even;
}

std::string
Network::channelName(ChannelId c) const
{
    const Link &lk = linkTable[channelLink[c]];
    std::ostringstream os;
    os << nodeName(lk.src) << "->" << nodeName(lk.dst);
    if (lk.dim != kUnclassifiedDim) {
        os << ' ' << core::dimLetter(lk.dim)
           << (lk.classSign == Sign::Pos ? '+' : '-');
    }
    os << " vc" << static_cast<int>(channelVc[c]);
    if (lk.wrap)
        os << " (wrap)";
    return os.str();
}

} // namespace ebda::topo
