/**
 * @file
 * Concrete network topologies: n-dimensional meshes, k-ary n-cubes
 * (tori) and vertically partially connected 3D meshes (the irregular
 * topology of Section 6.3).
 *
 * A Network is a set of nodes at integer coordinates joined by
 * unidirectional links; each link carries vcs(dim) virtual channels, and
 * each (link, VC) pair is one *concrete channel* — the unit the channel
 * dependency graph (cdg/) and the simulator (sim/) operate on.
 *
 * Every link records two directions:
 *  - the travel sign: the router output port it leaves through, and
 *  - the class sign: the direction used for EbDa channel classification.
 * They coincide for all mesh links. For torus wrap-around links the
 * class sign is the direction of the coordinate jump, i.e. the opposite
 * of the travel sign — this realises the paper's note to Theorem 2 that
 * a wrap-around traversal is a U-turn between the two directions of the
 * dimension.
 */

#ifndef EBDA_TOPO_NETWORK_HH
#define EBDA_TOPO_NETWORK_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/channel_class.hh"

namespace ebda::topo {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
using ChannelId = std::uint32_t;

/** Invalid-id sentinel. */
constexpr std::uint32_t kInvalidId = 0xffffffffu;

/** Node coordinates, one entry per dimension. */
using Coord = std::vector<int>;

/** One unidirectional physical link. */
struct Link
{
    NodeId src = 0;
    NodeId dst = 0;
    /** Dimension the link runs along. */
    std::uint8_t dim = 0;
    /** Direction of travel (the output-port side at src). */
    core::Sign travelSign = core::Sign::Pos;
    /** Direction for channel classification; differs from travelSign
     *  exactly on wrap-around links. */
    core::Sign classSign = core::Sign::Pos;
    /** True for torus wrap-around links. */
    bool wrap = false;
};

/** How torus wrap links are classified. */
enum class WrapClassification : std::uint8_t
{
    /** Class sign = coordinate-jump direction (EbDa's U-turn model). */
    OppositeOfTravel,
    /** Class sign = travel direction (for dateline-style baselines). */
    SameAsTravel,
};

/**
 * A concrete interconnection network.
 */
class Network
{
  public:
    /** @name Factories
     *  @{ */

    /** n-dimensional mesh with radix dims[d] and vcs[d] VCs along
     *  dimension d. */
    static Network mesh(const std::vector<int> &dims,
                        const std::vector<int> &vcs);

    /** k-ary n-cube (torus). */
    static Network torus(const std::vector<int> &dims,
                         const std::vector<int> &vcs,
                         WrapClassification wrap_class =
                             WrapClassification::OppositeOfTravel);

    /**
     * Vertically partially connected 3D mesh: full 2D meshes per layer,
     * vertical (Z) links only at the given elevator columns.
     *
     * @param dims {X, Y, Z} radices
     * @param vcs per-dimension VC counts
     * @param elevators (x, y) columns that own vertical links
     */
    static Network partialMesh3d(
        const std::vector<int> &dims, const std::vector<int> &vcs,
        const std::vector<std::pair<int, int>> &elevators);

    /**
     * A copy of this network with the listed unidirectional links
     * removed (fault injection). Each pair is (src, dst) node ids; both
     * directions of a failed physical channel must be listed explicitly
     * when desired. Removing a link that does not exist is a no-op.
     * The result may be disconnected — routing-level reachability
     * checks are the caller's concern.
     */
    Network withoutLinks(
        const std::vector<std::pair<NodeId, NodeId>> &failed) const;

    /** @} */

    /** @name Shape
     *  @{ */

    std::size_t numNodes() const { return nodeCount; }
    std::size_t numLinks() const { return linkTable.size(); }
    std::size_t numChannels() const { return channelLink.size(); }
    std::uint8_t numDims() const
    {
        return static_cast<std::uint8_t>(radix.size());
    }
    const std::vector<int> &dims() const { return radix; }
    const std::vector<int> &vcs() const { return vcsPerDim; }
    bool isTorus() const { return torusNet; }

    /** @} */

    /** @name Coordinates
     *  @{ */

    /** Coordinates of a node. */
    Coord coord(NodeId n) const;

    /** Node id of coordinates (must be in range). */
    NodeId node(const Coord &c) const;

    /** Coordinate of node n along dimension d. */
    int coordAlong(NodeId n, std::uint8_t d) const;

    /** Minimal hop distance between nodes (torus-aware). */
    int distance(NodeId a, NodeId b) const;

    /** Signed minimal offset from a to b along dimension d; for tori the
     *  shorter way around, ties broken toward positive. */
    int minimalOffset(NodeId a, NodeId b, std::uint8_t d) const;

    /** @} */

    /** @name Links and channels
     *  @{ */

    const Link &link(LinkId l) const { return linkTable[l]; }

    /** Links leaving a node. */
    const std::vector<LinkId> &outLinks(NodeId n) const
    {
        return outAdj[n];
    }

    /** Links entering a node. */
    const std::vector<LinkId> &inLinks(NodeId n) const { return inAdj[n]; }

    /** The link leaving n along (dim, travel sign), if present. */
    std::optional<LinkId> linkFrom(NodeId n, std::uint8_t dim,
                                   core::Sign travel) const;

    /** Number of VCs on a link (= vcs of its dimension). */
    int vcsOnLink(LinkId l) const { return vcsPerDim[linkTable[l].dim]; }

    /** Concrete channel of (link, vc). */
    ChannelId channel(LinkId l, int vc) const;

    /** First channel of link l; channels of a link are contiguous, so
     *  channel(l, v) == linkChannelBase(l) + v. Unchecked — the
     *  simulator's inner loops use this to avoid re-validating a link
     *  id they already iterate over. */
    ChannelId
    linkChannelBase(LinkId l) const
    {
        return linkFirstChannel[l];
    }

    /** Link of a channel. */
    LinkId linkOf(ChannelId c) const { return channelLink[c]; }

    /** VC index of a channel. */
    int vcOf(ChannelId c) const { return channelVc[c]; }

    /** Channels leaving a node (all VCs of all out links). */
    std::vector<ChannelId> outChannels(NodeId n) const;

    /**
     * True when channel ch belongs to channel class cls: dimension, class
     * sign and VC match and the source-node coordinate on the parity axis
     * satisfies the class's parity region.
     */
    bool channelInClass(ChannelId ch, const core::ChannelClass &cls) const;

    /** Human-readable channel name, e.g. "(1,2)->(2,2) X+ vc0". */
    std::string channelName(ChannelId c) const;

    /** @} */

  private:
    Network() = default;

    void buildFromLinks(std::vector<Link> links);

    std::size_t nodeCount = 0;
    std::vector<int> radix;
    std::vector<int> vcsPerDim;
    std::vector<std::size_t> stride;
    bool torusNet = false;

    std::vector<Link> linkTable;
    std::vector<std::vector<LinkId>> outAdj;
    std::vector<std::vector<LinkId>> inAdj;

    /** channel -> link / vc, and link -> first channel. */
    std::vector<LinkId> channelLink;
    std::vector<std::uint8_t> channelVc;
    std::vector<ChannelId> linkFirstChannel;
};

} // namespace ebda::topo

#endif // EBDA_TOPO_NETWORK_HH
