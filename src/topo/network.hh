/**
 * @file
 * Concrete network topologies: n-dimensional meshes, k-ary n-cubes
 * (tori), vertically partially connected 3D meshes (the irregular
 * topology of Section 6.3), dragonflies, full meshes and arbitrary
 * graphs.
 *
 * A Network is a set of nodes joined by unidirectional links; each link
 * carries its own virtual-channel count, and each (link, VC) pair is one
 * *concrete channel* — the unit the channel dependency graph (cdg/) and
 * the simulator (sim/) operate on.
 *
 * Every link records two directions:
 *  - the travel sign: the router output port it leaves through, and
 *  - the class sign: the direction used for EbDa channel classification.
 * They coincide for all mesh links. For torus wrap-around links the
 * class sign is the direction of the coordinate jump, i.e. the opposite
 * of the travel sign — this realises the paper's note to Theorem 2 that
 * a wrap-around traversal is a U-turn between the two directions of the
 * dimension.
 *
 * Links of graph topologies that have no meaningful dimension carry
 * kUnclassifiedDim; such channels match no EbDa channel class, and only
 * topology-agnostic machinery (relation CDG, Mendlovic–Matias checker,
 * up/down routing, the simulator) operates on them.
 *
 * Grid topologies (mesh, torus, partial 3D mesh) support coordinate
 * arithmetic (minimalOffset, offset-based distance). Non-grid
 * topologies answer distance() from a precomputed BFS hop matrix and
 * reject minimalOffset().
 */

#ifndef EBDA_TOPO_NETWORK_HH
#define EBDA_TOPO_NETWORK_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/channel_class.hh"

namespace ebda::topo {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
using ChannelId = std::uint32_t;

/** Invalid-id sentinel. */
constexpr std::uint32_t kInvalidId = 0xffffffffu;

/** Dimension tag for links that belong to no EbDa channel class. */
constexpr std::uint8_t kUnclassifiedDim = 0xff;

/** Node coordinates, one entry per dimension. */
using Coord = std::vector<int>;

/** One unidirectional physical link. */
struct Link
{
    NodeId src = 0;
    NodeId dst = 0;
    /** Dimension the link runs along (kUnclassifiedDim when none). */
    std::uint8_t dim = 0;
    /** Direction of travel (the output-port side at src). */
    core::Sign travelSign = core::Sign::Pos;
    /** Direction for channel classification; differs from travelSign
     *  exactly on wrap-around links. */
    core::Sign classSign = core::Sign::Pos;
    /** True for torus wrap-around links. */
    bool wrap = false;
    /** Virtual channels multiplexed on this link. */
    int vcs = 1;
};

/** How torus wrap links are classified. */
enum class WrapClassification : std::uint8_t
{
    /** Class sign = coordinate-jump direction (EbDa's U-turn model). */
    OppositeOfTravel,
    /** Class sign = travel direction (for dateline-style baselines). */
    SameAsTravel,
};

/** Family a Network was built as. */
enum class TopologyKind : std::uint8_t
{
    Mesh,
    Torus,
    PartialMesh3d,
    Dragonfly,
    FullMesh,
    Custom,
};

/** Shape parameters of a canonical dragonfly. */
struct DragonflyShape
{
    /** Routers per group. */
    int a = 0;
    /** Terminals per router (latency/stat bookkeeping only; the packet
     *  model injects at routers). */
    int p = 0;
    /** Global links per router. */
    int h = 0;
    /** Groups: a * h + 1 in the canonical maximum-size arrangement. */
    int groups = 0;
};

/**
 * A concrete interconnection network.
 *
 * Factories validate their parameters and throw std::invalid_argument
 * with a path-named message ("mesh.dims[1]: ...") on degenerate input;
 * accessors assert on programming errors.
 */
class Network
{
  public:
    /** @name Factories
     *  @{ */

    /** n-dimensional mesh with radix dims[d] and vcs[d] VCs along
     *  dimension d. */
    static Network mesh(const std::vector<int> &dims,
                        const std::vector<int> &vcs);

    /** k-ary n-cube (torus). */
    static Network torus(const std::vector<int> &dims,
                         const std::vector<int> &vcs,
                         WrapClassification wrap_class =
                             WrapClassification::OppositeOfTravel);

    /**
     * Vertically partially connected 3D mesh: full 2D meshes per layer,
     * vertical (Z) links only at the given elevator columns.
     *
     * @param dims {X, Y, Z} radices
     * @param vcs per-dimension VC counts
     * @param elevators (x, y) columns that own vertical links
     */
    static Network partialMesh3d(
        const std::vector<int> &dims, const std::vector<int> &vcs,
        const std::vector<std::pair<int, int>> &elevators);

    /**
     * Canonical dragonfly at router granularity: g = a*h + 1 groups of
     * a routers each; every group is an internal full mesh (dimension 0,
     * local_vcs VCs per link) and owns a*h global links (dimension 1,
     * global_vcs VCs), exactly one to every other group in the
     * consecutive ("palmtree") arrangement: global port k of group g
     * (owned by router k / h) reaches group (g + k + 1) mod g_total.
     *
     * Node id = group * a + router; coordinates are {router, group}.
     *
     * @param a routers per group (>= 2)
     * @param p terminals per router (>= 1; recorded, not materialised)
     * @param h global links per router (>= 1)
     */
    static Network dragonfly(int a, int p, int h, int local_vcs = 2,
                             int global_vcs = 1);

    /** Full mesh (complete graph) on n nodes; every ordered pair gets a
     *  direct link with the given VC count (dimension 0). */
    static Network fullMesh(int n, int vcs = 1);

    /**
     * Arbitrary graph from an explicit link list. Links keep whatever
     * dim/sign classification the caller assigned (kUnclassifiedDim for
     * none) and their per-link VC counts. Self-links are rejected;
     * parallel links are allowed.
     *
     * @param num_nodes node count; link endpoints must be < num_nodes
     * @param links the unidirectional link list
     * @param names optional per-node names (size num_nodes or empty)
     * @param coords optional per-node coordinates, all the same arity
     *               (size num_nodes or empty)
     */
    static Network fromGraph(std::size_t num_nodes,
                             std::vector<Link> links,
                             std::vector<std::string> names = {},
                             std::vector<Coord> coords = {});

    /**
     * A copy of this network with the listed unidirectional links
     * removed (fault injection). Each pair is (src, dst) node ids; both
     * directions of a failed physical channel must be listed explicitly
     * when desired. Removing a link that does not exist is a no-op.
     * The result may be disconnected — routing-level reachability
     * checks are the caller's concern.
     */
    Network withoutLinks(
        const std::vector<std::pair<NodeId, NodeId>> &failed) const;

    /** @} */

    /** @name Shape
     *  @{ */

    std::size_t numNodes() const { return nodeCount; }
    std::size_t numLinks() const { return linkTable.size(); }
    std::size_t numChannels() const { return channelLink.size(); }
    std::uint8_t numDims() const
    {
        return static_cast<std::uint8_t>(radix.size());
    }
    const std::vector<int> &dims() const { return radix; }

    /** Per-dimension VC counts. For graph topologies this is the
     *  maximum per classified dimension; prefer vcsOnLink(). */
    const std::vector<int> &vcs() const { return vcsPerDim; }
    bool isTorus() const { return topoKind == TopologyKind::Torus; }
    TopologyKind kind() const { return topoKind; }

    /** True when coordinate arithmetic (minimalOffset, offset-based
     *  distance, wrap classes) is meaningful: mesh / torus / partial
     *  3D mesh. */
    bool hasGrid() const
    {
        return topoKind == TopologyKind::Mesh
            || topoKind == TopologyKind::Torus
            || topoKind == TopologyKind::PartialMesh3d;
    }

    /** Dragonfly shape parameters (only for dragonfly networks). */
    std::optional<DragonflyShape> dragonflyShape() const
    {
        if (topoKind != TopologyKind::Dragonfly)
            return std::nullopt;
        return dfShape;
    }

    /** @} */

    /** @name Coordinates
     *  @{ */

    /** Coordinates of a node. Empty when the topology has none. */
    Coord coord(NodeId n) const;

    /** Node id of coordinates (must name an existing node). */
    NodeId node(const Coord &c) const;

    /** Coordinate of node n along dimension d (dense grids only). */
    int coordAlong(NodeId n, std::uint8_t d) const;

    /** Minimal hop distance between nodes. Coordinate arithmetic on
     *  grids, precomputed BFS hops elsewhere; -1 when unreachable. */
    int distance(NodeId a, NodeId b) const;

    /** Signed minimal offset from a to b along dimension d; for tori the
     *  shorter way around, ties broken toward positive. Grids only. */
    int minimalOffset(NodeId a, NodeId b, std::uint8_t d) const;

    /** Name of a node: its assigned name, else its coordinate tuple,
     *  else "n<id>". */
    std::string nodeName(NodeId n) const;

    /** Node with the given assigned name, if any. */
    std::optional<NodeId> findNode(const std::string &name) const;

    /** @} */

    /** @name Links and channels
     *  @{ */

    const Link &link(LinkId l) const { return linkTable[l]; }

    /** Links leaving a node. */
    const std::vector<LinkId> &outLinks(NodeId n) const
    {
        return outAdj[n];
    }

    /** Links entering a node. */
    const std::vector<LinkId> &inLinks(NodeId n) const { return inAdj[n]; }

    /** The link leaving n along (dim, travel sign), if present. */
    std::optional<LinkId> linkFrom(NodeId n, std::uint8_t dim,
                                   core::Sign travel) const;

    /** The first link from src to dst, if present. */
    std::optional<LinkId> linkBetween(NodeId src, NodeId dst) const;

    /** Number of VCs on a link. */
    int vcsOnLink(LinkId l) const { return linkTable[l].vcs; }

    /** Concrete channel of (link, vc). */
    ChannelId channel(LinkId l, int vc) const;

    /** First channel of link l; channels of a link are contiguous, so
     *  channel(l, v) == linkChannelBase(l) + v. Unchecked — the
     *  simulator's inner loops use this to avoid re-validating a link
     *  id they already iterate over. */
    ChannelId
    linkChannelBase(LinkId l) const
    {
        return linkFirstChannel[l];
    }

    /** Link of a channel. */
    LinkId linkOf(ChannelId c) const { return channelLink[c]; }

    /** VC index of a channel. */
    int vcOf(ChannelId c) const { return channelVc[c]; }

    /** Channels leaving a node (all VCs of all out links). */
    std::vector<ChannelId> outChannels(NodeId n) const;

    /**
     * True when channel ch belongs to channel class cls: dimension, class
     * sign and VC match and the source-node coordinate on the parity axis
     * satisfies the class's parity region. Unclassified channels match
     * no class.
     */
    bool channelInClass(ChannelId ch, const core::ChannelClass &cls) const;

    /** Human-readable channel name, e.g. "(1,2)->(2,2) X+ vc0". */
    std::string channelName(ChannelId c) const;

    /** @} */

  private:
    Network() = default;

    void buildFromLinks(std::vector<Link> links);
    void computeHopDistances();

    std::size_t nodeCount = 0;
    std::vector<int> radix;
    std::vector<int> vcsPerDim;
    std::vector<std::size_t> stride;
    TopologyKind topoKind = TopologyKind::Mesh;
    DragonflyShape dfShape;

    /** Explicit per-node coordinates / names (graph topologies). */
    std::vector<Coord> nodeCoords;
    std::vector<std::string> nodeNames;

    /** Dense BFS hop matrix (row-major, 0xffff = unreachable) for
     *  topologies without grid coordinate arithmetic. */
    std::vector<std::uint16_t> hopDist;

    std::vector<Link> linkTable;
    std::vector<std::vector<LinkId>> outAdj;
    std::vector<std::vector<LinkId>> inAdj;

    /** channel -> link / vc, and link -> first channel. */
    std::vector<LinkId> channelLink;
    std::vector<std::uint8_t> channelVc;
    std::vector<ChannelId> linkFirstChannel;
};

} // namespace ebda::topo

#endif // EBDA_TOPO_NETWORK_HH
