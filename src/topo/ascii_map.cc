#include "ascii_map.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>

namespace ebda::topo {

using core::Sign;

namespace {

bool
isNodeChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) && c != 'x';
}

bool
isHorizontalChar(char c)
{
    return c == '-' || c == '=' || c == '<' || c == '>' || c == 'x';
}

bool
isVerticalChar(char c)
{
    return c == '|' || c == '!' || c == 'x';
}

[[noreturn]] void
fail(std::size_t line, std::size_t col, const std::string &msg)
{
    throw std::invalid_argument("ascii_map: line " + std::to_string(line + 1)
                                + ", col " + std::to_string(col + 1) + ": "
                                + msg);
}

/** One declared connection before node-id resolution. */
struct RawEdge
{
    char a = 0;
    char b = 0;
    /** a->b allowed / b->a allowed. */
    bool forward = true;
    bool backward = true;
    int vcs = 1;
    bool dead = false;
    std::uint8_t dim = kUnclassifiedDim;
    core::Sign sign = core::Sign::Pos;
};

/** Classify one connector run; direction chars may not conflict and a
 *  dead marker poisons the whole run. */
struct RunInfo
{
    bool forward = true;
    bool backward = true;
    bool dead = false;
    int vcs = 1;
};

RunInfo
classifyRun(const std::string &run, int default_vcs, std::size_t line,
            std::size_t col)
{
    RunInfo info;
    info.vcs = default_vcs;
    const bool right = run.find('>') != std::string::npos;
    const bool left = run.find('<') != std::string::npos;
    if (right && left)
        fail(line, col, "conflicting direction markers '<' and '>'");
    if (right)
        info.backward = false;
    if (left)
        info.forward = false;
    if (run.find('=') != std::string::npos
        || run.find('!') != std::string::npos)
        info.vcs = 2;
    if (run.find('x') != std::string::npos)
        info.dead = true;
    return info;
}

} // namespace

AsciiMap
parseAsciiMap(const std::string &map, const AsciiMapOptions &opts)
{
    if (opts.defaultVcs < 1)
        throw std::invalid_argument(
            "ascii_map: defaultVcs must be >= 1 (got "
            + std::to_string(opts.defaultVcs) + ")");

    // Split into picture lines and '+' edge-list lines.
    std::vector<std::string> rows;
    std::vector<std::pair<std::size_t, std::string>> edge_lines;
    {
        std::istringstream is(map);
        std::string line;
        std::size_t line_no = 0;
        std::size_t physical = 0;
        while (std::getline(is, line)) {
            const auto first = line.find_first_not_of(" \t");
            if (first != std::string::npos && line[first] == '+') {
                edge_lines.emplace_back(physical,
                                        line.substr(first + 1));
            } else {
                // Picture rows keep their vertical position so columns
                // line up; edge lines may only follow the picture.
                if (!edge_lines.empty() && first != std::string::npos)
                    fail(physical, first,
                         "picture rows may not follow edge-list lines");
                rows.push_back(line);
                ++line_no;
            }
            ++physical;
        }
        (void)line_no;
    }

    auto at = [&](std::size_t r, std::size_t c) -> char {
        if (r >= rows.size() || c >= rows[r].size())
            return ' ';
        return rows[r][c];
    };

    // Collect nodes and validate uniqueness.
    std::map<char, std::pair<std::size_t, std::size_t>> node_pos;
    for (std::size_t r = 0; r < rows.size(); ++r)
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            const char ch = rows[r][c];
            if (isNodeChar(ch)) {
                if (!node_pos.emplace(ch, std::make_pair(r, c)).second)
                    fail(r, c,
                         std::string("duplicate node '") + ch + "'");
            } else if (ch != ' ' && ch != '\t' && !isHorizontalChar(ch)
                       && !isVerticalChar(ch)) {
                fail(r, c, std::string("unexpected character '") + ch
                               + "'");
            }
        }
    if (node_pos.empty())
        throw std::invalid_argument("ascii_map: no nodes in map");

    // Extract connector runs; remember which cells each run consumed so
    // stray connectors can be reported.
    std::vector<std::vector<bool>> used(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r)
        used[r].assign(rows[r].size(), false);

    std::vector<RawEdge> edges;
    for (const auto &[ch, pos] : node_pos) {
        const auto [r, c] = pos;
        // Horizontal run to the right.
        if (isHorizontalChar(at(r, c + 1))) {
            std::string run;
            std::size_t cc = c + 1;
            while (isHorizontalChar(at(r, cc))) {
                used[r][cc] = true;
                run.push_back(at(r, cc));
                ++cc;
            }
            if (!isNodeChar(at(r, cc)))
                fail(r, c,
                     std::string("dangling horizontal link from '") + ch
                         + "'");
            const RunInfo info = classifyRun(run, opts.defaultVcs, r, c);
            edges.push_back(RawEdge{ch, at(r, cc), info.forward,
                                    info.backward, info.vcs, info.dead, 0,
                                    Sign::Pos});
        }
        // Vertical run downward.
        if (isVerticalChar(at(r + 1, c))) {
            std::string run;
            std::size_t rr = r + 1;
            while (isVerticalChar(at(rr, c))) {
                if (c < used[rr].size())
                    used[rr][c] = true;
                run.push_back(at(rr, c));
                ++rr;
            }
            if (!isNodeChar(at(rr, c)))
                fail(r, c,
                     std::string("dangling vertical link from '") + ch
                         + "'");
            const RunInfo info = classifyRun(run, opts.defaultVcs, r, c);
            edges.push_back(RawEdge{ch, at(rr, c), info.forward,
                                    info.backward, info.vcs, info.dead, 1,
                                    Sign::Pos});
        }
    }
    for (std::size_t r = 0; r < rows.size(); ++r)
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            const char ch = rows[r][c];
            if ((isHorizontalChar(ch) || isVerticalChar(ch))
                && !used[r][c])
                fail(r, c, std::string("stray connector '") + ch
                               + "' not joining two nodes");
        }

    // Edge-list tokens: A-B, A=B, A>B, A<B, AxB, optionally :N.
    for (const auto &[line_no, text] : edge_lines) {
        std::istringstream ts(text);
        std::string tok;
        while (ts >> tok) {
            const std::size_t col = text.find(tok);
            if (tok.size() < 3 || !isNodeChar(tok[0])
                || !isNodeChar(tok[2]))
                fail(line_no, col,
                     "bad edge token '" + tok
                         + "' (want e.g. A-B, A>B, AxB, A-B:3)");
            const char conn = tok[1];
            RawEdge e;
            e.a = tok[0];
            e.b = tok[2];
            switch (conn) {
            case '-':
                break;
            case '=':
                e.vcs = 2;
                break;
            case '>':
                e.backward = false;
                break;
            case '<':
                e.forward = false;
                break;
            case 'x':
                e.dead = true;
                break;
            default:
                fail(line_no, col,
                     std::string("bad edge connector '") + conn + "'");
            }
            if (e.vcs == 1)
                e.vcs = opts.defaultVcs;
            if (tok.size() > 3) {
                if (tok[3] != ':' || tok.size() < 5)
                    fail(line_no, col,
                         "bad VC suffix in '" + tok + "' (want :N)");
                int n = 0;
                for (std::size_t i = 4; i < tok.size(); ++i) {
                    if (!std::isdigit(
                            static_cast<unsigned char>(tok[i])))
                        fail(line_no, col,
                             "bad VC suffix in '" + tok + "'");
                    n = n * 10 + (tok[i] - '0');
                }
                if (n < 1)
                    fail(line_no, col,
                         "VC count must be >= 1 in '" + tok + "'");
                e.vcs = n;
            }
            if (!node_pos.count(e.a))
                fail(line_no, col,
                     std::string("unknown node '") + e.a + "' in '" + tok
                         + "'");
            if (!node_pos.count(e.b))
                fail(line_no, col,
                     std::string("unknown node '") + e.b + "' in '" + tok
                         + "'");
            if (e.a == e.b)
                fail(line_no, col,
                     "self-link '" + tok + "' is not allowed");
            edges.push_back(e);
        }
    }

    // Node ids in ASCII order of the node characters.
    std::vector<std::string> names;
    std::vector<Coord> coords;
    std::map<char, NodeId> id_of;
    for (const auto &[ch, pos] : node_pos) {
        id_of[ch] = static_cast<NodeId>(names.size());
        names.emplace_back(1, ch);
        coords.push_back(Coord{static_cast<int>(pos.second),
                               static_cast<int>(pos.first)});
    }

    std::vector<Link> links;
    std::vector<std::pair<NodeId, NodeId>> dead;
    for (const RawEdge &e : edges) {
        const NodeId a = id_of.at(e.a);
        const NodeId b = id_of.at(e.b);
        auto emit = [&](NodeId s, NodeId d, Sign sign) {
            if (e.dead) {
                dead.emplace_back(s, d);
                return;
            }
            Link l;
            l.src = s;
            l.dst = d;
            l.dim = e.dim;
            l.travelSign = sign;
            l.classSign = sign;
            l.vcs = e.vcs;
            links.push_back(l);
        };
        // Picture runs were collected a-before-b in reading order, so
        // a->b is the Pos (rightward / downward) direction.
        if (e.forward)
            emit(a, b, Sign::Pos);
        if (e.backward)
            emit(b, a, Sign::Neg);
    }

    // NB: take the count first — argument evaluation order is
    // unspecified, so names.size() inline would race the move.
    const std::size_t num_nodes = names.size();
    AsciiMap result{Network::fromGraph(num_nodes, std::move(links),
                                       std::move(names),
                                       std::move(coords)),
                    std::move(dead)};
    return result;
}

} // namespace ebda::topo
