/**
 * @file
 * ASCII-map topology DSL: declare a Network by drawing it.
 *
 * A map is a picture of single-character nodes joined by connector
 * runs, optionally followed by explicit edge-list lines for links a
 * planar picture cannot draw (full meshes, dragonfly global links):
 *
 *     A--B==C
 *     |     !
 *     D--E--F
 *     + A<F  C-D:3  BxE
 *
 * Picture grammar:
 *  - Node: any alphanumeric character except 'x', unique per map.
 *  - Horizontal run between two nodes on one row, chars '-', '=',
 *    '<', '>', 'x':
 *      '-'  bidirectional, default VC count
 *      '='  bidirectional, 2 VCs per direction
 *      '>'  left-to-right only;  '<'  right-to-left only
 *      'x'  dead link: declared, then removed and reported
 *  - Vertical run between two nodes in one column, chars '|', '!', 'x':
 *      '|'  bidirectional, default VCs;  '!'  2 VCs;  'x' dead
 *  - Adjacent nodes with no connector between them are not linked.
 *    Runs may not cross; connectors not attached to nodes on both
 *    ends are an error.
 *
 * Edge-list lines start with '+' and hold whitespace-separated tokens
 * `A-B` / `A=B` / `A>B` / `A<B` / `AxB`, each optionally suffixed
 * `:N` for N VCs (e.g. `C-D:3`).
 *
 * Classification: horizontal links are dimension 0 (Pos = rightward),
 * vertical links dimension 1 (Pos = downward), so EbDa-style analyses
 * work on drawn meshes. Edge-list links carry kUnclassifiedDim. Node
 * ids are assigned in ASCII order of the node characters, and node
 * coordinates are the (column, row) character positions.
 *
 * Parse errors throw std::invalid_argument with a position-named
 * message ("ascii_map: line 2, col 5: ...").
 */

#ifndef EBDA_TOPO_ASCII_MAP_HH
#define EBDA_TOPO_ASCII_MAP_HH

#include <string>
#include <utility>
#include <vector>

#include "topo/network.hh"

namespace ebda::topo {

struct AsciiMapOptions
{
    /** VC count for '-', '|' and unsuffixed edge-list links. */
    int defaultVcs = 1;
};

/** A parsed map: the live network plus the dead links that were drawn
 *  with 'x' markers (already removed from the network; both directions
 *  listed for bidirectional dead links). */
struct AsciiMap
{
    Network network;
    std::vector<std::pair<NodeId, NodeId>> deadLinks;
};

AsciiMap parseAsciiMap(const std::string &map,
                       const AsciiMapOptions &opts = {});

} // namespace ebda::topo

#endif // EBDA_TOPO_ASCII_MAP_HH
