#include "turn_cdg.hh"

namespace ebda::cdg {

graph::Digraph
buildTurnCdg(const topo::Network &net, const ClassMap &map,
             const core::TurnSet &turns)
{
    graph::Digraph g(net.numChannels());
    for (topo::ChannelId c1 = 0; c1 < net.numChannels(); ++c1) {
        const ClassIndex k1 = map.classOf(c1);
        if (k1 == kUnclassified)
            continue;
        const topo::NodeId via = net.link(net.linkOf(c1)).dst;
        for (topo::ChannelId c2 : net.outChannels(via)) {
            const ClassIndex k2 = map.classOf(c2);
            if (k2 == kUnclassified)
                continue;
            if (turns.allows(map.classAt(k1), map.classAt(k2)))
                g.addEdge(c1, c2);
        }
    }
    return g;
}

CdgReport
checkDeadlockFree(const topo::Network &net,
                  const core::PartitionScheme &scheme,
                  const core::TurnExtractionOptions &opts)
{
    const ClassMap map(net, scheme);
    const core::TurnSet turns = core::TurnSet::extract(scheme, opts);
    return checkDeadlockFree(net, map, turns);
}

CdgReport
checkDeadlockFree(const topo::Network &net, const ClassMap &map,
                  const core::TurnSet &turns)
{
    const graph::Digraph g = buildTurnCdg(net, map, turns);
    const graph::CycleReport cyc = graph::findCycle(g);

    CdgReport report;
    report.deadlockFree = cyc.acyclic;
    report.numChannels = map.numClassifiedChannels();
    report.numDependencies = g.numEdges();
    for (graph::NodeId n : cyc.cycle)
        report.witness.push_back(net.channelName(n));
    return report;
}

} // namespace ebda::cdg
