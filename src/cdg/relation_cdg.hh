/**
 * @file
 * Dally's channel dependency graph for an arbitrary routing relation.
 *
 * The CDG contains an edge c1 -> c2 when, for some destination, the
 * routing relation can route a packet that holds c1 onto c2. Only
 * dependencies that are *reachable* count: c1 must itself be acquirable
 * for that destination starting from some source. Acyclicity of this
 * graph is Dally's necessary-and-sufficient deadlock-freedom condition
 * for the relation.
 *
 * This is the verifier used for handcrafted baselines (XY, Odd-Even,
 * Duato-style, Elevator-First, ...) that are not expressed as EbDa
 * schemes, and it cross-checks the turn-level oracle on EbDa-derived
 * routing functions.
 */

#ifndef EBDA_CDG_RELATION_CDG_HH
#define EBDA_CDG_RELATION_CDG_HH

#include "cdg/routing_relation.hh"
#include "cdg/turn_cdg.hh"
#include "graph/digraph.hh"

namespace ebda::cdg {

/** Build the reachable-dependency CDG of a routing relation. */
graph::Digraph buildRelationCdg(const RoutingRelation &relation);

/** Build the CDG and run the acyclicity check with witness reporting. */
CdgReport checkDeadlockFree(const RoutingRelation &relation);

/** Result of the connectivity check. */
struct ConnectivityReport
{
    bool connected = true;
    /** Pairs (src, dest) that cannot be routed; empty when connected. */
    std::vector<std::pair<topo::NodeId, topo::NodeId>> failures;
    /** Cap on recorded failures. */
    static constexpr std::size_t kMaxFailures = 16;
};

/**
 * Verify every source can deliver to every destination: from injection
 * at src, following candidate channels, the destination is reachable and
 * no reachable state is stuck (non-empty candidates until arrival).
 */
ConnectivityReport checkConnectivity(const RoutingRelation &relation);

} // namespace ebda::cdg

#endif // EBDA_CDG_RELATION_CDG_HH
