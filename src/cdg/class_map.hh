/**
 * @file
 * Lowering of EbDa channel classes onto a concrete network: assigns each
 * concrete (link, VC) channel to the unique matching class of a
 * partition scheme.
 *
 * Channels matching no class are *unclassified* — they exist physically
 * but the scheme's routing never uses them (e.g. VC 3 of a dimension the
 * scheme only uses two VCs of). Disjointness of the scheme guarantees at
 * most one class matches each channel; this is asserted because a double
 * match would mean Definition 6 was violated.
 */

#ifndef EBDA_CDG_CLASS_MAP_HH
#define EBDA_CDG_CLASS_MAP_HH

#include <cstdint>
#include <vector>

#include "core/partition.hh"
#include "topo/network.hh"

namespace ebda::cdg {

/** Index of a class within a scheme's flattened class list. */
using ClassIndex = std::int32_t;

/** Marker for channels no class covers. */
constexpr ClassIndex kUnclassified = -1;

/**
 * The channel -> class assignment of one scheme on one network.
 */
class ClassMap
{
  public:
    /** Build the assignment; panics when a channel matches two classes
     *  (the scheme would not be disjoint on this network). */
    ClassMap(const topo::Network &net,
             const core::PartitionScheme &scheme);

    /** Build from a bare class list (all classes in partition 0); used
     *  for explicit turn models with no partition structure. */
    ClassMap(const topo::Network &net, const core::ClassList &classes);

    /** Class index of a channel, or kUnclassified. */
    ClassIndex classOf(topo::ChannelId ch) const { return assignment[ch]; }

    /** The class at a class index. */
    const core::ChannelClass &classAt(ClassIndex i) const
    {
        return classes[static_cast<std::size_t>(i)];
    }

    /** Partition index (scheme order) of a class index. */
    std::size_t partitionOf(ClassIndex i) const
    {
        return classPartition[static_cast<std::size_t>(i)];
    }

    /** Number of classes in the scheme. */
    std::size_t numClasses() const { return classes.size(); }

    /** Number of channels assigned to some class. */
    std::size_t numClassifiedChannels() const { return classifiedCount; }

    /** Channels assigned to class i. */
    std::vector<topo::ChannelId> channelsOfClass(ClassIndex i) const;

    const topo::Network &network() const { return net; }

  private:
    void buildAssignment();

    const topo::Network &net;
    core::ClassList classes;
    std::vector<std::size_t> classPartition;
    std::vector<ClassIndex> assignment;
    std::size_t classifiedCount = 0;
};

} // namespace ebda::cdg

#endif // EBDA_CDG_CLASS_MAP_HH
