/**
 * @file
 * Duato-style verification for fully adaptive routing with escape
 * channels — the comparison theory of Section 2.
 *
 * Duato's 1993 theorem: a fully adaptive relation is deadlock-free if a
 * subset of channels (the *escape* channels) forms a connected routing
 * subfunction whose (extended) channel dependency graph is acyclic.
 * This checker verifies the practically sufficient design rule used for
 * dimension-order escape VCs:
 *   (a) the escape subrelation is acyclic (escape-to-escape
 *       dependencies only),
 *   (b) the escape subrelation alone delivers every (src, dest) pair,
 *   (c) every reachable routing state offers at least one escape
 *       candidate (packets can always fall back when blocked).
 * For a dimension-order escape on a mesh these conditions coincide with
 * Duato's theorem (there are no indirect escape dependencies through
 * adaptive channels under DOR); the general theorem's extended-
 * dependency analysis is out of scope and documented as such.
 *
 * Note the contrast exercised by tests/benches: the *full* CDG of such
 * a relation is cyclic (Dally's check fails) while this check passes —
 * and it only holds under atomic VC buffers (Duato Assumption 3),
 * which the simulator's atomicVcAllocation models.
 */

#ifndef EBDA_CDG_DUATO_CHECK_HH
#define EBDA_CDG_DUATO_CHECK_HH

#include <functional>

#include "cdg/routing_relation.hh"

namespace ebda::cdg {

/** Predicate selecting the escape channels of a relation. */
using EscapePredicate = std::function<bool(topo::ChannelId)>;

/** Outcome of the Duato-style check. */
struct DuatoReport
{
    /** All three conditions hold. */
    bool ok = true;
    /** (a) escape-subrelation CDG acyclic. */
    bool escapeAcyclic = true;
    /** (b) escape subrelation connects every pair. */
    bool escapeConnected = true;
    /** (c) every reachable state has an escape candidate. */
    bool escapeAlwaysAvailable = true;
    /** Number of escape channels found. */
    std::size_t numEscapeChannels = 0;
};

/**
 * Run the Duato-style check on a relation.
 */
DuatoReport checkDuatoDeadlockFree(const RoutingRelation &relation,
                                   const EscapePredicate &is_escape);

} // namespace ebda::cdg

#endif // EBDA_CDG_DUATO_CHECK_HH
