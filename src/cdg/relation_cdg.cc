#include "relation_cdg.hh"

#include <vector>

#include "util/logging.hh"

namespace ebda::cdg {

graph::Digraph
buildRelationCdg(const RoutingRelation &relation)
{
    const topo::Network &net = relation.network();
    graph::Digraph g(net.numChannels());

    // Per (src, dest) pair: forward closure over acquirable channels,
    // adding each dependency discovered along the way. Epoch-stamped
    // visitation avoids clearing the visited array per pair.
    std::vector<std::uint32_t> stamp(net.numChannels(), 0);
    std::uint32_t epoch = 0;
    std::vector<topo::ChannelId> frontier;

    for (topo::NodeId dest = 0; dest < net.numNodes(); ++dest) {
        for (topo::NodeId src = 0; src < net.numNodes(); ++src) {
            if (src == dest)
                continue;
            ++epoch;
            frontier.clear();

            for (topo::ChannelId c :
                 relation.candidates(kInjectionChannel, src, src, dest)) {
                if (stamp[c] != epoch) {
                    stamp[c] = epoch;
                    frontier.push_back(c);
                }
            }

            while (!frontier.empty()) {
                const topo::ChannelId c1 = frontier.back();
                frontier.pop_back();
                const topo::NodeId at = net.link(net.linkOf(c1)).dst;
                if (at == dest)
                    continue; // packet ejects; no further dependencies
                for (topo::ChannelId c2 :
                     relation.candidates(c1, at, src, dest)) {
                    g.addEdge(c1, c2);
                    if (stamp[c2] != epoch) {
                        stamp[c2] = epoch;
                        frontier.push_back(c2);
                    }
                }
            }
        }
    }
    return g;
}

CdgReport
checkDeadlockFree(const RoutingRelation &relation)
{
    const topo::Network &net = relation.network();
    const graph::Digraph g = buildRelationCdg(relation);
    const graph::CycleReport cyc = graph::findCycle(g);

    CdgReport report;
    report.deadlockFree = cyc.acyclic;
    report.numChannels = net.numChannels();
    report.numDependencies = g.numEdges();
    for (graph::NodeId n : cyc.cycle)
        report.witness.push_back(net.channelName(n));
    return report;
}

ConnectivityReport
checkConnectivity(const RoutingRelation &relation)
{
    const topo::Network &net = relation.network();
    ConnectivityReport report;

    std::vector<std::uint8_t> visited(net.numChannels());
    std::vector<topo::ChannelId> frontier;

    for (topo::NodeId dest = 0; dest < net.numNodes(); ++dest) {
        for (topo::NodeId src = 0; src < net.numNodes(); ++src) {
            if (src == dest)
                continue;
            std::fill(visited.begin(), visited.end(), 0);
            frontier.clear();
            bool arrived = false;
            bool stuck = false;

            const auto inject =
                relation.candidates(kInjectionChannel, src, src, dest);
            if (inject.empty())
                stuck = true;
            for (topo::ChannelId c : inject) {
                if (!visited[c]) {
                    visited[c] = 1;
                    frontier.push_back(c);
                }
            }

            while (!frontier.empty()) {
                const topo::ChannelId c1 = frontier.back();
                frontier.pop_back();
                const topo::NodeId at = net.link(net.linkOf(c1)).dst;
                if (at == dest) {
                    arrived = true;
                    continue;
                }
                const auto next = relation.candidates(c1, at, src, dest);
                if (next.empty())
                    stuck = true;
                for (topo::ChannelId c2 : next) {
                    if (!visited[c2]) {
                        visited[c2] = 1;
                        frontier.push_back(c2);
                    }
                }
            }

            // The pair is routable when the destination is reachable and
            // no reachable state dead-ends (a dead-ending branch is a
            // hazard: an adaptive router may commit to it).
            if (!arrived || stuck) {
                report.connected = false;
                if (report.failures.size()
                    < ConnectivityReport::kMaxFailures) {
                    report.failures.emplace_back(src, dest);
                }
            }
        }
    }
    return report;
}

} // namespace ebda::cdg
