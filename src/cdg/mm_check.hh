/**
 * @file
 * The Mendlovic–Matias condition as an executable deadlock-freedom
 * checker (arXiv 2503.04583): a routing relation on an arbitrary
 * directed graph is deadlock-free iff there is a channel order such
 * that every reachable packet state can always escape into a channel
 * released before its own — equivalently, iff the iterated-release
 * fixpoint peels every occupiable channel.
 *
 * checkMendlovicMatias() runs that fixpoint on the *states* of a
 * routing relation. A channel is releasable when every reachable
 * non-ejecting state occupying it has at least one candidate channel
 * already released (ejecting states are trivially fine). Repeating to
 * a fixpoint yields either
 *
 *   - a release order covering every occupiable channel — a
 *     certificate of deadlock freedom (the MM channel order), or
 *   - a non-empty residual set in which every channel has a state
 *     whose candidates all lie inside the set — a deadlock knot, i.e.
 *     a fillable configuration in which no packet can ever advance.
 *
 * Relationship to the Dally relation-CDG oracle (relation_cdg.hh):
 * for deterministic relations the two verdicts coincide (single-
 * candidate states make "some candidate released" = "the successor is
 * released", so the fixpoint peels exactly the channels that reach no
 * CDG cycle). For adaptive relations with escape paths the CDG test is
 * conservative while this one is exact: the repo's Duato relation has
 * a cyclic full CDG yet peels completely here. The fixpoint also
 * flags relations with reachable dead-end states (a stuck packet
 * holds its channel forever), which acyclicity alone cannot see.
 *
 * deadlockFreeRoutingExists() answers the companion *existence*
 * question on a raw digraph: is there ANY complete deadlock-free
 * routing? By the MM equivalence this holds iff the edges can be
 * totally ordered so every connected node pair has a rank-ascending
 * path. The checker is exact for small graphs (exhaustive order search
 * with pruning), constructive for bidirected graphs (up/down order on
 * a BFS tree), and falls back to a greedy order plus a forced-
 * dependency-cycle refutation elsewhere; it may return Undetermined.
 */

#ifndef EBDA_CDG_MM_CHECK_HH
#define EBDA_CDG_MM_CHECK_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cdg/routing_relation.hh"
#include "graph/digraph.hh"

namespace ebda::cdg {

/** Result of the Mendlovic–Matias fixpoint on a routing relation. */
struct MmReport
{
    /** True when every occupiable channel was released. */
    bool deadlockFree = false;

    std::size_t numChannels = 0;
    /** Channels some reachable packet can occupy. */
    std::size_t occupiableChannels = 0;
    /** Reachable non-ejecting (channel, src, dest) states examined. */
    std::size_t numStates = 0;

    /**
     * Channel release order — the MM order certificate. Contains every
     * occupiable channel when deadlock-free (never-occupied channels
     * are omitted; they cannot participate in a deadlock).
     */
    std::vector<topo::ChannelId> releaseOrder;

    /** When not deadlock-free: names of residual knot channels (capped
     *  at kMaxWitness). */
    std::vector<std::string> stuckWitness;
    static constexpr std::size_t kMaxWitness = 16;
};

MmReport checkMendlovicMatias(const RoutingRelation &relation);

/** Verdict of the routing-existence question on a raw digraph. */
struct ExistenceReport
{
    enum class Verdict : std::uint8_t
    {
        /** A complete deadlock-free routing exists (order certificate
         *  attached). */
        Exists,
        /** No complete deadlock-free routing exists. */
        NotExists,
        /** The heuristics were inconclusive. */
        Undetermined,
    };

    Verdict verdict = Verdict::Undetermined;

    /** How the verdict was reached: "exact", "updown-order",
     *  "greedy-order" or "forced-cycle". */
    std::string method;

    /**
     * Exists: the edge order, ascending — every connected pair has a
     * rank-ascending path. NotExists via "forced-cycle": the cycle of
     * forced dependencies (e0, e1, ..., ek-1) where each ei's
     * continuation into e(i+1 mod k) is unavoidable; empty for "exact".
     */
    std::vector<std::pair<graph::NodeId, graph::NodeId>> certificate;
};

/**
 * Does ANY complete deadlock-free routing exist on this digraph?
 * "Complete" means every ordered pair (s, t) with t reachable from s
 * must be routed.
 */
ExistenceReport deadlockFreeRoutingExists(const graph::Digraph &g);

} // namespace ebda::cdg

#endif // EBDA_CDG_MM_CHECK_HH
