#include "turn_model_enum.hh"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "cdg/adaptivity.hh"
#include "cdg/class_map.hh"
#include "cdg/turn_cdg.hh"
#include "core/turns.hh"
#include "util/logging.hh"

namespace ebda::cdg {

using core::ChannelClass;
using core::makeClass;
using core::Sign;

std::vector<AbstractCycle>
abstractCycles(std::uint8_t n, const std::vector<int> &vcs)
{
    EBDA_ASSERT(vcs.size() >= n, "vcs shorter than dimensionality");
    std::vector<AbstractCycle> cycles;
    for (std::uint8_t a = 0; a < n; ++a) {
        for (std::uint8_t b = a + 1; b < n; ++b) {
            for (int va = 0; va < vcs[a]; ++va) {
                for (int vb = 0; vb < vcs[b]; ++vb) {
                    const ChannelClass ap =
                        makeClass(a, Sign::Pos,
                                  static_cast<std::uint8_t>(va));
                    const ChannelClass am =
                        makeClass(a, Sign::Neg,
                                  static_cast<std::uint8_t>(va));
                    const ChannelClass bp =
                        makeClass(b, Sign::Pos,
                                  static_cast<std::uint8_t>(vb));
                    const ChannelClass bm =
                        makeClass(b, Sign::Neg,
                                  static_cast<std::uint8_t>(vb));

                    AbstractCycle cw;
                    cw.dimA = a;
                    cw.dimB = b;
                    cw.vcA = static_cast<std::uint8_t>(va);
                    cw.vcB = static_cast<std::uint8_t>(vb);
                    cw.clockwise = true;
                    cw.turns = {{{ap, bm}, {bm, am}, {am, bp}, {bp, ap}}};
                    cycles.push_back(cw);

                    AbstractCycle ccw = cw;
                    ccw.clockwise = false;
                    ccw.turns = {{{ap, bp}, {bp, am}, {am, bm}, {bm, ap}}};
                    cycles.push_back(ccw);
                }
            }
        }
    }
    return cycles;
}

TurnModelSpace
turnModelSpace(std::uint8_t n, const std::vector<int> &vcs)
{
    TurnModelSpace space;
    space.numCycles = abstractCycles(n, vcs).size();
    space.numCombinations =
        std::pow(4.0, static_cast<double>(space.numCycles));
    return space;
}

TurnModelEnumResult
enumerateTurnModels(const topo::Network &net,
                    std::size_t max_combinations)
{
    const std::uint8_t n = net.numDims();
    const std::vector<int> &vcs = net.vcs();
    const auto cycles = abstractCycles(n, vcs);

    // Universe of 90-degree turns and the class list.
    core::ClassList classes;
    for (std::uint8_t d = 0; d < n; ++d) {
        for (int v = 0; v < vcs[d]; ++v) {
            classes.push_back(makeClass(d, Sign::Pos,
                                        static_cast<std::uint8_t>(v)));
            classes.push_back(makeClass(d, Sign::Neg,
                                        static_cast<std::uint8_t>(v)));
        }
    }
    std::vector<std::pair<ChannelClass, ChannelClass>> universe;
    std::unordered_map<std::string, std::size_t> turn_index;
    for (const auto &c1 : classes) {
        for (const auto &c2 : classes) {
            if (c1.dim == c2.dim)
                continue;
            turn_index.emplace(c1.algebraic() + c2.algebraic(),
                               universe.size());
            universe.emplace_back(c1, c2);
        }
    }
    EBDA_ASSERT(universe.size() <= 64,
                "turn universe exceeds 64 turns; enumeration unsupported");

    // Index each cycle's turns into the universe.
    std::vector<std::array<std::size_t, 4>> cycle_idx(cycles.size());
    for (std::size_t i = 0; i < cycles.size(); ++i) {
        for (std::size_t t = 0; t < 4; ++t) {
            const auto &[from, to] = cycles[i].turns[t];
            cycle_idx[i][t] =
                turn_index.at(from.algebraic() + to.algebraic());
        }
    }

    const std::uint64_t full_mask =
        universe.size() == 64 ? ~0ULL : (1ULL << universe.size()) - 1;
    const ClassMap map(net, classes);

    TurnModelEnumResult result;
    std::unordered_map<std::uint64_t, std::pair<bool, bool>> verdicts;
    std::unordered_set<std::uint64_t> free_sets;

    std::vector<std::size_t> choice(cycles.size(), 0);
    while (result.combinations < max_combinations) {
        ++result.combinations;

        std::uint64_t removed = 0;
        for (std::size_t i = 0; i < cycles.size(); ++i)
            removed |= 1ULL << cycle_idx[i][choice[i]];
        const std::uint64_t allowed_mask = full_mask & ~removed;

        auto it = verdicts.find(allowed_mask);
        if (it == verdicts.end()) {
            std::vector<std::pair<ChannelClass, ChannelClass>> allowed;
            for (std::size_t t = 0; t < universe.size(); ++t)
                if (allowed_mask & (1ULL << t))
                    allowed.push_back(universe[t]);
            const core::TurnSet set =
                core::TurnSet::fromExplicit(classes, allowed);
            const graph::Digraph g = buildTurnCdg(net, map, set);
            const bool acyclic = graph::isAcyclic(g);
            bool connected = false;
            if (acyclic) {
                const auto adapt = measureAdaptiveness(net, map, set);
                connected = !adapt.disconnectedMinimal;
            }
            it = verdicts.emplace(allowed_mask,
                                  std::make_pair(acyclic, connected))
                     .first;
        }
        if (it->second.first) {
            ++result.deadlockFree;
            free_sets.insert(allowed_mask);
            if (it->second.second)
                ++result.connected;
        }

        // Advance the odometer.
        std::size_t i = 0;
        while (i < choice.size()) {
            if (++choice[i] < 4)
                break;
            choice[i] = 0;
            ++i;
        }
        if (i == choice.size())
            break;
    }
    result.distinctDeadlockFreeSets = free_sets.size();
    return result;
}

} // namespace ebda::cdg
