#include "mm_check.hh"

#include <algorithm>
#include <cstddef>

#include "graph/cycles.hh"
#include "util/logging.hh"

namespace ebda::cdg {

using topo::ChannelId;
using topo::NodeId;

// ---------------------------------------------------------------------
// Relation-level fixpoint
// ---------------------------------------------------------------------

MmReport
checkMendlovicMatias(const RoutingRelation &relation)
{
    const topo::Network &net = relation.network();
    const std::size_t nc = net.numChannels();

    MmReport report;
    report.numChannels = nc;

    // Phase 1: enumerate every reachable packet state. A state is
    // (channel, src, dest) with the packet's head at the channel's
    // sink. Ejecting states (head == dest) impose no release
    // obligation; non-ejecting states record their candidate set.
    std::vector<std::uint8_t> occupied(nc, 0);
    std::vector<std::uint32_t> pending(nc, 0);

    std::vector<ChannelId> stateChannel;
    std::vector<std::uint32_t> candOffset;
    std::vector<ChannelId> candPool;

    {
        std::vector<std::uint32_t> stamp(nc, 0);
        std::uint32_t epoch = 0;
        std::vector<ChannelId> frontier;

        for (NodeId dest = 0; dest < net.numNodes(); ++dest) {
            for (NodeId src = 0; src < net.numNodes(); ++src) {
                if (src == dest)
                    continue;
                ++epoch;
                frontier.clear();
                for (ChannelId c : relation.candidates(kInjectionChannel,
                                                       src, src, dest)) {
                    if (stamp[c] != epoch) {
                        stamp[c] = epoch;
                        frontier.push_back(c);
                    }
                }
                while (!frontier.empty()) {
                    const ChannelId c1 = frontier.back();
                    frontier.pop_back();
                    occupied[c1] = 1;
                    const NodeId at = net.link(net.linkOf(c1)).dst;
                    if (at == dest)
                        continue; // ejecting state: trivially released
                    stateChannel.push_back(c1);
                    candOffset.push_back(
                        static_cast<std::uint32_t>(candPool.size()));
                    ++pending[c1];
                    for (ChannelId c2 :
                         relation.candidates(c1, at, src, dest)) {
                        candPool.push_back(c2);
                        if (stamp[c2] != epoch) {
                            stamp[c2] = epoch;
                            frontier.push_back(c2);
                        }
                    }
                }
            }
        }
    }
    candOffset.push_back(static_cast<std::uint32_t>(candPool.size()));
    report.numStates = stateChannel.size();
    for (std::size_t c = 0; c < nc; ++c)
        if (occupied[c])
            ++report.occupiableChannels;

    // Reverse index: candidate channel -> states waiting on it.
    std::vector<std::uint32_t> byCandOffset(nc + 1, 0);
    for (ChannelId c : candPool)
        ++byCandOffset[c + 1];
    for (std::size_t c = 0; c < nc; ++c)
        byCandOffset[c + 1] += byCandOffset[c];
    std::vector<std::uint32_t> byCand(candPool.size());
    {
        std::vector<std::uint32_t> cursor(byCandOffset.begin(),
                                          byCandOffset.end() - 1);
        for (std::size_t i = 0; i < stateChannel.size(); ++i)
            for (std::uint32_t k = candOffset[i]; k < candOffset[i + 1];
                 ++k)
                byCand[cursor[candPool[k]]++] =
                    static_cast<std::uint32_t>(i);
    }

    // Phase 2: iterated release as a worklist fixpoint. A channel is
    // released once every state on it has some released candidate.
    std::vector<std::uint8_t> released(nc, 0);
    std::vector<std::uint8_t> stateOk(stateChannel.size(), 0);
    std::vector<ChannelId> queue;

    auto release = [&](ChannelId c) {
        if (!released[c]) {
            released[c] = 1;
            if (occupied[c])
                report.releaseOrder.push_back(c);
            queue.push_back(c);
        }
    };
    for (std::size_t c = 0; c < nc; ++c)
        if (pending[c] == 0)
            release(static_cast<ChannelId>(c));

    for (std::size_t head = 0; head < queue.size(); ++head) {
        const ChannelId d = queue[head];
        for (std::uint32_t k = byCandOffset[d]; k < byCandOffset[d + 1];
             ++k) {
            const std::uint32_t s = byCand[k];
            if (stateOk[s])
                continue;
            stateOk[s] = 1;
            if (--pending[stateChannel[s]] == 0)
                release(stateChannel[s]);
        }
    }

    report.deadlockFree = true;
    for (std::size_t c = 0; c < nc; ++c) {
        if (occupied[c] && !released[c]) {
            report.deadlockFree = false;
            if (report.stuckWitness.size() < MmReport::kMaxWitness)
                report.stuckWitness.push_back(
                    net.channelName(static_cast<ChannelId>(c)));
        }
    }
    return report;
}

// ---------------------------------------------------------------------
// Existence on a raw digraph
// ---------------------------------------------------------------------

namespace {

using graph::Digraph;
using GNode = graph::NodeId;
using Edge = std::pair<GNode, GNode>;

std::vector<Edge>
edgeList(const Digraph &g)
{
    std::vector<Edge> edges;
    for (GNode u = 0; u < g.numNodes(); ++u)
        for (GNode v : g.successors(u))
            edges.emplace_back(u, v);
    return edges;
}

/** All-pairs reachability (excluding the trivial s == s unless cyclic),
 *  optionally skipping one edge; row-major n*n. */
std::vector<std::uint8_t>
reachability(const Digraph &g, const std::vector<Edge> &edges,
             std::size_t skip_edge = static_cast<std::size_t>(-1))
{
    const std::size_t n = g.numNodes();
    std::vector<std::uint8_t> reach(n * n, 0);
    std::vector<GNode> queue;
    for (GNode s = 0; s < n; ++s) {
        std::uint8_t *row = reach.data() + s * n;
        queue.clear();
        queue.push_back(s);
        std::vector<std::uint8_t> seen(n, 0);
        seen[s] = 1;
        for (std::size_t head = 0; head < queue.size(); ++head) {
            const GNode u = queue[head];
            for (GNode v : g.successors(u)) {
                if (skip_edge != static_cast<std::size_t>(-1)
                    && edges[skip_edge] == Edge{u, v})
                    continue;
                if (!seen[v]) {
                    seen[v] = 1;
                    row[v] = 1;
                    queue.push_back(v);
                }
            }
        }
    }
    return reach;
}

/**
 * True when the given ascending edge order gives every reachable pair a
 * rank-ascending path. P[s][t] is built incrementally: when edge (u,v)
 * is appended (highest rank so far), any ascending path reaching u —
 * or u itself — extends to v.
 */
bool
orderCovers(std::size_t n, const std::vector<Edge> &order,
            const std::vector<std::uint8_t> &reach)
{
    std::vector<std::uint8_t> p(n * n, 0);
    for (const auto &[u, v] : order)
        for (std::size_t s = 0; s < n; ++s)
            if (s == u || p[s * n + u])
                p[s * n + v] = 1;
    for (std::size_t s = 0; s < n; ++s)
        for (std::size_t t = 0; t < n; ++t)
            if (s != t && reach[s * n + t] && !p[s * n + t])
                return false;
    return true;
}

/** Exhaustive order search for tiny graphs. Returns 1 (order found,
 *  written to *found), 0 (no order exists) or -1 (node budget hit). */
int
exactSearch(std::size_t n, const std::vector<Edge> &edges,
            const std::vector<std::uint8_t> &reach,
            std::vector<Edge> *found)
{
    const std::size_t m = edges.size();
    std::vector<Edge> order;
    std::vector<bool> used(m, false);
    std::vector<std::vector<std::uint8_t>> pstack;
    pstack.emplace_back(n * n, 0);
    std::size_t budget = 2'000'000;

    // Iterative DFS with explicit choice stack.
    struct Frame
    {
        std::size_t next_choice = 0;
    };
    std::vector<Frame> stack(1);

    auto covered = [&](const std::vector<std::uint8_t> &p) {
        for (std::size_t s = 0; s < n; ++s)
            for (std::size_t t = 0; t < n; ++t)
                if (s != t && reach[s * n + t] && !p[s * n + t])
                    return false;
        return true;
    };
    // Optimistic bound: close P under unrestricted use of the unused
    // edges; a pair uncovered even then can never be covered.
    auto doomed = [&](const std::vector<std::uint8_t> &p) {
        std::vector<std::uint8_t> opt = p;
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t e = 0; e < m; ++e) {
                if (used[e])
                    continue;
                const auto &[u, v] = edges[e];
                for (std::size_t s = 0; s < n; ++s)
                    if ((s == u || opt[s * n + u]) && !opt[s * n + v]) {
                        opt[s * n + v] = 1;
                        changed = true;
                    }
            }
        }
        for (std::size_t s = 0; s < n; ++s)
            for (std::size_t t = 0; t < n; ++t)
                if (s != t && reach[s * n + t] && !opt[s * n + t])
                    return true;
        return false;
    };

    while (!stack.empty()) {
        if (covered(pstack.back())) {
            *found = order;
            // Complete the certificate into a total order; edges above
            // the covering prefix cannot break ascent of existing paths.
            for (std::size_t e = 0; e < m; ++e)
                if (!used[e])
                    found->push_back(edges[e]);
            return 1;
        }
        Frame &f = stack.back();
        bool descended = false;
        while (f.next_choice < m) {
            const std::size_t e = f.next_choice++;
            if (used[e])
                continue;
            if (budget-- == 0)
                return -1;
            std::vector<std::uint8_t> p = pstack.back();
            const auto &[u, v] = edges[e];
            for (std::size_t s = 0; s < n; ++s)
                if (s == u || p[s * n + u])
                    p[s * n + v] = 1;
            used[e] = true;
            order.push_back(edges[e]);
            if (doomed(p)) {
                used[e] = false;
                order.pop_back();
                continue;
            }
            pstack.push_back(std::move(p));
            stack.emplace_back();
            descended = true;
            break;
        }
        if (!descended) {
            stack.pop_back();
            pstack.pop_back();
            if (!order.empty()) {
                // Un-take the edge the parent frame chose.
                for (std::size_t e = 0; e < m; ++e)
                    if (used[e] && edges[e] == order.back()) {
                        used[e] = false;
                        break;
                    }
                order.pop_back();
            }
        }
    }
    return 0;
}

/** True when every edge has its reverse. */
bool
isBidirected(const Digraph &g)
{
    for (GNode u = 0; u < g.numNodes(); ++u)
        for (GNode v : g.successors(u))
            if (!g.hasEdge(v, u))
                return false;
    return true;
}

/**
 * Up/down edge order on a bidirected graph: BFS-forest levels orient
 * every edge; up edges rank below down edges, ups by strictly
 * decreasing (level, id) of their source along any legal path, downs
 * by strictly increasing (level, id). Rank-ascending paths are exactly
 * the up-then-down paths, which cover every connected pair.
 */
std::vector<Edge>
upDownOrder(const Digraph &g, const std::vector<Edge> &edges)
{
    const std::size_t n = g.numNodes();
    std::vector<std::uint32_t> level(n, 0xffffffffu);
    std::vector<GNode> queue;
    for (GNode root = 0; root < n; ++root) {
        if (level[root] != 0xffffffffu)
            continue;
        level[root] = 0;
        queue.clear();
        queue.push_back(root);
        for (std::size_t head = 0; head < queue.size(); ++head) {
            const GNode u = queue[head];
            for (GNode v : g.successors(u))
                if (level[v] == 0xffffffffu) {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                }
        }
    }

    // (level, id) descending rank for node order along up paths.
    std::vector<GNode> nodes(n);
    for (GNode i = 0; i < n; ++i)
        nodes[i] = i;
    std::sort(nodes.begin(), nodes.end(), [&](GNode a, GNode b) {
        if (level[a] != level[b])
            return level[a] > level[b];
        return a > b;
    });
    std::vector<std::uint32_t> downRank(n);
    for (std::size_t i = 0; i < n; ++i)
        downRank[nodes[i]] = static_cast<std::uint32_t>(i);

    auto isUp = [&](const Edge &e) {
        const auto &[u, v] = e;
        if (level[v] != level[u])
            return level[v] < level[u];
        return v < u;
    };
    std::vector<Edge> order = edges;
    std::sort(order.begin(), order.end(), [&](const Edge &a,
                                              const Edge &b) {
        const bool ua = isUp(a);
        const bool ub = isUp(b);
        if (ua != ub)
            return ua; // all ups before all downs
        if (ua) {
            // Up ranks follow the descending (level, id) node order of
            // their sources.
            if (downRank[a.first] != downRank[b.first])
                return downRank[a.first] < downRank[b.first];
        } else {
            // Down ranks follow ascending (level, id) of their sources.
            if (downRank[a.first] != downRank[b.first])
                return downRank[a.first] > downRank[b.first];
        }
        return a < b;
    });
    return order;
}

/**
 * Forced-dependency refutation: when edge e is unavoidable for some
 * pair and the packet's continuation after e is unique, every complete
 * routing contains that dependency; a cycle of forced dependencies
 * rules out deadlock freedom entirely.
 */
std::vector<Edge>
forcedDependencyCycle(const Digraph &g, const std::vector<Edge> &edges,
                      const std::vector<std::uint8_t> &reach)
{
    const std::size_t n = g.numNodes();
    const std::size_t m = edges.size();
    Digraph forced(m);

    for (std::size_t e = 0; e < m; ++e) {
        const auto without = reachability(g, edges, e);
        const auto &[u, v] = edges[e];
        for (GNode t = 0; t < n; ++t) {
            if (t == v)
                continue; // packet ejects at v, no continuation
            // Is e unavoidable for some (s, t)?
            bool unavoidable = false;
            for (GNode s = 0; s < n && !unavoidable; ++s)
                if (s != t && reach[s * n + t] && !without[s * n + t])
                    unavoidable = true;
            if (!unavoidable)
                continue;
            // Unique viable continuation out of v toward t?
            std::size_t viable = 0;
            std::size_t last = 0;
            for (std::size_t f = 0; f < m; ++f) {
                if (edges[f].first != v)
                    continue;
                const GNode w = edges[f].second;
                if (w == t || reach[w * n + t]) {
                    ++viable;
                    last = f;
                }
            }
            if (viable == 1)
                forced.addEdge(static_cast<GNode>(e),
                               static_cast<GNode>(last));
        }
    }

    const auto cyc = graph::findCycle(forced);
    std::vector<Edge> result;
    for (GNode e : cyc.cycle)
        result.push_back(edges[e]);
    return result;
}

} // namespace

ExistenceReport
deadlockFreeRoutingExists(const Digraph &g)
{
    ExistenceReport report;
    const std::vector<Edge> edges = edgeList(g);
    const std::size_t n = g.numNodes();
    const auto reach = reachability(g, edges);

    if (edges.empty()) {
        report.verdict = ExistenceReport::Verdict::Exists;
        report.method = "exact";
        return report;
    }

    // DAGs: order edges by topological position of their endpoints;
    // every path ascends, so all reachable pairs are covered.
    if (const auto topo_order = graph::topologicalSort(g)) {
        std::vector<std::uint32_t> rank(n);
        for (std::size_t i = 0; i < topo_order->size(); ++i)
            rank[(*topo_order)[i]] = static_cast<std::uint32_t>(i);
        std::vector<Edge> order = edges;
        std::sort(order.begin(), order.end(),
                  [&](const Edge &a, const Edge &b) {
                      if (rank[a.first] != rank[b.first])
                          return rank[a.first] < rank[b.first];
                      return rank[a.second] < rank[b.second];
                  });
        EBDA_ASSERT(orderCovers(n, order, reach),
                    "topological edge order must cover a DAG");
        report.verdict = ExistenceReport::Verdict::Exists;
        report.method = "topo-order";
        report.certificate = std::move(order);
        return report;
    }

    // Bidirected graphs always admit up/down routing.
    if (isBidirected(g)) {
        std::vector<Edge> order = upDownOrder(g, edges);
        EBDA_ASSERT(orderCovers(n, order, reach),
                    "up/down order must cover a bidirected graph");
        report.verdict = ExistenceReport::Verdict::Exists;
        report.method = "updown-order";
        report.certificate = std::move(order);
        return report;
    }

    // Tiny graphs: exhaustive order search is exact.
    constexpr std::size_t kExactEdgeLimit = 8;
    if (edges.size() <= kExactEdgeLimit) {
        std::vector<Edge> found;
        const int r = exactSearch(n, edges, reach, &found);
        if (r == 1) {
            report.verdict = ExistenceReport::Verdict::Exists;
            report.method = "exact";
            report.certificate = std::move(found);
            return report;
        }
        if (r == 0) {
            report.verdict = ExistenceReport::Verdict::NotExists;
            report.method = "exact";
            return report;
        }
    }

    // Refutation: a cycle of forced dependencies.
    std::vector<Edge> cycle = forcedDependencyCycle(g, edges, reach);
    if (!cycle.empty()) {
        report.verdict = ExistenceReport::Verdict::NotExists;
        report.method = "forced-cycle";
        report.certificate = std::move(cycle);
        return report;
    }

    // Last resort: a greedy order by SCC condensation position.
    {
        std::uint32_t num_scc = 0;
        const auto scc = graph::stronglyConnectedComponents(g, &num_scc);
        std::vector<Edge> order = edges;
        // Tarjan numbers components in reverse topological order.
        std::sort(order.begin(), order.end(),
                  [&](const Edge &a, const Edge &b) {
                      if (scc[a.first] != scc[b.first])
                          return scc[a.first] > scc[b.first];
                      if (scc[a.second] != scc[b.second])
                          return scc[a.second] > scc[b.second];
                      return a < b;
                  });
        if (orderCovers(n, order, reach)) {
            report.verdict = ExistenceReport::Verdict::Exists;
            report.method = "greedy-order";
            report.certificate = std::move(order);
            return report;
        }
    }

    report.verdict = ExistenceReport::Verdict::Undetermined;
    report.method = "inconclusive";
    return report;
}

} // namespace ebda::cdg
