#include "duato_check.hh"

#include <vector>

#include "cdg/relation_cdg.hh"
#include "graph/cycles.hh"

namespace ebda::cdg {

namespace {

/** The escape subrelation: candidates filtered to escape channels. */
class EscapeSubrelation : public RoutingRelation
{
  public:
    EscapeSubrelation(const RoutingRelation &base,
                      const EscapePredicate &is_escape)
        : base(base), isEscape(is_escape)
    {
    }

    std::vector<topo::ChannelId>
    candidates(topo::ChannelId in, topo::NodeId at, topo::NodeId src,
               topo::NodeId dest) const override
    {
        std::vector<topo::ChannelId> out;
        for (topo::ChannelId c : base.candidates(in, at, src, dest))
            if (isEscape(c))
                out.push_back(c);
        return out;
    }

    std::string
    name() const override
    {
        return base.name() + " [escape subrelation]";
    }

    const topo::Network &
    network() const override
    {
        return base.network();
    }

  private:
    const RoutingRelation &base;
    const EscapePredicate &isEscape;
};

} // namespace

DuatoReport
checkDuatoDeadlockFree(const RoutingRelation &relation,
                       const EscapePredicate &is_escape)
{
    const topo::Network &net = relation.network();
    DuatoReport report;
    for (topo::ChannelId c = 0; c < net.numChannels(); ++c)
        if (is_escape(c))
            ++report.numEscapeChannels;

    // (a) + (b): the escape subrelation on its own.
    const EscapeSubrelation escape(relation, is_escape);

    // Dependencies within the escape set, reachable via *any* legal
    // path of the full relation: a blocked packet may sit on an
    // adaptive channel when it takes the escape, so escape dependencies
    // are collected from the full relation's reachable states.
    graph::Digraph g(net.numChannels());
    std::vector<std::uint32_t> stamp(net.numChannels(), 0);
    std::uint32_t epoch = 0;
    std::vector<topo::ChannelId> frontier;

    bool always_available = true;

    for (topo::NodeId dest = 0; dest < net.numNodes(); ++dest) {
        for (topo::NodeId src = 0; src < net.numNodes(); ++src) {
            if (src == dest)
                continue;
            ++epoch;
            frontier.clear();
            const auto inject =
                relation.candidates(kInjectionChannel, src, src, dest);
            bool inject_escape = false;
            for (topo::ChannelId c : inject) {
                if (is_escape(c))
                    inject_escape = true;
                if (stamp[c] != epoch) {
                    stamp[c] = epoch;
                    frontier.push_back(c);
                }
            }
            if (!inject.empty() && !inject_escape)
                always_available = false;

            while (!frontier.empty()) {
                const topo::ChannelId c1 = frontier.back();
                frontier.pop_back();
                const topo::NodeId at = net.link(net.linkOf(c1)).dst;
                if (at == dest)
                    continue;
                const auto next = relation.candidates(c1, at, src, dest);
                bool has_escape = next.empty();
                for (topo::ChannelId c2 : next) {
                    if (is_escape(c2)) {
                        has_escape = true;
                        if (is_escape(c1))
                            g.addEdge(c1, c2);
                    }
                    if (stamp[c2] != epoch) {
                        stamp[c2] = epoch;
                        frontier.push_back(c2);
                    }
                }
                if (!has_escape)
                    always_available = false;
            }
        }
    }

    report.escapeAcyclic = graph::isAcyclic(g);
    report.escapeAlwaysAvailable = always_available;
    report.escapeConnected = checkConnectivity(escape).connected;
    report.ok = report.escapeAcyclic && report.escapeConnected
        && report.escapeAlwaysAvailable;
    return report;
}

} // namespace ebda::cdg
