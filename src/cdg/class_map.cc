#include "class_map.hh"

#include "util/logging.hh"

namespace ebda::cdg {

namespace {

core::ClassList
flatten(const core::PartitionScheme &scheme,
        std::vector<std::size_t> &partition_of)
{
    core::ClassList classes;
    const auto &parts = scheme.partitions();
    for (std::size_t p = 0; p < parts.size(); ++p) {
        for (const auto &c : parts[p].classes()) {
            classes.push_back(c);
            partition_of.push_back(p);
        }
    }
    return classes;
}

} // namespace

ClassMap::ClassMap(const topo::Network &network,
                   const core::PartitionScheme &scheme)
    : net(network)
{
    classes = flatten(scheme, classPartition);
    buildAssignment();
}

ClassMap::ClassMap(const topo::Network &network,
                   const core::ClassList &class_list)
    : net(network), classes(class_list),
      classPartition(class_list.size(), 0)
{
    buildAssignment();
}

void
ClassMap::buildAssignment()
{
    assignment.assign(net.numChannels(), kUnclassified);
    for (topo::ChannelId ch = 0; ch < net.numChannels(); ++ch) {
        for (std::size_t i = 0; i < classes.size(); ++i) {
            if (!net.channelInClass(ch, classes[i]))
                continue;
            EBDA_ASSERT(assignment[ch] == kUnclassified,
                        "channel ", net.channelName(ch),
                        " matches two classes: ",
                        classes[static_cast<std::size_t>(assignment[ch])]
                            .algebraic(),
                        " and ", classes[i].algebraic(),
                        " — class set is not disjoint on this network");
            assignment[ch] = static_cast<ClassIndex>(i);
        }
        if (assignment[ch] != kUnclassified)
            ++classifiedCount;
    }
}

std::vector<topo::ChannelId>
ClassMap::channelsOfClass(ClassIndex i) const
{
    std::vector<topo::ChannelId> out;
    for (topo::ChannelId ch = 0; ch < assignment.size(); ++ch)
        if (assignment[ch] == i)
            out.push_back(ch);
    return out;
}

} // namespace ebda::cdg
