/**
 * @file
 * Turn-model combinatorics (Section 2 and Section 6.1 of the paper).
 *
 * The classical turn-model design flow removes one 90-degree turn from
 * each *abstract cycle* and then verifies the remaining turn set for
 * deadlock freedom. An abstract cycle lives in a plane (d1, d2), has an
 * orientation (clockwise / counterclockwise), and — generalising to
 * virtual channels the way the paper counts — uses one VC per dimension.
 * The number of candidate combinations is 4^(#cycles):
 *   2D, 1 VC:  2 cycles ->      16 combinations;
 *   2D, 2 VC:  8 cycles ->  65,536 combinations;
 *   3D, 1 VC:  6 cycles ->   4,096 combinations
 * (the paper's prose quotes "29,696 (4^6)" for the last case; 4^6 is
 * 4,096 — the discrepancy is recorded in EXPERIMENTS.md).
 *
 * enumerateTurnModels() walks every combination, rebuilds the explicit
 * turn set, and checks it against the concrete Dally oracle, measuring
 * what fraction of the design space is deadlock-free and/or minimally
 * connected — the cost EbDa's direct construction avoids.
 */

#ifndef EBDA_CDG_TURN_MODEL_ENUM_HH
#define EBDA_CDG_TURN_MODEL_ENUM_HH

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/channel_class.hh"
#include "topo/network.hh"

namespace ebda::cdg {

/** One abstract cycle: the four 90-degree turns that close it. */
struct AbstractCycle
{
    /** The plane's dimensions and the VC used along each. */
    std::uint8_t dimA = 0;
    std::uint8_t dimB = 1;
    std::uint8_t vcA = 0;
    std::uint8_t vcB = 0;
    bool clockwise = true;
    /** The four turns, in traversal order. */
    std::array<std::pair<core::ChannelClass, core::ChannelClass>, 4> turns;
};

/** All abstract cycles of an n-dimensional network with the given per-
 *  dimension VC counts. */
std::vector<AbstractCycle> abstractCycles(std::uint8_t n,
                                          const std::vector<int> &vcs);

/** Size of the one-turn-per-cycle design space: cycles and 4^cycles. */
struct TurnModelSpace
{
    std::size_t numCycles = 0;
    /** 4^numCycles, as a double (overflows std::size_t quickly). */
    double numCombinations = 0.0;
};

TurnModelSpace turnModelSpace(std::uint8_t n, const std::vector<int> &vcs);

/** Outcome of exhaustively checking the design space. */
struct TurnModelEnumResult
{
    std::size_t combinations = 0;
    /** Combinations whose concrete CDG is acyclic. */
    std::size_t deadlockFree = 0;
    /** Deadlock-free combinations that also route every pair minimally. */
    std::size_t connected = 0;
    /** Distinct deadlock-free *turn sets* (several removal combinations
     *  can denote the same set when cycles share turns). */
    std::size_t distinctDeadlockFreeSets = 0;
};

/**
 * Exhaustively enumerate the design space on a verification network
 * (typically a small mesh of the matching dimensionality) and classify
 * every combination. The caller bounds the work via max_combinations;
 * enumeration stops (and `combinations` reports how many were covered)
 * when the bound is hit.
 */
TurnModelEnumResult enumerateTurnModels(
    const topo::Network &net, std::size_t max_combinations = 1 << 20);

} // namespace ebda::cdg

#endif // EBDA_CDG_TURN_MODEL_ENUM_HH
