/**
 * @file
 * Exact adaptiveness measurement of a partition scheme on a mesh.
 *
 * The degree of adaptiveness of (source, dest) is the fraction of
 * minimal physical paths the scheme's turn set can realise with some
 * class assignment. The paper's "fully adaptive" claim for the Section 4
 * constructions means this fraction is 1 for every pair; deterministic
 * routing scores 1/#paths.
 *
 * Realisability is decided exactly with a possible-class-set dynamic
 * program: walking a physical path, the set of classes the packet may
 * occupy after each hop is a deterministic function of the previous set
 * and the hop direction, so counting realisable paths is a DP over
 * (node, class-set) states — no per-path enumeration and no VC
 * overcounting.
 */

#ifndef EBDA_CDG_ADAPTIVITY_HH
#define EBDA_CDG_ADAPTIVITY_HH

#include <cstdint>

#include "cdg/class_map.hh"
#include "core/turns.hh"

namespace ebda::cdg {

/** Aggregate adaptiveness statistics over all (src, dest) pairs. */
struct AdaptivenessReport
{
    /** Average over pairs of allowed/total minimal paths. */
    double averageFraction = 0.0;
    /** Smallest fraction over all pairs. */
    double minFraction = 1.0;
    /** True when every minimal path of every pair is realisable. */
    bool fullyAdaptive = true;
    /** True when some pair has zero realisable minimal path (the scheme
     *  cannot route that pair minimally). */
    bool disconnectedMinimal = false;
    /** Total and allowed minimal path counts summed over pairs. */
    double totalPaths = 0.0;
    double allowedPaths = 0.0;
    /**
     * Standard deviation of the per-pair fraction — the *evenness* of
     * adaptiveness across the network. Chiu's motivation for Odd-Even
     * is precisely a lower spread than West-First, whose westbound
     * traffic is fully deterministic.
     */
    double fractionStddev = 0.0;
};

/**
 * Measure adaptiveness of a scheme's turn set on a mesh network (tori
 * are rejected: minimal paths across wrap links are not unique-length
 * monotone walks, which the DP relies on).
 *
 * Schemes are limited to 64 classes (class sets are bitmasks).
 */
AdaptivenessReport measureAdaptiveness(const topo::Network &net,
                                       const core::PartitionScheme &scheme,
                                       const core::TurnExtractionOptions
                                           &opts = {});

/** As above with a pre-built class map and turn set (used for explicit
 *  turn models that have no partition structure). */
AdaptivenessReport measureAdaptiveness(const topo::Network &net,
                                       const ClassMap &map,
                                       const core::TurnSet &turns);

/** Number of minimal paths between two mesh nodes (multinomial). */
double countMinimalPaths(const topo::Network &net, topo::NodeId src,
                         topo::NodeId dest);

} // namespace ebda::cdg

#endif // EBDA_CDG_ADAPTIVITY_HH
