/**
 * @file
 * The routing-relation abstraction shared by the Dally relation-CDG
 * verifier (cdg/relation_cdg.hh) and the wormhole simulator (sim/).
 *
 * A routing relation maps (current channel, current node, destination)
 * to the set of output channels the packet may acquire next. The current
 * channel is kInjectionChannel for freshly injected packets. An empty
 * candidate set at a non-destination node means the packet is stuck —
 * the connectivity checker flags such relations.
 */

#ifndef EBDA_CDG_ROUTING_RELATION_HH
#define EBDA_CDG_ROUTING_RELATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "topo/network.hh"

namespace ebda::cdg {

/** Sentinel for "packet is at its source, not yet on any channel". */
constexpr topo::ChannelId kInjectionChannel = topo::kInvalidId;

/**
 * Whether a relation's candidate sets depend on the packet's source
 * node. Table compilers (routing/route_table.hh) use the hint to size
 * the compiled table: source-independent relations need one row per
 * (input channel, destination); source-dependent ones one row per
 * (input channel, source, destination).
 */
enum class SrcSensitivity : std::uint8_t
{
    /** Not declared — a compiler must probe every source exhaustively
     *  before it may collapse the source axis. The sound default. */
    Unknown,
    /** candidates() ignores `src`. Compilers may collapse the source
     *  axis after a spot-check (the claim is also pinned exhaustively
     *  by tests/test_route_table.cc). */
    Independent,
    /** candidates() consults `src` (e.g. Odd-Even's source column,
     *  Elevator-First's per-source elevator choice). */
    Dependent,
};

/**
 * Abstract routing relation over a concrete network.
 */
class RoutingRelation
{
  public:
    virtual ~RoutingRelation() = default;

    /**
     * Output channels the packet may take next.
     *
     * @param in   channel the packet currently occupies, or
     *             kInjectionChannel when it is still at its source
     * @param at   the node the packet's head is at (head of `in`, or the
     *             source node on injection)
     * @param src  the packet's source node (some algorithms, e.g.
     *             Odd-Even, consult it; most ignore it)
     * @param dest the destination node (never equal to `at` for routing
     *             queries; callers eject on arrival)
     */
    virtual std::vector<topo::ChannelId> candidates(
        topo::ChannelId in, topo::NodeId at, topo::NodeId src,
        topo::NodeId dest) const = 0;

    /** Human-readable algorithm name for reports. */
    virtual std::string name() const = 0;

    /** Source-dependence hint for table compilers. The Unknown default
     *  is always sound: compilers then probe every source. */
    virtual SrcSensitivity
    srcSensitivity() const
    {
        return SrcSensitivity::Unknown;
    }

    /**
     * True when candidates() tolerates every in-contract
     * (in, at, src, dest) combination, including (in, src) pairs no
     * real packet could exhibit. Relations that assert on unreachable
     * states (e.g. Elevator-First's phase checks) return false, which
     * keeps table compilers from probing them.
     */
    virtual bool probeSafe() const { return true; }

    /** The network this relation routes on. */
    virtual const topo::Network &network() const = 0;
};

} // namespace ebda::cdg

#endif // EBDA_CDG_ROUTING_RELATION_HH
