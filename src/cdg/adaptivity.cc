#include "adaptivity.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_map>

#include "core/channel_class.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace ebda::cdg {

using core::Sign;

namespace {

/** State key: node id in the high bits, class-set mask hashed below. */
struct StateKey
{
    topo::NodeId node;
    std::uint64_t mask;

    bool
    operator==(const StateKey &o) const
    {
        return node == o.node && mask == o.mask;
    }
};

struct StateKeyHash
{
    std::size_t
    operator()(const StateKey &k) const
    {
        std::uint64_t h = k.mask * 0x9e3779b97f4a7c15ULL;
        h ^= (h >> 29);
        h += static_cast<std::uint64_t>(k.node) * 0xbf58476d1ce4e5b9ULL;
        h ^= (h >> 32);
        return static_cast<std::size_t>(h);
    }
};

/**
 * Per-destination DP context. Counts, for a (node, possible-class-set)
 * state, how many minimal physical suffix paths to the destination are
 * realisable.
 */
class PathCounter
{
  public:
    PathCounter(const topo::Network &net, const ClassMap &map,
                const core::TurnSet &turns, topo::NodeId dest)
        : net(net), map(map), turns(turns), dest(dest)
    {
    }

    double
    count(topo::NodeId at, std::uint64_t mask)
    {
        // The mask is the set of classes the packet may occupy after
        // arriving at `at`; empty means the walk was not realisable,
        // even if it geometrically reached the destination.
        if (mask == 0)
            return 0.0;
        if (at == dest)
            return 1.0;
        const StateKey key{at, mask};
        auto it = memo.find(key);
        if (it != memo.end())
            return it->second;

        double total = 0.0;
        for (std::uint8_t d = 0; d < net.numDims(); ++d) {
            const int off = net.minimalOffset(at, dest, d);
            if (off == 0)
                continue;
            const Sign travel = off > 0 ? Sign::Pos : Sign::Neg;
            const auto link = net.linkFrom(at, d, travel);
            if (!link)
                continue;
            total += count(net.link(*link).dst,
                           nextMask(mask, *link));
        }
        memo.emplace(key, total);
        return total;
    }

    /** Possible classes after crossing the link from possible set mask. */
    std::uint64_t
    nextMask(std::uint64_t mask, topo::LinkId link)
    {
        std::uint64_t next = 0;
        for (int v = 0; v < net.vcsOnLink(link); ++v) {
            const ClassIndex k2 = map.classOf(net.channel(link, v));
            if (k2 == kUnclassified)
                continue;
            const auto bit2 = 1ULL << k2;
            if (next & bit2)
                continue;
            // Any source class in the mask that may transition to k2?
            std::uint64_t m = mask;
            while (m) {
                const int k1 = std::countr_zero(m);
                m &= m - 1;
                if (turns.allows(map.classAt(k1), map.classAt(k2))) {
                    next |= bit2;
                    break;
                }
            }
        }
        return next;
    }

  private:
    const topo::Network &net;
    const ClassMap &map;
    const core::TurnSet &turns;
    const topo::NodeId dest;
    std::unordered_map<StateKey, double, StateKeyHash> memo;
};

} // namespace

double
countMinimalPaths(const topo::Network &net, topo::NodeId src,
                  topo::NodeId dest)
{
    // Multinomial (sum |off_d|)! / prod |off_d|! computed via lgamma to
    // stay finite for large meshes.
    double log_paths = 0.0;
    int total = 0;
    for (std::uint8_t d = 0; d < net.numDims(); ++d) {
        const int off = std::abs(net.minimalOffset(src, dest, d));
        total += off;
        log_paths -= std::lgamma(off + 1.0);
    }
    log_paths += std::lgamma(total + 1.0);
    return std::exp(log_paths);
}

AdaptivenessReport
measureAdaptiveness(const topo::Network &net,
                    const core::PartitionScheme &scheme,
                    const core::TurnExtractionOptions &opts)
{
    const ClassMap map(net, scheme);
    const core::TurnSet turns = core::TurnSet::extract(scheme, opts);
    return measureAdaptiveness(net, map, turns);
}

AdaptivenessReport
measureAdaptiveness(const topo::Network &net, const ClassMap &map,
                    const core::TurnSet &turns)
{
    EBDA_ASSERT(!net.isTorus(),
                "adaptiveness measurement requires a mesh network");
    EBDA_ASSERT(map.numClasses() <= 64,
                "class-set DP limited to 64 classes, scheme has ",
                map.numClasses());

    const std::uint64_t all_classes =
        map.numClasses() == 64 ? ~0ULL
                               : (1ULL << map.numClasses()) - 1;

    AdaptivenessReport report;
    std::size_t pairs = 0;
    double fraction_sum = 0.0;
    StatAccumulator fraction_stats;

    for (topo::NodeId dest = 0; dest < net.numNodes(); ++dest) {
        PathCounter counter(net, map, turns, dest);
        for (topo::NodeId src = 0; src < net.numNodes(); ++src) {
            if (src == dest)
                continue;
            // On injection the packet may start in any class the first
            // link supports; model this as the full class set feeding
            // nextMask through the first hop inside count().
            const double allowed = counter.count(src, all_classes);
            const double total = countMinimalPaths(net, src, dest);
            const double fraction = total > 0 ? allowed / total : 0.0;

            ++pairs;
            fraction_sum += fraction;
            fraction_stats.add(fraction);
            report.minFraction = std::min(report.minFraction, fraction);
            report.totalPaths += total;
            report.allowedPaths += allowed;
            if (allowed + 0.5 < total)
                report.fullyAdaptive = false;
            if (allowed < 0.5)
                report.disconnectedMinimal = true;
        }
    }
    report.averageFraction = pairs ? fraction_sum / pairs : 1.0;
    report.fractionStddev = fraction_stats.stddev();
    return report;
}

} // namespace ebda::cdg
