/**
 * @file
 * The turn-level concrete channel dependency graph — the primary Dally
 * oracle used to verify EbDa constructions.
 *
 * Given a network and an allowed turn set over channel classes, the CDG
 * has one node per classified concrete channel and an edge c1 -> c2
 * whenever c2 starts where c1 ends and the class transition
 * class(c1) -> class(c2) is allowed (including same-class straight
 * continuation). This over-approximates the dependencies of *any*
 * routing algorithm restricted to the turn set — packets are assumed to
 * take allowed channels "arbitrarily and repeatedly", exactly the EbDa
 * premise — so acyclicity here implies deadlock freedom for every such
 * algorithm (Dally's criterion).
 */

#ifndef EBDA_CDG_TURN_CDG_HH
#define EBDA_CDG_TURN_CDG_HH

#include <string>
#include <vector>

#include "cdg/class_map.hh"
#include "core/turns.hh"
#include "graph/cycles.hh"
#include "graph/digraph.hh"

namespace ebda::cdg {

/** Result of a concrete-CDG deadlock-freedom check. */
struct CdgReport
{
    bool deadlockFree = true;
    /** Number of CDG nodes (classified channels). */
    std::size_t numChannels = 0;
    /** Number of distinct channel dependencies. */
    std::size_t numDependencies = 0;
    /** When cyclic: one witness cycle as channel names. */
    std::vector<std::string> witness;
};

/**
 * Build the turn-level CDG of a turn set on a network.
 *
 * Graph nodes are indexed by concrete ChannelId (unclassified channels
 * become isolated nodes with no edges — they never carry traffic).
 */
graph::Digraph buildTurnCdg(const topo::Network &net, const ClassMap &map,
                            const core::TurnSet &turns);

/**
 * Full check: lower the scheme, build the turn CDG, test acyclicity and
 * produce a witness on failure.
 */
CdgReport checkDeadlockFree(const topo::Network &net,
                            const core::PartitionScheme &scheme,
                            const core::TurnExtractionOptions &opts = {});

/** As above but with a pre-built map and turn set. */
CdgReport checkDeadlockFree(const topo::Network &net, const ClassMap &map,
                            const core::TurnSet &turns);

} // namespace ebda::cdg

#endif // EBDA_CDG_TURN_CDG_HH
