/**
 * @file
 * The channel-class model underlying the EbDa theory (Definitions 1-6 of
 * the paper).
 *
 * A *channel class* identifies one disjoint family of channels in an
 * n-dimensional network: a dimension, a direction sign, a virtual-channel
 * number, and optionally a coordinate-parity region (the X_even / X_odd
 * style splitting of Definition 6 used by the Odd-Even and Hamiltonian
 * case studies). Two classes that differ in any of these components are
 * disjoint: no channel belongs to both.
 *
 * EbDa partitions (partition.hh) group channel classes; the turn calculus
 * (turns.hh) reasons about transitions between classes; the lowering onto
 * concrete networks (cdg/) maps each physical (link, VC) channel to
 * exactly one class.
 */

#ifndef EBDA_CORE_CHANNEL_CLASS_HH
#define EBDA_CORE_CHANNEL_CLASS_HH

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ebda::core {

/** Direction sign along a dimension (Definition 1). */
enum class Sign : std::uint8_t { Pos = 0, Neg = 1 };

/** Flip a direction sign. */
inline Sign
opposite(Sign s)
{
    return s == Sign::Pos ? Sign::Neg : Sign::Pos;
}

/**
 * Coordinate-parity region constraint. `Any` means the class covers all
 * rows/columns; `Even`/`Odd` restrict the class to channels whose source
 * coordinate along a chosen axis has that parity (Definition 6, Figure
 * 2(d)).
 */
enum class Parity : std::uint8_t { Any = 0, Even = 1, Odd = 2 };

/**
 * One disjoint channel class: (dimension, sign, VC, parity region).
 *
 * VC numbers are 0-based internally; printed names are 1-based to match
 * the paper (X1+, X2-, ...).
 */
struct ChannelClass
{
    /** Dimension index: 0 = X, 1 = Y, 2 = Z, ... */
    std::uint8_t dim = 0;
    /** Direction along the dimension. */
    Sign sign = Sign::Pos;
    /** Virtual-channel number within the (dim, sign) family, 0-based. */
    std::uint8_t vc = 0;
    /** Axis whose coordinate parity is constrained (iff parity != Any).
     *  For "Y channels in even columns" the axis is X (0). */
    std::uint8_t parityAxis = 0;
    /** Parity region, Any when unconstrained. */
    Parity parity = Parity::Any;

    auto operator<=>(const ChannelClass &) const = default;

    /** True when the two classes can share a physical channel, i.e. all
     *  of (dim, sign, vc) match and the parity regions intersect. Used
     *  to validate partition disjointness (Definition 6). */
    bool overlaps(const ChannelClass &other) const;

    /** Paper-style algebraic name, e.g. "X1+", "Y2-", "Ye*"-style
     *  classes print as "Ye+"; VC suffix is omitted when max_vcs <= 1. */
    std::string algebraic(bool show_vc = true) const;

    /** Compass name for 2D/3D printing as used in Figure 8: X+ = E,
     *  X- = W, Y+ = N, Y- = S, Z+ = U, Z- = D, with 1-based VC suffix
     *  (e.g. "N2"); parity regions append 'e'/'o' (e.g. "Ne"). */
    std::string compass(bool show_vc = true) const;
};

/** Letter used for a dimension in algebraic names (X, Y, Z, T, then Dk). */
std::string dimLetter(std::uint8_t dim);

/** Convenience constructors. */
ChannelClass makeClass(std::uint8_t dim, Sign sign, std::uint8_t vc = 0);
ChannelClass makeParityClass(std::uint8_t dim, Sign sign,
                             std::uint8_t parity_axis, Parity parity,
                             std::uint8_t vc = 0);

/** Hash functor so classes can key unordered containers. */
struct ChannelClassHash
{
    std::size_t operator()(const ChannelClass &c) const;
};

/** Ordered list of channel classes. */
using ClassList = std::vector<ChannelClass>;

/** Render a class list as "{X1+ X1- Y1+}". */
std::string toString(const ClassList &classes, bool show_vc = true);

} // namespace ebda::core

#endif // EBDA_CORE_CHANNEL_CLASS_HH
