/**
 * @file
 * Dimension sets and set arrangements (Section 5.1 of the paper).
 *
 * Algorithm 1 consumes an ordered list of per-dimension channel sets.
 * The order of the sets, the order of channels within each set, and the
 * way VCs are paired up all influence which partitioning (and hence which
 * routing algorithm) comes out. This header provides:
 *  - the DimensionSet container with the paper's D-pair count,
 *  - Arrangement 1 (sort sets by descending pair count),
 *  - Arrangement 2 (permutations of equally sized sets),
 *  - Arrangement 3 (alternative VC pairings inside the first set).
 */

#ifndef EBDA_CORE_ARRANGE_HH
#define EBDA_CORE_ARRANGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/channel_class.hh"

namespace ebda::core {

/**
 * The ordered channel set of one dimension (e.g. D_Z = {Z1+ Z1- Z2+
 * Z2-}). Channel order is meaningful: Algorithm 1 consumes from the
 * front, two channels at a time for the first set and one at a time for
 * the others.
 */
struct DimensionSet
{
    std::uint8_t dim = 0;
    ClassList channels;

    /**
     * Number of complete D-pairs the set still covers: the number of
     * (positive, negative) pairs that can be formed, i.e.
     * min(#positive, #negative).
     */
    std::size_t pairCount() const;

    /** Remove and return the first channel; panics when empty. */
    ChannelClass popFront();

    bool empty() const { return channels.empty(); }

    std::size_t size() const { return channels.size(); }

    /** Render as "D_Z = {Z1+ Z1- ...}". */
    std::string toString() const;
};

/** An ordered list of dimension sets fed to Algorithm 1. */
using SetArrangement = std::vector<DimensionSet>;

/**
 * Build the canonical per-dimension sets for a network with the given VC
 * counts: dimension d contributes {D1+ D1- D2+ D2- ... Dv+ Dv-}.
 * Dimensions with zero VCs are omitted.
 */
SetArrangement makeSets(const std::vector<int> &vcs_per_dim);

/**
 * Arrangement 1: stable-sort the sets by descending D-pair count so the
 * pair-richest dimension leads.
 */
void arrange1(SetArrangement &sets);

/**
 * Arrangement 2: all orderings of the sets that respect descending pair
 * counts; sets with equal pair counts may appear in any relative order.
 * The result always contains at least the Arrangement-1 order.
 */
std::vector<SetArrangement> arrangement2All(SetArrangement sets);

/**
 * Arrangement 3: all ways of re-pairing the VCs of the first set. With q
 * VCs there are q! pairings: pairing k matches Y{sigma(i)}+ with Y{i}-.
 * Bounded by max_results to keep factorial growth in check.
 *
 * @param sets arrangement whose first set is re-paired
 * @param max_results cap on the number of emitted arrangements
 */
std::vector<SetArrangement> arrangement3All(const SetArrangement &sets,
                                            std::size_t max_results = 64);

/** Render an arrangement over multiple lines. */
std::string toString(const SetArrangement &sets);

} // namespace ebda::core

#endif // EBDA_CORE_ARRANGE_HH
