#include "channel_class.hh"

#include <sstream>

namespace ebda::core {

bool
ChannelClass::overlaps(const ChannelClass &other) const
{
    if (dim != other.dim || sign != other.sign || vc != other.vc)
        return false;
    // Same (dim, sign, vc): channels coincide unless the parity regions
    // are provably disjoint on a common axis.
    if (parity == Parity::Any || other.parity == Parity::Any)
        return true;
    if (parityAxis != other.parityAxis) {
        // Regions constrained on different axes always intersect (e.g.
        // even-row vs even-column).
        return true;
    }
    return parity == other.parity;
}

std::string
dimLetter(std::uint8_t dim)
{
    static const char letters[] = {'X', 'Y', 'Z', 'T'};
    if (dim < 4)
        return std::string(1, letters[dim]);
    return "D" + std::to_string(static_cast<int>(dim));
}

std::string
ChannelClass::algebraic(bool show_vc) const
{
    std::ostringstream os;
    os << dimLetter(dim);
    if (parity == Parity::Even)
        os << 'e';
    else if (parity == Parity::Odd)
        os << 'o';
    if (show_vc)
        os << static_cast<int>(vc) + 1;
    os << (sign == Sign::Pos ? '+' : '-');
    return os.str();
}

std::string
ChannelClass::compass(bool show_vc) const
{
    static const char pos_letters[] = {'E', 'N', 'U'};
    static const char neg_letters[] = {'W', 'S', 'D'};
    std::ostringstream os;
    if (dim < 3) {
        os << (sign == Sign::Pos ? pos_letters[dim] : neg_letters[dim]);
    } else {
        // No compass convention past 3D; fall back to algebraic.
        return algebraic(show_vc);
    }
    if (parity == Parity::Even)
        os << 'e';
    else if (parity == Parity::Odd)
        os << 'o';
    if (show_vc)
        os << static_cast<int>(vc) + 1;
    return os.str();
}

ChannelClass
makeClass(std::uint8_t dim, Sign sign, std::uint8_t vc)
{
    ChannelClass c;
    c.dim = dim;
    c.sign = sign;
    c.vc = vc;
    return c;
}

ChannelClass
makeParityClass(std::uint8_t dim, Sign sign, std::uint8_t parity_axis,
                Parity parity, std::uint8_t vc)
{
    ChannelClass c;
    c.dim = dim;
    c.sign = sign;
    c.vc = vc;
    c.parityAxis = parity_axis;
    c.parity = parity;
    return c;
}

std::size_t
ChannelClassHash::operator()(const ChannelClass &c) const
{
    std::size_t h = c.dim;
    h = h * 31 + static_cast<std::size_t>(c.sign);
    h = h * 31 + c.vc;
    h = h * 31 + c.parityAxis;
    h = h * 31 + static_cast<std::size_t>(c.parity);
    // Final avalanche so dense inputs spread across buckets.
    h ^= h >> 16;
    h *= 0x45d9f3b;
    h ^= h >> 16;
    return h;
}

std::string
toString(const ClassList &classes, bool show_vc)
{
    std::ostringstream os;
    os << '{';
    for (std::size_t i = 0; i < classes.size(); ++i) {
        if (i)
            os << ' ';
        os << classes[i].algebraic(show_vc);
    }
    os << '}';
    return os.str();
}

} // namespace ebda::core
