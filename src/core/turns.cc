#include "turns.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ebda::core {

namespace {

/** Pack a class into 27 bits (injective over all valid field values). */
std::uint32_t
packClass(const ChannelClass &c)
{
    return static_cast<std::uint32_t>(c.dim)
        | (static_cast<std::uint32_t>(c.sign) << 8)
        | (static_cast<std::uint32_t>(c.vc) << 9)
        | (static_cast<std::uint32_t>(c.parityAxis) << 17)
        | (static_cast<std::uint32_t>(c.parity) << 25);
}

} // namespace

TurnKind
classifyTurn(const ChannelClass &from, const ChannelClass &to)
{
    EBDA_ASSERT(!(from == to), "straight continuation is not a turn");
    if (from.dim != to.dim)
        return TurnKind::Turn90;
    return from.sign == to.sign ? TurnKind::ITurn : TurnKind::UTurn;
}

std::string
toString(TurnKind k)
{
    switch (k) {
      case TurnKind::Turn90:
        return "90";
      case TurnKind::UTurn:
        return "U";
      case TurnKind::ITurn:
        return "I";
    }
    return "?";
}

std::string
Turn::compassName() const
{
    return from.compass() + to.compass();
}

std::string
Turn::algebraicName() const
{
    return from.algebraic() + " -> " + to.algebraic();
}

std::uint64_t
TurnSet::key(const ChannelClass &a, const ChannelClass &b)
{
    return (static_cast<std::uint64_t>(packClass(a)) << 32) | packClass(b);
}

void
TurnSet::addTurn(const ChannelClass &from, const ChannelClass &to,
                 TurnOrigin origin, std::uint16_t from_part,
                 std::uint16_t to_part)
{
    if (!lookup.insert(key(from, to)).second)
        return;
    Turn t;
    t.from = from;
    t.to = to;
    t.kind = classifyTurn(from, to);
    t.origin = origin;
    t.fromPartition = from_part;
    t.toPartition = to_part;
    list.push_back(t);
}

TurnSet
TurnSet::extract(const PartitionScheme &scheme,
                 const TurnExtractionOptions &opts)
{
    const auto validation = scheme.validate();
    EBDA_ASSERT(validation.ok,
                "cannot extract turns from invalid scheme: ",
                validation.reason, " (", scheme.toString(), ")");

    TurnSet set;
    set.sourceScheme = scheme;
    for (const auto &c : scheme.allClasses())
        set.knownClasses.insert(packClass(c));

    const auto &parts = scheme.partitions();
    for (std::size_t pi = 0; pi < parts.size(); ++pi) {
        const Partition &p = parts[pi];
        const auto part_idx = static_cast<std::uint16_t>(pi);

        // Theorem 1: all intra-partition 90-degree turns.
        for (const auto &a : p.classes()) {
            for (const auto &b : p.classes()) {
                if (a.dim != b.dim) {
                    set.addTurn(a, b, TurnOrigin::Theorem1, part_idx,
                                part_idx);
                }
            }
        }

        // Theorem 2: intra-partition U-/I-turns.
        if (opts.theorem2) {
            const auto paired = p.pairedDimensions();
            for (std::uint8_t d = 0; d < p.dimensionSpan(); ++d) {
                const ClassList in_dim = p.classesInDim(d);
                if (in_dim.size() < 2)
                    continue;
                const bool is_paired =
                    std::find(paired.begin(), paired.end(), d)
                    != paired.end();
                if (is_paired) {
                    // Ascending numbering order only: the partition-member
                    // order is the Theorem-2 channel numbering.
                    for (std::size_t i = 0; i < in_dim.size(); ++i) {
                        for (std::size_t j = i + 1; j < in_dim.size(); ++j) {
                            set.addTurn(in_dim[i], in_dim[j],
                                        TurnOrigin::Theorem2, part_idx,
                                        part_idx);
                        }
                    }
                } else {
                    // Single-direction dimension: all I-turns allowed.
                    for (const auto &a : in_dim) {
                        for (const auto &b : in_dim) {
                            if (!(a == b)) {
                                set.addTurn(a, b, TurnOrigin::Theorem2,
                                            part_idx, part_idx);
                            }
                        }
                    }
                }
            }
        }

        // Theorem 3: transitions to later partitions.
        if (opts.theorem3) {
            const std::size_t last = opts.transitionsToAllLater
                ? parts.size()
                : std::min(parts.size(), pi + 2);
            for (std::size_t pj = pi + 1; pj < last; ++pj) {
                const auto to_idx = static_cast<std::uint16_t>(pj);
                for (const auto &a : p.classes()) {
                    for (const auto &b : parts[pj].classes()) {
                        if (!opts.crossUITurns && a.dim == b.dim)
                            continue;
                        set.addTurn(a, b, TurnOrigin::Theorem3, part_idx,
                                    to_idx);
                    }
                }
            }
        }
    }
    return set;
}

TurnSet
TurnSet::fromExplicit(
    const ClassList &classes,
    const std::vector<std::pair<ChannelClass, ChannelClass>> &allowed)
{
    TurnSet set;
    // One partition per class keeps the stored scheme well-formed for
    // ClassMap consumers; the transition structure is irrelevant here.
    for (const auto &c : classes) {
        set.sourceScheme.add(Partition({c}));
        set.knownClasses.insert(packClass(c));
    }
    for (const auto &[from, to] : allowed) {
        EBDA_ASSERT(set.knownClasses.count(packClass(from))
                        && set.knownClasses.count(packClass(to)),
                    "explicit turn ", from.algebraic(), " -> ",
                    to.algebraic(), " references unknown class");
        if (!set.lookup.insert(key(from, to)).second)
            continue;
        Turn t;
        t.from = from;
        t.to = to;
        t.kind = classifyTurn(from, to);
        t.origin = TurnOrigin::Theorem1;
        set.list.push_back(t);
    }
    return set;
}

bool
TurnSet::allows(const ChannelClass &from, const ChannelClass &to) const
{
    if (from == to)
        return knownClasses.count(packClass(from)) != 0;
    return lookup.count(key(from, to)) != 0;
}

std::size_t
TurnSet::count(TurnKind k) const
{
    return static_cast<std::size_t>(
        std::count_if(list.begin(), list.end(),
                      [k](const Turn &t) { return t.kind == k; }));
}

std::size_t
TurnSet::countOrigin(TurnOrigin o) const
{
    return static_cast<std::size_t>(
        std::count_if(list.begin(), list.end(),
                      [o](const Turn &t) { return t.origin == o; }));
}

std::vector<Turn>
TurnSet::turnsBetween(std::uint16_t p, std::uint16_t q) const
{
    std::vector<Turn> out;
    for (const auto &t : list)
        if (t.fromPartition == p && t.toPartition == q)
            out.push_back(t);
    return out;
}

std::vector<std::string>
TurnSet::sorted90DegreeNames(bool show_vc) const
{
    std::vector<std::string> names;
    for (const auto &t : list) {
        if (t.kind == TurnKind::Turn90) {
            names.push_back(t.from.algebraic(show_vc) + "->"
                            + t.to.algebraic(show_vc));
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

UITurnCounts
expectedUICounts(std::size_t a, std::size_t b)
{
    auto choose2 = [](std::size_t k) { return k < 2 ? 0 : k * (k - 1) / 2; };
    UITurnCounts counts;
    counts.uTurns = a * b;
    counts.iTurns = choose2(a) + choose2(b);
    return counts;
}

} // namespace ebda::core
