#include "partitioning.hh"

#include <algorithm>
#include <array>

#include "util/logging.hh"

namespace ebda::core {

namespace {

/** Per-dimension sign coverage of a partition: bit0 = Pos, bit1 = Neg. */
std::array<std::uint8_t, 256>
regionOf(const Partition &p)
{
    std::array<std::uint8_t, 256> region{};
    for (const auto &c : p.classes())
        region[c.dim] |= (c.sign == Sign::Pos ? 1u : 2u);
    return region;
}

/** True when region a is a (non-strict) subset of region b. */
bool
regionSubset(const std::array<std::uint8_t, 256> &a,
             const std::array<std::uint8_t, 256> &b)
{
    for (std::size_t d = 0; d < a.size(); ++d)
        if ((a[d] & b[d]) != a[d])
            return false;
    return true;
}

/** True when merging b into a keeps Theorem 1 satisfied. */
bool
mergeKeepsTheorem1(const Partition &a, const Partition &b)
{
    Partition merged = a;
    for (const auto &c : b.classes())
        merged.add(c);
    return merged.satisfiesTheorem1();
}

} // namespace

PartitionScheme
partitionSets(SetArrangement sets, const PartitioningOptions &opts)
{
    // Drop empty sets up front.
    sets.erase(std::remove_if(sets.begin(), sets.end(),
                              [](const DimensionSet &s) {
                                  return s.empty();
                              }),
               sets.end());

    PartitionScheme scheme;
    while (!sets.empty()) {
        if (opts.reorderSets)
            arrange1(sets);

        Partition p;
        // First set contributes its leading D-pair (its first two
        // channels); the remaining sets contribute one channel each.
        p.add(sets[0].popFront());
        if (!sets[0].empty())
            p.add(sets[0].popFront());
        for (std::size_t i = 1; i < sets.size(); ++i)
            p.add(sets[i].popFront());

        scheme.add(std::move(p));
        sets.erase(std::remove_if(sets.begin(), sets.end(),
                                  [](const DimensionSet &s) {
                                      return s.empty();
                                  }),
                   sets.end());
    }

    if (opts.mergeMatching)
        scheme = mergeMatchingPartitions(scheme);

    const auto validation = scheme.validate();
    EBDA_ASSERT(validation.ok, "Algorithm 1 produced an invalid scheme: ",
                validation.reason);
    return scheme;
}

PartitionScheme
mergeMatchingPartitions(const PartitionScheme &scheme)
{
    std::vector<Partition> parts = scheme.partitions();

    // Scan from the back: trailing partitions are the potentially "small"
    // ones produced when the sets drained unevenly.
    for (std::size_t i = parts.size(); i-- > 1;) {
        const auto small_region = regionOf(parts[i]);
        for (std::size_t j = 0; j < i; ++j) {
            if (!regionSubset(small_region, regionOf(parts[j])))
                continue;
            if (!mergeKeepsTheorem1(parts[j], parts[i]))
                continue;
            for (const auto &c : parts[i].classes())
                parts[j].add(c);
            parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    return PartitionScheme(std::move(parts));
}

std::vector<PartitionScheme>
exceptionalSchemes(std::uint8_t n)
{
    EBDA_ASSERT(n >= 1 && n <= 16, "dimensionality out of range: ", n);
    std::vector<PartitionScheme> schemes;
    const std::uint32_t combos = 1u << n;
    for (std::uint32_t bits = 0; bits < combos; ++bits) {
        Partition pa;
        Partition pb;
        for (std::uint8_t d = 0; d < n; ++d) {
            const Sign s = (bits >> d) & 1u ? Sign::Neg : Sign::Pos;
            pa.add(makeClass(d, s));
            pb.add(makeClass(d, opposite(s)));
        }
        PartitionScheme scheme;
        scheme.add(std::move(pa));
        scheme.add(std::move(pb));
        const auto validation = scheme.validate();
        EBDA_ASSERT(validation.ok, "exceptional scheme invalid: ",
                    validation.reason);
        schemes.push_back(std::move(scheme));
    }
    return schemes;
}

} // namespace ebda::core
