/**
 * @file
 * Catalog of the concrete partition schemes and classical turn models
 * that appear in the paper, so tests, examples and benches reference one
 * authoritative construction of each.
 *
 * Scheme naming follows the paper sections:
 *  - Section 4, Figure 6: partitionings P1..P5 of a 2D network;
 *  - Figure 7(b)/(c): minimum-channel fully adaptive 2D designs;
 *  - Figure 9(b)/(c): minimum-channel fully adaptive 3D designs;
 *  - Section 5 walkthrough: the (3,2,3)-VC example;
 *  - Section 6.2: Odd-Even and Hamiltonian-path parity partitionings;
 *  - Section 6.3: the 2-partition scheme for vertically partially
 *    connected 3D networks (Table 5).
 *
 * Classical 2D turn models are given as direction-level turn sets
 * (VC-erased) for classification of extracted schemes.
 */

#ifndef EBDA_CORE_CATALOG_HH
#define EBDA_CORE_CATALOG_HH

#include <optional>
#include <set>
#include <string>
#include <utility>

#include "core/partition.hh"
#include "core/turns.hh"

namespace ebda::core {

/** @name Paper schemes
 *  @{ */

/** Figure 6(a): P1 = {X+} -> {X-} -> {Y+} -> {Y-} (XY routing). */
PartitionScheme schemeFig6P1();

/** Figure 6(b): P2 = {Y-} -> {X-} -> {Y+ X+} (partially adaptive). */
PartitionScheme schemeFig6P2();

/** Figure 6(c): P3 = {X-} -> {X+ Y+ Y-} (West-First). */
PartitionScheme schemeFig6P3();

/** Figure 6(d): P4 = {X- Y-} -> {X+ Y+} (Negative-First). */
PartitionScheme schemeFig6P4();

/** Figure 6(e): P5 = {X-} -> {X+ Y1+ Y1- Y2+ Y2-} (VCs inside one
 *  partition add no adaptiveness). */
PartitionScheme schemeFig6P5();

/** Figure 5 / Example of Theorem 3: {X+ X- Y-} -> {Y+} (North-Last). */
PartitionScheme schemeNorthLast();

/** Figure 7(b): {X1+ Y1+ Y1-} -> {X1- Y2+ Y2-} (DyXY-like, 6 channels). */
PartitionScheme schemeFig7b();

/** Figure 7(c): {X1+ X1- Y1+} -> {X2+ X2- Y1-} (6 channels). */
PartitionScheme schemeFig7c();

/** Figure 9(b): 3D, 4 partitions, VCs (2,2,4); the scheme whose turns
 *  Figure 8 extracts. */
PartitionScheme schemeFig9b();

/** Figure 9(c): 3D, 4 partitions, VCs (3,2,3); equals the Section 5
 *  walkthrough result. */
PartitionScheme schemeFig9c();

/** Section 6.2: Odd-Even as PA = {X- Ye+ Ye-} -> PB = {X+ Yo+ Yo-};
 *  parity axis is the column (X coordinate). */
PartitionScheme schemeOddEven();

/** Section 6.2: Hamiltonian-path strategy as PA = {Xe+ Xo- Y+} ->
 *  PB = {Xe- Xo+ Y-}; parity axis is the row (Y coordinate). */
PartitionScheme schemeHamiltonian();

/** Section 6.3 / Table 5: PA = {X1+ Y1+ Y1- Z1+} -> PB = {X1- Y2+ Y2-
 *  Z1-} for vertically partially connected 3D networks. */
PartitionScheme schemePartial3d();

/**
 * Planar-Adaptive routing (Chien & Kim, the paper's reference [2])
 * expressed as an EbDa scheme for 3D: adaptivity restricted to the
 * plane sequence A0 = (X, Y) then A1 = (Y, Z), each plane split into
 * an increasing and a decreasing subnetwork:
 *   {X1* Y1+} -> {X2* Y1-} -> {Y2* Z1+} -> {Y3* Z1-}.
 * VC budget (2, 3, 1) — Chien-Kim's "at most 3 VCs" bound — versus
 * (2, 2, 4) for the fully adaptive minimum of Section 4.
 */
PartitionScheme schemePlanarAdaptive3d();

/**
 * Planar-Adaptive routing for arbitrary n >= 2: the plane sequence
 * A0 = (d0, d1), A1 = (d1, d2), ..., each plane contributing two
 * partitions (increasing / decreasing subnetwork). VC budget: 2 on the
 * first dimension, 3 on middle dimensions, 1 on the last — linear in
 * n, versus the exponential 2^(n-1) of full adaptiveness; the price is
 * partial adaptiveness (one plane at a time).
 */
PartitionScheme schemePlanarAdaptiveNd(std::uint8_t n);

/** @} */

/** @name Classical 2D turn models (direction-level)
 *
 * A direction-level turn is a (from, to) pair of (dim, sign) classes with
 * VC and parity erased. The 8 possible 90-degree turns of a 2D network
 * are named per Glass-Ni compass convention (EN = from X+ to Y+, ...).
 *  @{ */

/** A direction-level 90-degree turn set, canonically sorted names like
 *  "EN", "WS". */
using DirTurnSet = std::set<std::string>;

/** All eight 2D 90-degree turns. */
DirTurnSet allTurns2d();

/** XY dimension-order routing: {EN, ES, WN, WS}. */
DirTurnSet xyTurns();

/** YX dimension-order routing: {NE, NW, SE, SW}. */
DirTurnSet yxTurns();

/** West-First: all but {NW, SW}. */
DirTurnSet westFirstTurns();

/** North-Last: all but {NE, NW}. */
DirTurnSet northLastTurns();

/** Negative-First: all but {ES, NW}. */
DirTurnSet negativeFirstTurns();

/**
 * Project a TurnSet's 90-degree turns to direction level (VC and parity
 * erased) for 2D/3D compass naming.
 */
DirTurnSet directionTurns(const TurnSet &set);

/**
 * Name the classical 2D algorithm matching the direction-level turns of
 * a scheme ("XY", "YX", "West-First", "North-Last", "Negative-First"),
 * or std::nullopt when it matches none.
 */
std::optional<std::string> classify2dScheme(const PartitionScheme &scheme);

/** @} */

} // namespace ebda::core

#endif // EBDA_CORE_CATALOG_HH
