/**
 * @file
 * Exhaustive enumeration of ordered partition schemes over a class list.
 *
 * Used by the Table 1/2/3 benches: for the four single-VC classes of a
 * 2D network, enumerate every way to divide them into ordered disjoint
 * partitions satisfying Theorem 1, then classify each scheme by partition
 * count and adaptiveness (number of 90-degree turns). Growth is governed
 * by ordered Bell numbers, so callers should keep class lists small
 * (<= 8 classes) or rely on max_results.
 */

#ifndef EBDA_CORE_ENUMERATE_HH
#define EBDA_CORE_ENUMERATE_HH

#include <cstddef>
#include <vector>

#include "core/partition.hh"

namespace ebda::core {

/** Constraints for the enumeration. */
struct EnumerationOptions
{
    /** Keep only schemes with exactly this many partitions (0 = any). */
    std::size_t exactPartitions = 0;
    /** Cap on emitted schemes. */
    std::size_t maxResults = 100000;
    /** When true, partition-internal member order is canonical (sorted),
     *  so schemes differing only in Theorem-2 numbering collapse. */
    bool canonicalMemberOrder = true;
};

/**
 * All ordered partition schemes over the given classes in which every
 * partition satisfies Theorem 1. Classes must be pairwise non-overlapping
 * (they are distinct channel families); this is asserted.
 */
std::vector<PartitionScheme> enumerateSchemes(
    const ClassList &classes, const EnumerationOptions &opts = {});

/** The four single-VC classes of a 2D network: X+, X-, Y+, Y-. */
ClassList classes2d();

/** The 2n single-VC classes of an n-dimensional network. */
ClassList classesNd(std::uint8_t n);

} // namespace ebda::core

#endif // EBDA_CORE_ENUMERATE_HH
