#include "parse.hh"

#include <cctype>
#include <sstream>

namespace ebda::core {

namespace {

/** Cursor over the input with error reporting. */
class Cursor
{
  public:
    explicit Cursor(const std::string &text) : text(text) {}

    void
    skipWs()
    {
        while (pos < text.size()
               && std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool atEnd() const { return pos >= text.size(); }

    char
    peek() const
    {
        return pos < text.size() ? text[pos] : '\0';
    }

    char
    take()
    {
        return pos < text.size() ? text[pos++] : '\0';
    }

    bool
    consume(char c)
    {
        if (peek() == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    consume(const char *token)
    {
        const std::size_t len = std::char_traits<char>::length(token);
        if (text.compare(pos, len, token) == 0) {
            pos += len;
            return true;
        }
        return false;
    }

    /** Parse a non-negative integer; -1 when none present. */
    int
    takeNumber()
    {
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return -1;
        int value = 0;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            value = value * 10 + (take() - '0');
        return value;
    }

    std::size_t position() const { return pos; }

  private:
    const std::string &text;
    std::size_t pos = 0;
};

void
setError(std::string *error, const std::string &msg, std::size_t pos)
{
    if (error) {
        std::ostringstream os;
        os << msg << " at offset " << pos;
        *error = os.str();
    }
}

/** Parse a dimension letter (X/Y/Z/T or Dk); -1 on failure. */
int
takeDim(Cursor &cur)
{
    switch (cur.peek()) {
      case 'X':
        cur.take();
        return 0;
      case 'Y':
        cur.take();
        return 1;
      case 'Z':
        cur.take();
        return 2;
      case 'T':
        cur.take();
        return 3;
      case 'D': {
          cur.take();
          const int n = cur.takeNumber();
          return n >= 0 ? n : -1;
      }
      default:
        return -1;
    }
}

std::optional<ChannelClass>
takeClass(Cursor &cur, std::string *error)
{
    cur.skipWs();
    const std::size_t start = cur.position();
    const int dim = takeDim(cur);
    if (dim < 0 || dim > 255) {
        setError(error, "expected dimension letter", start);
        return std::nullopt;
    }

    Parity parity = Parity::Any;
    if (cur.peek() == 'e') {
        cur.take();
        parity = Parity::Even;
    } else if (cur.peek() == 'o') {
        cur.take();
        parity = Parity::Odd;
    }

    // Default parity axis: the other dimension in a 2D layout.
    int axis = dim == 0 ? 1 : 0;
    if (cur.consume('@')) {
        axis = takeDim(cur);
        if (axis < 0 || axis > 255) {
            setError(error, "expected parity-axis dimension",
                     cur.position());
            return std::nullopt;
        }
    }

    const int vc = cur.takeNumber(); // 1-based in text
    if (vc == 0 || vc > 256) {
        setError(error, "VC numbers are 1-based", cur.position());
        return std::nullopt;
    }

    Sign sign;
    if (cur.consume('+')) {
        sign = Sign::Pos;
    } else if (cur.consume('-')) {
        sign = Sign::Neg;
    } else {
        setError(error, "expected '+' or '-'", cur.position());
        return std::nullopt;
    }

    ChannelClass c = makeClass(static_cast<std::uint8_t>(dim), sign,
                               static_cast<std::uint8_t>(
                                   vc < 0 ? 0 : vc - 1));
    if (parity != Parity::Any) {
        c.parity = parity;
        c.parityAxis = static_cast<std::uint8_t>(axis);
    }
    return c;
}

std::optional<Partition>
takePartition(Cursor &cur, std::string *error)
{
    cur.skipWs();
    if (!cur.consume('{')) {
        setError(error, "expected '{'", cur.position());
        return std::nullopt;
    }
    Partition p;
    while (true) {
        cur.skipWs();
        if (cur.consume('}'))
            break;
        if (cur.atEnd()) {
            setError(error, "unterminated partition", cur.position());
            return std::nullopt;
        }
        const auto c = takeClass(cur, error);
        if (!c)
            return std::nullopt;
        if (p.contains(*c)) {
            setError(error, "duplicate class " + c->algebraic(),
                     cur.position());
            return std::nullopt;
        }
        p.add(*c);
    }
    return p;
}

} // namespace

std::optional<ChannelClass>
parseChannelClass(const std::string &text, std::string *error)
{
    Cursor cur(text);
    const auto c = takeClass(cur, error);
    if (!c)
        return std::nullopt;
    cur.skipWs();
    if (!cur.atEnd()) {
        setError(error, "trailing characters", cur.position());
        return std::nullopt;
    }
    return c;
}

std::optional<Partition>
parsePartition(const std::string &text, std::string *error)
{
    Cursor cur(text);
    const auto p = takePartition(cur, error);
    if (!p)
        return std::nullopt;
    cur.skipWs();
    if (!cur.atEnd()) {
        setError(error, "trailing characters", cur.position());
        return std::nullopt;
    }
    return p;
}

std::optional<PartitionScheme>
parseScheme(const std::string &text, std::string *error)
{
    Cursor cur(text);
    PartitionScheme scheme;
    while (true) {
        const auto p = takePartition(cur, error);
        if (!p)
            return std::nullopt;
        scheme.add(*p);
        cur.skipWs();
        if (cur.atEnd())
            break;
        if (!cur.consume("->")) {
            setError(error, "expected '->' between partitions",
                     cur.position());
            return std::nullopt;
        }
    }
    return scheme;
}

namespace {

std::optional<std::vector<int>>
parseIntList(const std::string &text, char sep, std::string *error)
{
    Cursor cur(text);
    std::vector<int> out;
    while (true) {
        cur.skipWs();
        const int v = cur.takeNumber();
        if (v < 0) {
            setError(error, "expected a number", cur.position());
            return std::nullopt;
        }
        out.push_back(v);
        cur.skipWs();
        if (cur.atEnd())
            break;
        if (!cur.consume(sep)) {
            setError(error, std::string("expected '") + sep + "'",
                     cur.position());
            return std::nullopt;
        }
    }
    return out;
}

} // namespace

std::optional<std::vector<int>>
parseVcList(const std::string &text, std::string *error)
{
    return parseIntList(text, ',', error);
}

std::optional<std::vector<int>>
parseDims(const std::string &text, std::string *error)
{
    return parseIntList(text, 'x', error);
}

} // namespace ebda::core
