/**
 * @file
 * Partitions and partition schemes (Definitions 2, 3, 6 and Theorem 1).
 *
 * A Partition is an ordered set of channel classes whose channels packets
 * may take "arbitrarily and repeatedly". Theorem 1 states a partition is
 * cycle-free (ignoring U-/I-turns) iff it covers at most one complete
 * D-pair — a positive and a negative class of the same dimension.
 *
 * A PartitionScheme is an ordered list of pairwise-disjoint partitions;
 * Theorem 3 permits transitions between partitions only in ascending
 * order. The scheme is the complete specification of an EbDa routing
 * algorithm: the turn calculus (turns.hh) extracts its allowed turn set
 * and the lowering (cdg/) turns it into a concrete routing relation.
 *
 * The class order inside a partition is significant: it is the Theorem-2
 * channel numbering that orients the allowed U-/I-turns.
 */

#ifndef EBDA_CORE_PARTITION_HH
#define EBDA_CORE_PARTITION_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/channel_class.hh"

namespace ebda::core {

/**
 * An ordered set of channel classes (Definition 2). Duplicate classes
 * are rejected at insertion.
 */
class Partition
{
  public:
    Partition() = default;

    /** Construct from a class list; panics on duplicates. */
    explicit Partition(ClassList classes);

    /** Append a class; panics when the same class is already present. */
    void add(const ChannelClass &c);

    /** The classes in Theorem-2 numbering order. */
    const ClassList &classes() const { return members; }

    /** Number of classes. */
    std::size_t size() const { return members.size(); }

    bool empty() const { return members.empty(); }

    /** Exact membership. */
    bool contains(const ChannelClass &c) const;

    /** True if any member overlaps c (shares physical channels). */
    bool overlapsClass(const ChannelClass &c) const;

    /** True if the two partitions share (overlap) any channel
     *  (Definition 6). */
    bool disjointFrom(const Partition &other) const;

    /**
     * Number of complete D-pairs covered (Definition 3). A dimension
     * contributes one pair when the partition holds at least one positive
     * and one negative class of that dimension, regardless of VC numbers
     * or parity regions (parity splitting is deliberately ignored: this
     * keeps the count conservative, i.e. exactly Theorem 1's premise).
     */
    std::size_t completePairCount() const;

    /** Dimensions that contribute a complete pair, ascending. */
    std::vector<std::uint8_t> pairedDimensions() const;

    /** Theorem 1: at most one complete D-pair. */
    bool satisfiesTheorem1() const { return completePairCount() <= 1; }

    /** Members belonging to dimension d, in numbering order. */
    ClassList classesInDim(std::uint8_t d) const;

    /** Highest dimension index mentioned plus one; 0 when empty. */
    std::uint8_t dimensionSpan() const;

    /** Render as "{X1+ X1- Y1+}". */
    std::string toString(bool show_vc = true) const;

  private:
    ClassList members;
};

/** Outcome of validating a scheme, with a human-readable reason. */
struct ValidationResult
{
    bool ok = true;
    std::string reason;

    /** An accepted result. */
    static ValidationResult
    accept()
    {
        return {};
    }

    /** A rejected result carrying an explanation. */
    static ValidationResult
    reject(std::string why)
    {
        return {false, std::move(why)};
    }
};

/**
 * An ordered list of pairwise-disjoint Theorem-1 partitions. Order is
 * the Theorem-3 ascending transition order.
 */
class PartitionScheme
{
  public:
    PartitionScheme() = default;

    /** Construct from partitions in transition order. */
    explicit PartitionScheme(std::vector<Partition> parts);

    /** Append the next partition in transition order. */
    void add(Partition p);

    const std::vector<Partition> &partitions() const { return parts; }

    std::size_t size() const { return parts.size(); }

    bool empty() const { return parts.empty(); }

    const Partition &operator[](std::size_t i) const { return parts[i]; }

    /** All classes across partitions, scheme order. */
    ClassList allClasses() const;

    /** Total number of channel classes. */
    std::size_t numClasses() const;

    /** Index of the partition containing class c (exact match). */
    std::optional<std::size_t> partitionOf(const ChannelClass &c) const;

    /**
     * Validate the scheme against the EbDa premises:
     *  - every partition satisfies Theorem 1 (<= 1 complete pair),
     *  - partitions are pairwise disjoint (Definition 6),
     *  - no partition is empty.
     */
    ValidationResult validate() const;

    /** Highest dimension index mentioned plus one. */
    std::uint8_t dimensionSpan() const;

    /** Render as "{X1+ X1- Y1+} -> {Y1-}". */
    std::string toString(bool show_vc = true) const;

    /**
     * Canonical structural key: partitions and member order preserved.
     * Distinct keys <=> distinct schemes; used to deduplicate the output
     * of the derivation enumerators.
     */
    std::string canonicalKey() const;

  private:
    std::vector<Partition> parts;
};

} // namespace ebda::core

#endif // EBDA_CORE_PARTITION_HH
