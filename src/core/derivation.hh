/**
 * @file
 * Algorithm 2 — derivation of alternative partitionings (Section 5.3),
 * and scheme-level derivation operators:
 *  - circular channel shifts inside the sets (Algorithm 2 proper),
 *  - reversal / permutation of the partition transition order (5.3.3),
 *  - deduplicated collection of every scheme reachable from a VC
 *    configuration.
 */

#ifndef EBDA_CORE_DERIVATION_HH
#define EBDA_CORE_DERIVATION_HH

#include <cstddef>
#include <vector>

#include "core/arrange.hh"
#include "core/partition.hh"
#include "core/partitioning.hh"

namespace ebda::core {

/** Options for the derivation sweep. */
struct DerivationOptions
{
    /** Cap on emitted schemes (the space grows factorially). */
    std::size_t maxSchemes = 4096;
    /** Also emit every permutation of the partition transition order
     *  (Section 5.3.3). When false only the natural order is emitted. */
    bool permuteTransitionOrders = false;
    /** Forwarded to Algorithm 1. */
    PartitioningOptions partitioning;
};

/**
 * Algorithm 2: run the partitioning procedure on every circular-shift
 * combination of the arrangement — the first set is pair-wise
 * left-circular-shifted (q positions for q pairs) and every other set is
 * channel-wise left-circular-shifted — and collect the distinct schemes.
 */
std::vector<PartitionScheme> deriveByShifting(
    const SetArrangement &sets, const DerivationOptions &opts = {});

/**
 * Every distinct scheme obtainable for the given VC configuration by
 * combining Arrangements 1-3 (Section 5.1) with Algorithm 2 shifts, plus
 * the exceptional no-VC schemes when every dimension has exactly one VC.
 * This is the "12 partitioning options" generator behind Table 1.
 */
std::vector<PartitionScheme> deriveAll(const std::vector<int> &vcs_per_dim,
                                       const DerivationOptions &opts = {});

/** Reverse the transition order of a scheme (Section 5.3.3). */
PartitionScheme reverseOrder(const PartitionScheme &scheme);

/** All permutations of the partition order of a scheme, capped. */
std::vector<PartitionScheme> allOrders(const PartitionScheme &scheme,
                                       std::size_t max_results = 64);

/** Deduplicate schemes by canonical key, preserving first-seen order. */
void dedupeSchemes(std::vector<PartitionScheme> &schemes);

} // namespace ebda::core

#endif // EBDA_CORE_DERIVATION_HH
