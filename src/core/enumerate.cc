#include "enumerate.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace ebda::core {

namespace {

/**
 * Recursively assign classes to blocks (restricted-growth strings), then
 * emit every ordering of the resulting blocks.
 */
struct Enumerator
{
    const ClassList &classes;
    const EnumerationOptions &opts;
    std::vector<std::size_t> assignment;
    std::size_t num_blocks = 0;
    std::vector<PartitionScheme> out;

    Enumerator(const ClassList &cls, const EnumerationOptions &options)
        : classes(cls), opts(options), assignment(cls.size(), 0)
    {
    }

    void
    emitOrderings()
    {
        if (opts.exactPartitions && num_blocks != opts.exactPartitions)
            return;

        // Build the blocks.
        std::vector<ClassList> blocks(num_blocks);
        for (std::size_t i = 0; i < classes.size(); ++i)
            blocks[assignment[i]].push_back(classes[i]);

        // Theorem-1 filter per block.
        for (auto &b : blocks) {
            if (opts.canonicalMemberOrder)
                std::sort(b.begin(), b.end());
            if (!Partition(b).satisfiesTheorem1())
                return;
        }

        // Emit every ordering of the blocks.
        std::vector<std::size_t> perm(num_blocks);
        std::iota(perm.begin(), perm.end(), 0);
        do {
            if (out.size() >= opts.maxResults)
                return;
            std::vector<Partition> parts;
            parts.reserve(num_blocks);
            for (std::size_t idx : perm)
                parts.emplace_back(blocks[idx]);
            out.emplace_back(std::move(parts));
        } while (std::next_permutation(perm.begin(), perm.end()));
    }

    void
    recurse(std::size_t i)
    {
        if (out.size() >= opts.maxResults)
            return;
        if (i == classes.size()) {
            emitOrderings();
            return;
        }
        // Restricted growth: class i joins an existing block or opens a
        // new one.
        for (std::size_t b = 0; b <= num_blocks; ++b) {
            assignment[i] = b;
            const std::size_t saved = num_blocks;
            if (b == num_blocks)
                ++num_blocks;
            recurse(i + 1);
            num_blocks = saved;
        }
    }
};

} // namespace

std::vector<PartitionScheme>
enumerateSchemes(const ClassList &classes, const EnumerationOptions &opts)
{
    for (std::size_t i = 0; i < classes.size(); ++i) {
        for (std::size_t j = i + 1; j < classes.size(); ++j) {
            EBDA_ASSERT(!classes[i].overlaps(classes[j]),
                        "enumerateSchemes needs non-overlapping classes: ",
                        classes[i].algebraic(), " vs ",
                        classes[j].algebraic());
        }
    }
    Enumerator e(classes, opts);
    if (!classes.empty())
        e.recurse(0);
    return std::move(e.out);
}

ClassList
classes2d()
{
    return classesNd(2);
}

ClassList
classesNd(std::uint8_t n)
{
    ClassList out;
    for (std::uint8_t d = 0; d < n; ++d) {
        out.push_back(makeClass(d, Sign::Pos));
        out.push_back(makeClass(d, Sign::Neg));
    }
    return out;
}

} // namespace ebda::core
