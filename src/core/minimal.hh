/**
 * @file
 * Section 4 — maximum adaptiveness with the minimum number of channels.
 *
 * The paper proves the minimum number of (unidirectional) channel classes
 * providing fully adaptive routing in an n-dimensional network is
 * N = (n+1) * 2^(n-1), via two constructions:
 *  - the region construction (Figures 7(a), 9(a)): one partition per
 *    orthant (2^n partitions of n classes each, n * 2^n classes), and
 *  - the merged construction (Figures 7(b)/(c), 9(b)/(c)): neighbouring
 *    orthants merged along one pair dimension (2^(n-1) partitions of
 *    (n+1) classes each, (n+1) * 2^(n-1) classes).
 * Both generators are implemented for arbitrary n and verified against
 * the formula, Theorem 1, and the Dally CDG oracle (tests/bench).
 */

#ifndef EBDA_CORE_MINIMAL_HH
#define EBDA_CORE_MINIMAL_HH

#include <cstdint>
#include <vector>

#include "core/partition.hh"

namespace ebda::core {

/** N = (n+1) * 2^(n-1): minimum classes for fully adaptive routing. */
std::size_t minFullyAdaptiveChannels(std::uint8_t n);

/**
 * Region construction: 2^n disjoint partitions, one per orthant. The
 * partition for sign vector sigma holds one class (d, sigma_d, vc) per
 * dimension, with VC numbers chosen so all partitions are disjoint
 * (2^(n-1) VCs per dimension). Uses n * 2^n classes.
 */
PartitionScheme regionScheme(std::uint8_t n);

/**
 * Merged construction: 2^(n-1) disjoint partitions. Orthants adjacent
 * along pair_dim are merged; each partition holds a complete pair of
 * pair_dim (fresh VC pair) plus one class per remaining dimension
 * (2^(n-2) VCs per sign). Uses the minimum (n+1) * 2^(n-1) classes.
 *
 * @param n network dimensionality (1..9; the pair dimension needs
 *          2^(n-1) VC pairs and VC indices are 8-bit)
 * @param pair_dim the dimension merged across (default: last)
 */
PartitionScheme mergedScheme(std::uint8_t n, std::uint8_t pair_dim);

/** Overload defaulting pair_dim to n-1. */
PartitionScheme mergedScheme(std::uint8_t n);

/** Per-dimension VC requirement of a scheme: max VC index + 1. */
std::vector<int> vcsRequired(const PartitionScheme &scheme);

/** Total channel classes in a scheme. */
std::size_t channelCount(const PartitionScheme &scheme);

} // namespace ebda::core

#endif // EBDA_CORE_MINIMAL_HH
