/**
 * @file
 * Text parser for channel classes, partitions and partition schemes —
 * the inverse of the algebraic rendering, used by the `ebda_tool` CLI
 * and handy in tests.
 *
 * Grammar (whitespace between tokens is free):
 *   scheme    := partition ( "->" partition )*
 *   partition := "{" class* "}"
 *   class     := dim parity? axis? vc? sign
 *   dim       := "X" | "Y" | "Z" | "T" | "D" digits
 *   parity    := "e" | "o"
 *   axis      := "@" dim            (parity axis; defaults to the other
 *                                    dimension in 2D: axis 0 unless the
 *                                    class dimension is 0, then axis 1)
 *   vc        := digits             (1-based, as printed by algebraic())
 *   sign      := "+" | "-"
 *
 * Examples: "X1+", "Y2-", "Ye+", "Xo@Y-", "{X+ X- Y-} -> {Y+}".
 *
 * Parsers return std::nullopt (with an error message out-parameter) on
 * malformed input; they never panic on user text.
 */

#ifndef EBDA_CORE_PARSE_HH
#define EBDA_CORE_PARSE_HH

#include <optional>
#include <string>

#include "core/partition.hh"

namespace ebda::core {

/** Parse one channel class, e.g. "X2+" or "Ye-". */
std::optional<ChannelClass> parseChannelClass(const std::string &text,
                                              std::string *error = nullptr);

/** Parse one partition, e.g. "{X+ X- Y-}". */
std::optional<Partition> parsePartition(const std::string &text,
                                        std::string *error = nullptr);

/**
 * Parse a full scheme, e.g. "{X+ X- Y-} -> {Y+}". The scheme is parsed
 * structurally only; call PartitionScheme::validate() for Theorem-1 and
 * disjointness checking.
 */
std::optional<PartitionScheme> parseScheme(const std::string &text,
                                           std::string *error = nullptr);

/** Parse a comma-separated VC budget, e.g. "3,2,3". */
std::optional<std::vector<int>> parseVcList(const std::string &text,
                                            std::string *error = nullptr);

/** Parse an 'x'-separated radix list, e.g. "8x8" or "4x4x3". */
std::optional<std::vector<int>> parseDims(const std::string &text,
                                          std::string *error = nullptr);

} // namespace ebda::core

#endif // EBDA_CORE_PARSE_HH
