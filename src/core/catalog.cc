#include "catalog.hh"

#include "util/logging.hh"

namespace ebda::core {

namespace {

ChannelClass
cc(std::uint8_t dim, Sign sign, std::uint8_t vc = 0)
{
    return makeClass(dim, sign, vc);
}

constexpr std::uint8_t kX = 0;
constexpr std::uint8_t kY = 1;
constexpr std::uint8_t kZ = 2;

PartitionScheme
scheme(std::vector<Partition> parts)
{
    PartitionScheme s(std::move(parts));
    const auto validation = s.validate();
    EBDA_ASSERT(validation.ok, "catalog scheme invalid: ",
                validation.reason);
    return s;
}

} // namespace

PartitionScheme
schemeFig6P1()
{
    return scheme({Partition({cc(kX, Sign::Pos)}),
                   Partition({cc(kX, Sign::Neg)}),
                   Partition({cc(kY, Sign::Pos)}),
                   Partition({cc(kY, Sign::Neg)})});
}

PartitionScheme
schemeFig6P2()
{
    return scheme({Partition({cc(kY, Sign::Neg)}),
                   Partition({cc(kX, Sign::Neg)}),
                   Partition({cc(kY, Sign::Pos), cc(kX, Sign::Pos)})});
}

PartitionScheme
schemeFig6P3()
{
    return scheme({Partition({cc(kX, Sign::Neg)}),
                   Partition({cc(kX, Sign::Pos), cc(kY, Sign::Pos),
                              cc(kY, Sign::Neg)})});
}

PartitionScheme
schemeFig6P4()
{
    return scheme({Partition({cc(kX, Sign::Neg), cc(kY, Sign::Neg)}),
                   Partition({cc(kX, Sign::Pos), cc(kY, Sign::Pos)})});
}

PartitionScheme
schemeFig6P5()
{
    return scheme({Partition({cc(kX, Sign::Neg)}),
                   Partition({cc(kX, Sign::Pos), cc(kY, Sign::Pos, 0),
                              cc(kY, Sign::Neg, 0), cc(kY, Sign::Pos, 1),
                              cc(kY, Sign::Neg, 1)})});
}

PartitionScheme
schemeNorthLast()
{
    return scheme({Partition({cc(kX, Sign::Pos), cc(kX, Sign::Neg),
                              cc(kY, Sign::Neg)}),
                   Partition({cc(kY, Sign::Pos)})});
}

PartitionScheme
schemeFig7b()
{
    return scheme({Partition({cc(kX, Sign::Pos, 0), cc(kY, Sign::Pos, 0),
                              cc(kY, Sign::Neg, 0)}),
                   Partition({cc(kX, Sign::Neg, 0), cc(kY, Sign::Pos, 1),
                              cc(kY, Sign::Neg, 1)})});
}

PartitionScheme
schemeFig7c()
{
    return scheme({Partition({cc(kX, Sign::Pos, 0), cc(kX, Sign::Neg, 0),
                              cc(kY, Sign::Pos, 0)}),
                   Partition({cc(kX, Sign::Pos, 1), cc(kX, Sign::Neg, 1),
                              cc(kY, Sign::Neg, 0)})});
}

PartitionScheme
schemeFig9b()
{
    // PA = {X1+ Y1+ Z1+ Z1-}; PB = {X1- Y2+ Z4+ Z4-};
    // PC = {X2+ Y1- Z2+ Z2-}; PD = {X2- Y2- Z3+ Z3-}.
    return scheme({
        Partition({cc(kX, Sign::Pos, 0), cc(kY, Sign::Pos, 0),
                   cc(kZ, Sign::Pos, 0), cc(kZ, Sign::Neg, 0)}),
        Partition({cc(kX, Sign::Neg, 0), cc(kY, Sign::Pos, 1),
                   cc(kZ, Sign::Pos, 3), cc(kZ, Sign::Neg, 3)}),
        Partition({cc(kX, Sign::Pos, 1), cc(kY, Sign::Neg, 0),
                   cc(kZ, Sign::Pos, 1), cc(kZ, Sign::Neg, 1)}),
        Partition({cc(kX, Sign::Neg, 1), cc(kY, Sign::Neg, 1),
                   cc(kZ, Sign::Pos, 2), cc(kZ, Sign::Neg, 2)}),
    });
}

PartitionScheme
schemeFig9c()
{
    // PA = {Z1+ Z1- X1+ Y1+}; PB = {Z2+ Z2- X1- Y2+};
    // PC = {X2+ X2- Z3+ Y1-}; PD = {X3+ X3- Z3- Y2-}.
    return scheme({
        Partition({cc(kZ, Sign::Pos, 0), cc(kZ, Sign::Neg, 0),
                   cc(kX, Sign::Pos, 0), cc(kY, Sign::Pos, 0)}),
        Partition({cc(kZ, Sign::Pos, 1), cc(kZ, Sign::Neg, 1),
                   cc(kX, Sign::Neg, 0), cc(kY, Sign::Pos, 1)}),
        Partition({cc(kX, Sign::Pos, 1), cc(kX, Sign::Neg, 1),
                   cc(kZ, Sign::Pos, 2), cc(kY, Sign::Neg, 0)}),
        Partition({cc(kX, Sign::Pos, 2), cc(kX, Sign::Neg, 2),
                   cc(kZ, Sign::Neg, 2), cc(kY, Sign::Neg, 1)}),
    });
}

PartitionScheme
schemeOddEven()
{
    // Column parity = parity of the X coordinate (axis 0).
    return scheme({
        Partition({cc(kX, Sign::Neg),
                   makeParityClass(kY, Sign::Pos, kX, Parity::Even),
                   makeParityClass(kY, Sign::Neg, kX, Parity::Even)}),
        Partition({cc(kX, Sign::Pos),
                   makeParityClass(kY, Sign::Pos, kX, Parity::Odd),
                   makeParityClass(kY, Sign::Neg, kX, Parity::Odd)}),
    });
}

PartitionScheme
schemeHamiltonian()
{
    // Row parity = parity of the Y coordinate (axis 1).
    return scheme({
        Partition({makeParityClass(kX, Sign::Pos, kY, Parity::Even),
                   makeParityClass(kX, Sign::Neg, kY, Parity::Odd),
                   cc(kY, Sign::Pos)}),
        Partition({makeParityClass(kX, Sign::Neg, kY, Parity::Even),
                   makeParityClass(kX, Sign::Pos, kY, Parity::Odd),
                   cc(kY, Sign::Neg)}),
    });
}

PartitionScheme
schemePartial3d()
{
    // PA = {X1+ Y1+ Y1- Z1+}; PB = {X1- Y2+ Y2- Z1-}.
    return scheme({
        Partition({cc(kX, Sign::Pos, 0), cc(kY, Sign::Pos, 0),
                   cc(kY, Sign::Neg, 0), cc(kZ, Sign::Pos, 0)}),
        Partition({cc(kX, Sign::Neg, 0), cc(kY, Sign::Pos, 1),
                   cc(kY, Sign::Neg, 1), cc(kZ, Sign::Neg, 0)}),
    });
}

PartitionScheme
schemePlanarAdaptive3d()
{
    return scheme({
        Partition({cc(kX, Sign::Pos, 0), cc(kX, Sign::Neg, 0),
                   cc(kY, Sign::Pos, 0)}),
        Partition({cc(kX, Sign::Pos, 1), cc(kX, Sign::Neg, 1),
                   cc(kY, Sign::Neg, 0)}),
        Partition({cc(kY, Sign::Pos, 1), cc(kY, Sign::Neg, 1),
                   cc(kZ, Sign::Pos, 0)}),
        Partition({cc(kY, Sign::Pos, 2), cc(kY, Sign::Neg, 2),
                   cc(kZ, Sign::Neg, 0)}),
    });
}

PartitionScheme
schemePlanarAdaptiveNd(std::uint8_t n)
{
    EBDA_ASSERT(n >= 2 && n <= 16, "planar-adaptive needs 2 <= n <= 16");
    // Plane Ai pairs dimension i (2 VC pairs) with single directions of
    // dimension i+1 on VC 0. Middle dimensions therefore use VC 0 as
    // the plane-(i-1) single and VCs 1,2 as the plane-i pairs; the
    // first dimension pairs on VCs 0,1; the last dimension only ever
    // appears as the VC-0 single.
    std::vector<Partition> parts;
    for (std::uint8_t i = 0; i + 1 < n; ++i) {
        const std::uint8_t pair_base = i == 0 ? 0 : 1;
        for (std::uint8_t s = 0; s < 2; ++s) {
            const auto pair_vc = static_cast<std::uint8_t>(pair_base + s);
            parts.push_back(Partition(
                {cc(i, Sign::Pos, pair_vc), cc(i, Sign::Neg, pair_vc),
                 cc(static_cast<std::uint8_t>(i + 1),
                    s == 0 ? Sign::Pos : Sign::Neg, 0)}));
        }
    }
    return scheme(std::move(parts));
}

DirTurnSet
allTurns2d()
{
    return {"EN", "ES", "WN", "WS", "NE", "NW", "SE", "SW"};
}

DirTurnSet
xyTurns()
{
    return {"EN", "ES", "WN", "WS"};
}

DirTurnSet
yxTurns()
{
    return {"NE", "NW", "SE", "SW"};
}

DirTurnSet
westFirstTurns()
{
    return {"WN", "WS", "EN", "ES", "NE", "SE"};
}

DirTurnSet
northLastTurns()
{
    return {"EN", "ES", "WN", "WS", "SE", "SW"};
}

DirTurnSet
negativeFirstTurns()
{
    return {"EN", "WN", "WS", "NE", "SE", "SW"};
}

DirTurnSet
directionTurns(const TurnSet &set)
{
    DirTurnSet out;
    for (const auto &t : set.turns()) {
        if (t.kind != TurnKind::Turn90)
            continue;
        ChannelClass from = t.from;
        ChannelClass to = t.to;
        from.vc = to.vc = 0;
        from.parity = to.parity = Parity::Any;
        from.parityAxis = to.parityAxis = 0;
        out.insert(from.compass(false) + to.compass(false));
    }
    return out;
}

std::optional<std::string>
classify2dScheme(const PartitionScheme &scheme)
{
    const TurnSet set = TurnSet::extract(scheme);
    const DirTurnSet dirs = directionTurns(set);
    if (dirs == xyTurns())
        return "XY";
    if (dirs == yxTurns())
        return "YX";
    if (dirs == westFirstTurns())
        return "West-First";
    if (dirs == northLastTurns())
        return "North-Last";
    if (dirs == negativeFirstTurns())
        return "Negative-First";
    return std::nullopt;
}

} // namespace ebda::core
