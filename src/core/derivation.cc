#include "derivation.hh"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/logging.hh"

namespace ebda::core {

namespace {

/** Channel-wise left circular shift by k. */
ClassList
rotated(const ClassList &channels, std::size_t k)
{
    if (channels.empty())
        return channels;
    k %= channels.size();
    ClassList out(channels.begin() + static_cast<std::ptrdiff_t>(k),
                  channels.end());
    out.insert(out.end(), channels.begin(),
               channels.begin() + static_cast<std::ptrdiff_t>(k));
    return out;
}

} // namespace

std::vector<PartitionScheme>
deriveByShifting(const SetArrangement &sets, const DerivationOptions &opts)
{
    std::vector<PartitionScheme> schemes;
    if (sets.empty())
        return schemes;

    // Shift counts: the first set rotates two channels at a time (pair-
    // wise), each other set one channel at a time.
    std::vector<std::size_t> radix;
    radix.push_back(std::max<std::size_t>(1, sets[0].size() / 2));
    for (std::size_t i = 1; i < sets.size(); ++i)
        radix.push_back(std::max<std::size_t>(1, sets[i].size()));

    std::vector<std::size_t> counter(radix.size(), 0);
    while (true) {
        SetArrangement arr = sets;
        arr[0].channels = rotated(arr[0].channels, counter[0] * 2);
        for (std::size_t i = 1; i < arr.size(); ++i)
            arr[i].channels = rotated(arr[i].channels, counter[i]);

        PartitionScheme scheme = partitionSets(arr, opts.partitioning);
        if (opts.permuteTransitionOrders) {
            for (auto &variant : allOrders(scheme)) {
                schemes.push_back(std::move(variant));
                if (schemes.size() >= opts.maxSchemes)
                    break;
            }
        } else {
            schemes.push_back(std::move(scheme));
        }
        if (schemes.size() >= opts.maxSchemes)
            break;

        std::size_t i = 0;
        while (i < counter.size()) {
            if (++counter[i] < radix[i])
                break;
            counter[i] = 0;
            ++i;
        }
        if (i == counter.size())
            break;
    }
    dedupeSchemes(schemes);
    return schemes;
}

std::vector<PartitionScheme>
deriveAll(const std::vector<int> &vcs_per_dim, const DerivationOptions &opts)
{
    std::vector<PartitionScheme> schemes;

    const SetArrangement base = makeSets(vcs_per_dim);
    for (const auto &arr2 : arrangement2All(base)) {
        for (const auto &arr3 : arrangement3All(arr2)) {
            for (auto &s : deriveByShifting(arr3, opts)) {
                schemes.push_back(std::move(s));
                if (schemes.size() >= opts.maxSchemes)
                    break;
            }
        }
    }

    // Exceptional no-VC case applies when every participating dimension
    // has exactly one VC.
    const bool no_vcs = std::all_of(vcs_per_dim.begin(), vcs_per_dim.end(),
                                    [](int v) { return v == 1 || v == 0; });
    const auto dims = static_cast<std::uint8_t>(
        std::count_if(vcs_per_dim.begin(), vcs_per_dim.end(),
                      [](int v) { return v > 0; }));
    if (no_vcs && dims >= 2) {
        for (auto &s : exceptionalSchemes(dims))
            schemes.push_back(std::move(s));
    }

    dedupeSchemes(schemes);
    if (schemes.size() > opts.maxSchemes)
        schemes.resize(opts.maxSchemes);
    return schemes;
}

PartitionScheme
reverseOrder(const PartitionScheme &scheme)
{
    std::vector<Partition> parts(scheme.partitions().rbegin(),
                                 scheme.partitions().rend());
    return PartitionScheme(std::move(parts));
}

std::vector<PartitionScheme>
allOrders(const PartitionScheme &scheme, std::size_t max_results)
{
    std::vector<PartitionScheme> out;
    std::vector<std::size_t> perm(scheme.size());
    std::iota(perm.begin(), perm.end(), 0);
    do {
        std::vector<Partition> parts;
        parts.reserve(perm.size());
        for (std::size_t idx : perm)
            parts.push_back(scheme[idx]);
        out.emplace_back(std::move(parts));
    } while (out.size() < max_results
             && std::next_permutation(perm.begin(), perm.end()));
    return out;
}

void
dedupeSchemes(std::vector<PartitionScheme> &schemes)
{
    std::unordered_set<std::string> seen;
    std::vector<PartitionScheme> unique;
    unique.reserve(schemes.size());
    for (auto &s : schemes)
        if (seen.insert(s.canonicalKey()).second)
            unique.push_back(std::move(s));
    schemes = std::move(unique);
}

} // namespace ebda::core
