/**
 * @file
 * Algorithm 1 — the partitioning procedure (Section 5.2.1), the merge
 * step for trailing small partitions, and the exceptional no-VC case
 * (Section 5.2.2).
 *
 * The procedure repeatedly forms a partition from the first D-pair of
 * the leading set plus the first channel of every other set, removes the
 * consumed channels, reorders the sets so the pair-richest dimension
 * stays in front, and recurses until all sets are drained. Trailing
 * partitions whose direction region is a subset of an earlier partition
 * are merged into it.
 */

#ifndef EBDA_CORE_PARTITIONING_HH
#define EBDA_CORE_PARTITIONING_HH

#include <vector>

#include "core/arrange.hh"
#include "core/partition.hh"

namespace ebda::core {

/** Options controlling Algorithm 1. */
struct PartitioningOptions
{
    /** Re-sort sets by descending pair count between iterations ("Sets
     *  are reordered if necessary", Algorithm 1 line 8). */
    bool reorderSets = true;
    /** Merge trailing subset-region partitions (Algorithm 1 line 3). */
    bool mergeMatching = true;
};

/**
 * Run Algorithm 1 on an arrangement. The arrangement is consumed by
 * value; the result always satisfies PartitionScheme::validate() (this is
 * asserted — the procedure is constructively correct by Theorem 1).
 */
PartitionScheme partitionSets(SetArrangement sets,
                              const PartitioningOptions &opts = {});

/**
 * Merge trailing partitions whose direction region (dimension -> signs
 * present) is a subset of an earlier partition's region, provided the
 * merge keeps Theorem 1 satisfied. Merged members are appended after the
 * existing members so the Theorem-2 numbering of the host partition is
 * untouched. Returns the merged scheme.
 */
PartitionScheme mergeMatchingPartitions(const PartitionScheme &scheme);

/**
 * Exceptional case for networks without VCs (Section 5.2.2): channels
 * split into two partitions neither of which covers a complete pair —
 * one channel per dimension in PA and the opposite channels in PB. All
 * 2^n sign choices are emitted (the paper's "switching from PBs to PAs"
 * options are the complement sign choices).
 *
 * @param n network dimensionality (1..16)
 */
std::vector<PartitionScheme> exceptionalSchemes(std::uint8_t n);

} // namespace ebda::core

#endif // EBDA_CORE_PARTITIONING_HH
