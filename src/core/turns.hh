/**
 * @file
 * The EbDa turn calculus: extraction of the complete allowed turn set of
 * a partition scheme per Theorems 1, 2 and 3, plus the U-/I-turn counting
 * identities of Figure 4.
 *
 * Turn taxonomy (Definitions 4-5):
 *  - 90-degree turn: transition between classes of different dimensions;
 *  - I-turn (0-degree): transition between distinct classes of the same
 *    dimension and the same sign (different VC or parity region);
 *  - U-turn (180-degree): transition between classes of the same
 *    dimension with opposite signs.
 *
 * Extraction rules implemented here:
 *  - Theorem 1: within a partition, every ordered pair of classes from
 *    different dimensions is an allowed 90-degree turn.
 *  - Theorem 2: within a partition, classes of the dimension holding the
 *    complete pair are numbered by their order in the partition and
 *    transitions are allowed in strictly ascending order (yielding
 *    n(n-1)/2 U-/I-turns for n classes); dimensions present with a single
 *    sign allow all of their I-turns.
 *  - Theorem 3: every transition from a class of partition i to a class
 *    of any later partition j > i is allowed (90-degree, U- and I-turns
 *    alike).
 *
 * Staying in the same class ("straight") is always allowed and is not
 * materialised as a turn.
 */

#ifndef EBDA_CORE_TURNS_HH
#define EBDA_CORE_TURNS_HH

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/partition.hh"

namespace ebda::core {

/** Classification of a class-to-class transition. */
enum class TurnKind : std::uint8_t { Turn90, UTurn, ITurn };

/** The theorem that justified a turn (provenance for reporting). */
enum class TurnOrigin : std::uint8_t { Theorem1, Theorem2, Theorem3 };

/** Classify the transition from one class to a different class. */
TurnKind classifyTurn(const ChannelClass &from, const ChannelClass &to);

/** Short name of a turn kind ("90", "U", "I"). */
std::string toString(TurnKind k);

/** One allowed transition with provenance. */
struct Turn
{
    ChannelClass from;
    ChannelClass to;
    TurnKind kind;
    TurnOrigin origin;
    /** Scheme index of the source / destination partition. */
    std::uint16_t fromPartition = 0;
    std::uint16_t toPartition = 0;

    /** Figure-8 style compass name, e.g. "N2W1". */
    std::string compassName() const;

    /** Algebraic name, e.g. "Y2+ -> X1-". */
    std::string algebraicName() const;
};

/** Extraction options; all theorems enabled by default. */
struct TurnExtractionOptions
{
    /** Apply Theorem 2 inside partitions (U-/I-turns). */
    bool theorem2 = true;
    /** Apply Theorem 3 across partitions. */
    bool theorem3 = true;
    /** When true (corollary of Theorem 3) transitions may target any
     *  later partition; when false only the immediately next one. */
    bool transitionsToAllLater = true;
    /** Include U-/I-turn transitions across partitions (corollary of
     *  Theorem 3); 90-degree cross-partition turns are always included
     *  when theorem3 is set. */
    bool crossUITurns = true;
};

/**
 * The complete allowed turn set of a partition scheme, with O(1)
 * membership queries and per-origin reporting.
 */
class TurnSet
{
  public:
    TurnSet() = default;

    /**
     * Extract the allowed turns of a validated scheme. Panics when the
     * scheme fails PartitionScheme::validate(): extracting turns from an
     * invalid scheme would silently produce a deadlock-prone design.
     */
    static TurnSet extract(const PartitionScheme &scheme,
                           const TurnExtractionOptions &opts = {});

    /**
     * Build a turn set directly from an explicit list of allowed
     * transitions over the given classes — no scheme, no theorems. Used
     * to verify arbitrary turn models (e.g. the Glass-Ni one-turn-
     * removal combinations) against the Dally oracle. Transitions whose
     * endpoints are not in `classes` are rejected.
     */
    static TurnSet fromExplicit(
        const ClassList &classes,
        const std::vector<std::pair<ChannelClass, ChannelClass>> &allowed);

    /** All turns in extraction order. */
    const std::vector<Turn> &turns() const { return list; }

    /** True when the transition from -> to is allowed. Straight
     *  continuation (from == to) is always allowed. */
    bool allows(const ChannelClass &from, const ChannelClass &to) const;

    /** Number of turns of the given kind. */
    std::size_t count(TurnKind k) const;

    /** Number of turns with the given origin. */
    std::size_t countOrigin(TurnOrigin o) const;

    /** Total number of turns. */
    std::size_t size() const { return list.size(); }

    /** Turns originating in partition p and ending in partition q
     *  (p == q for intra-partition turns). */
    std::vector<Turn> turnsBetween(std::uint16_t p, std::uint16_t q) const;

    /**
     * The set of 90-degree turns as (from, to) algebraic-name pairs,
     * sorted; useful to compare against classical turn models where VC
     * numbers are irrelevant (single-VC 2D networks).
     */
    std::vector<std::string> sorted90DegreeNames(bool show_vc = true) const;

    /** The scheme the set was extracted from. */
    const PartitionScheme &scheme() const { return sourceScheme; }

  private:
    void addTurn(const ChannelClass &from, const ChannelClass &to,
                 TurnOrigin origin, std::uint16_t from_part,
                 std::uint16_t to_part);

    static std::uint64_t key(const ChannelClass &a, const ChannelClass &b);

    std::vector<Turn> list;
    std::unordered_set<std::uint64_t> lookup;
    std::unordered_set<std::uint64_t> knownClasses;
    PartitionScheme sourceScheme;
};

/**
 * Figure 4 counting identities for Theorem 2. For a complete pair
 * dimension holding a positive-direction classes and b negative-direction
 * classes (n = a + b), ascending numbering allows:
 *   U-turns: a * b;   I-turns: C(a,2) + C(b,2);   total: n(n-1)/2.
 */
struct UITurnCounts
{
    std::size_t uTurns = 0;
    std::size_t iTurns = 0;

    std::size_t total() const { return uTurns + iTurns; }
};

/** Closed-form counts for a pair dimension with a positive and b negative
 *  classes. */
UITurnCounts expectedUICounts(std::size_t a, std::size_t b);

} // namespace ebda::core

#endif // EBDA_CORE_TURNS_HH
