#include "partition.hh"

#include <algorithm>
#include <array>
#include <sstream>

#include "util/logging.hh"

namespace ebda::core {

Partition::Partition(ClassList classes)
{
    for (const auto &c : classes)
        add(c);
}

void
Partition::add(const ChannelClass &c)
{
    EBDA_ASSERT(!contains(c),
                "duplicate class ", c.algebraic(), " in partition");
    members.push_back(c);
}

bool
Partition::contains(const ChannelClass &c) const
{
    return std::find(members.begin(), members.end(), c) != members.end();
}

bool
Partition::overlapsClass(const ChannelClass &c) const
{
    return std::any_of(members.begin(), members.end(),
                       [&](const ChannelClass &m) { return m.overlaps(c); });
}

bool
Partition::disjointFrom(const Partition &other) const
{
    for (const auto &c : other.classes())
        if (overlapsClass(c))
            return false;
    return true;
}

std::size_t
Partition::completePairCount() const
{
    // For each dimension record which signs appear; a dimension with both
    // signs contributes one complete pair (Definition 3; VC numbers and
    // parity regions are ignored on purpose, see header).
    std::array<std::uint8_t, 256> signs{};
    for (const auto &c : members)
        signs[c.dim] |= (c.sign == Sign::Pos ? 1u : 2u);
    std::size_t pairs = 0;
    for (unsigned s : signs)
        if (s == 3)
            ++pairs;
    return pairs;
}

std::vector<std::uint8_t>
Partition::pairedDimensions() const
{
    std::array<std::uint8_t, 256> signs{};
    for (const auto &c : members)
        signs[c.dim] |= (c.sign == Sign::Pos ? 1u : 2u);
    std::vector<std::uint8_t> dims;
    for (std::size_t d = 0; d < signs.size(); ++d)
        if (signs[d] == 3)
            dims.push_back(static_cast<std::uint8_t>(d));
    return dims;
}

ClassList
Partition::classesInDim(std::uint8_t d) const
{
    ClassList out;
    for (const auto &c : members)
        if (c.dim == d)
            out.push_back(c);
    return out;
}

std::uint8_t
Partition::dimensionSpan() const
{
    std::uint8_t span = 0;
    for (const auto &c : members)
        span = std::max<std::uint8_t>(span, c.dim + 1);
    return span;
}

std::string
Partition::toString(bool show_vc) const
{
    return core::toString(members, show_vc);
}

PartitionScheme::PartitionScheme(std::vector<Partition> partitions)
    : parts(std::move(partitions))
{
}

void
PartitionScheme::add(Partition p)
{
    parts.push_back(std::move(p));
}

ClassList
PartitionScheme::allClasses() const
{
    ClassList out;
    for (const auto &p : parts)
        out.insert(out.end(), p.classes().begin(), p.classes().end());
    return out;
}

std::size_t
PartitionScheme::numClasses() const
{
    std::size_t n = 0;
    for (const auto &p : parts)
        n += p.size();
    return n;
}

std::optional<std::size_t>
PartitionScheme::partitionOf(const ChannelClass &c) const
{
    for (std::size_t i = 0; i < parts.size(); ++i)
        if (parts[i].contains(c))
            return i;
    return std::nullopt;
}

ValidationResult
PartitionScheme::validate() const
{
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (parts[i].empty()) {
            return ValidationResult::reject(
                "partition " + std::to_string(i) + " is empty");
        }
        if (!parts[i].satisfiesTheorem1()) {
            return ValidationResult::reject(
                "partition " + parts[i].toString() + " violates Theorem 1: "
                + std::to_string(parts[i].completePairCount())
                + " complete D-pairs");
        }
        for (std::size_t j = i + 1; j < parts.size(); ++j) {
            if (!parts[i].disjointFrom(parts[j])) {
                return ValidationResult::reject(
                    "partitions " + parts[i].toString() + " and "
                    + parts[j].toString() + " are not disjoint");
            }
        }
    }
    return ValidationResult::accept();
}

std::uint8_t
PartitionScheme::dimensionSpan() const
{
    std::uint8_t span = 0;
    for (const auto &p : parts)
        span = std::max(span, p.dimensionSpan());
    return span;
}

std::string
PartitionScheme::toString(bool show_vc) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            os << " -> ";
        os << parts[i].toString(show_vc);
    }
    return os.str();
}

std::string
PartitionScheme::canonicalKey() const
{
    // The algebraic rendering is injective over (dim, sign, vc, parity)
    // and preserves member and partition order, so it doubles as a
    // canonical structural key.
    return toString(true);
}

} // namespace ebda::core
