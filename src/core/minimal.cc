#include "minimal.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ebda::core {

std::size_t
minFullyAdaptiveChannels(std::uint8_t n)
{
    EBDA_ASSERT(n >= 1 && n <= 24, "dimensionality out of range: ", n);
    return static_cast<std::size_t>(n + 1) << (n - 1);
}

PartitionScheme
regionScheme(std::uint8_t n)
{
    // VC indices go up to 2^(n-1) - 1 and must fit the 8-bit VC field.
    EBDA_ASSERT(n >= 1 && n <= 9, "dimensionality out of range: ", n);
    PartitionScheme scheme;
    const std::uint32_t orthants = 1u << n;
    for (std::uint32_t sigma = 0; sigma < orthants; ++sigma) {
        Partition p;
        for (std::uint8_t d = 0; d < n; ++d) {
            const Sign s = (sigma >> d) & 1u ? Sign::Neg : Sign::Pos;
            // VC = the orthant index with bit d removed; unique among the
            // 2^(n-1) orthants sharing this (dim, sign), so all
            // partitions are disjoint.
            const std::uint32_t lo = sigma & ((1u << d) - 1u);
            const std::uint32_t hi = (sigma >> (d + 1)) << d;
            const auto vc = static_cast<std::uint8_t>(lo | hi);
            p.add(makeClass(d, s, vc));
        }
        scheme.add(std::move(p));
    }
    const auto validation = scheme.validate();
    EBDA_ASSERT(validation.ok, "region scheme invalid: ", validation.reason);
    return scheme;
}

PartitionScheme
mergedScheme(std::uint8_t n, std::uint8_t pair_dim)
{
    // The pair dimension needs 2^(n-1) VC pairs; VCs are 8-bit.
    EBDA_ASSERT(n >= 1 && n <= 9, "dimensionality out of range: ", n);
    EBDA_ASSERT(pair_dim < n, "pair dimension ", pair_dim,
                " out of range for n=", n);

    // The free dimensions, in ascending order, carry the sign vector.
    std::vector<std::uint8_t> free_dims;
    for (std::uint8_t d = 0; d < n; ++d)
        if (d != pair_dim)
            free_dims.push_back(d);

    PartitionScheme scheme;
    const std::uint32_t combos = 1u << free_dims.size();
    for (std::uint32_t sigma = 0; sigma < combos; ++sigma) {
        Partition p;
        // Complete pair of pair_dim with a fresh VC pair per partition.
        const auto pair_vc = static_cast<std::uint8_t>(sigma);
        p.add(makeClass(pair_dim, Sign::Pos, pair_vc));
        p.add(makeClass(pair_dim, Sign::Neg, pair_vc));
        for (std::size_t i = 0; i < free_dims.size(); ++i) {
            const Sign s = (sigma >> i) & 1u ? Sign::Neg : Sign::Pos;
            // VC = sigma with bit i removed: unique among partitions
            // sharing this (dim, sign).
            const std::uint32_t lo = sigma & ((1u << i) - 1u);
            const std::uint32_t hi = (sigma >> (i + 1)) << i;
            const auto vc = static_cast<std::uint8_t>(lo | hi);
            p.add(makeClass(free_dims[i], s, vc));
        }
        scheme.add(std::move(p));
    }
    const auto validation = scheme.validate();
    EBDA_ASSERT(validation.ok, "merged scheme invalid: ", validation.reason);
    EBDA_ASSERT(channelCount(scheme) == minFullyAdaptiveChannels(n),
                "merged scheme channel count mismatch");
    return scheme;
}

PartitionScheme
mergedScheme(std::uint8_t n)
{
    return mergedScheme(n, static_cast<std::uint8_t>(n - 1));
}

std::vector<int>
vcsRequired(const PartitionScheme &scheme)
{
    std::vector<int> vcs(scheme.dimensionSpan(), 0);
    for (const auto &c : scheme.allClasses())
        vcs[c.dim] = std::max(vcs[c.dim], static_cast<int>(c.vc) + 1);
    return vcs;
}

std::size_t
channelCount(const PartitionScheme &scheme)
{
    return scheme.numClasses();
}

} // namespace ebda::core
