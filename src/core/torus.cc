#include "torus.hh"

#include "util/logging.hh"

namespace ebda::core {

PartitionScheme
torusDorScheme(std::uint8_t n)
{
    EBDA_ASSERT(n >= 1 && n <= 16, "dimensionality out of range: ", n);
    PartitionScheme scheme;
    for (std::uint8_t d = 0; d < n; ++d) {
        for (std::uint8_t vc = 0; vc < 2; ++vc) {
            scheme.add(Partition({makeClass(d, Sign::Pos, vc),
                                  makeClass(d, Sign::Neg, vc)}));
        }
    }
    const auto validation = scheme.validate();
    EBDA_ASSERT(validation.ok, "torus DOR scheme invalid: ",
                validation.reason);
    return scheme;
}

PartitionScheme
torusAdaptiveScheme2d()
{
    PartitionScheme scheme;
    scheme.add(Partition({makeClass(1, Sign::Pos, 0),
                          makeClass(1, Sign::Neg, 0),
                          makeClass(0, Sign::Pos, 0)}));
    scheme.add(Partition({makeClass(1, Sign::Pos, 1),
                          makeClass(1, Sign::Neg, 1),
                          makeClass(0, Sign::Neg, 0)}));
    scheme.add(Partition({makeClass(0, Sign::Pos, 1),
                          makeClass(0, Sign::Neg, 1)}));
    const auto validation = scheme.validate();
    EBDA_ASSERT(validation.ok, "torus adaptive scheme invalid: ",
                validation.reason);
    return scheme;
}

} // namespace ebda::core
