#include "arrange.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/logging.hh"

namespace ebda::core {

std::size_t
DimensionSet::pairCount() const
{
    std::size_t pos = 0;
    std::size_t neg = 0;
    for (const auto &c : channels)
        (c.sign == Sign::Pos ? pos : neg) += 1;
    return std::min(pos, neg);
}

ChannelClass
DimensionSet::popFront()
{
    EBDA_ASSERT(!channels.empty(), "popFront on empty dimension set");
    ChannelClass c = channels.front();
    channels.erase(channels.begin());
    return c;
}

std::string
DimensionSet::toString() const
{
    std::ostringstream os;
    os << "D_" << dimLetter(dim) << " = " << core::toString(channels);
    return os.str();
}

SetArrangement
makeSets(const std::vector<int> &vcs_per_dim)
{
    SetArrangement sets;
    for (std::size_t d = 0; d < vcs_per_dim.size(); ++d) {
        EBDA_ASSERT(vcs_per_dim[d] >= 0, "negative VC count");
        if (vcs_per_dim[d] == 0)
            continue;
        DimensionSet set;
        set.dim = static_cast<std::uint8_t>(d);
        for (int v = 0; v < vcs_per_dim[d]; ++v) {
            set.channels.push_back(makeClass(set.dim, Sign::Pos,
                                             static_cast<std::uint8_t>(v)));
            set.channels.push_back(makeClass(set.dim, Sign::Neg,
                                             static_cast<std::uint8_t>(v)));
        }
        sets.push_back(std::move(set));
    }
    return sets;
}

void
arrange1(SetArrangement &sets)
{
    std::stable_sort(sets.begin(), sets.end(),
                     [](const DimensionSet &a, const DimensionSet &b) {
                         return a.pairCount() > b.pairCount();
                     });
}

std::vector<SetArrangement>
arrangement2All(SetArrangement sets)
{
    arrange1(sets);

    // Group consecutive sets with equal pair counts and emit the product
    // of the per-group permutations.
    std::vector<SetArrangement> results;
    std::vector<std::pair<std::size_t, std::size_t>> groups;
    for (std::size_t i = 0; i < sets.size();) {
        std::size_t j = i + 1;
        while (j < sets.size()
               && sets[j].pairCount() == sets[i].pairCount()) {
            ++j;
        }
        groups.emplace_back(i, j);
        i = j;
    }

    // Odometer over per-group permutations.
    std::vector<std::vector<std::size_t>> perms(groups.size());
    std::vector<std::size_t> perm_idx(groups.size(), 0);
    std::vector<std::vector<std::vector<std::size_t>>> all_perms;
    all_perms.reserve(groups.size());
    for (const auto &[lo, hi] : groups) {
        std::vector<std::size_t> base(hi - lo);
        std::iota(base.begin(), base.end(), lo);
        std::vector<std::vector<std::size_t>> group_perms;
        do {
            group_perms.push_back(base);
        } while (std::next_permutation(base.begin(), base.end()));
        all_perms.push_back(std::move(group_perms));
    }

    std::vector<std::size_t> counter(groups.size(), 0);
    while (true) {
        SetArrangement arr;
        for (std::size_t g = 0; g < groups.size(); ++g)
            for (std::size_t idx : all_perms[g][counter[g]])
                arr.push_back(sets[idx]);
        results.push_back(std::move(arr));

        // Increment the odometer.
        std::size_t g = 0;
        while (g < counter.size()) {
            if (++counter[g] < all_perms[g].size())
                break;
            counter[g] = 0;
            ++g;
        }
        if (g == counter.size())
            break;
    }
    return results;
}

std::vector<SetArrangement>
arrangement3All(const SetArrangement &sets, std::size_t max_results)
{
    std::vector<SetArrangement> results;
    if (sets.empty())
        return results;

    // Split the first set into positive and negative channels; pairing k
    // interleaves pos[perm[i]] with neg[i].
    ClassList pos;
    ClassList neg;
    for (const auto &c : sets.front().channels)
        (c.sign == Sign::Pos ? pos : neg).push_back(c);

    if (pos.size() != neg.size()) {
        // Unbalanced sets keep their single canonical pairing.
        results.push_back(sets);
        return results;
    }

    std::vector<std::size_t> perm(pos.size());
    std::iota(perm.begin(), perm.end(), 0);
    do {
        SetArrangement arr = sets;
        arr.front().channels.clear();
        for (std::size_t i = 0; i < perm.size(); ++i) {
            arr.front().channels.push_back(pos[perm[i]]);
            arr.front().channels.push_back(neg[i]);
        }
        results.push_back(std::move(arr));
    } while (results.size() < max_results
             && std::next_permutation(perm.begin(), perm.end()));
    return results;
}

std::string
toString(const SetArrangement &sets)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < sets.size(); ++i) {
        os << "Set" << i + 1 << ": " << sets[i].toString();
        if (i + 1 < sets.size())
            os << '\n';
    }
    return os.str();
}

} // namespace ebda::core
