/**
 * @file
 * Partition-scheme generators for k-ary n-cubes (Assumption 3 and the
 * Theorem-2 torus note). On tori built with
 * WrapClassification::OppositeOfTravel a wrap traversal lands on the
 * opposite direction class, so crossing a dateline is a U-turn; the
 * schemes here place a post-wrap continuation class in a later
 * partition, which is exactly what makes torus-minimal routing legal.
 *
 * Two generators:
 *  - torusDorScheme(n): 2n partitions of one VC pair each, dimension-
 *    major — the EbDa rendering of dateline dimension-order routing;
 *    2 VCs per dimension, deterministic-grade adaptiveness.
 *  - torusAdaptiveScheme2d(): the three-partition 2D scheme used by
 *    the torus benches: {Y1* X1+} -> {Y2* X1-} -> {X2*}; adaptive in
 *    the mesh region while every wrap remains usable.
 */

#ifndef EBDA_CORE_TORUS_HH
#define EBDA_CORE_TORUS_HH

#include "core/partition.hh"

namespace ebda::core {

/**
 * Dimension-major torus scheme: for each dimension d (ascending), one
 * partition {Dd(vc0)+ Dd(vc0)-} followed by one {Dd(vc1)+ Dd(vc1)-}.
 * A packet travels dimension d on VC 0, takes the wrap (a Theorem-2
 * U-turn inside the first partition), continues on VC 1 (Theorem-3
 * transition), then proceeds to later dimensions. Requires 2 VCs per
 * dimension.
 */
PartitionScheme torusDorScheme(std::uint8_t n);

/**
 * Adaptive 2D torus scheme over 2 VCs per dimension:
 * {Y1+ Y1- X1+} -> {Y2+ Y2- X1-} -> {X2+ X2-}.
 */
PartitionScheme torusAdaptiveScheme2d();

} // namespace ebda::core

#endif // EBDA_CORE_TORUS_HH
