/**
 * @file
 * Section 5.4 reproduction: "more allowable turns do not necessarily
 * lead to a larger overhead or a more complex routing algorithm". The
 * bench measures the per-hop routing-decision cost (candidate
 * computation) of deterministic, partially adaptive and fully adaptive
 * relations and prints it against each design's turn count.
 */

#include "common.hh"

#include <chrono>

#include "core/catalog.hh"
#include "routing/baselines.hh"
#include "routing/ebda_routing.hh"
#include "util/random.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

/** Average candidates() latency over random (state, dest) queries. */
double
measureNs(const cdg::RoutingRelation &r, const topo::Network &net)
{
    Rng rng(42);
    // Pre-draw query set so the RNG is out of the timed loop.
    struct Query
    {
        topo::ChannelId in;
        topo::NodeId at;
        topo::NodeId src;
        topo::NodeId dest;
    };
    std::vector<Query> queries;
    while (queries.size() < 2000) {
        const auto src = static_cast<topo::NodeId>(
            rng.nextBounded(net.numNodes()));
        const auto dest = static_cast<topo::NodeId>(
            rng.nextBounded(net.numNodes()));
        if (src == dest)
            continue;
        queries.push_back({cdg::kInjectionChannel, src, src, dest});
    }
    // Warm any per-destination caches: the steady-state router cost is
    // what Section 5.4 talks about.
    for (const auto &q : queries)
        benchmark::DoNotOptimize(r.candidates(q.in, q.at, q.src, q.dest));

    const auto start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < 10; ++rep)
        for (const auto &q : queries)
            benchmark::DoNotOptimize(
                r.candidates(q.in, q.at, q.src, q.dest));
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    return elapsed / (10.0 * static_cast<double>(queries.size())) * 1e9;
}

void
reproduce()
{
    bench::banner("Section 5.4: turn count vs routing-decision cost");

    const auto net = topo::Network::mesh({8, 8}, {2, 2});

    const auto xy_scheme = core::schemeFig6P1();
    const auto wf_scheme = core::schemeFig6P3();
    const auto fa_scheme = core::schemeFig7b();
    const routing::EbDaRouting xy(net, xy_scheme);
    const routing::EbDaRouting wf(net, wf_scheme);
    const routing::EbDaRouting fa(net, fa_scheme);
    const auto dor = routing::DimensionOrderRouting::xy(net);
    const routing::OddEvenRouting oe(net);

    TextTable t;
    t.setHeader({"router", "90-deg turns", "decision ns/hop"});
    auto row = [&](const cdg::RoutingRelation &r, std::size_t turns) {
        t.addRow({r.name(), turns ? TextTable::num(turns) : "-",
                  TextTable::num(measureNs(r, net), 1)});
    };
    row(dor, 0);
    row(oe, 0);
    row(xy, core::TurnSet::extract(xy_scheme)
                .count(core::TurnKind::Turn90));
    row(wf, core::TurnSet::extract(wf_scheme)
                .count(core::TurnKind::Turn90));
    row(fa, core::TurnSet::extract(fa_scheme)
                .count(core::TurnKind::Turn90));
    t.print(std::cout);
    std::cout << "paper: adding turns may simplify or complicate the "
                 "routing logic; cost does not scale with turn count\n";
}

void
bmXyDecision(benchmark::State &state)
{
    const auto net = topo::Network::mesh({8, 8}, {2, 2});
    const auto dor = routing::DimensionOrderRouting::xy(net);
    topo::NodeId at = 0;
    for (auto _ : state) {
        at = (at + 7) % (net.numNodes() - 1);
        auto c = dor.candidates(cdg::kInjectionChannel, at, at,
                                static_cast<topo::NodeId>(
                                    net.numNodes() - 1));
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(bmXyDecision);

void
bmFullyAdaptiveDecision(benchmark::State &state)
{
    const auto net = topo::Network::mesh({8, 8}, {2, 2});
    const routing::EbDaRouting fa(net, core::schemeFig7b());
    topo::NodeId at = 0;
    // Prime the survivor cache for the single destination used.
    const auto dest =
        static_cast<topo::NodeId>(net.numNodes() - 1);
    benchmark::DoNotOptimize(
        fa.candidates(cdg::kInjectionChannel, 0, 0, dest));
    for (auto _ : state) {
        at = (at + 7) % (net.numNodes() - 1);
        auto c = fa.candidates(cdg::kInjectionChannel, at, at, dest);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(bmFullyAdaptiveDecision);

} // namespace

EBDA_BENCH_MAIN(reproduce)
