/**
 * @file
 * Figure 5 reproduction: Theorem 3 on {X+ X- Y-} -> {Y+}. The combined
 * turn set equals the North-Last turn model; the transition adds the EN
 * and WN turns plus the S->N U-turn, while NE/NW stay prohibited.
 */

#include "common.hh"

#include "cdg/adaptivity.hh"
#include "cdg/turn_cdg.hh"
#include "core/catalog.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

void
reproduce()
{
    bench::banner("Figure 5: {X+ X- Y-} -> {Y+} == North-Last");

    const auto scheme = core::schemeNorthLast();
    const auto set = core::TurnSet::extract(scheme);

    TextTable t;
    t.setHeader({"turn", "kind", "origin"});
    for (const auto &turn : set.turns()) {
        t.addRow({turn.compassName(), core::toString(turn.kind),
                  turn.origin == core::TurnOrigin::Theorem1 ? "Theorem 1"
                  : turn.origin == core::TurnOrigin::Theorem2
                      ? "Theorem 2"
                      : "Theorem 3"});
    }
    t.print(std::cout);

    const auto dirs = core::directionTurns(set);
    std::cout << "direction-level 90-degree turns:";
    for (const auto &d : dirs)
        std::cout << ' ' << d;
    std::cout << "\nmatches North-Last reference: "
              << (dirs == core::northLastTurns() ? "yes" : "NO") << '\n';
    std::cout << "classified as: "
              << core::classify2dScheme(scheme).value_or("<none>") << '\n';

    const auto net = topo::Network::mesh({8, 8}, {1, 1});
    std::cout << "Dally oracle on 8x8 mesh: "
              << (cdg::checkDeadlockFree(net, scheme).deadlockFree
                      ? "deadlock-free"
                      : "CYCLIC")
              << '\n';
    const auto adapt = cdg::measureAdaptiveness(net, scheme);
    std::cout << "adaptiveness (allowed/total minimal paths, avg): "
              << adapt.averageFraction << '\n';
}

void
bmClassify(benchmark::State &state)
{
    const auto scheme = core::schemeNorthLast();
    for (auto _ : state) {
        auto name = core::classify2dScheme(scheme);
        benchmark::DoNotOptimize(name);
    }
}
BENCHMARK(bmClassify);

void
bmAdaptiveness(benchmark::State &state)
{
    const auto net = topo::Network::mesh({8, 8}, {1, 1});
    const auto scheme = core::schemeNorthLast();
    for (auto _ : state) {
        auto report = cdg::measureAdaptiveness(net, scheme);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(bmAdaptiveness);

} // namespace

EBDA_BENCH_MAIN(reproduce)
