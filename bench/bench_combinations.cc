/**
 * @file
 * Section 2 reproduction: the turn-model design-space explosion that
 * motivates EbDa. For each configuration the bench reports the number
 * of abstract cycles and candidate combinations (4^cycles), exhaustively
 * verifies the tractable spaces with the Dally oracle, and contrasts
 * the cost with EbDa's direct construction of a single valid design.
 *
 * Paper numbers: 16 (2D), 65,536 (2D + 1 VC/dim), "29,696 (4^6)" for 3D
 * — 4^6 is 4,096; we report the measured 4,096 — and "more than 8
 * billion" for 3D + 1 VC/dim (4^24 in our cycle accounting).
 */

#include "common.hh"

#include <chrono>

#include "cdg/turn_model_enum.hh"
#include "core/minimal.hh"
#include "cdg/turn_cdg.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

void
reproduce()
{
    bench::banner("Section 2: turn-model combination explosion vs EbDa "
                  "direct construction");

    TextTable t;
    t.setHeader({"network", "abstract cycles", "combinations (4^c)",
                 "verified", "deadlock-free", "connected",
                 "enumeration time"});

    struct Config
    {
        const char *label;
        std::vector<int> dims;
        std::vector<int> vcs;
        std::size_t cap;
    };
    const std::vector<Config> configs = {
        {"2D, no VC", {5, 5}, {1, 1}, 1u << 20},
        {"2D, 2 VCs/dim", {4, 4}, {2, 2}, 1u << 20},
        {"3D, no VC", {3, 3, 3}, {1, 1, 1}, 1u << 20},
    };

    for (const auto &cfg : configs) {
        const auto space = cdg::turnModelSpace(
            static_cast<std::uint8_t>(cfg.dims.size()), cfg.vcs);
        const auto net = topo::Network::mesh(cfg.dims, cfg.vcs);
        const auto start = std::chrono::steady_clock::now();
        const auto result = cdg::enumerateTurnModels(net, cfg.cap);
        const auto elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        t.addRow({cfg.label, TextTable::num(space.numCycles),
                  TextTable::num(space.numCombinations, 0),
                  TextTable::num(result.combinations),
                  TextTable::num(result.deadlockFree),
                  TextTable::num(result.connected),
                  TextTable::num(elapsed, 2) + " s"});
    }
    t.print(std::cout);

    // 3D with 2 VCs per dimension: too large to enumerate; report the
    // space size only (the paper's "more than 8 billion").
    const auto big = cdg::turnModelSpace(3, {2, 2, 2});
    std::cout << "3D, 2 VCs/dim: " << big.numCycles
              << " cycles -> 4^" << big.numCycles << " = "
              << big.numCombinations
              << " combinations (paper: 'more than 8 billion'; not "
                 "enumerable)\n";

    // EbDa constructs a valid maximally adaptive design directly.
    const auto net3 = topo::Network::mesh({3, 3, 3}, {2, 2, 4});
    const auto start = std::chrono::steady_clock::now();
    const auto scheme = core::mergedScheme(3);
    const auto verdict = cdg::checkDeadlockFree(net3, scheme);
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    std::cout << "EbDa direct construction of a fully adaptive 3D design "
                 "+ one oracle check: "
              << TextTable::num(elapsed * 1e3, 2) << " ms ("
              << (verdict.deadlockFree ? "deadlock-free" : "CYCLIC")
              << ") — no search over the 4^c space\n";
}

void
bmEnumerate2d(benchmark::State &state)
{
    const auto net = topo::Network::mesh({5, 5}, {1, 1});
    for (auto _ : state) {
        auto result = cdg::enumerateTurnModels(net);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(bmEnumerate2d);

void
bmEbDaDirectConstruction(benchmark::State &state)
{
    const auto net = topo::Network::mesh({3, 3, 3}, {2, 2, 4});
    for (auto _ : state) {
        auto scheme = core::mergedScheme(3);
        auto verdict = cdg::checkDeadlockFree(net, scheme);
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(bmEbDaDirectConstruction);

} // namespace

EBDA_BENCH_MAIN(reproduce)
