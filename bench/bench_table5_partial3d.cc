/**
 * @file
 * Table 5 / Section 6.3 reproduction: the vertically partially
 * connected 3D network. The two-partition scheme
 * PA = {X1+ Y1* Z1+} -> PB = {X1- Y2* Z1-} allows thirty 90-degree
 * turns (vs Elevator-First's sixteen) with VCs (1,2,1) vs (2,2,1), and
 * both are verified on a concrete partially connected mesh; the bench
 * also simulates both routers.
 */

#include "common.hh"

#include <sstream>

#include "cdg/relation_cdg.hh"
#include "cdg/turn_cdg.hh"
#include "core/catalog.hh"
#include "routing/ebda_routing.hh"
#include "routing/elevator.hh"
#include "routing/updown.hh"
#include "sim/simulator.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

std::string
turnNames(const std::vector<core::Turn> &turns, core::TurnKind kind)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &t : turns) {
        if (t.kind != kind)
            continue;
        if (!first)
            os << ", ";
        os << t.compassName();
        first = false;
    }
    return os.str();
}

void
reproduce()
{
    bench::banner("Table 5: partially connected 3D, scheme of [39]");

    const auto scheme = core::schemePartial3d();
    std::cout << "scheme: " << scheme.toString() << '\n';
    const auto set = core::TurnSet::extract(scheme);

    TextTable t;
    t.setHeader({"extracting turns", "90-degree turns"});
    t.addRow({"in PA", turnNames(set.turnsBetween(0, 0),
                                 core::TurnKind::Turn90)});
    t.addRow({"in PB", turnNames(set.turnsBetween(1, 1),
                                 core::TurnKind::Turn90)});
    t.addRow({"PA -> PB", turnNames(set.turnsBetween(0, 1),
                                    core::TurnKind::Turn90)});
    t.print(std::cout);
    std::cout << "90-degree turns: " << set.count(core::TurnKind::Turn90)
              << " (paper: 30; Elevator-First: 16)\nU-turns: "
              << set.count(core::TurnKind::UTurn) << ", I-turns: "
              << set.count(core::TurnKind::ITurn)
              << " (paper quotes six U- and I-turns; extraction finds "
                 "6 U + 2 I — see EXPERIMENTS.md)\n";

    const std::vector<std::pair<int, int>> elevators = {
        {0, 0}, {0, 3}, {3, 0}, {3, 3}};
    const auto net = topo::Network::partialMesh3d({4, 4, 3}, {2, 2, 1},
                                                  elevators);

    std::cout << "\nnetwork: 4x4x3, elevators at the four corners\n";
    std::cout << "turn-CDG oracle for the scheme: "
              << (cdg::checkDeadlockFree(net, scheme).deadlockFree
                      ? "deadlock-free"
                      : "CYCLIC")
              << '\n';

    const routing::ElevatorFirstRouting elevator(net, elevators);
    const routing::EbDaRouting ebda(net, scheme, {},
                                    routing::EbDaRouting::Mode::
                                        ShortestState);
    const routing::UpDownRouting updown(net);

    TextTable cmp;
    cmp.setHeader({"router", "VCs(X,Y,Z)", "deadlock-free", "connected",
                   "avg latency", "accepted"});
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    sim::SimConfig cfg;
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 4000;
    cfg.drainCycles = 40000;
    cfg.injectionRate = 0.08;
    auto row = [&](const cdg::RoutingRelation &r, const char *vcs) {
        const auto verdict = cdg::checkDeadlockFree(r);
        const auto conn = cdg::checkConnectivity(r);
        const auto result = sim::runSimulation(net, r, gen, cfg);
        cmp.addRow({r.name(), vcs, verdict.deadlockFree ? "yes" : "no*",
                    conn.connected ? "yes" : "NO",
                    TextTable::num(result.avgLatency, 1),
                    TextTable::num(result.acceptedRate, 4)});
    };
    row(elevator, "(2,2,1)");
    row(ebda, "(1,2,1)");
    row(updown, "(1,1,1)");
    cmp.print(std::cout);
    std::cout << "paper: the partition approach needs fewer VCs than "
                 "Elevator-First while offering adaptiveness (fully "
                 "adaptive in 4 of 8 regions)\n";
}

void
bmElevatorVerify(benchmark::State &state)
{
    const std::vector<std::pair<int, int>> elevators = {
        {0, 0}, {0, 3}, {3, 0}, {3, 3}};
    const auto net = topo::Network::partialMesh3d({4, 4, 3}, {2, 2, 1},
                                                  elevators);
    const routing::ElevatorFirstRouting r(net, elevators);
    for (auto _ : state) {
        auto verdict = cdg::checkDeadlockFree(r);
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(bmElevatorVerify);

void
bmPartial3dSchemeVerify(benchmark::State &state)
{
    const std::vector<std::pair<int, int>> elevators = {
        {0, 0}, {0, 3}, {3, 0}, {3, 3}};
    const auto net = topo::Network::partialMesh3d({4, 4, 3}, {1, 2, 1},
                                                  elevators);
    const auto scheme = core::schemePartial3d();
    for (auto _ : state) {
        auto verdict = cdg::checkDeadlockFree(net, scheme);
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(bmPartial3dSchemeVerify);

} // namespace

EBDA_BENCH_MAIN(reproduce)
