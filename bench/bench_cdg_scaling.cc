/**
 * @file
 * Scaling study: cost of the Dally oracle (concrete CDG construction +
 * cycle check) versus network size and dimensionality — the practical
 * footprint of "verify any design directly" that EbDa relies on, and
 * the quantity that explodes when multiplied by the 4^c turn-model
 * search (bench_combinations).
 */

#include "common.hh"

#include <chrono>

#include "cdg/turn_cdg.hh"
#include "core/minimal.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

void
reproduce()
{
    bench::banner("Dally-oracle cost vs network size (merged EbDa "
                  "scheme)");

    TextTable t;
    t.setHeader({"network", "channels", "dependencies", "verify time"});

    struct Config
    {
        std::string label;
        std::vector<int> dims;
        std::uint8_t n;
    };
    std::vector<Config> configs;
    for (int k : {4, 8, 16, 32})
        configs.push_back({std::to_string(k) + "x" + std::to_string(k),
                           {k, k}, 2});
    for (int k : {4, 8})
        configs.push_back({std::to_string(k) + "^3", {k, k, k}, 3});
    configs.push_back({"4^4", {4, 4, 4, 4}, 4});

    for (const auto &cfg : configs) {
        const auto scheme = core::mergedScheme(cfg.n);
        const auto net =
            topo::Network::mesh(cfg.dims, core::vcsRequired(scheme));
        const auto start = std::chrono::steady_clock::now();
        const auto report = cdg::checkDeadlockFree(net, scheme);
        const double ms = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count()
            * 1e3;
        t.addRow({cfg.label, TextTable::num(report.numChannels),
                  TextTable::num(report.numDependencies),
                  TextTable::num(ms, 2) + " ms"});
        if (!report.deadlockFree)
            std::cout << "UNEXPECTED cycle in " << cfg.label << '\n';
    }
    t.print(std::cout);
    std::cout << "takeaway: a single oracle check is cheap even at 32x32; "
                 "the turn-model flow multiplies it by 4^cycles, EbDa "
                 "needs exactly one\n";
}

void
bmVerifyMeshSize(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    const auto scheme = core::mergedScheme(2);
    const auto net =
        topo::Network::mesh({k, k}, core::vcsRequired(scheme));
    for (auto _ : state) {
        auto report = cdg::checkDeadlockFree(net, scheme);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(bmVerifyMeshSize)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void
bmVerifyDimension(benchmark::State &state)
{
    const auto n = static_cast<std::uint8_t>(state.range(0));
    const auto scheme = core::mergedScheme(n);
    const auto net = topo::Network::mesh(
        std::vector<int>(n, 4), core::vcsRequired(scheme));
    for (auto _ : state) {
        auto report = cdg::checkDeadlockFree(net, scheme);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(bmVerifyDimension)->Arg(2)->Arg(3)->Arg(4);

} // namespace

EBDA_BENCH_MAIN(reproduce)
