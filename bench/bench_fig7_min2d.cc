/**
 * @file
 * Figure 7 reproduction: minimum channels for fully adaptive 2D
 * routing. The region construction (four partitions, 8 channels) and
 * the two merged constructions (two partitions, 6 channels, VC budgets
 * (1,2) and (2,1)) are all fully adaptive; the formula says 6 is the
 * minimum, and the bench shows every 4- or 5-channel scheme fails to be
 * fully adaptive (exhaustive over the enumerator).
 */

#include "common.hh"

#include "cdg/adaptivity.hh"
#include "cdg/turn_cdg.hh"
#include "core/catalog.hh"
#include "core/enumerate.hh"
#include "core/minimal.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

void
reproduce()
{
    bench::banner("Figure 7: minimum channels for fully adaptive 2D");

    const auto net = topo::Network::mesh({6, 6}, {2, 2});

    TextTable t;
    t.setHeader({"construction", "partitions", "channels", "VCs(X,Y)",
                 "deadlock-free", "fully adaptive"});
    auto row = [&](const std::string &label,
                   const core::PartitionScheme &scheme) {
        const auto vcs = core::vcsRequired(scheme);
        const auto verdict = cdg::checkDeadlockFree(net, scheme);
        const auto adapt = cdg::measureAdaptiveness(net, scheme);
        t.addRow({label, TextTable::num(static_cast<int>(scheme.size())),
                  TextTable::num(core::channelCount(scheme)),
                  "(" + TextTable::num(vcs[0]) + ","
                      + TextTable::num(vcs.size() > 1 ? vcs[1] : 0) + ")",
                  verdict.deadlockFree ? "yes" : "NO",
                  adapt.fullyAdaptive ? "yes" : "no"});
    };
    row("Fig 7(a) region (4 partitions)", core::regionScheme(2));
    row("Fig 7(b) merged, pair dim Y", core::schemeFig7b());
    row("Fig 7(c) merged, pair dim X", core::schemeFig7c());
    row("generator mergedScheme(2)", core::mergedScheme(2));
    t.print(std::cout);

    std::cout << "formula N = (n+1)*2^(n-1), n=2: "
              << core::minFullyAdaptiveChannels(2) << " channels\n";

    // Minimality: no scheme over the four single-VC classes is fully
    // adaptive (4 channels), exhaustively.
    const auto net1 = topo::Network::mesh({5, 5}, {1, 1});
    std::size_t fully = 0;
    const auto schemes = core::enumerateSchemes(core::classes2d());
    for (const auto &s : schemes)
        if (cdg::measureAdaptiveness(net1, s).fullyAdaptive)
            ++fully;
    std::cout << "exhaustive check over all " << schemes.size()
              << " 4-channel schemes: " << fully
              << " fully adaptive (paper: impossible below 6 channels)\n";

    // 5 channels: one extra Y VC used in every placement; still never
    // fully adaptive.
    core::ClassList five = core::classes2d();
    five.push_back(core::makeClass(1, core::Sign::Pos, 1));
    const auto net5 = topo::Network::mesh({5, 5}, {1, 2});
    std::size_t fully5 = 0;
    std::size_t total5 = 0;
    for (const auto &s : core::enumerateSchemes(five)) {
        ++total5;
        if (cdg::measureAdaptiveness(net5, s).fullyAdaptive)
            ++fully5;
    }
    std::cout << "exhaustive check over all " << total5
              << " 5-channel schemes: " << fully5 << " fully adaptive\n";
}

void
bmMeasureFullAdaptiveness(benchmark::State &state)
{
    const auto net = topo::Network::mesh({6, 6}, {2, 2});
    const auto scheme = core::schemeFig7b();
    for (auto _ : state) {
        auto report = cdg::measureAdaptiveness(net, scheme);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(bmMeasureFullAdaptiveness);

} // namespace

EBDA_BENCH_MAIN(reproduce)
