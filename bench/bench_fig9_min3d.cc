/**
 * @file
 * Figure 9 reproduction: the 3D minimum-channel constructions — eight
 * region partitions with 24 channels (Fig 9(a)) versus four merged
 * partitions with 16 channels (Fig 9(b), 9(c)); all verified
 * deadlock-free and fully adaptive, and 16 = (n+1)*2^(n-1) confirmed as
 * the formula value.
 */

#include "common.hh"

#include "cdg/adaptivity.hh"
#include "cdg/turn_cdg.hh"
#include "core/catalog.hh"
#include "core/minimal.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

void
reproduce()
{
    bench::banner("Figure 9: 3D fully adaptive constructions");

    const auto net = topo::Network::mesh({3, 3, 3}, {3, 3, 4});

    TextTable t;
    t.setHeader({"construction", "partitions", "channels", "VCs(X,Y,Z)",
                 "deadlock-free", "fully adaptive"});
    auto row = [&](const std::string &label,
                   const core::PartitionScheme &scheme) {
        auto vcs = core::vcsRequired(scheme);
        vcs.resize(3, 0);
        const auto verdict = cdg::checkDeadlockFree(net, scheme);
        const auto adapt = cdg::measureAdaptiveness(net, scheme);
        t.addRow({label, TextTable::num(static_cast<int>(scheme.size())),
                  TextTable::num(core::channelCount(scheme)),
                  "(" + TextTable::num(vcs[0]) + "," + TextTable::num(vcs[1])
                      + "," + TextTable::num(vcs[2]) + ")",
                  verdict.deadlockFree ? "yes" : "NO",
                  adapt.fullyAdaptive ? "yes" : "no"});
    };
    {
        const auto region = topo::Network::mesh({3, 3, 3}, {4, 4, 4});
        const auto scheme = core::regionScheme(3);
        const auto verdict = cdg::checkDeadlockFree(region, scheme);
        const auto adapt = cdg::measureAdaptiveness(region, scheme);
        t.addRow({"Fig 9(a) region", "8", "24", "(4,4,4)",
                  verdict.deadlockFree ? "yes" : "NO",
                  adapt.fullyAdaptive ? "yes" : "no"});
    }
    row("Fig 9(b) merged (2,2,4)", core::schemeFig9b());
    row("Fig 9(c) merged (3,2,3)", core::schemeFig9c());
    row("generator mergedScheme(3)", core::mergedScheme(3));
    t.print(std::cout);
    std::cout << "formula N = (n+1)*2^(n-1), n=3: "
              << core::minFullyAdaptiveChannels(3)
              << " channels (paper: 16)\n";
}

void
bmVerifyMerged3d(benchmark::State &state)
{
    const auto net = topo::Network::mesh({4, 4, 4}, {2, 2, 4});
    const auto scheme = core::mergedScheme(3);
    for (auto _ : state) {
        auto verdict = cdg::checkDeadlockFree(net, scheme);
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(bmVerifyMerged3d);

void
bmAdaptiveness3d(benchmark::State &state)
{
    const auto net = topo::Network::mesh({3, 3, 3}, {2, 2, 4});
    const auto scheme = core::mergedScheme(3);
    for (auto _ : state) {
        auto report = cdg::measureAdaptiveness(net, scheme);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(bmAdaptiveness3d);

} // namespace

EBDA_BENCH_MAIN(reproduce)
