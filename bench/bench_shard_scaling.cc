/**
 * @file
 * Scaling curve and correctness gate for the sharded cycle backend
 * (sim/shard_sched.hh): cycles/s at shards in {1,2,4,8} on the 32x32,
 * 2-VC mesh saturation point (fig7b router, uniform 0.30
 * flits/node/cycle) — the single-big-run regime the backend exists
 * for.
 *
 * Three gates, in order of importance:
 *  - shards=1 bit-identity: with an explicit shard count of 1 the
 *    simulator must dispatch to the classic CycleScheduler, so the
 *    full result JSON must match a default (auto) run on a
 *    below-cutoff network bit for bit. Always enforced.
 *  - fixed-shard-count determinism: the shards=4 run must produce a
 *    byte-identical result JSON across EBDA_SHARD_THREADS = 1 and 2
 *    (the shard count, not the worker count, is the simulation's
 *    identity). Always enforced.
 *  - speedup: >= 2.5x at 4 shards and >= 4x at 8 shards over the
 *    shards=1 rate. Enforced ONLY when the host exposes at least as
 *    many hardware threads as shards; on smaller hosts (CI runners,
 *    laptops) the gate is skipped with a visible notice — the rates
 *    are still measured and reported so the committed baseline shows
 *    what the host could do.
 *
 * Machine-readable output: the JSON summary is printed to stdout and,
 * when EBDA_SHARD_BENCH_JSON is set, written to that path
 * (scripts/perf_baseline.sh merges it into BENCH_sim.json as the
 * `shard_scaling` member; CI uploads it as an artifact).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/sim_json.hh"
#include "sim/simulator.hh"
#include "sweep/router_factory.hh"

namespace ebda {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kShardPoints[] = {1, 2, 4, 8};

/** One full run: wall clock over exactly the measurement window. */
struct RepResult
{
    bool clean = false;
    double cyclesPerSec = 0.0;
    std::string resultJson;
    std::uint64_t packetsEjected = 0;
    std::uint64_t packetsMeasured = 0;
};

/** The 32x32 point runs ABOVE saturation (that is the regime the
 *  backend exists for), so it never drains: measured packets are
 *  still in flight when the short drain budget expires. The timing
 *  figure only needs the measurement window, so `requireDrain` is
 *  false for the scaling sweep and true for the light-load identity
 *  check. */
sim::SimConfig
saturationConfig()
{
    sim::SimConfig cfg;
    cfg.injectionRate = 0.30;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 2000;
    cfg.drainCycles = 2000;
    cfg.watchdogCycles = 20000;
    cfg.seed = 2026;
    cfg.routeTable = true;
    cfg.schedMode = sim::SchedMode::Cycle;
    return cfg;
}

RepResult
runOnce(const topo::Network &net, const cdg::RoutingRelation &rel,
        const sim::TrafficGenerator &gen, sim::SimConfig cfg,
        int shards, bool requireDrain)
{
    cfg.shards = shards;
    sim::Simulator simulator(net, rel, gen, cfg);

    struct Window
    {
        bool started = false;
        bool ended = false;
        Clock::time_point t0, t1;
    } w;
    simulator.setMeasurePhaseHooks(
        [&] {
            w.started = true;
            w.t0 = Clock::now();
        },
        [&] {
            w.t1 = Clock::now();
            w.ended = true;
        });

    const auto result = simulator.run();

    RepResult rep;
    rep.clean = w.started && w.ended && !result.deadlocked
        && !result.aborted && (!requireDrain || result.drained);
    if (!rep.clean) {
        std::cerr << "shards=" << shards
                  << ": run did not cover the measurement window"
                  << " cleanly (started=" << w.started
                  << " ended=" << w.ended
                  << " deadlocked=" << result.deadlocked
                  << " drained=" << result.drained << ")\n";
    }
    const double seconds =
        std::chrono::duration<double>(w.t1 - w.t0).count();
    rep.cyclesPerSec = seconds > 0
        ? static_cast<double>(cfg.measureCycles) / seconds
        : 0.0;
    rep.resultJson = sim::toJson(result);
    rep.packetsEjected = result.packetsEjected;
    rep.packetsMeasured = result.packetsMeasured;
    return rep;
}

/** Pin the worker-thread count for one run (restores the env). */
RepResult
runWithThreads(const topo::Network &net, const cdg::RoutingRelation &rel,
               const sim::TrafficGenerator &gen,
               const sim::SimConfig &cfg, int shards, int threads)
{
    ::setenv("EBDA_SHARD_THREADS", std::to_string(threads).c_str(), 1);
    auto rep = runOnce(net, rel, gen, cfg, shards, false);
    ::unsetenv("EBDA_SHARD_THREADS");
    return rep;
}

int
benchMain()
{
    const unsigned hw = std::thread::hardware_concurrency();
    bool pass = true;

    // ----------------------------------------------------------------
    // Gate 1: shards=1 is the classic CycleScheduler, bit for bit.
    // Run on an 8x8 mesh — below the Auto cutoff, so shards=0 resolves
    // to the classic backend and the comparison pins the dispatch
    // contract (an explicit 1 must not perturb anything, result JSON
    // included).
    bool identityPass = false;
    {
        const auto net8 = topo::Network::mesh({8, 8}, {2, 2});
        const auto rel8 = sweep::makeRouter(net8, "fig7b");
        if (!rel8) {
            std::cerr << "makeRouter(fig7b) failed\n";
            return 1;
        }
        const sim::TrafficGenerator gen8(net8,
                                         sim::TrafficPattern::Uniform);
        sim::SimConfig cfg8 = saturationConfig();
        cfg8.injectionRate = 0.10;
        cfg8.drainCycles = 50000;
        const auto classic = runOnce(net8, *rel8, gen8, cfg8, 0, true);
        const auto one = runOnce(net8, *rel8, gen8, cfg8, 1, true);
        identityPass = classic.clean && one.clean
            && classic.resultJson == one.resultJson;
        std::printf("shards=1 vs CycleScheduler bit-identity: %s\n",
                    identityPass ? "ok" : "MISMATCH");
        if (!identityPass)
            pass = false;
    }

    // ----------------------------------------------------------------
    // The 32x32 saturation point.
    const auto net = topo::Network::mesh({32, 32}, {2, 2});
    const auto rel = sweep::makeRouter(net, "fig7b");
    if (!rel) {
        std::cerr << "makeRouter(fig7b) failed\n";
        return 1;
    }
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    const sim::SimConfig cfg = saturationConfig();

    // Timing sweep: best of two identical runs per shard count. The
    // shards=1 point is the classic scheduler — the denominator every
    // speedup is quoted against.
    constexpr int kReps = 2;
    std::vector<double> rate(std::size(kShardPoints), 0.0);
    std::vector<RepResult> bestRep(std::size(kShardPoints));
    std::printf("32x32 mesh, fig7b, uniform %.2f (%u hardware "
                "thread%s):\n",
                cfg.injectionRate, hw, hw == 1 ? "" : "s");
    for (std::size_t i = 0; i < std::size(kShardPoints); ++i) {
        for (int r = 0; r < kReps; ++r) {
            RepResult rep =
                runOnce(net, *rel, gen, cfg, kShardPoints[i], false);
            if (!rep.clean)
                pass = false;
            // Sanity: a saturated window must actually move traffic.
            if (rep.packetsEjected == 0 || rep.packetsMeasured == 0) {
                std::printf("  shards=%d ejected no packets\n",
                            kShardPoints[i]);
                pass = false;
            }
            if (rep.cyclesPerSec > rate[i]) {
                rate[i] = rep.cyclesPerSec;
                bestRep[i] = std::move(rep);
            }
        }
        std::printf("  shards=%d: %8.0f cycles/s (speedup %.2fx)\n",
                    kShardPoints[i], rate[i],
                    rate[0] > 0 ? rate[i] / rate[0] : 0.0);
    }

    // ----------------------------------------------------------------
    // Gate 2: fixed-shard-count determinism across worker counts. The
    // shards=4 run must be byte-identical with 1 and 2 worker threads
    // (2 oversubscribes a single-core host — by design; this is why
    // the check needs no multi-core machine).
    const auto det1 = runWithThreads(net, *rel, gen, cfg, 4, 1);
    const auto det2 = runWithThreads(net, *rel, gen, cfg, 4, 2);
    const bool determinismPass = det1.clean && det2.clean
        && det1.resultJson == det2.resultJson
        && det1.resultJson == bestRep[2].resultJson;
    std::printf("shards=4 determinism across worker counts: %s\n",
                determinismPass ? "ok" : "MISMATCH");
    if (!determinismPass)
        pass = false;

    // ----------------------------------------------------------------
    // Gate 3: speedup — hardware-gated. A host with fewer hardware
    // threads than shards physically cannot show the scaling; skip
    // loudly instead of failing, so the bench stays runnable (and the
    // correctness gates above stay enforced) everywhere.
    const double speedup4 = rate[0] > 0 ? rate[2] / rate[0] : 0.0;
    const double speedup8 = rate[0] > 0 ? rate[3] / rate[0] : 0.0;
    bool gate4Enforced = hw >= 4;
    bool gate8Enforced = hw >= 8;
    if (gate4Enforced) {
        std::printf("  speedup gate @4 shards: %.2fx >= 2.5x: %s\n",
                    speedup4, speedup4 >= 2.5 ? "ok" : "TOO SLOW");
        if (speedup4 < 2.5)
            pass = false;
    } else {
        std::printf("  NOTICE: speedup gate @4 shards SKIPPED — host "
                    "has %u hardware thread%s (< 4)\n",
                    hw, hw == 1 ? "" : "s");
    }
    if (gate8Enforced) {
        std::printf("  speedup gate @8 shards: %.2fx >= 4x: %s\n",
                    speedup8, speedup8 >= 4.0 ? "ok" : "TOO SLOW");
        if (speedup8 < 4.0)
            pass = false;
    } else {
        std::printf("  NOTICE: speedup gate @8 shards SKIPPED — host "
                    "has %u hardware thread%s (< 8)\n",
                    hw, hw == 1 ? "" : "s");
    }

    std::ostringstream json;
    json << "{\"bench\":\"shard_scaling\""
         << ",\"network\":\"mesh32x32_vc2\",\"router\":\"fig7b\""
         << ",\"injection_rate\":" << cfg.injectionRate
         << ",\"measure_cycles\":" << cfg.measureCycles
         << ",\"reps\":" << kReps
         << ",\"hardware_threads\":" << hw;
    for (std::size_t i = 0; i < std::size(kShardPoints); ++i)
        json << ",\"cycles_per_sec_shards" << kShardPoints[i]
             << "\":" << rate[i];
    json << ",\"speedup_shards4\":" << speedup4
         << ",\"speedup_shards8\":" << speedup8
         << ",\"speedup_gate_enforced\":"
         << ((gate4Enforced || gate8Enforced) ? "true" : "false")
         << ",\"identity_pass\":" << (identityPass ? "true" : "false")
         << ",\"determinism_pass\":"
         << (determinismPass ? "true" : "false")
         << ",\"pass\":" << (pass ? "true" : "false") << "}";

    std::cout << "\nSHARD_BENCH_JSON: " << json.str() << '\n';
    if (const char *path = std::getenv("EBDA_SHARD_BENCH_JSON");
        path && *path) {
        std::ofstream out(path);
        out << json.str() << '\n';
    }
    return pass ? 0 : 1;
}

} // namespace
} // namespace ebda

int
main()
{
    return ebda::benchMain();
}
