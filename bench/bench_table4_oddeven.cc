/**
 * @file
 * Table 4 / Figure 10 reproduction: the Odd-Even turn model as an EbDa
 * parity partitioning PA = {X- Ye*} -> PB = {X+ Yo*}. Prints the
 * allowable turns grouped exactly like Table 4 (in PA, in PB, by
 * transition), flags the geometrically unusable even->odd I-turns, and
 * cross-checks against Chiu's published rules and the Dally oracle.
 * Also reproduces the Hamiltonian-path partitioning of Section 6.2.
 */

#include "common.hh"

#include <sstream>

#include "cdg/adaptivity.hh"
#include "cdg/turn_cdg.hh"
#include "cdg/relation_cdg.hh"
#include "core/catalog.hh"
#include "routing/baselines.hh"
#include "routing/ebda_routing.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

std::string
turnNames(const std::vector<core::Turn> &turns, core::TurnKind kind)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &t : turns) {
        if (t.kind != kind)
            continue;
        if (!first)
            os << ", ";
        os << t.from.compass(false) << t.to.compass(false);
        first = false;
    }
    return os.str();
}

void
reproduce()
{
    bench::banner("Table 4 / Figure 10: Odd-Even as parity partitions");

    const auto scheme = core::schemeOddEven();
    std::cout << "scheme: " << scheme.toString(false) << '\n';
    const auto set = core::TurnSet::extract(scheme);

    TextTable t;
    t.setHeader({"extracting turns", "90-degree turns", "U- & I-turns"});
    const auto in_pa = set.turnsBetween(0, 0);
    const auto in_pb = set.turnsBetween(1, 1);
    const auto cross = set.turnsBetween(0, 1);
    auto ui = [&](const std::vector<core::Turn> &v) {
        std::string u = turnNames(v, core::TurnKind::UTurn);
        const std::string i = turnNames(v, core::TurnKind::ITurn);
        if (!i.empty())
            u += (u.empty() ? "" : ", ") + i;
        return u;
    };
    t.addRow({"in PA", turnNames(in_pa, core::TurnKind::Turn90),
              ui(in_pa)});
    t.addRow({"in PB", turnNames(in_pb, core::TurnKind::Turn90),
              ui(in_pb)});
    t.addRow({"PA -> PB", turnNames(cross, core::TurnKind::Turn90),
              ui(cross)});
    t.print(std::cout);
    std::cout << "paper Table 4: WNe WSe NeW SeW | ENo ESo NoE SoE | "
                 "WNo WSo NeE SeE (+ U/I incl. unusable Ne->No etc.)\n";
    std::cout << "90-degree turn count: "
              << set.count(core::TurnKind::Turn90)
              << " (paper: 12, same adaptiveness level as West-First's 6 "
                 "total)\n";

    const auto net = topo::Network::mesh({8, 8}, {1, 1});
    std::cout << "Dally oracle on 8x8 mesh: "
              << (cdg::checkDeadlockFree(net, scheme).deadlockFree
                      ? "deadlock-free"
                      : "CYCLIC")
              << '\n';

    // Cross-check against Chiu's closed-form algorithm.
    const routing::OddEvenRouting chiu(net);
    const routing::EbDaRouting ebda(net, scheme);
    std::cout << "Chiu ROUTE: "
              << (cdg::checkDeadlockFree(chiu).deadlockFree
                      ? "deadlock-free"
                      : "CYCLIC")
              << ", connected: "
              << (cdg::checkConnectivity(chiu).connected ? "yes" : "NO")
              << "\nEbDa parity scheme routing: "
              << (cdg::checkDeadlockFree(ebda).deadlockFree
                      ? "deadlock-free"
                      : "CYCLIC")
              << ", connected: "
              << (cdg::checkConnectivity(ebda).connected ? "yes" : "NO")
              << '\n';

    const auto oe_adapt = cdg::measureAdaptiveness(net, scheme);
    const auto wf_adapt =
        cdg::measureAdaptiveness(net, core::schemeFig6P3());
    std::cout << "adaptiveness odd-even: " << oe_adapt.averageFraction
              << " vs west-first: " << wf_adapt.averageFraction
              << " (paper: same level)\n";

    bench::banner("Section 6.2: Hamiltonian-path partitioning");
    const auto ham = core::schemeHamiltonian();
    const auto ham_set = core::TurnSet::extract(ham);
    std::cout << "scheme: " << ham.toString(false) << "\n90-degree turns: "
              << ham_set.count(core::TurnKind::Turn90)
              << " (paper: twelve, including the eight of the "
                 "dual-Hamiltonian-path strategy)\n";
    std::cout << "Dally oracle: "
              << (cdg::checkDeadlockFree(net, ham).deadlockFree
                      ? "deadlock-free"
                      : "CYCLIC")
              << '\n';
}

void
bmOddEvenExtraction(benchmark::State &state)
{
    const auto scheme = core::schemeOddEven();
    for (auto _ : state) {
        auto set = core::TurnSet::extract(scheme);
        benchmark::DoNotOptimize(set);
    }
}
BENCHMARK(bmOddEvenExtraction);

void
bmOddEvenVerify(benchmark::State &state)
{
    const auto net = topo::Network::mesh({8, 8}, {1, 1});
    const auto scheme = core::schemeOddEven();
    for (auto _ : state) {
        auto verdict = cdg::checkDeadlockFree(net, scheme);
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(bmOddEvenVerify);

} // namespace

EBDA_BENCH_MAIN(reproduce)
