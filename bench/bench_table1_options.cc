/**
 * @file
 * Table 1 reproduction: the 12 partitioning options with maximum
 * adaptiveness in a 2D network with four channels. The bench
 * (a) derives the options via Arrangements + Algorithm 1/2 + transition
 * reordering + the exceptional case, (b) cross-checks them against the
 * exhaustive enumerator, (c) verifies each on the Dally oracle, and
 * (d) reproduces the Glass-Ni cross-validation: of the 16 turn-model
 * combinations, 12 are deadlock-free and 3 are unique up to symmetry
 * (North-Last, West-First, Negative-First).
 */

#include "common.hh"

#include <set>

#include "cdg/adaptivity.hh"
#include "cdg/turn_cdg.hh"
#include "cdg/turn_model_enum.hh"
#include "core/catalog.hh"
#include "core/derivation.hh"
#include "core/enumerate.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

void
reproduce()
{
    bench::banner("Table 1: 12 maximum-adaptiveness partitioning options "
                  "(2D, 4 channels)");

    const auto net = topo::Network::mesh({6, 6}, {1, 1});

    // The paper's 12 entries, column-major as printed.
    const std::vector<std::string> paper = {
        "{X+ X- Y+} -> {Y-}", "{X+ X- Y-} -> {Y+}",
        "{Y-} -> {X+ X- Y+}", "{Y+} -> {X+ X- Y-}",
        "{Y+ Y- X+} -> {X-}", "{Y+ Y- X-} -> {X+}",
        "{X-} -> {Y+ Y- X+}", "{X+} -> {Y+ Y- X-}",
        "{X+ Y+} -> {X- Y-}", "{X+ Y-} -> {X- Y+}",
        "{X- Y-} -> {X+ Y+}", "{X- Y+} -> {X+ Y-}",
    };

    core::DerivationOptions opts;
    opts.permuteTransitionOrders = true;
    const auto derived = core::deriveAll({1, 1}, opts);
    std::set<std::string> derived_keys;
    for (const auto &s : derived)
        derived_keys.insert(s.toString(false));

    TextTable t;
    t.setHeader({"paper option", "derived", "deadlock-free", "90-deg",
                 "classified"});
    std::size_t found = 0;
    for (const auto &entry : paper) {
        // Locate the derived scheme with this rendering.
        const core::PartitionScheme *match = nullptr;
        for (const auto &s : derived)
            if (s.toString(false) == entry)
                match = &s;
        if (match)
            ++found;
        std::string verdict = "-";
        std::string turns = "-";
        std::string classified = "-";
        if (match) {
            verdict = cdg::checkDeadlockFree(net, *match).deadlockFree
                ? "yes"
                : "NO";
            turns = TextTable::num(core::TurnSet::extract(*match).count(
                core::TurnKind::Turn90));
            classified = core::classify2dScheme(*match).value_or("-");
        }
        t.addRow({entry, match ? "yes" : "MISSING", verdict, turns,
                  classified});
    }
    t.print(std::cout);
    std::cout << "paper options derived: " << found << "/12\n";

    // Independent count via the exhaustive enumerator: 2-partition
    // schemes with the maximum six 90-degree turns.
    core::EnumerationOptions eopts;
    eopts.exactPartitions = 2;
    std::size_t max_adaptive = 0;
    for (const auto &s : core::enumerateSchemes(core::classes2d(), eopts)) {
        if (core::TurnSet::extract(s).count(core::TurnKind::Turn90) == 6)
            ++max_adaptive;
    }
    std::cout << "exhaustive enumerator: " << max_adaptive
              << " two-partition schemes with 6 turns (paper: 12)\n";

    // Glass-Ni cross-check via the oracle.
    const auto enum_result = cdg::enumerateTurnModels(net);
    std::cout << "turn-model combinations: " << enum_result.combinations
              << "; deadlock-free: " << enum_result.deadlockFree
              << " (paper: 12 of 16); connected: " << enum_result.connected
              << '\n';
}

void
bmDeriveAll2d(benchmark::State &state)
{
    core::DerivationOptions opts;
    opts.permuteTransitionOrders = true;
    for (auto _ : state) {
        auto schemes = core::deriveAll({1, 1}, opts);
        benchmark::DoNotOptimize(schemes);
    }
}
BENCHMARK(bmDeriveAll2d);

void
bmEnumerate16TurnModels(benchmark::State &state)
{
    const auto net = topo::Network::mesh({6, 6}, {1, 1});
    for (auto _ : state) {
        auto result = cdg::enumerateTurnModels(net);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(bmEnumerate16TurnModels);

} // namespace

EBDA_BENCH_MAIN(reproduce)
