/**
 * @file
 * Whole-sim-loop throughput benchmark and zero-allocation gate for the
 * arena-backed flit fabric: one fixed latency point (8x8 mesh, 2
 * VCs/dim, fig7b, uniform 0.10 flits/node/cycle) timed over exactly
 * the measurement window via the simulator's measurement-phase hooks,
 * with the same global operator new/delete hook bench_route_compute
 * uses wrapped around that window.
 *
 * This binary exits non-zero when
 *  - the steady-state loop performs a single heap allocation between
 *    the first measurement cycle and the first post-measurement cycle
 *    (the arena fabric's contract: rings, freelist and ring queues
 *    make the whole cycle loop allocation-free once warm), or
 *  - a committed baseline is supplied via EBDA_SIM_BASELINE_JSON and
 *    the measured cycles/s regresses: against a baseline that already
 *    carries a `sim_loop` object, more than 25% below its
 *    cycles_per_sec; against a pre-arena baseline (route-compute
 *    schema only), below 1.5x its sweep.table_cycles_per_sec, or
 *  - the run fails to drain, deadlocks, or the hooks never fire.
 *
 * The regression gate is a wall-clock verdict, so it is skipped (with
 * a visible NOTICE, and reported as regression_gate_skipped_noisy in
 * the JSON) when the three identical reps spread more than 15% — a
 * noisy CI host cannot support the verdict either way. The
 * zero-allocation gate is timing-free and always enforced.
 *
 * Machine-readable output: the JSON summary is printed to stdout and,
 * when EBDA_CYCLE_BENCH_JSON is set, written to that path (CI uploads
 * it as an artifact; scripts/perf_baseline.sh merges it into
 * BENCH_sim.json as the `sim_loop` member).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>

#include "sim/simulator.hh"
#include "sweep/router_factory.hh"
#include "util/json.hh"

namespace {

/** @name Global allocation hook
 *  Counts every operator new in the process; the measurement window of
 *  the cycle loop must leave it untouched.
 *  @{ */
std::uint64_t g_allocs = 0;

void *
countedAlloc(std::size_t size)
{
    ++g_allocs;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
/** @} */

namespace ebda {
namespace {

using Clock = std::chrono::steady_clock;

/** Figures of the committed BENCH_sim.json relevant to the gate. */
struct Baseline
{
    bool loaded = false;
    /** sim_loop.cycles_per_sec when present (arena-era schema). */
    double simLoopCyclesPerSec = 0.0;
    /** sweep.table_cycles_per_sec (route-compute-era schema). */
    double sweepTableCyclesPerSec = 0.0;
};

Baseline
loadBaseline(const char *path)
{
    Baseline base;
    std::ifstream in(path);
    if (!in) {
        std::cerr << "baseline " << path << " unreadable; gate skipped\n";
        return base;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    const auto doc = parseJson(buf.str(), &err);
    if (!doc || !doc->isObject()) {
        std::cerr << "baseline " << path << " unparseable (" << err
                  << "); gate skipped\n";
        return base;
    }
    if (const JsonValue *loop = doc->find("sim_loop")) {
        if (const JsonValue *cps = loop->find("cycles_per_sec"))
            base.simLoopCyclesPerSec = cps->asDouble();
    }
    if (const JsonValue *sweep = doc->find("sweep")) {
        if (const JsonValue *cps = sweep->find("table_cycles_per_sec"))
            base.sweepTableCyclesPerSec = cps->asDouble();
    }
    base.loaded = true;
    return base;
}

/** One timed run: allocation count, flit moves and wall clock at the
 *  first measurement cycle and at the first post-measurement cycle. */
struct RepResult
{
    /** Hooks fired, run drained, no deadlock or abort. */
    bool clean = false;
    std::uint64_t steadyAllocs = 0;
    double cyclesPerSec = 0.0;
    double flitMovesPerSec = 0.0;
    std::size_t packetTableSlots = 0;
    std::uint64_t packetsEjected = 0;
};

RepResult
runOnce(const topo::Network &net, const cdg::RoutingRelation &rel,
        const sim::TrafficGenerator &gen, const sim::SimConfig &cfg)
{
    sim::Simulator simulator(net, rel, gen, cfg);
    const sim::Fabric &fab = simulator.fabric();

    struct Window
    {
        bool started = false;
        bool ended = false;
        std::uint64_t allocs0 = 0, allocs1 = 0;
        std::uint64_t moves0 = 0, moves1 = 0;
        Clock::time_point t0, t1;
    } w;
    simulator.setMeasurePhaseHooks(
        [&] {
            w.started = true;
            w.moves0 = fab.flitMoves;
            w.allocs0 = g_allocs;
            w.t0 = Clock::now();
        },
        [&] {
            w.t1 = Clock::now();
            w.allocs1 = g_allocs;
            w.moves1 = fab.flitMoves;
            w.ended = true;
        });

    const auto result = simulator.run();

    RepResult rep;
    rep.clean = w.started && w.ended && !result.deadlocked
        && result.drained && !result.aborted;
    if (!rep.clean) {
        std::cerr << "run did not cover the measurement window cleanly"
                  << " (started=" << w.started << " ended=" << w.ended
                  << " deadlocked=" << result.deadlocked
                  << " drained=" << result.drained << ")\n";
    }
    const double seconds =
        std::chrono::duration<double>(w.t1 - w.t0).count();
    rep.steadyAllocs = w.allocs1 - w.allocs0;
    rep.cyclesPerSec = seconds > 0
        ? static_cast<double>(cfg.measureCycles) / seconds
        : 0.0;
    rep.flitMovesPerSec = seconds > 0
        ? static_cast<double>(w.moves1 - w.moves0) / seconds
        : 0.0;
    rep.packetTableSlots = fab.packets.size();
    rep.packetsEjected = result.packetsEjected;
    return rep;
}

int
benchMain()
{
    const auto net = topo::Network::mesh({8, 8}, {2, 2});
    const auto rel = sweep::makeRouter(net, "fig7b");
    if (!rel) {
        std::cerr << "makeRouter(fig7b) failed\n";
        return 1;
    }
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    sim::SimConfig cfg;
    cfg.injectionRate = 0.10;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 20000;
    cfg.drainCycles = 50000;
    cfg.watchdogCycles = 5000;
    cfg.seed = 2024;
    cfg.routeTable = true;

    // Identical deterministic runs; the best wall-clock window is the
    // throughput figure (the others differ only by scheduler noise on
    // a shared box). The allocation contract must hold on EVERY rep.
    constexpr int kReps = 3;
    bool pass = true;
    std::uint64_t worstAllocs = 0;
    double slowestRate = 0.0;
    RepResult best;
    for (int r = 0; r < kReps; ++r) {
        const RepResult rep = runOnce(net, *rel, gen, cfg);
        if (!rep.clean)
            pass = false;
        if (rep.steadyAllocs != 0) {
            std::cerr << "steady-state loop allocated "
                      << rep.steadyAllocs
                      << " time(s) inside the measurement window (rep "
                      << r << ")\n";
            pass = false;
        }
        worstAllocs = std::max(worstAllocs, rep.steadyAllocs);
        std::fprintf(stderr, "  rep %d: %.0f cycles/s\n", r,
                     rep.cyclesPerSec);
        if (r == 0 || rep.cyclesPerSec < slowestRate)
            slowestRate = rep.cyclesPerSec;
        if (rep.cyclesPerSec > best.cyclesPerSec)
            best = rep;
    }

    const std::uint64_t steadyAllocs = worstAllocs;
    const double cyclesPerSec = best.cyclesPerSec;
    const double flitMovesPerSec = best.flitMovesPerSec;

    // Per-rep spread: (best - worst) / best. On a quiet host the three
    // identical deterministic runs land within a few percent; a large
    // spread means a noisy neighbour, and a best-of-3 figure from such
    // a host cannot support a regression verdict either way.
    const double repSpread = cyclesPerSec > 0
        ? (cyclesPerSec - slowestRate) / cyclesPerSec
        : 0.0;
    constexpr double kMaxTrustedSpread = 0.15;
    const bool hostNoisy = repSpread > kMaxTrustedSpread;

    std::printf("sim loop (fig7b, uniform 0.10, mesh 8x8, 2 VCs/dim):\n"
                "  %.0f cycles/s, %.0f flit-moves/s over %llu measured "
                "cycles (best of %d)\n  %llu steady-state allocations, "
                "packet table high-water %zu slots (%llu packets "
                "ejected)\n",
                cyclesPerSec, flitMovesPerSec,
                static_cast<unsigned long long>(cfg.measureCycles),
                kReps, static_cast<unsigned long long>(steadyAllocs),
                best.packetTableSlots,
                static_cast<unsigned long long>(best.packetsEjected));
    std::printf("  per-rep spread %.1f%% (worst %.0f cycles/s)\n",
                100.0 * repSpread, slowestRate);
    if (hostNoisy)
        std::printf("  NOTICE: spread exceeds %.0f%% — noisy host, "
                    "regression gate SKIPPED (allocation gate still "
                    "enforced)\n",
                    100.0 * kMaxTrustedSpread);

    // Regression gates against the committed baseline. Skipped (with
    // the notice above) when the reps disagree too much to trust a
    // wall-clock verdict; the zero-allocation contract is timing-free
    // and is enforced regardless.
    double baselineCyclesPerSec = 0.0;
    if (const char *path = std::getenv("EBDA_SIM_BASELINE_JSON");
        !hostNoisy && path && *path) {
        const Baseline base = loadBaseline(path);
        if (base.loaded && base.simLoopCyclesPerSec > 0) {
            baselineCyclesPerSec = base.simLoopCyclesPerSec;
            const double floor = 0.75 * base.simLoopCyclesPerSec;
            std::printf("  baseline sim_loop %.0f cycles/s -> floor "
                        "%.0f (25%% regression gate): %s\n",
                        base.simLoopCyclesPerSec, floor,
                        cyclesPerSec >= floor ? "ok" : "REGRESSED");
            if (cyclesPerSec < floor)
                pass = false;
        } else if (base.loaded && base.sweepTableCyclesPerSec > 0) {
            // Pre-arena baseline: the arena fabric must clear 1.5x the
            // whole-run sweep figure the route-table era recorded.
            baselineCyclesPerSec = base.sweepTableCyclesPerSec;
            const double floor = 1.5 * base.sweepTableCyclesPerSec;
            std::printf("  baseline sweep %.0f cycles/s -> floor %.0f "
                        "(1.5x arena gate): %s\n",
                        base.sweepTableCyclesPerSec, floor,
                        cyclesPerSec >= floor ? "ok" : "TOO SLOW");
            if (cyclesPerSec < floor)
                pass = false;
        }
    }

    std::ostringstream json;
    json << "{\"bench\":\"cycle_rate\",\"network\":\"mesh8x8_vc2\""
         << ",\"router\":\"fig7b\",\"injection_rate\":0.1"
         << ",\"measure_cycles\":" << cfg.measureCycles
         << ",\"reps\":" << kReps
         << ",\"cycles_per_sec\":" << cyclesPerSec
         << ",\"flit_moves_per_sec\":" << flitMovesPerSec
         << ",\"steady_state_allocs\":" << steadyAllocs
         << ",\"packet_table_slots\":" << best.packetTableSlots
         << ",\"rep_spread\":" << repSpread
         << ",\"regression_gate_skipped_noisy\":"
         << (hostNoisy ? "true" : "false")
         << ",\"baseline_cycles_per_sec\":" << baselineCyclesPerSec
         << ",\"pass\":" << (pass ? "true" : "false") << "}";

    std::cout << "\nCYCLE_BENCH_JSON: " << json.str() << '\n';
    if (const char *path = std::getenv("EBDA_CYCLE_BENCH_JSON");
        path && *path) {
        std::ofstream out(path);
        out << json.str() << '\n';
    }
    return pass ? 0 : 1;
}

} // namespace
} // namespace ebda

int
main()
{
    return ebda::benchMain();
}
