/**
 * @file
 * Theorem-2 torus note reproduction: wrap-around channels modelled as
 * the opposite direction class make a wrap traversal a Theorem-2/3
 * U-turn. The bench verifies the EbDa torus scheme against the Dally
 * oracle, contrasts it with (a) the same scheme under naive wrap
 * classification (cyclic) and (b) the classical dateline DOR baseline,
 * then simulates both routers on an 8-ary 2-cube.
 */

#include "common.hh"

#include "cdg/relation_cdg.hh"
#include "cdg/turn_cdg.hh"
#include "core/partition.hh"
#include "routing/dateline.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"
#include "util/table.hh"

namespace {

using namespace ebda;
using core::makeClass;
using core::Sign;

/** Three-partition EbDa torus scheme over 2 VCs per dimension: packets
 *  that cross a wrap (U-turn into the opposite class) continue on the
 *  later partition's VCs. */
core::PartitionScheme
torusScheme()
{
    core::PartitionScheme s;
    s.add(core::Partition({makeClass(1, Sign::Pos, 0),
                           makeClass(1, Sign::Neg, 0),
                           makeClass(0, Sign::Pos, 0)}));
    s.add(core::Partition({makeClass(1, Sign::Pos, 1),
                           makeClass(1, Sign::Neg, 1),
                           makeClass(0, Sign::Neg, 0)}));
    s.add(core::Partition({makeClass(0, Sign::Pos, 1),
                           makeClass(0, Sign::Neg, 1)}));
    return s;
}

void
reproduce()
{
    bench::banner("Theorem 2 torus note: wrap traversal as U-turn "
                  "(8-ary 2-cube)");

    const auto ebda_net = topo::Network::torus({8, 8}, {2, 2});
    const auto naive_net = topo::Network::torus(
        {8, 8}, {2, 2}, topo::WrapClassification::SameAsTravel);
    const auto scheme = torusScheme();

    TextTable t;
    t.setHeader({"configuration", "oracle verdict"});
    t.addRow({"EbDa scheme, wrap = opposite class (U-turn)",
              cdg::checkDeadlockFree(ebda_net, scheme).deadlockFree
                  ? "deadlock-free"
                  : "CYCLIC"});
    t.addRow({"same scheme, wrap = travel class (naive)",
              cdg::checkDeadlockFree(naive_net, scheme).deadlockFree
                  ? "deadlock-free"
                  : "CYCLIC"});
    t.print(std::cout);

    const routing::EbDaRouting ebda(
        ebda_net, scheme, {}, routing::EbDaRouting::Mode::ShortestState);
    const routing::TorusDatelineRouting dateline(naive_net);

    TextTable cmp;
    cmp.setHeader({"router", "deadlock-free", "connected", "avg latency",
                   "avg hops", "accepted"});
    const sim::TrafficGenerator gen_e(ebda_net,
                                      sim::TrafficPattern::Uniform);
    const sim::TrafficGenerator gen_d(naive_net,
                                      sim::TrafficPattern::Uniform);
    sim::SimConfig cfg;
    cfg.injectionRate = 0.15;
    cfg.warmupCycles = 1500;
    cfg.measureCycles = 4000;
    cfg.drainCycles = 30000;
    cfg.seed = 7;
    auto row = [&](const cdg::RoutingRelation &r,
                   const topo::Network &net,
                   const sim::TrafficGenerator &gen) {
        const auto verdict = cdg::checkDeadlockFree(r);
        const auto conn = cdg::checkConnectivity(r);
        const auto result = sim::runSimulation(net, r, gen, cfg);
        cmp.addRow({r.name().substr(0, 40),
                    verdict.deadlockFree ? "yes" : "NO",
                    conn.connected ? "yes" : "NO",
                    result.deadlocked ? "DEADLOCK"
                                      : TextTable::num(result.avgLatency,
                                                       1),
                    TextTable::num(result.avgHops, 2),
                    TextTable::num(result.acceptedRate, 4)});
    };
    row(ebda, ebda_net, gen_e);
    row(dateline, naive_net, gen_d);
    cmp.print(std::cout);
    std::cout << "expected shape: both deadlock-free; EbDa pays extra "
                 "hops on wrap detours but gains adaptiveness inside the "
                 "mesh region\n";
}

void
bmTorusVerify(benchmark::State &state)
{
    const auto net = topo::Network::torus({8, 8}, {2, 2});
    const auto scheme = torusScheme();
    for (auto _ : state) {
        auto verdict = cdg::checkDeadlockFree(net, scheme);
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(bmTorusVerify);

void
bmDatelineCdg(benchmark::State &state)
{
    const auto net = topo::Network::torus(
        {8, 8}, {2, 2}, topo::WrapClassification::SameAsTravel);
    const routing::TorusDatelineRouting r(net);
    for (auto _ : state) {
        auto verdict = cdg::checkDeadlockFree(r);
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(bmDatelineCdg);

} // namespace

EBDA_BENCH_MAIN(reproduce)
