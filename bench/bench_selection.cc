/**
 * @file
 * Ablation: output-selection policy under the same EbDa fully adaptive
 * turn set. DyXY (the paper's Figure 7(b) identification) pairs this
 * scheme with congestion-aware selection; the bench quantifies what
 * the selection function contributes on top of the deadlock-free turn
 * set — saturation throughput per policy under uniform, transpose and
 * hotspot traffic.
 */

#include "common.hh"

#include "core/catalog.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

const char *
policyName(sim::SelectionPolicy p)
{
    switch (p) {
      case sim::SelectionPolicy::MaxCredits:
        return "max-credits (DyXY-style)";
      case sim::SelectionPolicy::RoundRobin:
        return "round-robin";
      case sim::SelectionPolicy::Random:
        return "random";
      case sim::SelectionPolicy::FirstCandidate:
        return "first-candidate";
    }
    return "?";
}

void
reproduce()
{
    bench::banner("Selection-policy ablation on the Fig 7(b) scheme "
                  "(8x8 mesh, saturation throughput at offered 0.9)");

    const auto net = topo::Network::mesh({8, 8}, {1, 2});
    const routing::EbDaRouting r(net, core::schemeFig7b());

    const std::vector<sim::TrafficPattern> patterns = {
        sim::TrafficPattern::Uniform, sim::TrafficPattern::Transpose,
        sim::TrafficPattern::Hotspot};
    const std::vector<sim::SelectionPolicy> policies = {
        sim::SelectionPolicy::MaxCredits,
        sim::SelectionPolicy::RoundRobin,
        sim::SelectionPolicy::Random,
        sim::SelectionPolicy::FirstCandidate};

    TextTable t;
    std::vector<std::string> header = {"pattern"};
    for (const auto p : policies)
        header.push_back(policyName(p));
    t.setHeader(header);

    for (const auto pattern : patterns) {
        const sim::TrafficGenerator gen(net, pattern);
        std::vector<std::string> row = {sim::toString(pattern)};
        for (const auto policy : policies) {
            sim::SimConfig cfg;
            cfg.selection = policy;
            cfg.injectionRate = 0.9;
            cfg.warmupCycles = 2500;
            cfg.measureCycles = 4000;
            cfg.drainCycles = 0;
            cfg.seed = 13;
            const auto result = sim::runSimulation(net, r, gen, cfg);
            row.push_back(result.deadlocked
                              ? "DEADLOCK"
                              : TextTable::num(result.acceptedRate, 3));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
    std::cout << "expected shape: congestion-aware selection (DyXY) "
                 "leads; deadlock freedom is independent of the policy "
                 "— it comes from the turn set alone\n";
}

void
bmSelectionPolicy(benchmark::State &state)
{
    const auto net = topo::Network::mesh({8, 8}, {1, 2});
    const routing::EbDaRouting r(net, core::schemeFig7b());
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    const auto policy =
        static_cast<sim::SelectionPolicy>(state.range(0));
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.selection = policy;
        cfg.injectionRate = 0.2;
        cfg.warmupCycles = 200;
        cfg.measureCycles = 800;
        cfg.drainCycles = 4000;
        auto result = sim::runSimulation(net, r, gen, cfg);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(bmSelectionPolicy)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

} // namespace

EBDA_BENCH_MAIN(reproduce)
