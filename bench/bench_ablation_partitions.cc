/**
 * @file
 * Ablation (Section 5.3.2): the partition-count / adaptiveness /
 * performance trade-off. Over the same four 2D channels, schemes with
 * 2, 3 and 4 partitions are measured for exact adaptiveness and
 * simulated under transpose traffic; fewer partitions => more
 * adaptiveness => later saturation. A second ablation toggles the
 * Theorem-2/3 U-/I-turn options to show they add legal transitions
 * without affecting deadlock freedom.
 */

#include "common.hh"

#include "cdg/adaptivity.hh"
#include "cdg/turn_cdg.hh"
#include "core/catalog.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

void
reproduce()
{
    bench::banner("Ablation: partition count vs adaptiveness vs "
                  "performance (2D, 4 channels)");

    const auto net = topo::Network::mesh({8, 8}, {1, 1});
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Transpose);

    struct Entry
    {
        const char *label;
        core::PartitionScheme scheme;
    };
    std::vector<Entry> entries;
    entries.push_back({"2 partitions (Negative-First)",
                       core::schemeFig6P4()});
    entries.push_back({"2 partitions (West-First)", core::schemeFig6P3()});
    {
        core::PartitionScheme three;
        three.add(core::Partition({core::makeClass(0, core::Sign::Pos),
                                   core::makeClass(1, core::Sign::Pos)}));
        three.add(core::Partition({core::makeClass(0, core::Sign::Neg)}));
        three.add(core::Partition({core::makeClass(1, core::Sign::Neg)}));
        entries.push_back({"3 partitions (Table 2 row 1)", three});
    }
    entries.push_back({"4 partitions (XY)", core::schemeFig6P1()});

    TextTable t;
    t.setHeader({"scheme", "90-deg", "adaptiveness", "deadlock-free",
                 "sat. throughput (transpose)"});
    for (const auto &e : entries) {
        const auto set = core::TurnSet::extract(e.scheme);
        const auto adapt = cdg::measureAdaptiveness(net, e.scheme);
        const auto verdict = cdg::checkDeadlockFree(net, e.scheme);

        const routing::EbDaRouting r(net, e.scheme);
        sim::SimConfig cfg;
        cfg.injectionRate = 0.9;
        cfg.warmupCycles = 2500;
        cfg.measureCycles = 4000;
        cfg.drainCycles = 0;
        cfg.seed = 3;
        const auto result = sim::runSimulation(net, r, gen, cfg);

        t.addRow({e.label,
                  TextTable::num(set.count(core::TurnKind::Turn90)),
                  TextTable::num(adapt.averageFraction, 4),
                  verdict.deadlockFree ? "yes" : "NO",
                  result.deadlocked ? "DEADLOCK"
                                    : TextTable::num(result.acceptedRate,
                                                     3)});
    }
    t.print(std::cout);

    bench::banner("Ablation: Theorem-2/3 U-/I-turn options (Fig 7(b) "
                  "scheme)");
    const auto net2 = topo::Network::mesh({8, 8}, {1, 2});
    TextTable t2;
    t2.setHeader({"options", "turns", "U", "I", "deadlock-free"});
    auto opt_row = [&](const char *label,
                       const core::TurnExtractionOptions &opts) {
        const auto set = core::TurnSet::extract(core::schemeFig7b(), opts);
        const auto verdict =
            cdg::checkDeadlockFree(net2, core::schemeFig7b(), opts);
        t2.addRow({label, TextTable::num(set.size()),
                   TextTable::num(set.count(core::TurnKind::UTurn)),
                   TextTable::num(set.count(core::TurnKind::ITurn)),
                   verdict.deadlockFree ? "yes" : "NO"});
    };
    core::TurnExtractionOptions all;
    opt_row("all theorems (maximally adaptive)", all);
    core::TurnExtractionOptions no_ui = all;
    no_ui.theorem2 = false;
    no_ui.crossUITurns = false;
    opt_row("90-degree turns only", no_ui);
    core::TurnExtractionOptions next_only = all;
    next_only.transitionsToAllLater = false;
    opt_row("transitions to next partition only", next_only);
    t2.print(std::cout);
    std::cout << "paper: U-/I-turns matter for fault tolerance and tori; "
                 "they never jeopardise deadlock freedom\n";
}

void
bmAblationAdaptiveness(benchmark::State &state)
{
    const auto net = topo::Network::mesh({8, 8}, {1, 1});
    const auto scheme = core::schemeFig6P4();
    for (auto _ : state) {
        auto report = cdg::measureAdaptiveness(net, scheme);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(bmAblationAdaptiveness);

} // namespace

EBDA_BENCH_MAIN(reproduce)
