/**
 * @file
 * Figure 4 reproduction: the U-/I-turn counting identity. With n
 * channels of one dimension numbered ascending inside a partition,
 * n(n-1)/2 transitions are allowed: a*b U-turns and C(a,2)+C(b,2)
 * I-turns for a positive / b negative channels. The paper's example
 * (three VCs) yields 9 U-turns and 6 I-turns.
 */

#include "common.hh"

#include "core/turns.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

core::PartitionScheme
pairScheme(int a, int b)
{
    core::Partition p;
    for (int v = 0; v < a; ++v)
        p.add(core::makeClass(1, core::Sign::Pos,
                              static_cast<std::uint8_t>(v)));
    for (int v = 0; v < b; ++v)
        p.add(core::makeClass(1, core::Sign::Neg,
                              static_cast<std::uint8_t>(v)));
    core::PartitionScheme s;
    s.add(p);
    return s;
}

void
reproduce()
{
    bench::banner("Figure 4: U-/I-turn counts under ascending numbering");

    TextTable t;
    t.setHeader({"a (pos)", "b (neg)", "U measured", "U = a*b",
                 "I measured", "I = C(a,2)+C(b,2)", "total", "n(n-1)/2"});
    for (int a = 1; a <= 5; ++a) {
        for (int b = 1; b <= 5; ++b) {
            const auto set = core::TurnSet::extract(pairScheme(a, b));
            const auto expected = core::expectedUICounts(
                static_cast<std::size_t>(a), static_cast<std::size_t>(b));
            const std::size_t n = static_cast<std::size_t>(a + b);
            t.addRow({TextTable::num(a), TextTable::num(b),
                      TextTable::num(set.count(core::TurnKind::UTurn)),
                      TextTable::num(expected.uTurns),
                      TextTable::num(set.count(core::TurnKind::ITurn)),
                      TextTable::num(expected.iTurns),
                      TextTable::num(set.size()),
                      TextTable::num(n * (n - 1) / 2)});
        }
    }
    t.print(std::cout);
    std::cout << "paper example (a=3, b=3): 9 U-turns + 6 I-turns = 15 = "
                 "n(n-1)/2\n";
}

void
bmExtractLargePair(benchmark::State &state)
{
    const auto scheme =
        pairScheme(static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto set = core::TurnSet::extract(scheme);
        benchmark::DoNotOptimize(set);
    }
}
BENCHMARK(bmExtractLargePair)->Arg(3)->Arg(8)->Arg(16);

} // namespace

EBDA_BENCH_MAIN(reproduce)
