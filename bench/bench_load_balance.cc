/**
 * @file
 * Section 2 claim reproduction: "Since packets can use all allowable
 * turns simultaneously, a better distribution of packets among channels
 * can be obtained" (EbDa vs Duato-style escape designs). The bench runs
 * the simulator at moderate load and reports the per-channel load
 * distribution — coefficient of variation, max/mean ratio and the
 * fraction of idle channels — for deterministic, escape-based and EbDa
 * fully adaptive routing.
 */

#include "common.hh"

#include "core/catalog.hh"
#include "core/minimal.hh"
#include "routing/baselines.hh"
#include "routing/duato.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

void
runPattern(const topo::Network &net, sim::TrafficPattern pattern,
           double rate)
{
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const routing::DuatoFullyAdaptive duato(net);
    const routing::EbDaRouting ebda(net, core::regionScheme(2));
    const sim::TrafficGenerator gen(net, pattern);

    TextTable t;
    t.setHeader({"router", "load CV", "max/mean", "unused channels",
                 "avg latency"});
    auto row = [&](const cdg::RoutingRelation &r, bool atomic) {
        sim::SimConfig cfg;
        cfg.injectionRate = rate;
        cfg.warmupCycles = 1500;
        cfg.measureCycles = 5000;
        cfg.drainCycles = 30000;
        cfg.atomicVcAllocation = atomic;
        cfg.seed = 99;
        const auto result = sim::runSimulation(net, r, gen, cfg);
        t.addRow({r.name().substr(0, 28) + (atomic ? " (atomic)" : ""),
                  TextTable::num(result.channelLoadCv, 3),
                  TextTable::num(result.channelLoadMaxRatio, 2),
                  TextTable::num(result.channelsUnused * 100, 1) + " %",
                  result.deadlocked
                      ? "DEADLOCK"
                      : TextTable::num(result.avgLatency, 1)});
    };
    row(xy, false);
    row(duato, true);
    row(ebda, false);
    t.print(std::cout);
}

void
reproduce()
{
    const auto net = topo::Network::mesh({8, 8}, {2, 2});

    bench::banner("Channel-load distribution, uniform traffic @ 0.25 "
                  "flits/node/cycle (8x8, 2 VCs/dim)");
    runPattern(net, sim::TrafficPattern::Uniform, 0.25);

    bench::banner("Channel-load distribution, transpose traffic @ 0.20");
    runPattern(net, sim::TrafficPattern::Transpose, 0.20);

    std::cout << "\nexpected shape: under uniform traffic EbDa (all "
                 "channels adaptive) shows the lowest CV; under "
                 "adversarial transpose both adaptive routers spread "
                 "far better than XY (which saturates), with EbDa "
                 "winning latency and Duato paying its atomic-buffer "
                 "and escape-VC overheads\n";
}

void
bmLoadBalanceRun(benchmark::State &state)
{
    const auto net = topo::Network::mesh({8, 8}, {2, 2});
    const routing::EbDaRouting ebda(net, core::regionScheme(2));
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.injectionRate = 0.25;
        cfg.warmupCycles = 200;
        cfg.measureCycles = 800;
        cfg.drainCycles = 4000;
        auto result = sim::runSimulation(net, ebda, gen, cfg);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(bmLoadBalanceRun)->Unit(benchmark::kMillisecond);

} // namespace

EBDA_BENCH_MAIN(reproduce)
