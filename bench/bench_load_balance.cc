/**
 * @file
 * Section 2 claim reproduction: "Since packets can use all allowable
 * turns simultaneously, a better distribution of packets among channels
 * can be obtained" (EbDa vs Duato-style escape designs). The bench runs
 * the simulator at moderate load and reports the per-channel load
 * distribution — coefficient of variation, max/mean ratio and the
 * fraction of idle channels — for deterministic, escape-based and EbDa
 * fully adaptive routing.
 *
 * Both traffic scenarios run as one sweep-engine batch (common.hh):
 * concurrent across cores, cacheable via EBDA_SWEEP_CACHE.
 */

#include "common.hh"

#include "sim/simulator.hh"
#include "util/table.hh"

#include "core/minimal.hh"
#include "routing/ebda_routing.hh"

namespace {

using namespace ebda;

struct RouterCase
{
    const char *spec;
    const char *label;
    bool atomic;
};

const std::vector<RouterCase> kRouters = {
    {"xy", "XY-DOR", false},
    {"duato", "Duato-FA (atomic)", true},
    {"region:2", "EbDa Region", false},
};

struct Scenario
{
    sim::TrafficPattern pattern;
    double rate;
};

const std::vector<Scenario> kScenarios = {
    {sim::TrafficPattern::Uniform, 0.25},
    {sim::TrafficPattern::Transpose, 0.20},
};

sim::SimConfig
configFor(double rate, bool atomic)
{
    sim::SimConfig cfg;
    cfg.injectionRate = rate;
    cfg.warmupCycles = 1500;
    cfg.measureCycles = 5000;
    cfg.drainCycles = 30000;
    cfg.atomicVcAllocation = atomic;
    cfg.seed = 99;
    return cfg;
}

void
printTable(const std::vector<sweep::JobOutcome> &outcomes,
           std::size_t base)
{
    TextTable t;
    t.setHeader({"router", "load CV", "max/mean", "unused channels",
                 "occ mean", "occ peak", "avg latency"});
    for (std::size_t ci = 0; ci < kRouters.size(); ++ci) {
        const auto &o = outcomes[base + ci];
        if (!o.ok) {
            t.addRow({kRouters[ci].label, "ERROR", "-", "-", "-", "-",
                      "-"});
            continue;
        }
        t.addRow({kRouters[ci].label,
                  TextTable::num(o.result.channelLoadCv, 3),
                  TextTable::num(o.result.channelLoadMaxRatio, 2),
                  TextTable::num(o.result.channelsUnused * 100, 1) + " %",
                  TextTable::num(o.result.channelOccupancyMean, 2),
                  std::to_string(o.result.channelOccupancyPeak),
                  o.result.deadlocked
                      ? "DEADLOCK"
                      : TextTable::num(o.result.avgLatency, 1)});
    }
    t.print(std::cout);
}

void
reproduce()
{
    std::vector<sweep::SweepJob> jobs;
    for (const auto &sc : kScenarios)
        for (const auto &r : kRouters)
            jobs.push_back(bench::meshJob(
                r.spec, sc.pattern, configFor(sc.rate, r.atomic)));

    const auto report = bench::runJobs(jobs);

    bench::banner("Channel-load distribution, uniform traffic @ 0.25 "
                  "flits/node/cycle (8x8, 2 VCs/dim)");
    printTable(report.outcomes, 0);

    bench::banner("Channel-load distribution, transpose traffic @ 0.20");
    printTable(report.outcomes, kRouters.size());

    std::cout << "[sweep: " << jobs.size() << " jobs, " << report.threads
              << " threads, " << report.simulated << " simulated, "
              << report.cacheHits << " cache hits, "
              << TextTable::num(report.cacheBlockedSeconds, 3)
              << " s cache-blocked, "
              << TextTable::num(report.elapsedSeconds, 2) << " s]\n";
    std::cout << "\nexpected shape: under uniform traffic EbDa (all "
                 "channels adaptive) shows the lowest CV; under "
                 "adversarial transpose both adaptive routers spread "
                 "far better than XY (which saturates), with EbDa "
                 "winning latency and Duato paying its atomic-buffer "
                 "and escape-VC overheads\n";
}

void
bmLoadBalanceRun(benchmark::State &state)
{
    const auto net = topo::Network::mesh({8, 8}, {2, 2});
    const routing::EbDaRouting ebda(net, core::regionScheme(2));
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.injectionRate = 0.25;
        cfg.warmupCycles = 200;
        cfg.measureCycles = 800;
        cfg.drainCycles = 4000;
        auto result = sim::runSimulation(net, ebda, gen, cfg);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(bmLoadBalanceRun)->Unit(benchmark::kMillisecond);

} // namespace

EBDA_BENCH_MAIN(reproduce)
