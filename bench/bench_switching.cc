/**
 * @file
 * Assumption 1 reproduction: "A WH switching network is assumed while
 * theorems can be applied to VCT and SAF as well." The bench runs the
 * same EbDa fully adaptive router under all three switching techniques
 * and shows (a) deadlock freedom in each, (b) the textbook latency
 * ordering WH <= VCT << SAF, and (c) the throughput cost of SAF's
 * per-hop serialisation.
 */

#include "common.hh"

#include "core/catalog.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

void
reproduce()
{
    bench::banner("Switching techniques under the same EbDa router "
                  "(6x6 mesh, 4-flit packets, depth-8 buffers)");

    const auto net = topo::Network::mesh({6, 6}, {1, 2});
    const routing::EbDaRouting r(net, core::schemeFig7b());
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    TextTable t;
    t.setHeader({"switching", "offered", "avg latency", "p99", "accepted",
                 "deadlock"});
    for (const auto &[mode, label] :
         {std::pair{sim::SwitchingMode::Wormhole, "wormhole"},
          std::pair{sim::SwitchingMode::VirtualCutThrough, "VCT"},
          std::pair{sim::SwitchingMode::StoreAndForward, "SAF"}}) {
        for (const double rate : {0.05, 0.20}) {
            sim::SimConfig cfg;
            cfg.switching = mode;
            cfg.vcDepth = 8;
            cfg.packetLength = 4;
            cfg.injectionRate = rate;
            cfg.warmupCycles = 1500;
            cfg.measureCycles = 5000;
            cfg.drainCycles = 40000;
            cfg.seed = 4;
            const auto result = sim::runSimulation(net, r, gen, cfg);
            t.addRow({label, TextTable::num(rate, 2),
                      result.drained
                          ? TextTable::num(result.avgLatency, 1)
                          : ">sat",
                      TextTable::num(result.p99Latency),
                      TextTable::num(result.acceptedRate, 3),
                      result.deadlocked ? "DEADLOCK" : "no"});
        }
    }
    t.print(std::cout);
    std::cout << "paper: SAF and VCT are special cases of WH, so the "
                 "wormhole deadlock-freedom proof covers them; measured "
                 "latency ordering WH <= VCT << SAF as expected\n";
}

void
bmSwitchingMode(benchmark::State &state)
{
    const auto net = topo::Network::mesh({6, 6}, {1, 2});
    const routing::EbDaRouting r(net, core::schemeFig7b());
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    const auto mode =
        static_cast<sim::SwitchingMode>(state.range(0));
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.switching = mode;
        cfg.vcDepth = 8;
        cfg.injectionRate = 0.1;
        cfg.warmupCycles = 200;
        cfg.measureCycles = 800;
        cfg.drainCycles = 5000;
        auto result = sim::runSimulation(net, r, gen, cfg);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(bmSwitchingMode)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

} // namespace

EBDA_BENCH_MAIN(reproduce)
