/**
 * @file
 * Section 4 reproduction: the minimum-channel formula
 * N = (n+1) * 2^(n-1) swept over dimensionality. For each n the bench
 * builds both constructions, reports channel/partition/VC budgets,
 * verifies acyclicity on a concrete mesh and (for small n) confirms
 * full adaptiveness with the exact path-counting DP.
 */

#include "common.hh"

#include "cdg/adaptivity.hh"
#include "cdg/turn_cdg.hh"
#include "core/minimal.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

topo::Network
meshFor(std::uint8_t n, const std::vector<int> &vcs, int radix)
{
    std::vector<int> dims(n, radix);
    return topo::Network::mesh(dims, vcs);
}

void
reproduce()
{
    bench::banner("Section 4: N = (n+1) * 2^(n-1) sweep");

    TextTable t;
    t.setHeader({"n", "formula N", "merged channels", "partitions",
                 "region channels", "deadlock-free", "fully adaptive"});
    for (std::uint8_t n = 1; n <= 6; ++n) {
        const auto merged = core::mergedScheme(n);
        const auto region = core::regionScheme(n);
        const auto vcs = core::vcsRequired(merged);

        const int radix = n <= 3 ? 3 : 2;
        const auto net = meshFor(n, vcs, radix);
        const bool ok = cdg::checkDeadlockFree(net, merged).deadlockFree;

        std::string adaptive = "-";
        if (n <= 4) {
            const auto report = cdg::measureAdaptiveness(net, merged);
            adaptive = report.fullyAdaptive ? "yes" : "no";
        }
        t.addRow({TextTable::num(static_cast<int>(n)),
                  TextTable::num(core::minFullyAdaptiveChannels(n)),
                  TextTable::num(core::channelCount(merged)),
                  TextTable::num(static_cast<int>(merged.size())),
                  TextTable::num(core::channelCount(region)),
                  ok ? "yes" : "NO", adaptive});
    }
    t.print(std::cout);
    std::cout << "paper base cases: n=2 -> 6 channels, n=3 -> 16 "
                 "channels; region construction uses n*2^n\n";
}

void
bmConstructMerged(benchmark::State &state)
{
    const auto n = static_cast<std::uint8_t>(state.range(0));
    for (auto _ : state) {
        auto scheme = core::mergedScheme(n);
        benchmark::DoNotOptimize(scheme);
    }
}
BENCHMARK(bmConstructMerged)->Arg(2)->Arg(4)->Arg(6)->Arg(9);

void
bmVerifyMergedOnMesh(benchmark::State &state)
{
    const auto n = static_cast<std::uint8_t>(state.range(0));
    const auto scheme = core::mergedScheme(n);
    const auto net = meshFor(n, core::vcsRequired(scheme), 3);
    for (auto _ : state) {
        auto verdict = cdg::checkDeadlockFree(net, scheme);
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(bmVerifyMergedOnMesh)->Arg(2)->Arg(3)->Arg(4);

} // namespace

EBDA_BENCH_MAIN(reproduce)
